"""Ablation: precision paths (the paper's section-7 future work).

Places the extension implementations next to the FP32 study results:
FP16 on the Neural Engine (the tensor-core analogue the paper could not
test), and FP64 via double-float emulation on the GPU (the paper's noted
workaround for the missing native FP64).
"""

import pytest

from benchmarks.conftest import model_machine
from repro.calibration.gemm import build_gemm_operation


def run_impl_gflops(machine, impl_key, n):
    done = machine.execute(build_gemm_operation(machine.chip, impl_key, n))
    return done.achieved_flops / 1e9


@pytest.mark.parametrize("chip", ["M1", "M4"])
def test_precision_ladder(benchmark, chip):
    def run():
        machine = model_machine(chip)
        return {
            key: run_impl_gflops(machine, key, 8192)
            for key in ("gpu-fp64-emulated", "gpu-mps", "ane-fp16")
        }

    ladder = benchmark.pedantic(run, rounds=3, iterations=1)
    print(f"\n{chip} precision ladder @ n=8192 (GFLOPS):")
    for key, gflops in ladder.items():
        print(f"  {key:20s} {gflops:9.1f}")

    # FP64 emulation is an order of magnitude+ below FP32 MPS — the paper's
    # argument that FP64 HPC is a poor fit for this GPU.
    assert ladder["gpu-mps"] / ladder["gpu-fp64-emulated"] > 10.0
    # The ANE's FP16 throughput exceeds the GPU's FP32 MPS path (the
    # tensor-core analogy of section 2.3).
    assert ladder["ane-fp16"] > ladder["gpu-mps"]


def test_ane_generational_scaling(benchmark):
    """The ANE grows faster across generations than the GPU (11->38 TOPS)."""

    def run():
        m1 = model_machine("M1")
        m4 = model_machine("M4")
        return (
            run_impl_gflops(m1, "ane-fp16", 8192),
            run_impl_gflops(m4, "ane-fp16", 8192),
            run_impl_gflops(m1, "gpu-mps", 8192),
            run_impl_gflops(m4, "gpu-mps", 8192),
        )

    ane_m1, ane_m4, mps_m1, mps_m4 = benchmark.pedantic(run, rounds=3, iterations=1)
    print(
        f"\nANE FP16 M1->M4: {ane_m1:.0f} -> {ane_m4:.0f} GFLOPS "
        f"({ane_m4 / ane_m1:.1f}x); GPU MPS: {mps_m4 / mps_m1:.1f}x"
    )
    assert ane_m4 / ane_m1 > mps_m4 / mps_m1


def test_fp64_emulation_vs_cpu(benchmark):
    """Emulated GPU FP64 lands near the CPU's FP32 Accelerate rate — the
    CPU remains the sane place for double precision on this SoC."""

    def run():
        machine = model_machine("M4")
        return (
            run_impl_gflops(machine, "gpu-fp64-emulated", 8192),
            run_impl_gflops(machine, "cpu-accelerate", 8192),
        )

    emu, acc = benchmark.pedantic(run, rounds=3, iterations=1)
    print(f"\nM4: emulated GPU FP64 {emu:.0f} vs CPU Accelerate FP32 {acc:.0f} GFLOPS")
    assert emu < acc
