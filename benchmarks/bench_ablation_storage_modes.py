"""Ablation: unified-memory storage modes.

Section 2.4's claim — shared no-copy buffers eliminate manual transfers —
quantified: the same GEMM run (a) with zero-copy shared buffers as the paper
does, vs (b) staging inputs/outputs through private buffers with blit copies,
as a discrete-GPU-style flow would require.
"""

import numpy as np
import pytest

from benchmarks.conftest import model_machine
from repro.core.data import aligned_alloc
from repro.metal.device import MTLCreateSystemDefaultDevice
from repro.metal.resources import MTLResourceStorageMode


def shared_flow(machine, n):
    """Zero-copy: wrap, no transfers (the paper's configuration)."""
    device = MTLCreateSystemDefaultDevice(machine)
    alloc = aligned_alloc(n * n * 4)
    t0 = machine.now_s()
    device.new_buffer_with_bytes_no_copy(
        alloc.data, alloc.length, MTLResourceStorageMode.SHARED
    )
    return machine.now_s() - t0


def private_flow(machine, n):
    """Discrete-style: allocate private, blit in and out."""
    device = MTLCreateSystemDefaultDevice(machine)
    nbytes = n * n * 4
    host = device.new_buffer_with_bytes(np.zeros(n * n, dtype=np.float32))
    private = device.new_buffer_with_length(
        nbytes, MTLResourceStorageMode.PRIVATE
    )
    t0 = machine.now_s()
    queue = device.new_command_queue()
    for src, dst in ((host, private), (private, host)):
        cb = queue.command_buffer()
        blit = cb.blit_command_encoder()
        blit.copy_from_buffer(src, 0, dst, 0, nbytes)
        blit.end_encoding()
        cb.commit()
        cb.wait_until_completed()
    return machine.now_s() - t0


@pytest.mark.parametrize("n", [2048, 8192])
def test_storage_mode_ablation(benchmark, n):
    def run():
        machine = model_machine("M2")
        shared_s = shared_flow(machine, n)
        private_s = private_flow(machine, n)
        return shared_s, private_s, machine.memory_bandwidth_bytes_per_s()

    shared_s, private_s, bw = benchmark.pedantic(run, rounds=3, iterations=1)
    print(
        f"\nn={n}: shared no-copy {shared_s * 1e6:.1f} us, "
        f"private+blit {private_s * 1e6:.1f} us"
    )
    # Zero-copy wrapping consumes no simulated transfer time at all; the
    # staged flow pays two DMA passes over the matrix.
    assert shared_s == 0.0
    assert private_s > 0.0
    min_transfer = 2 * n * n * 4 / bw
    assert private_s >= min_transfer
