"""Ablation: cooling model on/off.

DESIGN.md calls out the thermal cap as the mechanism behind the paper's
laptop-vs-desktop power observation (section 7).  This bench runs a
hypothetical heavy draw on the passively cooled M1 with and without the cap
to quantify the clamp and the cube-root throttling stretch.
"""

import pytest

from repro.sim.engine import EngineKind, Operation
from repro.sim.machine import Machine
from repro.sim.policy import NumericsConfig
from repro.sim.roofline import OpCost
from repro.soc.power import PowerComponent
from repro.soc.thermal import ThermalModel


def heavy_op(watts: float) -> Operation:
    return Operation(
        engine=EngineKind.GPU,
        label="ablation/heavy-load",
        cost=OpCost(flops=1e12),
        peak_flops=2.61e12,
        peak_bytes_per_s=67e9,
        compute_efficiency=0.6,
        power_draws_w={PowerComponent.GPU: watts},
    )


def make_m1(thermal_enabled: bool) -> Machine:
    return Machine.for_chip(
        "M1",
        noise_sigma=0.0,
        thermal_enabled=thermal_enabled,
        numerics=NumericsConfig.model_only(),
    )


@pytest.mark.parametrize("draw_w", [10.0, 18.0, 25.0])
def test_thermal_cap_ablation(benchmark, draw_w):
    def run():
        capped = make_m1(True).execute(heavy_op(draw_w))
        uncapped = make_m1(False).execute(heavy_op(draw_w))
        return capped, uncapped

    capped, uncapped = benchmark.pedantic(run, rounds=3, iterations=1)
    cap = ThermalModel.for_device(make_m1(True).device).sustained_cap_w
    total_capped = sum(capped.draws_w.values())
    print(
        f"\nrequested {draw_w:.0f} W -> capped {total_capped:.1f} W "
        f"(cap {cap:.0f} W), time x{capped.elapsed_s / uncapped.elapsed_s:.3f}"
    )
    assert sum(uncapped.draws_w.values()) == pytest.approx(draw_w)
    if draw_w <= cap:
        assert not capped.throttled
        assert capped.elapsed_s == uncapped.elapsed_s
    else:
        assert capped.throttled
        assert total_capped == pytest.approx(cap)
        # Cube-root throttling: 2x power clamp costs ~1.26x time.
        expected_stretch = (draw_w / cap) ** (1.0 / 3.0)
        assert capped.elapsed_s / uncapped.elapsed_s == pytest.approx(
            expected_stretch, rel=1e-6
        )


def test_passive_vs_active_cap_gap(benchmark):
    """The same 25 W request lands differently on MacBook Air vs Mac mini."""

    def run():
        laptop = Machine.for_chip(
            "M1", noise_sigma=0.0, numerics=NumericsConfig.model_only()
        )
        desktop = Machine.for_chip(
            "M2", noise_sigma=0.0, numerics=NumericsConfig.model_only()
        )
        return (
            sum(laptop.execute(heavy_op(25.0)).draws_w.values()),
            sum(desktop.execute(heavy_op(25.0)).draws_w.values()),
        )

    laptop_w, desktop_w = benchmark.pedantic(run, rounds=3, iterations=1)
    print(f"\n25 W request: MacBook Air sustains {laptop_w:.1f} W, "
          f"Mac mini {desktop_w:.1f} W")
    assert laptop_w < desktop_w
