"""Ablation: threadgroup geometry for the custom shaders.

The paper fixes "eight horizontal and eight vertical thread groups"
(section 3.2).  This bench verifies that any geometry covering the output
yields identical numerics (coverage is what matters) and that undersized
grids are rejected — i.e. the 8x8 choice is a convention, not a correctness
requirement.
"""

import numpy as np
import pytest

from repro.metal import DispatchError, MTLCreateSystemDefaultDevice, MTLSize
from repro.sim.machine import Machine
from repro.sim.policy import NumericsConfig


def full_machine():
    return Machine.for_chip("M2", noise_sigma=0.0, numerics=NumericsConfig.full())


def run_with_geometry(device, n, a, b, tg_edge):
    lib = device.new_default_library()
    pso = device.new_compute_pipeline_state_with_function(
        lib.new_function_with_name("gemm_naive")
    )
    buf_a = device.new_buffer_with_bytes(a)
    buf_b = device.new_buffer_with_bytes(b)
    buf_c = device.new_buffer_with_length(n * n * 4)
    cb = device.new_command_queue().command_buffer()
    enc = cb.compute_command_encoder()
    enc.set_compute_pipeline_state(pso)
    enc.set_buffer(buf_a, 0, 0)
    enc.set_buffer(buf_b, 0, 1)
    enc.set_buffer(buf_c, 0, 2)
    enc.set_bytes(np.uint32(n), 3)
    groups = (n + tg_edge - 1) // tg_edge
    enc.dispatch_threadgroups(
        MTLSize(groups, groups), MTLSize(tg_edge, tg_edge)
    )
    enc.end_encoding()
    cb.commit()
    cb.wait_until_completed()
    return buf_c.as_array(np.float32, (n, n)).copy()


@pytest.mark.parametrize("tg_edge", [4, 8, 16, 32])
def test_threadgroup_geometry_equivalence(benchmark, tg_edge):
    n = 64
    rng = np.random.default_rng(0)
    a = rng.random((n, n), dtype=np.float32)
    b = rng.random((n, n), dtype=np.float32)

    def run():
        device = MTLCreateSystemDefaultDevice(full_machine())
        return run_with_geometry(device, n, a, b, tg_edge)

    out = benchmark.pedantic(run, rounds=2, iterations=1)
    np.testing.assert_allclose(out, a @ b, rtol=1e-4)
    print(f"\n{tg_edge}x{tg_edge} threadgroups: max |err| = "
          f"{np.abs(out - a @ b).max():.2e}")


def test_oversized_threadgroup_rejected(benchmark):
    """64x64 threads per group exceeds the 1024-thread hardware limit."""
    n = 64
    a = np.zeros((n, n), dtype=np.float32)

    def run():
        device = MTLCreateSystemDefaultDevice(full_machine())
        with pytest.raises(Exception) as err:
            run_with_geometry(device, n, a, a, 64)
        return type(err.value).__name__

    error_name = benchmark.pedantic(run, rounds=2, iterations=1)
    print(f"\n64x64 threadgroup rejected with {error_name}")
    assert error_name == "EncoderError"
