"""Ablation: the OMP_NUM_THREADS sweep of the CPU STREAM (section 3.1).

Regenerates the per-thread-count bandwidth curve the paper's sweep explores
and verifies its saturating shape: near-linear at first, flat at the core
count, no benefit beyond.
"""

import pytest

from benchmarks.conftest import model_machine
from repro.core.stream.cpu import CpuStreamBenchmark


@pytest.mark.parametrize("chip", ["M1", "M4"])
def test_thread_sweep_curve(benchmark, chip):
    machine = model_machine(chip)
    cores = machine.chip.total_cores

    def run():
        machine.reset_measurements()
        bench = CpuStreamBenchmark(machine, n_elements=1 << 21, ntimes=3)
        return {
            threads: bench.run(threads)["triad"].max_gbs
            for threads in range(1, cores + 1)
        }

    curve = benchmark.pedantic(run, rounds=2, iterations=1)
    print(f"\n{chip} triad GB/s by OMP_NUM_THREADS:")
    for threads, gbs in curve.items():
        print(f"  T={threads:2d}: {gbs:6.1f}")

    values = [curve[t] for t in sorted(curve)]
    assert values == sorted(values)  # monotone non-decreasing
    # Saturation: the last doubling of threads buys little.
    half = curve[max(1, cores // 2)]
    full = curve[cores]
    assert full / half < 1.35
    # But a single thread is far from the link limit.
    assert curve[1] < 0.7 * full


def test_threads_beyond_cores_no_gain(benchmark):
    machine = model_machine("M1")

    def run():
        machine.reset_measurements()
        bench = CpuStreamBenchmark(machine, n_elements=1 << 21, ntimes=2)
        at_cores = bench.run(machine.chip.total_cores)["triad"].max_gbs
        oversub = bench.run(4 * machine.chip.total_cores)["triad"].max_gbs
        return at_cores, oversub

    at_cores, oversub = benchmark.pedantic(run, rounds=2, iterations=1)
    print(f"\nM1 triad: {at_cores:.1f} GB/s at 8T, {oversub:.1f} GB/s at 32T")
    assert oversub <= at_cores * 1.02
