"""Extension bench: the multi-node future work of section 7.

Quantifies how the M-series' single-node efficiency translates to a small
cluster across interconnect classes: cluster STREAM (the no-communication
upper bound) vs SUMMA GEMM (the communication-exposed reality).
"""

import pytest

from repro.cluster import ClusterMachine, run_cluster_stream, run_summa_gemm
from repro.sim.policy import NumericsConfig


def make_cluster(interconnect: str, nodes: int = 4) -> ClusterMachine:
    return ClusterMachine(
        "M4", nodes, interconnect, numerics=NumericsConfig.model_only()
    )


@pytest.mark.parametrize(
    "interconnect", ["10gbe", "thunderbolt-ip", "infiniband-ndr"]
)
def test_summa_by_interconnect(benchmark, interconnect):
    def run():
        return run_summa_gemm(make_cluster(interconnect), 16384)

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    print(
        f"\nSUMMA n=16384 on 4x M4 over {interconnect}: "
        f"{result.aggregate_gflops:8.1f} GFLOPS aggregate, "
        f"speedup {result.speedup:.2f}x, "
        f"parallel efficiency {result.parallel_efficiency:.0%}, "
        f"communication {result.communication_fraction:.0%}"
    )
    assert 0.0 < result.parallel_efficiency <= 1.0
    if interconnect == "infiniband-ndr":
        assert result.parallel_efficiency > 0.7
    if interconnect == "10gbe":
        assert result.communication_fraction > 0.5


def test_stream_upper_bound_vs_summa(benchmark):
    """STREAM aggregates perfectly; SUMMA does not — the gap is the fabric."""

    def run():
        cluster = make_cluster("10gbe")
        stream = run_cluster_stream(cluster, n_elements=1 << 22, repeats=2)
        summa = run_summa_gemm(make_cluster("10gbe"), 16384)
        return stream["triad"], summa

    triad, summa = benchmark.pedantic(run, rounds=2, iterations=1)
    per_node = triad / 4
    print(
        f"\n4x M4 over 10GbE: aggregate triad {triad:.0f} GB/s "
        f"(perfect 4x of {per_node:.0f}); SUMMA speedup only {summa.speedup:.2f}x"
    )
    assert triad == pytest.approx(4 * per_node, rel=1e-6)
    assert summa.speedup < 2.0


def test_scaling_curve(benchmark):
    """Parallel efficiency decays with node count on the commodity fabric."""

    def run():
        return {
            p: run_summa_gemm(make_cluster("thunderbolt-ip", nodes=p), 16384)
            for p in (1, 4, 16)
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nSUMMA scaling on thunderbolt-ip (n=16384):")
    for p, r in results.items():
        print(
            f"  P={p:2d}: {r.aggregate_gflops:9.1f} GFLOPS, "
            f"eff {r.parallel_efficiency:.0%}"
        )
    efficiencies = [results[p].parallel_efficiency for p in (1, 4, 16)]
    assert efficiencies[0] >= efficiencies[1] >= efficiencies[2]
