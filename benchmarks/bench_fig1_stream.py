"""Figure 1: STREAM bandwidths for every chip, CPU and GPU.

Regenerates the bar chart's data: per-kernel maximum bandwidth over
repetitions, with the OMP_NUM_THREADS sweep on the CPU side, against the
theoretical peak line.
"""

import pytest

from benchmarks.conftest import model_machine
from repro.calibration import paper
from repro.core.stream.runner import figure1_row


@pytest.mark.parametrize("chip", list(paper.CHIPS))
def test_figure1_row(benchmark, chip):
    machine = model_machine(chip)

    def run():
        machine.reset_measurements()
        return figure1_row(machine)

    row = benchmark.pedantic(run, rounds=3, iterations=1)

    theoretical = machine.chip.memory.bandwidth_gbs
    print(f"\nFigure 1 — {chip} (theoretical {theoretical:.0f} GB/s)")
    for target in ("cpu", "gpu"):
        cells = "  ".join(
            f"{k}={r.max_gbs:6.1f}" for k, r in row[target].kernels.items()
        )
        print(f"  {target.upper():3s}: {cells}")

    assert row["cpu"].max_gbs == pytest.approx(
        paper.FIG1_CPU_MAX_GBS[chip], rel=0.04
    )
    assert row["gpu"].max_gbs == pytest.approx(
        paper.FIG1_GPU_MAX_GBS[chip], rel=0.04
    )
    assert row["cpu"].max_gbs < theoretical
    assert row["gpu"].max_gbs < theoretical


def test_figure1_m2_cpu_anomaly(benchmark):
    """The documented M2 Copy/Scale vs Add/Triad gap (section 5.1)."""
    machine = model_machine("M2")

    def run():
        machine.reset_measurements()
        return figure1_row(machine)["cpu"]

    cpu = benchmark.pedantic(run, rounds=3, iterations=1)
    gap = min(
        cpu.kernels["add"].max_gbs, cpu.kernels["triad"].max_gbs
    ) - max(cpu.kernels["copy"].max_gbs, cpu.kernels["scale"].max_gbs)
    print(f"\nM2 CPU anomaly gap: {gap:.1f} GB/s (paper: 20-30)")
    lo, hi = paper.FIG1_M2_CPU_ANOMALY_GAP_GBS
    assert lo - 4.0 <= gap <= hi + 4.0
