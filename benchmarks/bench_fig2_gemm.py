"""Figure 2: GFLOPS for all implementations and matrix sizes.

Regenerates one chip's panel per bench: the full n = 32..16384 sweep for the
six study implementations, five repetitions each, best-of-repeats GFLOPS.
"""

import pytest

from benchmarks.conftest import model_session
from repro.analysis.figures import figure2_data
from repro.calibration import paper


@pytest.mark.parametrize("chip", list(paper.CHIPS))
def test_figure2_panel(benchmark, chip):
    def run():
        return figure2_data((chip,), session=model_session())[chip]

    panel = benchmark.pedantic(run, rounds=2, iterations=1)

    print(f"\nFigure 2 — {chip} (GFLOPS, best of {paper.GEMM_REPEATS})")
    for impl, series in panel.items():
        cells = "  ".join(f"n={n}:{v:9.1f}" for n, v in sorted(series.items()))
        print(f"  {impl:16s} {cells}")

    # Quantitative targets (section 5.2).
    for impl in ("cpu-accelerate", "gpu-naive", "gpu-cutlass", "gpu-mps"):
        peak = max(panel[impl].values())
        assert peak == pytest.approx(
            paper.FIG2_PEAK_GFLOPS[impl][chip], rel=0.04
        ), impl

    # Shape: MPS dominates; CPU loops stop at 4096; GPU loses at n=32.
    mps_peak = max(panel["gpu-mps"].values())
    assert all(
        mps_peak >= max(series.values()) - 1e-9
        for series in panel.values()
        if series
    )
    assert max(panel["cpu-single"]) == paper.CPU_LOOP_MAX_N
    assert max(panel["cpu-omp"]) == paper.CPU_LOOP_MAX_N
    assert panel["gpu-mps"][32] < panel["cpu-accelerate"][32]


def test_figure2_generational_scaling(benchmark):
    """M1 -> M4 peaks improve monotonically for MPS and Accelerate."""

    def run():
        session = model_session()
        peaks = {}
        for chip in paper.CHIPS:
            data = figure2_data(
                (chip,),
                sizes=(16384,),
                impl_keys=("gpu-mps", "cpu-accelerate"),
                repeats=2,
                session=session,
            )[chip]
            peaks[chip] = {k: max(v.values()) for k, v in data.items()}
        return peaks

    peaks = benchmark.pedantic(run, rounds=2, iterations=1)
    for impl in ("gpu-mps", "cpu-accelerate"):
        series = [peaks[chip][impl] for chip in paper.CHIPS]
        print(f"\n{impl} generational peaks: {[round(v) for v in series]}")
        assert series == sorted(series)
