"""Figure 3: power dissipation of each implementation varying matrix size.

Regenerates the mW series per chip via the full section-3.3 powermetrics
protocol (start / warm-up / SIGINFO reset / run / SIGINFO / parse).
"""

import pytest

from benchmarks.conftest import model_session, print_series
from repro.analysis.figures import figure3_data
from repro.calibration import paper


@pytest.mark.parametrize("chip", list(paper.CHIPS))
def test_figure3_panel(benchmark, chip):
    def run():
        return figure3_data((chip,), repeats=3, session=model_session())[chip]

    panel = benchmark.pedantic(run, rounds=2, iterations=1)
    print_series(f"Figure 3 — {chip}", {chip: panel}, "mW")

    all_values_w = [v / 1e3 for s in panel.values() for v in s.values()]
    # "Power consumption varies from a few Watts to 10-20 Watts."
    assert max(all_values_w) <= 21.0
    assert min(all_values_w) >= 0.5
    # Power grows with size for every implementation.
    for impl, series in panel.items():
        values = [series[n] for n in sorted(series)]
        assert values == sorted(values), impl


def test_figure3_m4_cutlass_peak(benchmark):
    """M4 GPU-CUTLASS is the study's power maximum (~20 W)."""

    def run():
        return figure3_data(
            ("M4",),
            sizes=(16384,),
            impl_keys=("gpu-cutlass",),
            repeats=3,
            session=model_session(),
        )["M4"]["gpu-cutlass"][16384]

    mw = benchmark.pedantic(run, rounds=2, iterations=1)
    print(f"\nM4 gpu-cutlass @16384: {mw:.0f} mW")
    assert mw == pytest.approx(19_800, rel=0.06)


def test_figure3_laptops_below_desktops(benchmark):
    """Section 7: M1/M3 (passive laptops) dissipate less than M2/M4 minis."""

    def run():
        session = model_session()
        peaks = {}
        for chip in paper.CHIPS:
            data = figure3_data(
                (chip,),
                sizes=(16384,),
                impl_keys=("gpu-cutlass", "gpu-mps", "gpu-naive"),
                repeats=2,
                session=session,
            )[chip]
            peaks[chip] = max(v for s in data.values() for v in s.values())
        return peaks

    peaks = benchmark.pedantic(run, rounds=2, iterations=1)
    print(f"\nPeak combined draw (mW): { {k: round(v) for k, v in peaks.items()} }")
    assert peaks["M1"] < peaks["M2"]
    assert peaks["M3"] < peaks["M4"]
