"""Figure 4: power efficiency in GFLOPS per watt, higher is better."""

import pytest

from benchmarks.conftest import model_session, print_series
from repro.analysis.figures import figure4_data
from repro.calibration import paper


@pytest.mark.parametrize("chip", list(paper.CHIPS))
def test_figure4_panel(benchmark, chip):
    def run():
        return figure4_data((chip,), repeats=3, session=model_session())[chip]

    panel = benchmark.pedantic(run, rounds=2, iterations=1)
    print_series(f"Figure 4 — {chip}", {chip: panel}, "GFLOPS/W")

    # Quantified targets (section 5.3).
    for impl in ("gpu-mps", "cpu-accelerate"):
        measured = max(panel[impl].values())
        assert measured == pytest.approx(
            paper.FIG4_EFFICIENCY_GFLOPS_PER_W[impl][chip], rel=0.08
        ), impl

    # "All four chips reached the efficiency of 200 GFLOPS per Watt with
    # GPU-MPS" / "~10x higher than the other two GPU-based implementations".
    mps = max(panel["gpu-mps"].values())
    assert mps >= 200.0
    for other in ("gpu-naive", "gpu-cutlass"):
        ratio = mps / max(panel[other].values())
        assert ratio > 4.0, (other, ratio)

    # "Both CPU-single and OMP achieve less than 1 GFLOPS per Watt."
    for impl in ("cpu-single", "cpu-omp"):
        assert max(panel[impl].values()) < 1.0, impl


def test_figure4_green500_perspective(benchmark):
    """HPC perspective: the M2 CPU's 200 GFLOPS/W vs Green500's 72."""

    def run():
        return figure4_data(
            ("M2",),
            sizes=(16384,),
            impl_keys=("cpu-accelerate",),
            repeats=3,
            session=model_session(),
        )["M2"]["cpu-accelerate"][16384]

    efficiency = benchmark.pedantic(run, rounds=2, iterations=1)
    green500 = float(paper.LITERATURE["green500-top"]["gflops_per_w"])
    print(f"\nM2 CPU-Accelerate: {efficiency:.0f} GFLOPS/W vs Green500 #1 {green500:.0f}")
    assert efficiency > 2.0 * green500
