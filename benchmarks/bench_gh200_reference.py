"""GH200 reference rows (sections 4-5): STREAM and cublasSgemm."""

import numpy as np
import pytest

from repro.calibration import paper
from repro.cuda import CublasHandle, CudaMathMode, GH200Machine, run_gh200_stream
from repro.cuda.cublas import CUBLAS_OP_N, cublas_sgemm
from repro.sim.policy import NumericsConfig


def gh200():
    return GH200Machine(numerics=NumericsConfig.model_only())


@pytest.mark.parametrize(
    "target,paper_key",
    [("cpu", "stream_cpu_gbs"), ("hbm3", "stream_hbm3_gbs")],
)
def test_gh200_stream(benchmark, target, paper_key):
    machine = gh200()

    def run():
        return run_gh200_stream(machine, target, n_elements=1 << 25, repeats=5)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    print(
        f"\nGH200 STREAM {target}: {result.max_gbs:.0f} GB/s "
        f"({result.fraction_of_peak:.0%} of {result.theoretical_gbs:.0f}) "
        f"— paper: {paper.GH200[paper_key]:.0f}"
    )
    assert result.max_gbs == pytest.approx(paper.GH200[paper_key], rel=0.03)


@pytest.mark.parametrize(
    "mode,paper_key",
    [
        (CudaMathMode.CUDA_CORES_FP32, "sgemm_cuda_tflops"),
        (CudaMathMode.TF32_TENSOR, "sgemm_tf32_tflops"),
    ],
)
def test_gh200_sgemm(benchmark, mode, paper_key):
    machine = gh200()
    n = 16384
    a = np.zeros((n, n), dtype=np.float32)
    b = np.zeros((n, n), dtype=np.float32)
    c = np.zeros((n, n), dtype=np.float32)

    def run():
        handle = CublasHandle(machine, math_mode=mode)
        t0 = machine.now_ns()
        cublas_sgemm(
            handle, CUBLAS_OP_N, CUBLAS_OP_N, n, n, n, 1.0, a, n, b, n, 0.0, c, n
        )
        return n * n * (2 * n - 1) / (machine.now_ns() - t0) / 1e3

    tflops = benchmark.pedantic(run, rounds=3, iterations=1)
    print(f"\nGH200 cublasSgemm {mode.value}: {tflops:.1f} TFLOPS "
          f"— paper: {paper.GH200[paper_key]:.0f}")
    assert tflops == pytest.approx(paper.GH200[paper_key], rel=0.04)


def test_gh200_vs_m_series_factors(benchmark):
    """The apples-to-oranges framing: GH200 wins raw throughput by orders of
    magnitude while the M-series competes on efficiency."""

    def run():
        stream = run_gh200_stream(gh200(), "hbm3", n_elements=1 << 25, repeats=3)
        return stream.max_gbs

    hbm = benchmark.pedantic(run, rounds=2, iterations=1)
    m4_best = paper.FIG1_CPU_MAX_GBS["M4"]
    print(f"\nGH200 HBM3 / M4 bandwidth factor: {hbm / m4_best:.0f}x")
    assert hbm / m4_best > 30.0
    assert paper.GH200["sgemm_tf32_tflops"] * 1e3 / paper.FIG2_PEAK_GFLOPS[
        "gpu-mps"
    ]["M4"] > 100.0
