"""Literature reference points the paper quotes (sections 5.3 and 7)."""

from benchmarks.conftest import model_machine
from repro.analysis.figures import figure4_data
from repro.analysis.reference_systems import REFERENCE_SYSTEMS, render_reference_table
from repro.calibration import paper


def test_reference_table(benchmark):
    text = benchmark(render_reference_table)
    print("\n" + text)
    assert "Green500" in text


def test_m_series_vs_literature_efficiency(benchmark):
    """Situate simulated M-series efficiency among the quoted systems."""

    def run():
        machine = model_machine("M3")
        return figure4_data(
            {"M3": machine}, sizes=(16384,), impl_keys=("gpu-mps",), repeats=2
        )["M3"]["gpu-mps"][16384]

    m3_eff = benchmark.pedantic(run, rounds=2, iterations=1)
    by_name = {r.name: r for r in REFERENCE_SYSTEMS}
    green500 = by_name["Green500 #1 (Nov 2024)"].value
    a100 = by_name["Nvidia A100"].value
    print(
        f"\nM3 GPU-MPS: {m3_eff:.0f} GFLOPS/W | Green500 #1: {green500:.0f} | "
        f"A100 (MMA): {a100:.0f} | RTX 4090 (MMA): {by_name['Nvidia RTX 4090'].value:.0f}"
    )
    # The paper's ordering: above Green500's HPL number, below the A100's
    # mixed-precision MMA number (the not-perfectly-fair comparison).
    assert m3_eff > green500
    assert m3_eff < a100
