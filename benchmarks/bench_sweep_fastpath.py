"""The sweep fast path: cells/second per execution backend.

The paper's figures are sweeps — STREAM thread counts x repetitions, GEMM
sizes x repetitions x implementations — so batch throughput, not single-cell
latency, is the number that decides whether million-cell campaigns are
feasible.  This bench drives the same 1k-cell grid
(:func:`fastpath_grid`, shared with ``scripts/bench_to_json.py``) through
every execution backend, asserts the vectorized engine's byte-identity
guarantee on a subsample, and requires the fast path to beat the serial
reference by a wide margin.
"""

import pytest

from benchmarks.conftest import model_session
from repro.experiments import BACKEND_NAMES, SweepSpec

#: The three fast-path workloads span the roofline: memory-bound,
#: mid-intensity, overhead-bound.
FASTPATH_KINDS = ("spmv", "stencil", "batched-gemm")


def fastpath_grid(cells: int = 1000) -> list:
    """A deterministic mixed-kind grid of exactly ``cells`` specs.

    Seeds rotate so every cell is a distinct spec (no cache hits), and the
    three workload kinds interleave with their default chip/variant/size
    sweeps — the shape a real campaign has.
    """
    specs = []
    seed = 0
    while len(specs) < cells:
        for kind in FASTPATH_KINDS:
            specs.extend(SweepSpec(kind=kind, seed=seed).expand())
        seed += 1
    return specs[:cells]


def measure_backend(
    backend: str, specs, *, workers: int = 4, shard_size: int | None = None
) -> dict:
    """One uncached batch run under ``backend``: wall time and throughput.

    The single measurement harness — ``scripts/bench_to_json.py`` (the
    BENCH_PR4.json record and the CI smoke gate) imports this same
    function, so the committed perf record and the bench suite always
    measure the identical configuration.  ``shard_size`` tunes the sharded
    backend for small smoke grids (the 4096-cell default would put the
    whole grid in one shard).
    """
    import time

    if backend == "sharded" and shard_size is not None:
        from repro.experiments.backends import ShardedBackend

        backend = ShardedBackend(workers, shard_size=shard_size)
    session = model_session()
    start = time.perf_counter()
    envelopes = session.run_batch(specs, backend=backend, max_workers=workers)
    elapsed = time.perf_counter() - start
    if len(envelopes) != len(specs):
        name = getattr(backend, "name", backend)
        raise RuntimeError(f"{name}: {len(envelopes)}/{len(specs)} cells")
    return {
        "elapsed_s": round(elapsed, 4),
        "cells_per_s": round(len(specs) / elapsed, 1),
    }


def backend_cells_per_second(backend: str, specs, *, workers: int = 4) -> float:
    """Throughput of one uncached batch run under ``backend``."""
    return measure_backend(backend, specs, workers=workers)["cells_per_s"]


def grid_identity_holds(specs) -> bool:
    """Whether the fast path is byte-identical to serial on ``specs``."""
    serial = model_session().run_batch(specs, backend="serial")
    vectorized = model_session().run_batch(specs, backend="vectorized")
    return [e.to_json() for e in serial] == [e.to_json() for e in vectorized]


def test_vectorized_identity_on_grid_subsample():
    """Spot-check the benchmark grid itself: vectorized ≡ serial."""
    assert grid_identity_holds(fastpath_grid(60))


@pytest.mark.parametrize("backend", BACKEND_NAMES)
def test_backend_throughput(benchmark, backend):
    specs = fastpath_grid(250)  # trimmed grid keeps the bench suite quick
    rate = benchmark.pedantic(
        lambda: backend_cells_per_second(backend, specs), rounds=1, iterations=1
    )
    print(f"\n{backend}: {rate:,.0f} cells/s on {len(specs)} cells")


def test_vectorized_is_much_faster_than_serial():
    """The acceptance ratio, on a smaller grid so the suite stays fast."""
    specs = fastpath_grid(250)
    serial = backend_cells_per_second("serial", specs)
    vectorized = backend_cells_per_second("vectorized", specs)
    ratio = vectorized / serial
    print(
        f"\nserial {serial:,.0f} cells/s -> vectorized {vectorized:,.0f} "
        f"cells/s ({ratio:.1f}x)"
    )
    assert ratio >= 5.0  # the 1k-cell acceptance run (BENCH_PR4.json) sees >=10x
