"""Table 1: architecture comparison — regeneration bench."""

from repro.analysis.tables import render_table1
from repro.calibration import paper
from repro.soc.catalog import get_chip


def test_table1_regeneration(benchmark):
    text = benchmark(render_table1)
    print("\n" + text)
    # Spot-check the table against the paper's cells.
    assert "ARMv8.5-A" in text and "ARMv9.2-A" in text
    assert "LPDDR4X" in text and "LPDDR5X" in text
    for chip in paper.CHIPS:
        assert chip in text


def test_table1_theoretical_flops_consistency(benchmark):
    """Derived cores x ALUs x 2 x clock vs the table values (M1-M3 agree)."""

    def derive():
        return {
            chip: get_chip(chip).gpu.derived_fp32_tflops for chip in paper.CHIPS
        }

    derived = benchmark(derive)
    for chip in ("M1", "M2", "M3"):
        table_max = get_chip(chip).gpu.table_fp32_tflops[1]
        assert abs(derived[chip] - table_max) / table_max < 0.02
    # The documented M4 gap (DESIGN.md fidelity notes).
    assert derived["M4"] < get_chip("M4").gpu.table_fp32_tflops[1]
