"""Table 2: GEMM implementation overview — regeneration bench."""

from repro.analysis.tables import render_table2
from repro.calibration import paper
from repro.core.gemm.registry import table2_rows


def test_table2_regeneration(benchmark):
    text = benchmark(render_table2)
    print("\n" + text)
    assert "Cutlass-style tiled shader" in text


def test_table2_rows_match_paper(benchmark):
    rows = benchmark(table2_rows)
    assert tuple(rows) == paper.PAPER_IMPLEMENTATIONS
