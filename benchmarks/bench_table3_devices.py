"""Table 3: devices used — regeneration bench."""

from repro.analysis.tables import render_table3
from repro.soc.device import device_catalog


def test_table3_regeneration(benchmark):
    text = benchmark(render_table3)
    print("\n" + text)
    assert "MacBook Air" in text and "Mac mini" in text


def test_table3_cooling_split(benchmark):
    devices = benchmark(device_catalog)
    passive = [c for c, d in devices.items() if d.cooling.value == "Passive"]
    assert passive == ["M1", "M3"]
