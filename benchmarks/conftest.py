"""Shared helpers for the benchmark harness.

Every bench regenerates one table or figure of the paper: it runs the same
experiment pipeline the tests exercise (in model-only numerics mode, so a
full figure costs milliseconds), asserts the reproduction targets, and prints
the rows/series the paper reports so ``pytest benchmarks/ --benchmark-only``
doubles as a reproduction report.
"""

from __future__ import annotations

import pytest

from repro.calibration import paper
from repro.experiments import Session
from repro.sim.machine import Machine
from repro.sim.policy import NumericsConfig

CHIPS = list(paper.CHIPS)


def model_machine(chip: str, *, seed: int = 0) -> Machine:
    """Paper-default machine with numerics skipped (timing model only)."""
    return Machine.for_chip(chip, seed=seed, numerics=NumericsConfig.model_only())


def model_machines(chips=CHIPS, *, seed: int = 0) -> dict[str, Machine]:
    return {chip: model_machine(chip, seed=seed) for chip in chips}


def model_session(*, seed: int = 0, **kwargs) -> Session:
    """A fresh model-only session (one per benchmark round, so the result
    cache never short-circuits the measured work)."""
    return Session(numerics="model-only", seed=seed, **kwargs)


@pytest.fixture
def machines():
    return model_machines()


def print_series(title: str, data: dict, unit: str) -> None:
    print(f"\n{title} ({unit})")
    for chip, impls in data.items():
        print(f"  {chip}:")
        for impl, series in impls.items():
            cells = "  ".join(f"n={n}:{v:9.1f}" for n, v in sorted(series.items()))
            print(f"    {impl:18s} {cells}")
