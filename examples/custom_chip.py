#!/usr/bin/env python3
"""Model a hypothetical chip and run the paper's benchmarks on it.

The library is not limited to the four catalogued SoCs: any
:class:`repro.soc.chip.ChipSpec` can be benchmarked.  Off-catalog chips use
the generic (architecture-derived) calibration profiles, so the numbers are
plausible projections rather than measurements — handy for what-if studies
like the "M4 Ultra" below (double the GPU, 4x the bandwidth).

Usage::

    python examples/custom_chip.py
"""

import dataclasses

import repro
from repro.core.stream.runner import figure1_row
from repro.sim import Machine, NumericsConfig
from repro.soc.catalog import M4
from repro.soc.chip import AMXSpec, GPUSpec, MemorySpec
from repro.soc.device import Cooling, DeviceSpec


def make_m4_ultra():
    """A speculative desktop-class M4 variant."""
    chip = dataclasses.replace(
        M4,
        name="M4-Ultra (hypothetical)",
        gpu=GPUSpec(
            cores_min=60,
            cores_max=80,
            clock_ghz=1.47,
            table_fp32_tflops=(25.6, 34.1),
        ),
        amx=AMXSpec(precisions=M4.amx.precisions, peak_fp32_tflops=6.8, is_sme=True),
        memory=MemorySpec(
            technology="LPDDR5X",
            max_gb_options=(64, 128, 192),
            bandwidth_gbs=480.0,
        ),
    )
    device = DeviceSpec(
        model="Mac Studio",
        chip_name=chip.name,
        release_year=2025,
        memory_gb=128,
        cooling=Cooling.ACTIVE_AIR,
        macos_version="15.2",
    )
    return chip, device


def main() -> None:
    chip, device = make_m4_ultra()

    # A session whose machine factory resolves the off-catalog chip; catalog
    # names still construct normally, so one session runs both.
    def factory(chip_name: str, seed: int, numerics) -> Machine:
        if chip_name == chip.name:
            return Machine(chip, device, seed=seed, numerics=numerics)
        return Machine.for_chip(chip_name, seed=seed, numerics=numerics)

    session = repro.Session(numerics="model-only", machine_factory=factory)
    machine = factory(chip.name, 0, NumericsConfig.model_only())

    print(f"== {chip.name} on a {device.model} (projection) ==")
    print(f"GPU: {chip.gpu.cores_max} cores, "
          f"{chip.gpu.table_fp32_tflops[1]:.1f} theoretical FP32 TFLOPS")
    print(f"Memory: {chip.memory.bandwidth_gbs:.0f} GB/s "
          f"{chip.memory.technology}\n")

    row = figure1_row(machine, n_elements=1 << 22, repeats=3)
    print("STREAM (projected):")
    for target in ("cpu", "gpu"):
        print(f"  {target.upper():3s}: {row[target].max_gbs:7.1f} GB/s "
              f"({row[target].fraction_of_peak:.0%} of peak)")

    print("\nGEMM (projected, n=16384):")
    for key in ("cpu-accelerate", "gpu-naive", "gpu-cutlass", "gpu-mps"):
        result = session.run(
            repro.GemmSpec(chip=chip.name, impl_key=key, n=16384)
        ).result
        print(f"  {key:16s} {result.best_gflops:10.1f} GFLOPS")

    baseline = session.run(
        repro.GemmSpec(chip="M4", impl_key="gpu-mps", n=16384)
    ).result
    ultra = session.run(
        repro.GemmSpec(chip=chip.name, impl_key="gpu-mps", n=16384)
    ).result
    print(f"\nProjected MPS speedup over the base M4: "
          f"{ultra.best_gflops / baseline.best_gflops:.1f}x")


if __name__ == "__main__":
    main()
