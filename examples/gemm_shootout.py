#!/usr/bin/env python3
"""Figure 2 end to end: all six GEMM implementations across sizes and chips.

Declares the whole grid as one :class:`repro.SweepSpec` per chip and lets
the session execute it as a parallel batch (four workers) with a progress
line.  Sweeps n = 32..16384 (CPU loop implementations stop at 4096, as in
the paper) and prints the best-of-five GFLOPS per cell, reproducing the
shape of Figure 2: MPS dominates, Accelerate leads the CPU, the naive
shader beats the CUTLASS-style one, and the GPU loses below n ~ 512 to
dispatch overhead.

Usage::

    python examples/gemm_shootout.py [chip ...]   (default: all four)
"""

import sys

import repro


def main() -> None:
    chips = [a for a in sys.argv[1:] if not a.startswith("-")] or list(
        repro.paper.CHIPS
    )
    fast = "--fast" in sys.argv
    sizes = repro.paper.GEMM_SIZES
    keys = repro.implementation_keys(include_extensions=False)

    session = repro.Session(numerics="model-only" if fast else "sampled")

    for chip in chips:
        sweep = repro.SweepSpec(
            kind="gemm", chips=(chip,), impl_keys=keys, sizes=sizes
        )
        specs = sweep.expand()

        def progress(done: int, total: int, envelope) -> None:
            print(f"\r  running {done}/{total} cells", end="", file=sys.stderr)
            if done == total:
                print(file=sys.stderr)

        envelopes = session.run_batch(specs, max_workers=4, progress=progress)
        cells = {(e.spec.impl_key, e.spec.n): e.result for e in envelopes}

        print(f"\n== {chip} — best GFLOPS over {repro.paper.GEMM_REPEATS} reps ==")
        print(f"{'impl':16s}" + "".join(f"{n:>9d}" for n in sizes))
        for key in keys:
            row = []
            for n in sizes:
                result = cells.get((key, n))
                if result is None:
                    row.append(f"{'—':>9s}")
                else:
                    row.append(f"{result.best_gflops:9.1f}")
            print(f"{key:16s}" + "".join(row))

        mps = cells[("gpu-mps", sizes[-1])]
        acc = cells[("cpu-accelerate", sizes[-1])]
        print(
            f"  -> GPU/CPU peak ratio: {mps.best_gflops / acc.best_gflops:.2f}x "
            f"({'similar' if chip == 'M1' else 'GPU ahead'}, as in section 5.2)"
        )


if __name__ == "__main__":
    main()
