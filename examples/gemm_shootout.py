#!/usr/bin/env python3
"""Figure 2 end to end: all six GEMM implementations across sizes and chips.

Sweeps n = 32..16384 (CPU loop implementations stop at 4096, as in the
paper) and prints the best-of-five GFLOPS per cell, reproducing the shape of
Figure 2: MPS dominates, Accelerate leads the CPU, the naive shader beats
the CUTLASS-style one, and the GPU loses below n ~ 512 to dispatch overhead.

Usage::

    python examples/gemm_shootout.py [chip ...]   (default: all four)
"""

import sys

import repro
from repro.sim import NumericsConfig


def main() -> None:
    chips = [a for a in sys.argv[1:] if not a.startswith("-")] or list(
        repro.paper.CHIPS
    )
    fast = "--fast" in sys.argv
    sizes = repro.paper.GEMM_SIZES

    for chip in chips:
        numerics = (
            NumericsConfig.model_only()
            if fast
            else NumericsConfig.sampled(full_threshold=512)
        )
        machine = repro.Machine.for_chip(chip, numerics=numerics)
        runner = repro.ExperimentRunner(machine)
        print(f"\n== {chip} — best GFLOPS over {repro.paper.GEMM_REPEATS} reps ==")
        print(f"{'impl':16s}" + "".join(f"{n:>9d}" for n in sizes))
        for key in repro.implementation_keys(include_extensions=False):
            impl = repro.get_implementation(key)
            cells = []
            for n in sizes:
                if not impl.supports(machine, n):
                    cells.append(f"{'—':>9s}")
                    continue
                result = runner.run_gemm(impl, n)
                cells.append(f"{result.best_gflops:9.1f}")
            print(f"{key:16s}" + "".join(cells))

        mps = runner.run_gemm("gpu-mps", sizes[-1])
        acc = runner.run_gemm("cpu-accelerate", sizes[-1])
        print(
            f"  -> GPU/CPU peak ratio: {mps.best_gflops / acc.best_gflops:.2f}x "
            f"({'similar' if chip == 'M1' else 'GPU ahead'}, as in section 5.2)"
        )


if __name__ == "__main__":
    main()
