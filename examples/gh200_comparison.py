#!/usr/bin/env python3
"""The apples-to-oranges comparison: M-series vs an Nvidia GH200 superchip.

Reproduces the reference points of sections 4-5: STREAM on Grace LPDDR5X
and Hopper HBM3, and cublasSgemm on CUDA cores and TF32 tensor cores, then
prints the factors against the best M-series results — the paper's closing
argument that the two are different categories altogether.

Usage::

    python examples/gh200_comparison.py
"""

import numpy as np

import repro
from repro.cuda import CublasHandle, CudaMathMode, GH200Machine, run_gh200_stream
from repro.cuda.cublas import CUBLAS_OP_N, cublas_sgemm
from repro.sim import NumericsConfig


def sgemm_tflops(machine: GH200Machine, mode: CudaMathMode, n: int = 16384) -> float:
    handle = CublasHandle(machine, math_mode=mode)
    a = np.zeros((n, n), dtype=np.float32)
    b = np.zeros((n, n), dtype=np.float32)
    c = np.zeros((n, n), dtype=np.float32)
    t0 = machine.now_ns()
    cublas_sgemm(handle, CUBLAS_OP_N, CUBLAS_OP_N, n, n, n, 1.0, a, n, b, n, 0.0, c, n)
    return n * n * (2 * n - 1) / (machine.now_ns() - t0) / 1e3


def main() -> None:
    gh = GH200Machine(numerics=NumericsConfig.model_only())

    print("== GH200 reference measurements ==")
    rows = []
    for target, label in (("cpu", "Grace LPDDR5X"), ("hbm3", "Hopper HBM3")):
        result = run_gh200_stream(gh, target, n_elements=1 << 25)
        rows.append((label, result.max_gbs))
        print(
            f"  STREAM {label:14s}: {result.max_gbs:7.1f} GB/s "
            f"({result.fraction_of_peak:.0%} of {result.theoretical_gbs:.0f})"
        )
    cuda = sgemm_tflops(gh, CudaMathMode.CUDA_CORES_FP32)
    tf32 = sgemm_tflops(gh, CudaMathMode.TF32_TENSOR)
    print(f"  cublasSgemm CUDA cores : {cuda:6.1f} TFLOPS")
    print(f"  cublasSgemm TF32 tensor: {tf32:6.1f} TFLOPS "
          f"(mixed precision — the paper flags this as not a fair comparison)")

    print("\n== Against the best M-series results ==")
    session = repro.Session(numerics="model-only")
    m4_stream = session.run(repro.StreamSpec(chip="M4", target="gpu")).result.max_gbs
    m4_mps = (
        session.run(repro.GemmSpec(chip="M4", impl_key="gpu-mps", n=16384))
        .result.best_gflops
        / 1e3
    )

    grace = rows[0][1]
    hbm = rows[1][1]
    print(f"  bandwidth : M4 {m4_stream:.0f} GB/s vs Grace {grace:.0f} "
          f"({grace / m4_stream:.1f}x) vs HBM3 {hbm:.0f} ({hbm / m4_stream:.0f}x)")
    print(f"  compute   : M4 MPS {m4_mps:.2f} TFLOPS vs CUDA cores {cuda:.0f} "
          f"({cuda / m4_mps:.0f}x) vs TF32 {tf32:.0f} ({tf32 / m4_mps:.0f}x)")
    print(
        "\nThe GH200 wins raw throughput by one to two orders of magnitude;"
        "\nthe M-series competes on efficiency — apples to oranges."
    )


if __name__ == "__main__":
    main()
