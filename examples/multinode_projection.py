#!/usr/bin/env python3
"""The paper's future work, answered: M-series chips in a distributed system.

Projects a small cluster of M4 Mac minis running SUMMA distributed GEMM over
three interconnect classes, against the perfectly scaling cluster STREAM
upper bound.  The punchline mirrors the paper's apples-to-oranges framing:
the chips' efficiency survives only as long as the fabric can feed them.

Usage::

    python examples/multinode_projection.py [chip] [n]
"""

import sys

from repro.cluster import (
    INTERCONNECTS,
    ClusterMachine,
    run_cluster_stream,
    run_summa_gemm,
)
from repro.sim import NumericsConfig


def main() -> None:
    chip = sys.argv[1] if len(sys.argv) > 1 else "M4"
    n = int(sys.argv[2]) if len(sys.argv) > 2 else 16384

    print(f"== Distributed GEMM projection: {chip} nodes, n={n} ==\n")
    print(f"{'fabric':16s} {'nodes':>5s} {'aggregate':>12s} {'speedup':>8s} "
          f"{'par.eff':>8s} {'comm':>6s}")
    print("-" * 60)
    for name in INTERCONNECTS:
        for nodes in (4, 16):
            cluster = ClusterMachine(
                chip, nodes, name, numerics=NumericsConfig.model_only()
            )
            result = run_summa_gemm(cluster, n)
            print(
                f"{name:16s} {nodes:5d} {result.aggregate_gflops:10.1f} GF "
                f"{result.speedup:7.2f}x {result.parallel_efficiency:8.0%} "
                f"{result.communication_fraction:6.0%}"
            )

    cluster = ClusterMachine(chip, 4, "10gbe", numerics=NumericsConfig.model_only())
    stream = run_cluster_stream(cluster, n_elements=1 << 22, repeats=2)
    print(
        f"\nFor contrast, communication-free cluster STREAM (4 nodes): "
        f"triad {stream['triad']:.0f} GB/s — a perfect 4x."
    )
    print(
        "\nConclusion: on commodity fabrics the interconnect, not the SoC,"
        "\nbounds distributed performance — the M-series' efficiency story"
        "\nis strongest inside a single package, as the paper suggests."
    )


if __name__ == "__main__":
    main()
