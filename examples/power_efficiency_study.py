#!/usr/bin/env python3
"""Figures 3 and 4 end to end: the power and efficiency study.

For every chip and implementation, runs the GEMM with the piggybacked
powermetrics protocol (section 3.3) as one declarative batch of
:class:`repro.PoweredGemmSpec` cells and reports mean combined CPU+GPU draw
and GFLOPS-per-watt, then situates the results against the literature
points the paper quotes (Green500 #1, A100, RTX 4090).

Usage::

    python examples/power_efficiency_study.py [n]   (default 16384)
"""

import sys

import repro
from repro.analysis.reference_systems import REFERENCE_SYSTEMS
from repro.calibration.gemm import gemm_calibration


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 16384

    session = repro.Session(numerics="model-only")
    keys = repro.implementation_keys(include_extensions=False)
    specs = []
    for chip in repro.paper.CHIPS:
        for key in keys:
            supported = gemm_calibration(repro.get_chip(chip), key).supports(n)
            size = n if supported else repro.paper.CPU_LOOP_MAX_N
            specs.append(repro.PoweredGemmSpec(chip=chip, impl_key=key, n=size))
    envelopes = session.run_batch(specs, max_workers=4)
    by_cell = {(e.spec.chip, e.spec.impl_key): e.result for e in envelopes}

    print(f"{'chip':5s} {'impl':16s} {'GFLOPS':>10s} {'power':>9s} {'GFLOPS/W':>10s}")
    print("-" * 55)
    best_efficiency = {}
    for chip in repro.paper.CHIPS:
        for key in keys:
            powered = by_cell[(chip, key)]
            eff = powered.efficiency_gflops_per_w
            best_efficiency[chip] = max(best_efficiency.get(chip, 0.0), eff)
            print(
                f"{chip:5s} {key:16s} {powered.gemm.best_gflops:10.1f} "
                f"{powered.mean_combined_w:8.2f}W {eff:10.1f}"
            )
        print()

    print("Perspective (the paper's caveated comparisons):")
    for ref in REFERENCE_SYSTEMS:
        if ref.metric != "efficiency":
            continue
        print(f"  {ref.name:24s} {ref.value:8.0f} GFLOPS/W  [{ref.caveat}]")
    for chip, eff in best_efficiency.items():
        print(f"  {chip} (best, simulated)     {eff:8.0f} GFLOPS/W")


if __name__ == "__main__":
    main()
