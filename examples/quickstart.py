#!/usr/bin/env python3
"""Quickstart: benchmark one GEMM on a simulated M4 and measure its power.

Runs the paper's flagship configuration — Metal Performance Shaders on the
M4 at n = 4096 — through the full pipeline: page-aligned matrices, zero-copy
Metal buffers, five chrono-timed repetitions, and the powermetrics protocol
of section 3.3.

Usage::

    python examples/quickstart.py [chip] [n]
"""

import sys

import repro


def main() -> None:
    chip = sys.argv[1] if len(sys.argv) > 1 else "M4"
    n = int(sys.argv[2]) if len(sys.argv) > 2 else 4096

    machine = repro.Machine.for_chip(chip)
    runner = repro.ExperimentRunner(machine)

    print(f"== {machine.device.model} ({machine.chip.name}) ==")
    print(f"Unified memory: {machine.chip.memory.bandwidth_gbs:.0f} GB/s "
          f"{machine.chip.memory.technology}")
    print(f"GPU theoretical: {machine.chip.gpu.table_fp32_tflops[1]:.2f} FP32 TFLOPS\n")

    result = runner.run_gemm("gpu-mps", n)
    print(f"GPU-MPS GEMM n={n}:")
    print(f"  best of {len(result.repetitions)} repetitions: "
          f"{result.best_gflops:,.1f} GFLOPS "
          f"({result.best_elapsed_ns / 1e6:.3f} ms)")
    print(f"  numerics verified: {result.verified}")

    powered = runner.run_powered_gemm("gpu-mps", n)
    print(f"\nWith the powermetrics protocol (section 3.3):")
    print(f"  mean combined CPU+GPU draw: {powered.mean_combined_w:.2f} W")
    print(f"  efficiency: {powered.efficiency_gflops_per_w:.0f} GFLOPS/W")

    cpu = runner.run_gemm("cpu-accelerate", n)
    print(f"\nFor comparison, CPU Accelerate (AMX): {cpu.best_gflops:,.1f} GFLOPS "
          f"({result.best_gflops / cpu.best_gflops:.2f}x slower than MPS)")


if __name__ == "__main__":
    main()
