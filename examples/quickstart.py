#!/usr/bin/env python3
"""Quickstart: benchmark one GEMM on a simulated M4 and measure its power.

Runs the paper's flagship configuration — Metal Performance Shaders on the
M4 at n = 4096 — through the declarative experiment API: a frozen spec per
cell, executed by a session that owns machine construction, numerics policy
and result caching.  The underlying pipeline is unchanged: page-aligned
matrices, zero-copy Metal buffers, five chrono-timed repetitions, and the
powermetrics protocol of section 3.3.

Usage::

    python examples/quickstart.py [chip] [n]
"""

import sys

import repro


def main() -> None:
    chip = sys.argv[1] if len(sys.argv) > 1 else "M4"
    n = int(sys.argv[2]) if len(sys.argv) > 2 else 4096

    session = repro.Session(numerics="sampled")
    machine = repro.Machine.for_chip(chip)

    print(f"== {machine.device.model} ({machine.chip.name}) ==")
    print(f"Unified memory: {machine.chip.memory.bandwidth_gbs:.0f} GB/s "
          f"{machine.chip.memory.technology}")
    print(f"GPU theoretical: {machine.chip.gpu.table_fp32_tflops[1]:.2f} FP32 TFLOPS\n")

    result = session.run(repro.GemmSpec(chip=chip, impl_key="gpu-mps", n=n)).result
    print(f"GPU-MPS GEMM n={n}:")
    print(f"  best of {len(result.repetitions)} repetitions: "
          f"{result.best_gflops:,.1f} GFLOPS "
          f"({result.best_elapsed_ns / 1e6:.3f} ms)")
    print(f"  numerics verified: {result.verified}")

    powered = session.run(
        repro.PoweredGemmSpec(chip=chip, impl_key="gpu-mps", n=n)
    ).result
    print(f"\nWith the powermetrics protocol (section 3.3):")
    print(f"  mean combined CPU+GPU draw: {powered.mean_combined_w:.2f} W")
    print(f"  efficiency: {powered.efficiency_gflops_per_w:.0f} GFLOPS/W")

    cpu = session.run(
        repro.GemmSpec(chip=chip, impl_key="cpu-accelerate", n=n)
    ).result
    print(f"\nFor comparison, CPU Accelerate (AMX): {cpu.best_gflops:,.1f} GFLOPS "
          f"({result.best_gflops / cpu.best_gflops:.2f}x slower than MPS)")


if __name__ == "__main__":
    main()
