#!/usr/bin/env python3
"""Figure 1 end to end: the STREAM bandwidth survey across all four chips.

Declares one :class:`repro.StreamSpec` per (chip, target) bar and runs the
whole figure as one parallel batch.  The methodology underneath is the
paper's: the CPU side runs McCalpin's kernels under an OMP_NUM_THREADS
sweep from one to the physical core count (ten repetitions each, maximum
kept), the GPU side dispatches the MSL ports twenty times through
zero-copy shared buffers.

Usage::

    python examples/stream_bandwidth_survey.py [--fast]
"""

import sys

import repro


def main() -> None:
    fast = "--fast" in sys.argv
    session = repro.Session(numerics="model-only" if fast else "sampled")

    specs = [
        repro.StreamSpec(chip=chip, target=target)
        for chip in repro.paper.CHIPS
        for target in ("cpu", "gpu")
    ]
    envelopes = session.run_batch(specs, max_workers=4)
    rows = {(e.spec.chip, e.spec.target): e.result for e in envelopes}

    header = f"{'chip':5s} {'target':6s} " + "".join(
        f"{k:>8s}" for k in ("copy", "scale", "add", "triad")
    ) + "   % of peak"
    print(header)
    print("-" * len(header))

    for chip in repro.paper.CHIPS:
        for target in ("cpu", "gpu"):
            result = rows[(chip, target)]
            cells = "".join(
                f"{result.kernels[k].max_gbs:8.1f}"
                for k in ("copy", "scale", "add", "triad")
            )
            print(
                f"{chip:5s} {target.upper():6s} {cells}   "
                f"{result.fraction_of_peak:6.1%} of "
                f"{result.theoretical_gbs:.0f} GB/s"
            )

    print(
        "\nNote the M2 CPU: Copy and Scale trail Add and Triad by 20-30 GB/s"
        " — the unexplained anomaly the paper reports in section 5.1."
    )


if __name__ == "__main__":
    main()
