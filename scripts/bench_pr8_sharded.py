#!/usr/bin/env python
"""Million-cell sharded-backend benchmark: the BENCH_PR8.json record.

Usage::

    PYTHONPATH=src python scripts/bench_pr8_sharded.py              # full record
    PYTHONPATH=src python scripts/bench_pr8_sharded.py --cells 40000 \
        --out bench-pr8-smoke.json --min-speedup 0                  # quick smoke

The grid is one SpMV sweep — 4 chips x 2 targets x ``cells/8`` sizes at
``--repeats`` repetitions each, model-only numerics — executed end-to-end by
the sharded backend in sweep-slice streaming mode (caching off: workers
expand their own contiguous grid slices; the parent never materializes a
spec).

Methodology, recorded in the output:

* **Serial reference by subsample + extrapolation.**  The serial engine
  needs hours for the full grid, so its cells/s rate is measured on two
  disjoint subsamples taken from opposite ends of the size axis.  Under
  model-only numerics the per-cell cost is size-invariant (the cost model
  is analytic; no arrays are touched), which the two subsample rates
  demonstrate; the serial rate is extrapolated from them by cell count.
* **Store-byte identity on a subsample.**  A small slice of the grid runs
  through both backends into two canonical stores
  (:func:`repro.experiments.store.save_envelopes`); the benchmark asserts
  both stores hold the same files with byte-identical contents before any
  timing counts.
* **Cyclic GC disabled during timed runs** (both backends; re-enabled
  after).  Refcounting still reclaims everything the run drops; what the
  collector would otherwise add is repeated whole-heap traversals over the
  million retained result envelopes — a cost of the harness keeping every
  envelope alive in one list, not of either backend.

Exits non-zero if sharded/serial falls below ``--min-speedup`` (the
acceptance record requires 50).
"""

from __future__ import annotations

import argparse
import gc
import json
import pathlib
import platform
import sys
import tempfile
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
for entry in (REPO_ROOT, REPO_ROOT / "src"):
    if str(entry) not in sys.path:
        sys.path.insert(0, str(entry))

from repro import __version__  # noqa: E402
from repro.experiments import Session, SweepSpec  # noqa: E402
from repro.experiments.backends import (  # noqa: E402
    SerialBackend,
    ShardedBackend,
)
from repro.experiments.store import save_envelopes  # noqa: E402

CHIPS = ("M1", "M2", "M3", "M4")
TARGETS = ("cpu", "gpu")
SIZE_BASE = 256  # smallest row count; must be >= nnz_per_row


def spmv_sweep(sizes: tuple[int, ...], repeats: int) -> SweepSpec:
    """One model-only SpMV grid slice over the shared chip/target axes."""
    return SweepSpec(
        kind="spmv",
        chips=CHIPS,
        targets=TARGETS,
        sizes=sizes,
        repeats=repeats,
        numerics="model-only",
    )


def session() -> Session:
    return Session(numerics="model-only")


def measure(backend, sweep: SweepSpec, *, progress=None) -> dict:
    """Time one uncached full run of ``sweep``; return cells and rate.

    The cyclic collector is paused for the timed region (see module
    docstring) so the rate measures the backend, not whole-heap GC
    traversals over the harness's million-envelope result list.
    """
    sess = session()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        start = time.perf_counter()
        envelopes = sess.run_batch(
            sweep, backend=backend, use_cache=False, progress=progress
        )
        elapsed = time.perf_counter() - start
    finally:
        if gc_was_enabled:
            gc.enable()
    return {
        "cells": len(envelopes),
        "elapsed_s": round(elapsed, 3),
        "cells_per_s": round(len(envelopes) / elapsed, 2),
    }


def store_bytes(directory: pathlib.Path) -> dict[str, bytes]:
    """Relative path -> file bytes for every envelope file under a store."""
    return {
        str(path.relative_to(directory)): path.read_bytes()
        for path in sorted(directory.rglob("*.json"))
    }


def identity_holds(sweep: SweepSpec, workers: int, shard_size: int) -> bool:
    """Both backends' stores must hold byte-identical files for ``sweep``."""
    with tempfile.TemporaryDirectory() as tmp:
        tmp_path = pathlib.Path(tmp)
        serial_dir, sharded_dir = tmp_path / "serial", tmp_path / "sharded"
        save_envelopes(
            serial_dir,
            session().run_batch(sweep, backend=SerialBackend(), use_cache=False),
        )
        save_envelopes(
            sharded_dir,
            session().run_batch(
                sweep,
                backend=ShardedBackend(workers, shard_size=shard_size),
                use_cache=False,
            ),
        )
        return store_bytes(serial_dir) == store_bytes(sharded_dir)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--cells", type=int, default=1_000_000, help="total grid cells"
    )
    parser.add_argument(
        "--repeats", type=int, default=250, help="repetitions per cell"
    )
    parser.add_argument("--workers", type=int, default=2, help="pool width")
    parser.add_argument(
        "--shard-size", type=int, default=4096, help="cells per worker shard"
    )
    parser.add_argument(
        "--serial-cells",
        type=int,
        default=200,
        help="cells per serial reference subsample (two are taken)",
    )
    parser.add_argument(
        "--identity-cells", type=int, default=64, help="identity subsample size"
    )
    parser.add_argument(
        "--out", default="BENCH_PR8.json", metavar="PATH", help="output file"
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=50.0,
        help="fail if sharded/serial falls below this ratio",
    )
    args = parser.parse_args(argv)

    lanes = len(CHIPS) * len(TARGETS)
    n_sizes = args.cells // lanes
    if n_sizes < 1:
        raise SystemExit(f"--cells must be at least {lanes}")
    sizes = tuple(range(SIZE_BASE, SIZE_BASE + n_sizes))
    full = spmv_sweep(sizes, args.repeats)
    total = lanes * n_sizes

    # Identity before timing: the speed of wrong bytes is irrelevant.
    identity_sizes = sizes[: max(1, args.identity_cells // lanes)]
    print(
        f"identity: {lanes * len(identity_sizes)} cells, serial vs sharded",
        file=sys.stderr,
    )
    if not identity_holds(
        spmv_sweep(identity_sizes, args.repeats), args.workers, 5
    ):
        raise SystemExit("sharded store bytes differ from serial — refusing to time")

    # Serial reference: two disjoint subsamples at opposite size extremes.
    per_sample = max(1, args.serial_cells // lanes)
    subsamples = {
        "low_sizes": sizes[:per_sample],
        "high_sizes": sizes[-per_sample:],
    }
    serial_samples = {}
    for label, sample_sizes in subsamples.items():
        serial_samples[label] = measure(
            SerialBackend(), spmv_sweep(sample_sizes, args.repeats)
        )
        print(
            f"serial[{label}] {serial_samples[label]['cells_per_s']:,.2f} "
            f"cells/s over {serial_samples[label]['cells']} cells",
            file=sys.stderr,
        )
    serial_cells = sum(s["cells"] for s in serial_samples.values())
    serial_elapsed = sum(s["elapsed_s"] for s in serial_samples.values())
    serial_rate = serial_cells / serial_elapsed
    serial_full_estimate_s = total / serial_rate

    # The tentpole measurement: the full grid through the sharded backend.
    print(
        f"sharded: {total:,} cells, workers={args.workers}, "
        f"shard_size={args.shard_size}",
        file=sys.stderr,
    )
    milestone = max(1, total // 20)

    def progress(done, _total, _envelope):
        if done % milestone == 0:
            print(f"  {done:,}/{total:,} cells", file=sys.stderr)

    sharded = measure(
        ShardedBackend(args.workers, shard_size=args.shard_size),
        full,
        progress=progress,
    )
    speedup = sharded["cells_per_s"] / serial_rate
    print(
        f"sharded {sharded['cells_per_s']:,.1f} cells/s vs serial "
        f"{serial_rate:,.2f} cells/s -> {speedup:.1f}x",
        file=sys.stderr,
    )

    record = {
        "benchmark": "sharded-million-cell-grid",
        "grid": {
            "kind": "spmv",
            "chips": list(CHIPS),
            "targets": list(TARGETS),
            "sizes": {"start": SIZE_BASE, "count": n_sizes, "step": 1},
            "repeats": args.repeats,
            "numerics": "model-only",
            "cells": total,
        },
        "sharded": {
            **sharded,
            "workers": args.workers,
            "shard_size": args.shard_size,
            "mode": "sweep-slice streaming, caching off",
        },
        "serial_reference": {
            "method": (
                "measured on two disjoint subsamples at opposite ends of "
                "the size axis, extrapolated by cell count; model-only "
                "cell cost is size-invariant (analytic cost model), which "
                "the matching subsample rates demonstrate"
            ),
            "samples": serial_samples,
            "cells_per_s": round(serial_rate, 2),
            "estimated_full_grid_s": round(serial_full_estimate_s, 1),
        },
        "sharded_speedup_vs_serial": round(speedup, 2),
        "store_bytes_identical_to_serial": True,
        "identity_subsample_cells": lanes * len(identity_sizes),
        "gc": "cyclic collector disabled during timed runs (both backends)",
        "environment": {
            "repro_version": __version__,
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
    }
    pathlib.Path(args.out).write_text(
        json.dumps(record, indent=2, sort_keys=True) + "\n"
    )
    print(f"wrote {args.out} (sharded {speedup:.1f}x serial)", file=sys.stderr)
    if speedup < args.min_speedup:
        print(
            f"error: sharded speedup {speedup:.2f}x is below the "
            f"required {args.min_speedup:.2f}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
