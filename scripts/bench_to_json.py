#!/usr/bin/env python
"""Run the sweep fast-path benchmark and write a machine-readable record.

Usage::

    PYTHONPATH=src python scripts/bench_to_json.py                 # BENCH_PR4.json
    PYTHONPATH=src python scripts/bench_to_json.py --cells 120 \
        --out bench-smoke.json                                     # CI smoke

Measures cells/second for every execution backend on the shared
:func:`benchmarks.bench_sweep_fastpath.fastpath_grid` grid (1k cells by
default), verifies the vectorized engine's byte-identity guarantee on a
subsample before timing anything, and records the results as JSON — the
perf trajectory artifact CI uploads per run and the repository pins as
``BENCH_PR4.json``.

Exits non-zero if the vectorized backend fails to beat the serial
reference by ``--min-speedup`` (default 1.0 so small CI machines only
guard against regressions; the acceptance record is produced with
``--min-speedup 10``).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
for entry in (REPO_ROOT, REPO_ROOT / "src"):
    if str(entry) not in sys.path:
        sys.path.insert(0, str(entry))

from benchmarks.bench_sweep_fastpath import (  # noqa: E402
    FASTPATH_KINDS,
    fastpath_grid,
    grid_identity_holds,
    measure_backend,
)
from repro import __version__  # noqa: E402
from repro.experiments import BACKEND_NAMES  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--cells", type=int, default=1000, help="grid size")
    parser.add_argument("--workers", type=int, default=4, help="pool width")
    parser.add_argument(
        "--out", default="BENCH_PR4.json", metavar="PATH", help="output file"
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=1.0,
        help="fail if vectorized/serial falls below this ratio",
    )
    parser.add_argument(
        "--shard-size",
        type=int,
        default=None,
        help="cells per worker shard for the sharded backend",
    )
    parser.add_argument(
        "--min-sharded-ratio",
        type=float,
        default=0.0,
        help=(
            "fail if sharded/vectorized falls below this ratio "
            "(0 disables; needs >1 worker core to be meaningful)"
        ),
    )
    args = parser.parse_args(argv)

    specs = fastpath_grid(args.cells)
    # the fast path must be byte-identical before its speed counts
    if not grid_identity_holds(specs[: min(60, len(specs))]):
        raise SystemExit("vectorized envelopes differ from serial — refusing to time")

    results = {}
    for backend in BACKEND_NAMES:
        results[backend] = measure_backend(
            backend, specs, workers=args.workers, shard_size=args.shard_size
        )
        print(
            f"{backend:10s} {results[backend]['cells_per_s']:>10,.1f} cells/s "
            f"({results[backend]['elapsed_s']:.2f}s)",
            file=sys.stderr,
        )

    speedup = results["vectorized"]["cells_per_s"] / results["serial"]["cells_per_s"]
    sharded_ratio = (
        results["sharded"]["cells_per_s"] / results["vectorized"]["cells_per_s"]
    )
    record = {
        "benchmark": "sweep-fastpath",
        "grid": {
            "cells": len(specs),
            "kinds": list(FASTPATH_KINDS),
            "numerics": "model-only",
            "workers": args.workers,
        },
        "backends": results,
        "vectorized_speedup_vs_serial": round(speedup, 2),
        "sharded_vs_vectorized": round(sharded_ratio, 2),
        "identity_verified": True,
        "environment": {
            "repro_version": __version__,
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
    }
    pathlib.Path(args.out).write_text(
        json.dumps(record, indent=2, sort_keys=True) + "\n"
    )
    print(f"wrote {args.out} (vectorized {speedup:.1f}x serial)", file=sys.stderr)
    if speedup < args.min_speedup:
        print(
            f"error: vectorized speedup {speedup:.2f}x is below the "
            f"required {args.min_speedup:.2f}x",
            file=sys.stderr,
        )
        return 1
    if sharded_ratio < args.min_sharded_ratio:
        print(
            f"error: sharded throughput is {sharded_ratio:.2f}x vectorized, "
            f"below the required {args.min_sharded_ratio:.2f}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
