#!/usr/bin/env python
"""CI smoke gate for the calibration loop (DESIGN.md §11).

Self-calibrates the simulator against a synthetic trace of its own
anchored outputs and enforces the acceptance contract of the calibration
subsystem:

* per-chip, per-metric MAPE of the fitted model <= the threshold
  (default 1 %) for every chip in the grid;
* every fitted knob recovers its paper-anchored value to <= the
  threshold;
* a re-run with the same seed and trace produces a byte-identical
  result artifact.

Keep the grid at >= 7 points / >= 3 rounds: a 5-point / 2-round search
brackets too coarsely (~1.7 % MAPE) and trips the 1 % gate by design.
"""

from __future__ import annotations

import argparse
import sys


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--chips", nargs="+", default=None)
    parser.add_argument("--points", type=int, default=7)
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--max-mape-pct",
        type=float,
        default=1.0,
        help="acceptance threshold for MAPE and anchor recovery, in percent",
    )
    args = parser.parse_args(argv)

    from repro.calibrate import default_spec, run_calibration, synthesize_trace

    trace = synthesize_trace(args.chips, seed=args.seed)
    spec = default_spec(
        args.chips,
        coarse_points=args.points,
        refine_rounds=args.rounds,
        seed=args.seed,
    )
    result = run_calibration(trace, spec)
    print(
        f"calibration smoke: {len(result.mape)} chips, "
        f"{result.cells_evaluated} cells over {result.rounds} rounds, "
        f"overall MAPE {result.overall_mape_pct:.4f}%"
    )

    failures: list[str] = []
    threshold = args.max_mape_pct
    for chip, per_metric in sorted(result.mape.items()):
        for metric, value in sorted(per_metric.items()):
            marker = "ok" if value <= threshold else "FAIL"
            print(f"  {chip} {metric:8s} MAPE {value:.4f}%  [{marker}]")
            if value > threshold:
                failures.append(f"{chip}/{metric} MAPE {value:.4f}% > {threshold}%")
    for chip, knobs in sorted(result.fitted.items()):
        for knob, value in sorted(knobs.items()):
            anchor = result.anchors[chip][knob]
            err = abs(value - anchor) / anchor * 100.0
            if err > threshold:
                failures.append(
                    f"{chip}/{knob} fitted {value:.4f} misses anchor "
                    f"{anchor:.4f} by {err:.4f}% > {threshold}%"
                )
    worst = max(
        abs(v - result.anchors[c][k]) / result.anchors[c][k] * 100.0
        for c, knobs in result.fitted.items()
        for k, v in knobs.items()
    )
    print(f"  worst anchor-recovery error {worst:.4f}%")

    rerun = run_calibration(trace, spec)
    if rerun.to_json() != result.to_json():
        failures.append("re-run with the same seed + trace is not byte-identical")
    else:
        print("  re-run byte-identical: ok")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("calibration smoke: PASS")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
