"""repro — a reproduction of "Apple vs. Oranges: Evaluating the Apple Silicon
M-Series SoCs for HPC Performance and Efficiency" (IPDPS 2025).

Quickstart (declarative API)::

    import repro

    session = repro.Session(numerics="sampled")
    envelope = session.run(repro.GemmSpec(chip="M4", impl_key="gpu-mps", n=4096))
    print(envelope.result.best_gflops)

or imperatively, on one machine::

    machine = repro.Machine.for_chip("M4")
    runner = repro.ExperimentRunner(machine)
    result = runner.run_gemm("gpu-mps", n=4096)
    print(result.best_gflops)

The package layers:

* :mod:`repro.soc` — chip/device models (Tables 1 and 3);
* :mod:`repro.sim` — the execution-driven timing/power simulator;
* :mod:`repro.metal`, :mod:`repro.accelerate`, :mod:`repro.omp`,
  :mod:`repro.powermetrics`, :mod:`repro.cuda` — framework substrates;
* :mod:`repro.core` — the paper's STREAM/GEMM/power benchmark suite;
* :mod:`repro.experiments` — declarative specs, sessions, batched parallel
  execution, and the serializable result envelope;
* :mod:`repro.workloads` — the pluggable workload registry (GEMM, STREAM,
  power, SpMV, stencil, batched GEMM) every dispatch layer resolves through;
* :mod:`repro.study` — declarative study grids (:class:`StudySpec`) and the
  envelope query layer (:class:`ResultFrame`): figures, tables and
  efficiency reports as data;
* :mod:`repro.analysis` — figure/table regeneration and paper comparison
  (facades over the study definitions).
"""

from repro._version import PAPER_ARXIV, PAPER_TITLE, __version__
from repro.analysis import (
    compare_to_paper,
    figure1_data,
    figure2_data,
    figure3_data,
    figure4_data,
    render_table1,
    render_table2,
    render_table3,
    shape_checks,
)
from repro.calibrate import (
    CalibrationResult,
    CalibrationSpec,
    MeasuredTrace,
    run_calibration,
    synthesize_trace,
)
from repro.calibration import paper
from repro.core import ExperimentRunner
from repro.core.gemm import get_implementation, implementation_keys
from repro.core.results import (
    GemmResult,
    PoweredGemmResult,
    PowerMeasurement,
    StreamResult,
)
from repro.core.stream import run_stream
from repro.errors import (
    CalibrationError,
    CellTimeoutError,
    ReproError,
    TransientError,
    WorkerCrashError,
)
from repro.experiments import (
    BACKEND_NAMES,
    ExecutionBackend,
    FaultPlan,
    GemmSpec,
    PoweredGemmSpec,
    ResultEnvelope,
    RetryPolicy,
    RunHealth,
    RunManifest,
    Session,
    StreamSpec,
    SweepSpec,
    load_envelopes,
    run_with_manifest,
    save_envelopes,
)
from repro.sim import Machine, NumericsConfig, NumericsPolicy
from repro.soc import chip_catalog, device_catalog, get_chip
from repro.study import (
    FIGURES,
    TABLES,
    ResultFrame,
    StudySpec,
    WorkloadAxis,
    paper_study,
    run_study,
)
from repro.workloads import (
    BatchedGemmSpec,
    SpmvSpec,
    StencilSpec,
    Workload,
    get_workload,
    register_workload,
    workload_kinds,
)

__all__ = [
    "__version__",
    "PAPER_TITLE",
    "PAPER_ARXIV",
    "ReproError",
    "TransientError",
    "WorkerCrashError",
    "CellTimeoutError",
    "CalibrationError",
    "CalibrationSpec",
    "CalibrationResult",
    "MeasuredTrace",
    "run_calibration",
    "synthesize_trace",
    "FaultPlan",
    "RetryPolicy",
    "RunHealth",
    "Machine",
    "NumericsConfig",
    "NumericsPolicy",
    "ExperimentRunner",
    "GemmResult",
    "StreamResult",
    "PowerMeasurement",
    "PoweredGemmResult",
    "GemmSpec",
    "PoweredGemmSpec",
    "StreamSpec",
    "SpmvSpec",
    "StencilSpec",
    "BatchedGemmSpec",
    "SweepSpec",
    "StudySpec",
    "WorkloadAxis",
    "ResultFrame",
    "run_study",
    "paper_study",
    "FIGURES",
    "TABLES",
    "Workload",
    "register_workload",
    "get_workload",
    "workload_kinds",
    "Session",
    "BACKEND_NAMES",
    "ExecutionBackend",
    "ResultEnvelope",
    "RunManifest",
    "run_with_manifest",
    "save_envelopes",
    "load_envelopes",
    "get_chip",
    "chip_catalog",
    "device_catalog",
    "get_implementation",
    "implementation_keys",
    "run_stream",
    "paper",
    "figure1_data",
    "figure2_data",
    "figure3_data",
    "figure4_data",
    "render_table1",
    "render_table2",
    "render_table3",
    "compare_to_paper",
    "shape_checks",
]
