"""Version information for the :mod:`repro` package."""

__all__ = ["__version__", "PAPER_TITLE", "PAPER_ARXIV"]

__version__ = "1.0.0"

#: Title of the reproduced paper.
PAPER_TITLE = (
    "Apple vs. Oranges: Evaluating the Apple Silicon M-Series SoCs "
    "for HPC Performance and Efficiency"
)

#: arXiv identifier of the reproduced paper.
PAPER_ARXIV = "2502.05317"
