"""Simulation of Apple's Accelerate framework (BLAS + vDSP on AMX).

The paper's best CPU GEMM goes through Accelerate: ``cblas_sgemm`` (Listing 1)
and ``vDSP_mmul`` "perform nearly identically ... they assumedly both run on
AMX" (section 5.2).  This package reproduces those call signatures exactly;
numerics run on NumPy and the AMX timing/power comes from the simulator when
driven through :class:`repro.core.gemm.cpu_accelerate.AccelerateGemm`.
"""

from repro.accelerate.blas import (
    CBLAS_COL_MAJOR,
    CBLAS_NO_TRANS,
    CBLAS_ROW_MAJOR,
    CBLAS_TRANS,
    cblas_sgemm,
)
from repro.accelerate.vdsp import (
    vDSP_dotpr,
    vDSP_mmul,
    vDSP_sve,
    vDSP_vadd,
    vDSP_vsmul,
)

__all__ = [
    "CBLAS_ROW_MAJOR",
    "CBLAS_COL_MAJOR",
    "CBLAS_NO_TRANS",
    "CBLAS_TRANS",
    "cblas_sgemm",
    "vDSP_mmul",
    "vDSP_vadd",
    "vDSP_vsmul",
    "vDSP_dotpr",
    "vDSP_sve",
]
