"""CBLAS-compatible single-precision GEMM.

Mirrors the exact call the paper makes (Listing 1)::

    cblas_sgemm(CblasRowMajor, CblasNoTrans, CblasNoTrans,
                n, n, n, 1, left, n, right, n, 0, out, n)

Arguments, layouts, transposes and leading dimensions follow the CBLAS
specification; arrays are flat or 2-D float32 NumPy arrays and the result is
written in place through ``c`` (no copies, as the zero-copy unified-memory
story requires).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, ValidationError

__all__ = [
    "CBLAS_ROW_MAJOR",
    "CBLAS_COL_MAJOR",
    "CBLAS_NO_TRANS",
    "CBLAS_TRANS",
    "cblas_sgemm",
]

CBLAS_ROW_MAJOR = 101
CBLAS_COL_MAJOR = 102
CBLAS_NO_TRANS = 111
CBLAS_TRANS = 112


def _as_matrix(
    buf: np.ndarray,
    rows: int,
    cols: int,
    ld: int,
    order: int,
    name: str,
) -> np.ndarray:
    """View a flat/2-D buffer as a (rows, cols) matrix honouring ld/order."""
    arr = np.asarray(buf)
    if arr.dtype != np.float32:
        raise ConfigurationError(f"{name}: sgemm requires float32, got {arr.dtype}")
    if not arr.flags["C_CONTIGUOUS"]:
        # CBLAS receives raw pointers; a non-contiguous array has no single
        # base buffer and reshape(-1) would silently copy, breaking the
        # in-place contract for C.
        raise ConfigurationError(f"{name}: sgemm buffers must be contiguous")
    flat = arr.reshape(-1)
    if rows == 0 or cols == 0:
        return flat[:0].reshape(rows if rows else 0, cols if cols else 0)
    if order == CBLAS_ROW_MAJOR:
        if ld < cols:
            raise ConfigurationError(
                f"{name}: leading dimension {ld} < number of columns {cols}"
            )
        needed = (rows - 1) * ld + cols if rows > 0 else 0
    elif order == CBLAS_COL_MAJOR:
        if ld < rows:
            raise ConfigurationError(
                f"{name}: leading dimension {ld} < number of rows {rows}"
            )
        needed = (cols - 1) * ld + rows if cols > 0 else 0
    else:
        raise ConfigurationError(f"order must be CblasRowMajor or CblasColMajor")
    if flat.size < needed:
        raise ConfigurationError(
            f"{name}: buffer of {flat.size} elements too small, needs {needed}"
        )
    if order == CBLAS_ROW_MAJOR:
        strided = np.lib.stride_tricks.as_strided(
            flat, shape=(rows, cols), strides=(ld * 4, 4), writeable=True
        )
    else:
        strided = np.lib.stride_tricks.as_strided(
            flat, shape=(rows, cols), strides=(4, ld * 4), writeable=True
        )
    return strided


def cblas_sgemm(
    order: int,
    trans_a: int,
    trans_b: int,
    m: int,
    n: int,
    k: int,
    alpha: float,
    a: np.ndarray,
    lda: int,
    b: np.ndarray,
    ldb: int,
    beta: float,
    c: np.ndarray,
    ldc: int,
) -> None:
    """``C := alpha * op(A) @ op(B) + beta * C`` in place, single precision."""
    for name, val in (("m", m), ("n", n), ("k", k)):
        if val < 0:
            raise ConfigurationError(f"{name} must be non-negative, got {val}")
    for name, val in (("transA", trans_a), ("transB", trans_b)):
        if val not in (CBLAS_NO_TRANS, CBLAS_TRANS):
            raise ConfigurationError(f"{name} must be CblasNoTrans or CblasTrans")

    # op(A) is m x k: A is stored m x k (no-trans) or k x m (trans).
    a_rows, a_cols = (m, k) if trans_a == CBLAS_NO_TRANS else (k, m)
    b_rows, b_cols = (k, n) if trans_b == CBLAS_NO_TRANS else (n, k)

    mat_a = _as_matrix(a, a_rows, a_cols, lda, order, "A")
    mat_b = _as_matrix(b, b_rows, b_cols, ldb, order, "B")
    mat_c = _as_matrix(c, m, n, ldc, order, "C")

    op_a = mat_a if trans_a == CBLAS_NO_TRANS else mat_a.T
    op_b = mat_b if trans_b == CBLAS_NO_TRANS else mat_b.T

    if m == 0 or n == 0:
        return
    if k == 0:
        product = np.zeros((m, n), dtype=np.float32)
    else:
        product = (op_a @ op_b).astype(np.float32, copy=False)
    if beta == 0.0:
        mat_c[...] = np.float32(alpha) * product
    else:
        mat_c[...] = np.float32(alpha) * product + np.float32(beta) * mat_c
    if not np.isfinite(mat_c).all() and np.isfinite(product).all():
        raise ValidationError("sgemm produced non-finite values from finite inputs")
