"""A slice of the vDSP API (Accelerate's DSP/linear-algebra routines).

The paper tested both BLAS and vDSP GEMMs and found them "nearly identical"
(section 5.2); `vDSP_mmul` is the routine behind the "CPU-Accelerate" label
in Figures 2-4.  The stride arguments follow the real vDSP conventions
(element strides, usually 1).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["vDSP_mmul", "vDSP_vadd", "vDSP_vsmul", "vDSP_dotpr", "vDSP_sve"]


def _check_f32(name: str, arr: np.ndarray) -> np.ndarray:
    out = np.asarray(arr)
    if out.dtype != np.float32:
        raise ConfigurationError(f"{name}: vDSP single-precision routine needs float32")
    return out


def _strided(arr: np.ndarray, stride: int, count: int, name: str) -> np.ndarray:
    if stride < 1:
        raise ConfigurationError(f"{name}: stride must be >= 1")
    flat = arr.reshape(-1)
    needed = (count - 1) * stride + 1 if count > 0 else 0
    if flat.size < needed:
        raise ConfigurationError(f"{name}: buffer too small for stride/count")
    return flat[: needed : stride] if count > 0 else flat[:0]


def vDSP_mmul(
    a: np.ndarray,
    a_stride: int,
    b: np.ndarray,
    b_stride: int,
    c: np.ndarray,
    c_stride: int,
    m: int,
    n: int,
    p: int,
) -> None:
    """``C = A @ B`` with A (m x p), B (p x n), C (m x n), row-major.

    Matches the real signature ``vDSP_mmul(__A, __IA, __B, __IB, __C, __IC,
    __M, __N, __P)``.
    """
    if min(m, n, p) < 0:
        raise ConfigurationError("matrix dimensions must be non-negative")
    fa = _strided(_check_f32("A", a), a_stride, m * p, "A").reshape(m, p)
    fb = _strided(_check_f32("B", b), b_stride, p * n, "B").reshape(p, n)
    fc = _strided(_check_f32("C", c), c_stride, m * n, "C").reshape(m, n)
    if m == 0 or n == 0:
        return
    if p == 0:
        fc[...] = 0.0
        return
    np.matmul(fa, fb, out=fc)


def vDSP_vadd(
    a: np.ndarray, a_stride: int, b: np.ndarray, b_stride: int,
    c: np.ndarray, c_stride: int, count: int,
) -> None:
    """Elementwise ``C = A + B``."""
    fa = _strided(_check_f32("A", a), a_stride, count, "A")
    fb = _strided(_check_f32("B", b), b_stride, count, "B")
    fc = _strided(_check_f32("C", c), c_stride, count, "C")
    np.add(fa, fb, out=fc)


def vDSP_vsmul(
    a: np.ndarray, a_stride: int, scalar: float,
    c: np.ndarray, c_stride: int, count: int,
) -> None:
    """``C = A * scalar``."""
    fa = _strided(_check_f32("A", a), a_stride, count, "A")
    fc = _strided(_check_f32("C", c), c_stride, count, "C")
    np.multiply(fa, np.float32(scalar), out=fc)


def vDSP_dotpr(
    a: np.ndarray, a_stride: int, b: np.ndarray, b_stride: int, count: int
) -> float:
    """Dot product of two strided vectors."""
    fa = _strided(_check_f32("A", a), a_stride, count, "A")
    fb = _strided(_check_f32("B", b), b_stride, count, "B")
    return float(np.dot(fa.astype(np.float64), fb.astype(np.float64)))


def vDSP_sve(a: np.ndarray, a_stride: int, count: int) -> float:
    """Sum of vector elements."""
    fa = _strided(_check_f32("A", a), a_stride, count, "A")
    return float(fa.astype(np.float64).sum())
