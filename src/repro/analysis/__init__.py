"""Figure/table assembly, paper-vs-measured comparison, and export."""

from repro.analysis.tables import render_table1, render_table2, render_table3
from repro.analysis.figures import (
    figure1_data,
    figure2_data,
    figure3_data,
    figure4_data,
    figure1_from_envelopes,
    figure2_from_envelopes,
    figure3_from_envelopes,
    figure4_from_envelopes,
    make_session,
    session_from_machines,
)
from repro.analysis.compare import ComparisonRow, compare_to_paper, shape_checks
from repro.analysis.export import rows_to_csv, to_json
from repro.analysis.reference_systems import REFERENCE_SYSTEMS, render_reference_table

__all__ = [
    "render_table1",
    "render_table2",
    "render_table3",
    "figure1_data",
    "figure2_data",
    "figure3_data",
    "figure4_data",
    "figure1_from_envelopes",
    "figure2_from_envelopes",
    "figure3_from_envelopes",
    "figure4_from_envelopes",
    "make_session",
    "session_from_machines",
    "ComparisonRow",
    "compare_to_paper",
    "shape_checks",
    "rows_to_csv",
    "to_json",
    "REFERENCE_SYSTEMS",
    "render_reference_table",
]
