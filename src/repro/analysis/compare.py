"""Paper-vs-measured comparison and qualitative shape checks.

``compare_to_paper`` lines up measured headline numbers against the values
quoted in the paper's text; ``shape_checks`` verifies the *qualitative*
claims (who wins, by what factor, where crossovers fall) that a reproduction
on different substrate must preserve.  EXPERIMENTS.md is generated from
these rows.
"""

from __future__ import annotations

import dataclasses
from typing import Mapping

from repro.calibration import paper

__all__ = ["ComparisonRow", "compare_to_paper", "shape_checks", "render_comparison"]


@dataclasses.dataclass(frozen=True)
class ComparisonRow:
    """One paper-quoted value next to the measured one."""

    experiment: str
    quantity: str
    paper_value: float
    measured_value: float
    unit: str

    @property
    def relative_error(self) -> float:
        if self.paper_value == 0.0:
            return float("inf")
        return (self.measured_value - self.paper_value) / self.paper_value

    def within(self, tolerance: float) -> bool:
        """Whether the measured value is within ``tolerance`` of the paper's."""
        return abs(self.relative_error) <= tolerance


def compare_to_paper(
    fig1: Mapping[str, Mapping] | None = None,
    fig2: Mapping[str, Mapping[str, Mapping[int, float]]] | None = None,
    fig4: Mapping[str, Mapping[str, Mapping[int, float]]] | None = None,
) -> list[ComparisonRow]:
    """Comparison rows for whichever figure data sets are provided."""
    rows: list[ComparisonRow] = []
    if fig1 is not None:
        for chip, data in fig1.items():
            if chip not in paper.FIG1_CPU_MAX_GBS:
                continue
            rows.append(
                ComparisonRow(
                    experiment="Figure 1",
                    quantity=f"{chip} CPU max bandwidth",
                    paper_value=paper.FIG1_CPU_MAX_GBS[chip],
                    measured_value=max(data["cpu"].values()),
                    unit="GB/s",
                )
            )
            rows.append(
                ComparisonRow(
                    experiment="Figure 1",
                    quantity=f"{chip} GPU max bandwidth",
                    paper_value=paper.FIG1_GPU_MAX_GBS[chip],
                    measured_value=max(data["gpu"].values()),
                    unit="GB/s",
                )
            )
    if fig2 is not None:
        for impl, chip_targets in paper.FIG2_PEAK_GFLOPS.items():
            for chip, target in chip_targets.items():
                series = fig2.get(chip, {}).get(impl)
                if not series:
                    continue
                rows.append(
                    ComparisonRow(
                        experiment="Figure 2",
                        quantity=f"{chip} {impl} peak",
                        paper_value=target,
                        measured_value=max(series.values()),
                        unit="GFLOPS",
                    )
                )
    if fig4 is not None:
        for impl, chip_targets in paper.FIG4_EFFICIENCY_GFLOPS_PER_W.items():
            for chip, target in chip_targets.items():
                series = fig4.get(chip, {}).get(impl)
                if not series:
                    continue
                rows.append(
                    ComparisonRow(
                        experiment="Figure 4",
                        quantity=f"{chip} {impl} efficiency",
                        paper_value=target,
                        measured_value=max(series.values()),
                        unit="GFLOPS/W",
                    )
                )
    return rows


def shape_checks(
    fig1: Mapping[str, Mapping] | None = None,
    fig2: Mapping[str, Mapping[str, Mapping[int, float]]] | None = None,
    fig4: Mapping[str, Mapping[str, Mapping[int, float]]] | None = None,
) -> dict[str, bool]:
    """The paper's qualitative claims as named boolean checks."""
    checks: dict[str, bool] = {}
    if fig1 is not None:
        # "All chips get to ~85% of theoretical peak bandwidth."
        for chip, data in fig1.items():
            best = max(max(data["cpu"].values()), max(data["gpu"].values()))
            checks[f"fig1/{chip}/reaches-80pct-of-peak"] = (
                best >= 0.80 * data["theoretical"]
            )
        # The M2 CPU anomaly: Copy/Scale trail Add/Triad by 20-30 GB/s.
        if "M2" in fig1:
            cpu = fig1["M2"]["cpu"]
            gap = min(cpu["add"], cpu["triad"]) - max(cpu["copy"], cpu["scale"])
            lo, hi = paper.FIG1_M2_CPU_ANOMALY_GAP_GBS
            checks["fig1/M2/cpu-copy-scale-anomaly"] = lo - 5.0 <= gap <= hi + 5.0
    if fig2 is not None:
        for chip, impls in fig2.items():
            mps = impls.get("gpu-mps", {})
            acc = impls.get("cpu-accelerate", {})
            if mps and acc:
                # "MPS demonstrates superior FLOPS on all processors."
                checks[f"fig2/{chip}/mps-dominates"] = max(mps.values()) >= max(
                    v for impl in impls.values() if impl for v in impl.values()
                ) - 1e-9
                # "From the M2, the GPU significantly outperforms the CPU."
                if chip != "M1":
                    checks[f"fig2/{chip}/gpu-beats-cpu"] = (
                        max(mps.values()) > 1.4 * max(acc.values())
                    )
                else:
                    # "The M1 CPU and GPU have similar performance."
                    checks["fig2/M1/cpu-gpu-similar"] = (
                        max(mps.values()) < 2.0 * max(acc.values())
                    )
            # GPU methods lose at small sizes (dispatch overhead).
            if mps and acc and 32 in mps and 32 in acc:
                checks[f"fig2/{chip}/gpu-overhead-at-small-n"] = mps[32] < acc[32]
    if fig4 is not None:
        for chip, impls in fig4.items():
            mps = impls.get("gpu-mps", {})
            if mps:
                # "All four chips reached ... 200 GFLOPS per Watt with GPU-MPS."
                checks[f"fig4/{chip}/mps-200-gflops-per-watt"] = (
                    max(mps.values()) >= 200.0
                )
            for key in ("cpu-single", "cpu-omp"):
                series = impls.get(key, {})
                if series:
                    # "Less than 1 GFLOPS per Watt across all four chips."
                    checks[f"fig4/{chip}/{key}-below-1"] = (
                        max(series.values()) < 1.0
                    )
    return checks


def render_comparison(rows: list[ComparisonRow]) -> str:
    """Markdown table of paper-vs-measured values."""
    lines = [
        "| Experiment | Quantity | Paper | Measured | Unit | Rel. err |",
        "|---|---|---:|---:|---|---:|",
    ]
    for row in rows:
        lines.append(
            f"| {row.experiment} | {row.quantity} | {row.paper_value:.1f} | "
            f"{row.measured_value:.1f} | {row.unit} | {row.relative_error:+.1%} |"
        )
    return "\n".join(lines)
