"""CSV/JSON export of figure data and comparison rows."""

from __future__ import annotations

import csv
import io
import json
from typing import Any, Mapping, Sequence

__all__ = ["rows_to_csv", "to_json", "figure_series_to_rows"]


def figure_series_to_rows(
    data: Mapping[str, Mapping[str, Mapping[int, float]]],
    value_name: str,
) -> list[dict[str, Any]]:
    """Flatten ``{chip: {impl: {n: value}}}`` into tidy records."""
    rows: list[dict[str, Any]] = []
    for chip, impls in data.items():
        for impl, series in impls.items():
            for n, value in sorted(series.items()):
                rows.append(
                    {"chip": chip, "implementation": impl, "n": n, value_name: value}
                )
    return rows


def rows_to_csv(rows: Sequence[Mapping[str, Any]]) -> str:
    """Serialize tidy records to CSV text (stable column order)."""
    if not rows:
        return ""
    fieldnames = list(rows[0].keys())
    sink = io.StringIO()
    writer = csv.DictWriter(sink, fieldnames=fieldnames)
    writer.writeheader()
    for row in rows:
        writer.writerow(row)
    return sink.getvalue()


def to_json(data: Any, *, indent: int = 2) -> str:
    """JSON text with deterministic key order."""
    return json.dumps(data, indent=indent, sort_keys=True, default=str)
