"""Assembly of the data series behind Figures 1-4.

Each ``figureN_data`` function runs the relevant experiments for the
requested chips and returns the plottable series as plain dictionaries (the
same rows/series the paper's figures display).  ``fast=True`` switches the
machines to MODEL_ONLY numerics and trims repetitions so a full figure
regenerates in well under a second — the benchmark harness uses this mode.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.calibration import paper
from repro.core.gemm.registry import get_implementation, paper_implementation_keys
from repro.core.harness import ExperimentRunner
from repro.core.stream.runner import figure1_row
from repro.sim.machine import Machine
from repro.sim.policy import NumericsConfig

__all__ = [
    "make_machines",
    "figure1_data",
    "figure2_data",
    "figure3_data",
    "figure4_data",
]


def make_machines(
    chips: Sequence[str] = paper.CHIPS,
    *,
    fast: bool = False,
    seed: int = 0,
) -> dict[str, Machine]:
    """The study machines, optionally in fast (model-only) mode."""
    numerics = NumericsConfig.model_only() if fast else None
    return {
        chip: Machine.for_chip(chip, seed=seed, numerics=numerics) for chip in chips
    }


def figure1_data(
    machines: Mapping[str, Machine] | None = None,
    *,
    fast: bool = False,
    n_elements: int | None = None,
) -> dict[str, dict]:
    """Figure 1: STREAM bandwidths per chip, target and kernel.

    Returns ``{chip: {"theoretical": gbs, "cpu": {kernel: gbs}, "gpu": ...}}``.
    """
    # Fast mode skips numerics, so full-size arrays cost nothing; the array
    # footprint must stay large or the GPU ramp underreports bandwidth.
    machines = machines or make_machines(fast=fast)
    elements = n_elements
    out: dict[str, dict] = {}
    for chip, machine in machines.items():
        row = figure1_row(machine, n_elements=elements)
        out[chip] = {
            "theoretical": machine.chip.memory.bandwidth_gbs,
            "cpu": {k: r.max_gbs for k, r in row["cpu"].kernels.items()},
            "gpu": {k: r.max_gbs for k, r in row["gpu"].kernels.items()},
        }
    return out


def figure2_data(
    machines: Mapping[str, Machine] | None = None,
    *,
    sizes: tuple[int, ...] = paper.GEMM_SIZES,
    impl_keys: Sequence[str] | None = None,
    repeats: int = paper.GEMM_REPEATS,
    fast: bool = False,
) -> dict[str, dict[str, dict[int, float]]]:
    """Figure 2: best GFLOPS per chip, implementation and size.

    Returns ``{chip: {impl: {n: gflops}}}``; excluded cells are absent.
    """
    machines = machines or make_machines(fast=fast)
    keys = tuple(impl_keys) if impl_keys is not None else paper_implementation_keys()
    out: dict[str, dict[str, dict[int, float]]] = {}
    for chip, machine in machines.items():
        runner = ExperimentRunner(machine)
        per_impl: dict[str, dict[int, float]] = {}
        for key in keys:
            impl = get_implementation(key)
            sweep = runner.run_gemm_sweep(impl, sizes, repeats=repeats)
            per_impl[key] = {n: r.best_gflops for n, r in sweep.items()}
        out[chip] = per_impl
    return out


def figure3_data(
    machines: Mapping[str, Machine] | None = None,
    *,
    sizes: tuple[int, ...] = paper.POWER_SIZES,
    impl_keys: Sequence[str] | None = None,
    repeats: int = paper.GEMM_REPEATS,
    fast: bool = False,
) -> dict[str, dict[str, dict[int, float]]]:
    """Figure 3: mean combined CPU+GPU power (mW) per chip, impl and size."""
    machines = machines or make_machines(fast=fast)
    keys = tuple(impl_keys) if impl_keys is not None else paper_implementation_keys()
    out: dict[str, dict[str, dict[int, float]]] = {}
    for chip, machine in machines.items():
        runner = ExperimentRunner(machine)
        per_impl: dict[str, dict[int, float]] = {}
        for key in keys:
            impl = get_implementation(key)
            series: dict[int, float] = {}
            for n in sizes:
                if not impl.supports(machine, n):
                    continue
                powered = runner.run_powered_gemm(impl, n, repeats=repeats)
                series[n] = powered.mean_combined_mw
            per_impl[key] = series
        out[chip] = per_impl
    return out


def figure4_data(
    machines: Mapping[str, Machine] | None = None,
    *,
    sizes: tuple[int, ...] = paper.POWER_SIZES,
    impl_keys: Sequence[str] | None = None,
    repeats: int = paper.GEMM_REPEATS,
    fast: bool = False,
) -> dict[str, dict[str, dict[int, float]]]:
    """Figure 4: efficiency (GFLOPS/W) per chip, implementation and size."""
    machines = machines or make_machines(fast=fast)
    keys = tuple(impl_keys) if impl_keys is not None else paper_implementation_keys()
    out: dict[str, dict[str, dict[int, float]]] = {}
    for chip, machine in machines.items():
        runner = ExperimentRunner(machine)
        per_impl: dict[str, dict[int, float]] = {}
        for key in keys:
            impl = get_implementation(key)
            series: dict[int, float] = {}
            for n in sizes:
                if not impl.supports(machine, n):
                    continue
                powered = runner.run_powered_gemm(impl, n, repeats=repeats)
                series[n] = powered.efficiency_gflops_per_w
            per_impl[key] = series
        out[chip] = per_impl
    return out
