"""Figures 1-4 — thin facades over the declarative study layer.

Each ``figureN_data`` function is now a facade: it builds the figure's
:class:`~repro.study.spec.StudySpec` (see
:data:`repro.study.defs.FIGURES`), runs it through a
:class:`~repro.experiments.Session` (cached, optionally parallel via
``max_workers``) and assembles the plottable series with the figure's
:class:`~repro.study.frame.ResultFrame` query.  The output is
byte-identical to the historical hand-assembled loops — enforced by the
equivalence suite in ``tests/study/test_equivalence.py``.

Two invocation styles are supported:

* declarative — pass chip names (or nothing) plus ``session=``/``fast=``;
* legacy — pass a ``{chip: Machine}`` mapping.  This style is
  **deprecated**: it predates the spec API and now routes through the
  single warning-emitting :func:`session_from_machines` adapter.  Migrate
  to ``figureN_data(chips, session=Session(...))`` or a
  :class:`~repro.study.spec.StudySpec`.

The ``figureN_from_envelopes`` counterparts run the identical series query
over persisted :class:`~repro.experiments.ResultEnvelope` records, so
``repro figure2 --from results/`` re-renders without recomputing.
"""

from __future__ import annotations

import warnings
from typing import Iterable, Mapping, Sequence

from repro.calibration import paper
from repro.experiments.envelope import ResultEnvelope
from repro.experiments.session import Session
from repro.sim.machine import Machine
from repro.sim.policy import NumericsConfig
from repro.study.defs import get_figure
from repro.study.frame import ResultFrame
from repro.study.spec import run_study

__all__ = [
    "make_machines",
    "make_session",
    "session_from_machines",
    "figure1_data",
    "figure2_data",
    "figure3_data",
    "figure4_data",
    "figure1_from_envelopes",
    "figure2_from_envelopes",
    "figure3_from_envelopes",
    "figure4_from_envelopes",
]


def make_machines(
    chips: Sequence[str] = paper.CHIPS,
    *,
    fast: bool = False,
    seed: int = 0,
) -> dict[str, Machine]:
    """The study machines, optionally in fast (model-only) mode."""
    numerics = NumericsConfig.model_only() if fast else None
    return {
        chip: Machine.for_chip(chip, seed=seed, numerics=numerics) for chip in chips
    }


def make_session(*, fast: bool = False, seed: int = 0, **kwargs) -> Session:
    """A figure-building session: sampled numerics, or model-only if fast."""
    return Session(
        numerics="model-only" if fast else "sampled", seed=seed, **kwargs
    )


def session_from_machines(
    machines: Mapping[str, Machine], *, _stacklevel: int = 2
) -> Session:
    """Adapter for the deprecated ``{chip: Machine}`` invocation style.

    Each cell executes on a *fresh clone* of the mapping's machine for that
    chip — same chip/device specs (catalog or custom), numerics, thermal
    model, noise seed and sigma — preserving the pre-spec-API behaviour of
    running on exactly the machines the caller configured, while keeping
    per-cell execution pure.  This is the single deprecation choke point:
    every figure builder funnels mapping-style calls through here, and the
    warning tells callers what to migrate to.  ``_stacklevel`` lets the
    figure facades point the warning at *their* caller's line rather than
    at library internals.
    """
    warnings.warn(
        "passing a {chip: Machine} mapping to the figure builders is "
        "deprecated; pass chip names plus session=Session(...) (or run a "
        "repro.study.StudySpec) instead",
        DeprecationWarning,
        stacklevel=_stacklevel,
    )
    machines = dict(machines)
    first = next(iter(machines.values()))

    def factory(chip: str, seed: int, numerics) -> Machine:
        template = machines[chip]
        return Machine(
            template.chip,
            template.device,
            envelope=template.envelope,
            thermal=template.thermal,
            seed=template.noise.seed,
            noise_sigma=template.noise.default_sigma,
            numerics=template.numerics,
        )

    return Session(
        numerics=first.numerics,
        seed=first.noise.seed,
        noise_sigma=first.noise.default_sigma,
        thermal_enabled=first.thermal.enabled,
        machine_factory=factory,
    )


def _resolve(
    machines: Mapping[str, Machine] | Sequence[str] | None,
    fast: bool,
    session: Session | None,
) -> tuple[tuple[str, ...], Session]:
    """Chips + session from either invocation style."""
    if isinstance(machines, Mapping):
        chips = tuple(machines)
        if session is None:
            # 5 frames: warn < adapter < _resolve < _figure_data < figureN_data
            # < the user's call site.
            session = session_from_machines(machines, _stacklevel=5)
        return chips, session
    chips = tuple(machines) if machines is not None else paper.CHIPS
    if session is None:
        session = make_session(fast=fast)
    return chips, session


def _figure_data(
    name: str,
    machines: Mapping[str, Machine] | Sequence[str] | None,
    fast: bool,
    session: Session | None,
    max_workers: int | None,
    *,
    impl_keys: Sequence[str] | None = None,
    **axis_overrides,
) -> dict:
    """The shared facade body: study -> run -> series query."""
    chips, session = _resolve(machines, fast, session)
    figure = get_figure(name)
    if impl_keys is not None:
        axis_overrides["impl_keys"] = tuple(impl_keys)
    study = figure.study(chips=chips, seed=session.seed, **axis_overrides)
    frame = run_study(study, session=session, max_workers=max_workers)
    return figure.series(frame, chips=chips, impl_keys=impl_keys)


# ---------------------------------------------------------------------------
# Figure 1 — STREAM
# ---------------------------------------------------------------------------
def figure1_data(
    machines: Mapping[str, Machine] | Sequence[str] | None = None,
    *,
    fast: bool = False,
    n_elements: int | None = None,
    session: Session | None = None,
    max_workers: int | None = None,
) -> dict[str, dict]:
    """Figure 1: STREAM bandwidths per chip, target and kernel.

    Returns ``{chip: {"theoretical": gbs, "cpu": {kernel: gbs}, "gpu": ...}}``.
    """
    # Fast mode skips numerics, so full-size arrays cost nothing; the array
    # footprint must stay large or the GPU ramp underreports bandwidth.
    return _figure_data(
        "figure1", machines, fast, session, max_workers, n_elements=n_elements
    )


def figure1_from_envelopes(
    envelopes: Iterable[ResultEnvelope],
    *,
    chips: Sequence[str] | None = None,
) -> dict[str, dict]:
    """Assemble the Figure-1 series from persisted STREAM envelopes."""
    return get_figure("figure1").series(
        ResultFrame.from_envelopes(envelopes), chips=chips
    )


# ---------------------------------------------------------------------------
# Figures 2-4 — GEMM series
# ---------------------------------------------------------------------------
def figure2_data(
    machines: Mapping[str, Machine] | Sequence[str] | None = None,
    *,
    sizes: tuple[int, ...] = paper.GEMM_SIZES,
    impl_keys: Sequence[str] | None = None,
    repeats: int = paper.GEMM_REPEATS,
    fast: bool = False,
    session: Session | None = None,
    max_workers: int | None = None,
) -> dict[str, dict[str, dict[int, float]]]:
    """Figure 2: best GFLOPS per chip, implementation and size.

    Returns ``{chip: {impl: {n: gflops}}}``; excluded cells are absent.
    """
    return _figure_data(
        "figure2",
        machines,
        fast,
        session,
        max_workers,
        impl_keys=impl_keys,
        sizes=tuple(sizes),
        repeats=repeats,
    )


def figure2_from_envelopes(
    envelopes: Iterable[ResultEnvelope],
    *,
    chips: Sequence[str] | None = None,
) -> dict[str, dict[str, dict[int, float]]]:
    """Assemble the Figure-2 series from persisted GEMM envelopes."""
    return get_figure("figure2").series(
        ResultFrame.from_envelopes(envelopes), chips=chips
    )


def figure3_data(
    machines: Mapping[str, Machine] | Sequence[str] | None = None,
    *,
    sizes: tuple[int, ...] = paper.POWER_SIZES,
    impl_keys: Sequence[str] | None = None,
    repeats: int = paper.GEMM_REPEATS,
    fast: bool = False,
    session: Session | None = None,
    max_workers: int | None = None,
) -> dict[str, dict[str, dict[int, float]]]:
    """Figure 3: mean combined CPU+GPU power (mW) per chip, impl and size."""
    return _figure_data(
        "figure3",
        machines,
        fast,
        session,
        max_workers,
        impl_keys=impl_keys,
        sizes=tuple(sizes),
        repeats=repeats,
    )


def figure3_from_envelopes(
    envelopes: Iterable[ResultEnvelope],
    *,
    chips: Sequence[str] | None = None,
) -> dict[str, dict[str, dict[int, float]]]:
    """Assemble the Figure-3 series from persisted power envelopes."""
    return get_figure("figure3").series(
        ResultFrame.from_envelopes(envelopes), chips=chips
    )


def figure4_data(
    machines: Mapping[str, Machine] | Sequence[str] | None = None,
    *,
    sizes: tuple[int, ...] = paper.POWER_SIZES,
    impl_keys: Sequence[str] | None = None,
    repeats: int = paper.GEMM_REPEATS,
    fast: bool = False,
    session: Session | None = None,
    max_workers: int | None = None,
) -> dict[str, dict[str, dict[int, float]]]:
    """Figure 4: efficiency (GFLOPS/W) per chip, implementation and size."""
    return _figure_data(
        "figure4",
        machines,
        fast,
        session,
        max_workers,
        impl_keys=impl_keys,
        sizes=tuple(sizes),
        repeats=repeats,
    )


def figure4_from_envelopes(
    envelopes: Iterable[ResultEnvelope],
    *,
    chips: Sequence[str] | None = None,
) -> dict[str, dict[str, dict[int, float]]]:
    """Assemble the Figure-4 series from persisted power envelopes."""
    return get_figure("figure4").series(
        ResultFrame.from_envelopes(envelopes), chips=chips
    )
