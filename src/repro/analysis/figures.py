"""Assembly of the data series behind Figures 1-4.

Each ``figureN_data`` function describes its grid as experiment specs, runs
them through a :class:`~repro.experiments.Session` (cached, optionally
parallel via ``max_workers``) and returns the plottable series as plain
dictionaries — the same rows/series the paper's figures display.

Two invocation styles are supported:

* declarative — pass chip names (or nothing) plus ``session=``/``fast=``;
* legacy — pass a ``{chip: Machine}`` mapping, from which an equivalent
  session is derived (kept for the imperative call sites that predate the
  spec API).

The ``figureN_from_envelopes`` counterparts assemble the identical series
from persisted :class:`~repro.experiments.ResultEnvelope` records, so
``repro figure2 --from results/`` re-renders without recomputing.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.calibration import paper
from repro.core.gemm.registry import paper_implementation_keys
from repro.experiments.envelope import ResultEnvelope
from repro.experiments.session import Session
from repro.experiments.specs import StreamSpec, SweepSpec
from repro.sim.machine import Machine
from repro.sim.policy import NumericsConfig

__all__ = [
    "make_machines",
    "make_session",
    "figure1_data",
    "figure2_data",
    "figure3_data",
    "figure4_data",
    "figure1_from_envelopes",
    "figure2_from_envelopes",
    "figure3_from_envelopes",
    "figure4_from_envelopes",
]


def make_machines(
    chips: Sequence[str] = paper.CHIPS,
    *,
    fast: bool = False,
    seed: int = 0,
) -> dict[str, Machine]:
    """The study machines, optionally in fast (model-only) mode."""
    numerics = NumericsConfig.model_only() if fast else None
    return {
        chip: Machine.for_chip(chip, seed=seed, numerics=numerics) for chip in chips
    }


def make_session(*, fast: bool = False, seed: int = 0, **kwargs) -> Session:
    """A figure-building session: sampled numerics, or model-only if fast."""
    return Session(
        numerics="model-only" if fast else "sampled", seed=seed, **kwargs
    )


def _resolve(
    machines: Mapping[str, Machine] | Sequence[str] | None,
    fast: bool,
    session: Session | None,
) -> tuple[tuple[str, ...], Session]:
    """Chips + session from either invocation style."""
    if isinstance(machines, Mapping):
        chips = tuple(machines)
        if session is None:
            session = _session_from_machines(dict(machines))
        return chips, session
    chips = tuple(machines) if machines is not None else paper.CHIPS
    if session is None:
        session = make_session(fast=fast)
    return chips, session


def _session_from_machines(machines: dict[str, Machine]) -> Session:
    """A session honouring a legacy ``{chip: Machine}`` mapping.

    Each cell executes on a *fresh clone* of the mapping's machine for that
    chip — same chip/device specs (catalog or custom), numerics, thermal
    model, noise seed and sigma — preserving the pre-spec-API behaviour of
    running on exactly the machines the caller configured, while keeping
    per-cell execution pure.
    """
    first = next(iter(machines.values()))

    def factory(chip: str, seed: int, numerics) -> Machine:
        template = machines[chip]
        return Machine(
            template.chip,
            template.device,
            envelope=template.envelope,
            thermal=template.thermal,
            seed=template.noise.seed,
            noise_sigma=template.noise.default_sigma,
            numerics=template.numerics,
        )

    return Session(
        numerics=first.numerics,
        seed=first.noise.seed,
        noise_sigma=first.noise.default_sigma,
        thermal_enabled=first.thermal.enabled,
        machine_factory=factory,
    )


# ---------------------------------------------------------------------------
# Figure 1 — STREAM
# ---------------------------------------------------------------------------
def figure1_data(
    machines: Mapping[str, Machine] | Sequence[str] | None = None,
    *,
    fast: bool = False,
    n_elements: int | None = None,
    session: Session | None = None,
    max_workers: int | None = None,
) -> dict[str, dict]:
    """Figure 1: STREAM bandwidths per chip, target and kernel.

    Returns ``{chip: {"theoretical": gbs, "cpu": {kernel: gbs}, "gpu": ...}}``.
    """
    # Fast mode skips numerics, so full-size arrays cost nothing; the array
    # footprint must stay large or the GPU ramp underreports bandwidth.
    chips, session = _resolve(machines, fast, session)
    specs = [
        StreamSpec(
            chip=chip, seed=session.seed, target=target, n_elements=n_elements
        )
        for chip in chips
        for target in ("cpu", "gpu")
    ]
    envelopes = session.run_batch(specs, max_workers=max_workers)
    return figure1_from_envelopes(envelopes, chips=chips)


def figure1_from_envelopes(
    envelopes: Iterable[ResultEnvelope],
    *,
    chips: Sequence[str] | None = None,
) -> dict[str, dict]:
    """Assemble the Figure-1 series from persisted STREAM envelopes."""
    out: dict[str, dict] = {}
    for env in envelopes:
        if env.kind != "stream":
            continue
        if chips is not None and env.spec.chip not in chips:
            continue
        result = env.result
        entry = out.setdefault(
            env.spec.chip, {"theoretical": result.theoretical_gbs}
        )
        entry[result.target] = {
            k: float(r.max_gbs) for k, r in result.kernels.items()
        }
    if chips is not None:
        return {chip: out[chip] for chip in chips if chip in out}
    return out


# ---------------------------------------------------------------------------
# Figures 2-4 — GEMM series
# ---------------------------------------------------------------------------
def _gemm_series(
    chips: tuple[str, ...],
    session: Session,
    *,
    kind: str,
    sizes: tuple[int, ...],
    impl_keys: Sequence[str] | None,
    repeats: int,
    max_workers: int | None,
) -> list[ResultEnvelope]:
    keys = tuple(impl_keys) if impl_keys is not None else paper_implementation_keys()
    sweep = SweepSpec(
        kind=kind,
        chips=chips,
        impl_keys=keys,
        sizes=sizes,
        repeats=repeats,
        seed=session.seed,
    )
    return session.run_batch(sweep, max_workers=max_workers)


def _series_scaffold(
    chips: Sequence[str] | None, impl_keys: Sequence[str] | None
) -> dict[str, dict[str, dict[int, float]]]:
    """Every requested (chip, impl) key present, even when its series is empty."""
    if chips is None:
        return {}
    keys = tuple(impl_keys) if impl_keys is not None else paper_implementation_keys()
    return {chip: {key: {} for key in keys} for chip in chips}


def _assemble_series(
    envelopes: Iterable[ResultEnvelope],
    value,
    kind: str,
    chips: Sequence[str] | None,
    impl_keys: Sequence[str] | None,
) -> dict[str, dict[str, dict[int, float]]]:
    out = _series_scaffold(chips, impl_keys)
    for env in envelopes:
        if env.kind != kind:
            continue
        if chips is not None and env.spec.chip not in chips:
            continue
        spec = env.spec
        out.setdefault(spec.chip, {}).setdefault(spec.impl_key, {})[spec.n] = value(
            env.result
        )
    return out


def figure2_data(
    machines: Mapping[str, Machine] | Sequence[str] | None = None,
    *,
    sizes: tuple[int, ...] = paper.GEMM_SIZES,
    impl_keys: Sequence[str] | None = None,
    repeats: int = paper.GEMM_REPEATS,
    fast: bool = False,
    session: Session | None = None,
    max_workers: int | None = None,
) -> dict[str, dict[str, dict[int, float]]]:
    """Figure 2: best GFLOPS per chip, implementation and size.

    Returns ``{chip: {impl: {n: gflops}}}``; excluded cells are absent.
    """
    chips, session = _resolve(machines, fast, session)
    envelopes = _gemm_series(
        chips,
        session,
        kind="gemm",
        sizes=sizes,
        impl_keys=impl_keys,
        repeats=repeats,
        max_workers=max_workers,
    )
    return _assemble_series(
        envelopes, lambda r: r.best_gflops, "gemm", chips, impl_keys
    )


def figure2_from_envelopes(
    envelopes: Iterable[ResultEnvelope],
    *,
    chips: Sequence[str] | None = None,
) -> dict[str, dict[str, dict[int, float]]]:
    """Assemble the Figure-2 series from persisted GEMM envelopes."""
    return _assemble_series(
        envelopes, lambda r: r.best_gflops, "gemm", chips, None
    )


def figure3_data(
    machines: Mapping[str, Machine] | Sequence[str] | None = None,
    *,
    sizes: tuple[int, ...] = paper.POWER_SIZES,
    impl_keys: Sequence[str] | None = None,
    repeats: int = paper.GEMM_REPEATS,
    fast: bool = False,
    session: Session | None = None,
    max_workers: int | None = None,
) -> dict[str, dict[str, dict[int, float]]]:
    """Figure 3: mean combined CPU+GPU power (mW) per chip, impl and size."""
    chips, session = _resolve(machines, fast, session)
    envelopes = _gemm_series(
        chips,
        session,
        kind="powered-gemm",
        sizes=sizes,
        impl_keys=impl_keys,
        repeats=repeats,
        max_workers=max_workers,
    )
    return _assemble_series(
        envelopes, lambda r: r.mean_combined_mw, "powered-gemm", chips, impl_keys
    )


def figure3_from_envelopes(
    envelopes: Iterable[ResultEnvelope],
    *,
    chips: Sequence[str] | None = None,
) -> dict[str, dict[str, dict[int, float]]]:
    """Assemble the Figure-3 series from persisted power envelopes."""
    return _assemble_series(
        envelopes, lambda r: r.mean_combined_mw, "powered-gemm", chips, None
    )


def figure4_data(
    machines: Mapping[str, Machine] | Sequence[str] | None = None,
    *,
    sizes: tuple[int, ...] = paper.POWER_SIZES,
    impl_keys: Sequence[str] | None = None,
    repeats: int = paper.GEMM_REPEATS,
    fast: bool = False,
    session: Session | None = None,
    max_workers: int | None = None,
) -> dict[str, dict[str, dict[int, float]]]:
    """Figure 4: efficiency (GFLOPS/W) per chip, implementation and size."""
    chips, session = _resolve(machines, fast, session)
    envelopes = _gemm_series(
        chips,
        session,
        kind="powered-gemm",
        sizes=sizes,
        impl_keys=impl_keys,
        repeats=repeats,
        max_workers=max_workers,
    )
    return _assemble_series(
        envelopes,
        lambda r: r.efficiency_gflops_per_w,
        "powered-gemm",
        chips,
        impl_keys,
    )


def figure4_from_envelopes(
    envelopes: Iterable[ResultEnvelope],
    *,
    chips: Sequence[str] | None = None,
) -> dict[str, dict[str, dict[int, float]]]:
    """Assemble the Figure-4 series from persisted power envelopes."""
    return _assemble_series(
        envelopes, lambda r: r.efficiency_gflops_per_w, "powered-gemm", chips, None
    )
