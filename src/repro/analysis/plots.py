"""Terminal plots of the paper's figures (no plotting dependency).

Renders log-scale line charts and grouped bar charts as Unicode text so the
figures can be *seen*, not just tabulated, in a headless environment:
``repro figure2 --chart`` draws the Figure-2 panels the way the paper lays
them out.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

from repro.errors import ConfigurationError

__all__ = ["line_chart", "bar_chart", "figure1_chart", "figure2_chart"]

_BLOCKS = "▏▎▍▌▋▊▉█"


def _log_position(value: float, lo: float, hi: float, width: int) -> int:
    if value <= 0:
        return 0
    span = math.log10(hi) - math.log10(lo)
    if span <= 0:
        return 0
    frac = (math.log10(value) - math.log10(lo)) / span
    return max(0, min(width - 1, int(round(frac * (width - 1)))))


def line_chart(
    series: Mapping[str, Mapping[float, float]],
    *,
    width: int = 72,
    height: int = 16,
    title: str = "",
    y_label: str = "",
    log_x: bool = True,
    log_y: bool = True,
) -> str:
    """Multi-series scatter/line chart on (optionally) log-log axes.

    ``series`` maps a legend name to ``{x: y}`` points.  Each series is
    drawn with its own marker; markers overwrite earlier series on
    collisions (later series win, like matplotlib's z-order).
    """
    points = [
        (x, y)
        for data in series.values()
        for x, y in data.items()
        if y > 0 and x > 0
    ]
    if not points:
        raise ConfigurationError("nothing to plot")
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if not log_x:
        x_lo, x_hi = 0.0, x_hi
    markers = "ox+*#@%&"

    grid = [[" "] * width for _ in range(height)]
    legend: list[str] = []
    for idx, (name, data) in enumerate(series.items()):
        marker = markers[idx % len(markers)]
        legend.append(f"{marker} {name}")
        for x, y in sorted(data.items()):
            if y <= 0:
                continue
            if log_x:
                col = _log_position(x, x_lo, x_hi, width)
            else:
                col = max(
                    0, min(width - 1, int(round((x - x_lo) / (x_hi - x_lo or 1) * (width - 1))))
                )
            if log_y:
                row = _log_position(y, y_lo, y_hi, height)
            else:
                row = max(
                    0,
                    min(height - 1, int(round((y - y_lo) / (y_hi - y_lo or 1) * (height - 1)))),
                )
            grid[height - 1 - row][col] = marker

    out: list[str] = []
    if title:
        out.append(title)
    y_top = f"{y_hi:.3g}"
    y_bot = f"{y_lo:.3g}"
    label_width = max(len(y_top), len(y_bot), len(y_label))
    for i, row_cells in enumerate(grid):
        if i == 0:
            label = y_top
        elif i == height - 1:
            label = y_bot
        elif i == height // 2 and y_label:
            label = y_label
        else:
            label = ""
        out.append(f"{label:>{label_width}} |" + "".join(row_cells))
    out.append(" " * label_width + " +" + "-" * width)
    out.append(
        " " * label_width + f"  {x_lo:<10.4g}" + " " * (width - 24) + f"{x_hi:>10.4g}"
    )
    out.append("  ".join(legend))
    return "\n".join(out)


def bar_chart(
    groups: Mapping[str, Mapping[str, float]],
    *,
    width: int = 50,
    title: str = "",
    unit: str = "",
    reference: Mapping[str, float] | None = None,
) -> str:
    """Horizontal grouped bars, one block row per (group, label).

    ``reference`` draws a ``|`` marker per group (Figure 1's theoretical
    peak line).
    """
    if not groups:
        raise ConfigurationError("nothing to plot")
    peak = max(
        max(values.values(), default=0.0) for values in groups.values()
    )
    if reference:
        peak = max(peak, max(reference.values()))
    if peak <= 0:
        raise ConfigurationError("bar chart needs positive values")
    label_width = max(
        len(label) for values in groups.values() for label in values
    )
    out: list[str] = []
    if title:
        out.append(title)
    for group, values in groups.items():
        out.append(f"{group}:")
        ref_col = None
        if reference and group in reference:
            ref_col = min(width - 1, int(round(reference[group] / peak * width)))
        for label, value in values.items():
            filled = value / peak * width
            whole = int(filled)
            frac = filled - whole
            bar = "█" * whole
            if frac > 1e-9 and whole < width:
                bar += _BLOCKS[min(len(_BLOCKS) - 1, int(frac * len(_BLOCKS)))]
            bar = bar.ljust(width)
            if ref_col is not None and 0 <= ref_col < len(bar):
                bar = bar[:ref_col] + "|" + bar[ref_col + 1 :]
            out.append(f"  {label:<{label_width}} {bar} {value:8.1f} {unit}")
    return "\n".join(out)


def figure1_chart(fig1: Mapping[str, Mapping], *, width: int = 50) -> str:
    """Figure 1 as grouped bars with the theoretical-peak marker."""
    groups = {}
    reference = {}
    for chip, entry in fig1.items():
        bars = {}
        for target in ("cpu", "gpu"):
            for kernel, gbs in entry.get(target, {}).items():
                bars[f"{kernel} ({target.upper()})"] = gbs
        groups[chip] = bars
        reference[chip] = entry["theoretical"]
    return bar_chart(
        groups,
        width=width,
        title="Figure 1 — STREAM bandwidth (| = theoretical peak)",
        unit="GB/s",
        reference=reference,
    )


def figure2_chart(
    fig2: Mapping[str, Mapping[str, Mapping[int, float]]],
    *,
    chips: Sequence[str] | None = None,
) -> str:
    """Figure 2 as per-chip log-log panels."""
    panels = []
    for chip, impls in fig2.items():
        if chips is not None and chip not in chips:
            continue
        panels.append(
            line_chart(
                {k: {float(n): v for n, v in s.items()} for k, s in impls.items()},
                title=f"Figure 2 — {chip} (GFLOPS vs n, log-log)",
                y_label="GFLOPS",
            )
        )
    return "\n\n".join(panels)
