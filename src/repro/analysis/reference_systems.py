"""Literature reference points quoted by the paper (sections 5 and 7)."""

from __future__ import annotations

import dataclasses

from repro.calibration import paper
from repro.analysis.tables import render_table

__all__ = ["ReferenceSystem", "REFERENCE_SYSTEMS", "render_reference_table"]


@dataclasses.dataclass(frozen=True)
class ReferenceSystem:
    name: str
    metric: str
    value: float
    unit: str
    source: str
    caveat: str = ""


REFERENCE_SYSTEMS: tuple[ReferenceSystem, ...] = (
    ReferenceSystem(
        name="Green500 #1 (Nov 2024)",
        metric="efficiency",
        value=float(paper.LITERATURE["green500-top"]["gflops_per_w"]),
        unit="GFLOPS/W",
        source=str(paper.LITERATURE["green500-top"]["source"]),
        caveat="HPL FP64; not directly comparable to powermetrics estimates",
    ),
    ReferenceSystem(
        name="Nvidia A100",
        metric="efficiency",
        value=float(paper.LITERATURE["nvidia-a100"]["tflops_per_w"]) * 1000.0,
        unit="GFLOPS/W",
        source=str(paper.LITERATURE["nvidia-a100"]["source"]),
        caveat="mixed-precision tensor-core MMA, not SGEMM",
    ),
    ReferenceSystem(
        name="Nvidia RTX 4090",
        metric="efficiency",
        value=float(paper.LITERATURE["rtx-4090"]["tflops_per_w"]) * 1000.0,
        unit="GFLOPS/W",
        source=str(paper.LITERATURE["rtx-4090"]["source"]),
        caveat="174 W draw; tensor-core MMA, not SGEMM",
    ),
    ReferenceSystem(
        name="Intel Xeon Max 9468",
        metric="compute",
        value=float(paper.LITERATURE["xeon-max-9468"]["fp64_tflops"]) * 1000.0,
        unit="GFLOPS",
        source=str(paper.LITERATURE["xeon-max-9468"]["source"]),
        caveat="double-precision matrix multiplication",
    ),
    ReferenceSystem(
        name="AMD MI250X",
        metric="bandwidth",
        value=float(paper.LITERATURE["amd-mi250x"]["gbs"]),
        unit="GB/s",
        source=str(paper.LITERATURE["amd-mi250x"]["source"]),
        caveat="85% of theoretical peak for fine-grained remote access",
    ),
)


def render_reference_table() -> str:
    """Render the literature reference points as a plain-text table."""
    rows = [
        [ref.name, ref.metric, f"{ref.value:g}", ref.unit, ref.source, ref.caveat]
        for ref in REFERENCE_SYSTEMS
    ]
    return render_table(
        ["System", "Metric", "Value", "Unit", "Source", "Caveat"],
        rows,
        title="Literature reference points quoted by the paper.",
    )
