"""Roofline analysis of the measured results.

Places every implementation on its chip's roofline: achieved FLOP rate
against arithmetic intensity, under the compute ceiling (the engine's peak)
and the memory diagonal (theoretical bandwidth).  This is the standard lens
for exactly the question the paper asks — whether the M-series' unified
memory can feed its compute — and makes the Figure-2 hierarchy legible:
MPS sits near the GPU ceiling, the custom shaders idle far below it, and
STREAM pins the memory diagonal.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

from repro.calibration.gemm import build_gemm_operation, gemm_calibration
from repro.sim.machine import Machine
from repro.sim.roofline import arithmetic_intensity

__all__ = ["RooflinePoint", "roofline_points", "render_roofline"]


@dataclasses.dataclass(frozen=True)
class RooflinePoint:
    """One implementation's position on the chip roofline."""

    impl_key: str
    n: int
    arithmetic_intensity: float  # FLOP per DRAM byte
    achieved_gflops: float
    engine_peak_gflops: float
    memory_bound_gflops: float  # bandwidth * AI

    @property
    def roofline_gflops(self) -> float:
        """The ceiling at this intensity: min(compute peak, BW * AI)."""
        return min(self.engine_peak_gflops, self.memory_bound_gflops)

    @property
    def fraction_of_roofline(self) -> float:
        if self.roofline_gflops <= 0:
            return 0.0
        return self.achieved_gflops / self.roofline_gflops

    @property
    def is_compute_bound(self) -> bool:
        """Whether the binding ceiling is the engine peak (past the ridge)."""
        return self.engine_peak_gflops <= self.memory_bound_gflops


def roofline_points(
    machine: Machine,
    impl_keys: Sequence[str],
    n: int = 16384,
) -> list[RooflinePoint]:
    """Execute each implementation once and locate it on the roofline.

    Uses the calibrated DRAM traffic model for the intensity denominator
    (cached re-reads do not count, as in measured rooflines).
    """
    points: list[RooflinePoint] = []
    bandwidth_gbs = machine.chip.memory.bandwidth_gbs
    for key in impl_keys:
        cal = gemm_calibration(machine.chip, key)
        size = n if cal.supports(n) else cal.max_n or n
        op = build_gemm_operation(machine.chip, key, size)
        done = machine.execute(op)
        ai = arithmetic_intensity(op.cost)
        points.append(
            RooflinePoint(
                impl_key=key,
                n=size,
                arithmetic_intensity=ai,
                achieved_gflops=done.achieved_flops / 1e9,
                engine_peak_gflops=op.peak_flops / 1e9,
                memory_bound_gflops=bandwidth_gbs * ai,
            )
        )
    return points


def render_roofline(machine: Machine, points: Sequence[RooflinePoint]) -> str:
    """Text report: the roofline position of every point."""
    chip = machine.chip
    lines = [
        f"Roofline — {chip.name}: DRAM {chip.memory.bandwidth_gbs:.0f} GB/s, "
        f"GPU ceiling {chip.gpu.peak_fp32_flops() / 1e9:.0f} GFLOPS, "
        f"AMX ceiling {chip.amx.peak_fp32_flops() / 1e9:.0f} GFLOPS",
        f"{'impl':20s} {'n':>6s} {'AI':>8s} {'achieved':>10s} "
        f"{'ceiling':>10s} {'% roof':>7s} {'bound':>8s}",
    ]
    for p in points:
        lines.append(
            f"{p.impl_key:20s} {p.n:6d} {p.arithmetic_intensity:8.1f} "
            f"{p.achieved_gflops:10.1f} {p.roofline_gflops:10.1f} "
            f"{p.fraction_of_roofline:7.1%} "
            f"{'compute' if p.is_compute_bound else 'memory':>8s}"
        )
    return "\n".join(lines)
