"""ASCII renderers for the paper's tables (1, 2 and 3) and the workload registry."""

from __future__ import annotations

from repro.core.gemm.registry import table2_rows
from repro.soc.catalog import CHIP_NAMES, get_chip
from repro.soc.device import device_catalog

__all__ = [
    "render_table",
    "render_table1",
    "render_table2",
    "render_table3",
    "render_workloads_table",
]


def render_workloads_table() -> str:
    """Registered workload kinds and their implementation keys (Table-2 style)."""
    from repro.workloads import all_workloads

    rows = [
        [
            workload.kind,
            workload.display_name,
            ", ".join(workload.impl_keys) or "—",
            "yes" if workload.vectorized_body is not None else "scalar",
            workload.description,
        ]
        for workload in all_workloads()
    ]
    return render_table(
        ["Kind", "Workload", "Implementation keys", "Fast path", "Description"],
        rows,
        title="Registered workloads (repro.workloads)",
    )


def render_table(headers: list[str], rows: list[list[str]], title: str = "") -> str:
    """Plain-text table with padded columns."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt(cells: list[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    sep = "-+-".join("-" * w for w in widths)
    out = []
    if title:
        out.append(title)
    out.append(fmt(headers))
    out.append(sep)
    out.extend(fmt(row) for row in rows)
    return "\n".join(out)


def render_table1(chips: tuple[str, ...] = CHIP_NAMES) -> str:
    """Table 1: Comparison of Baseline Apple Silicon M Series Architecture."""
    specs = [get_chip(name) for name in chips]
    features: list[tuple[str, list[str]]] = [
        ("Process Technology (nm)", [c.process_nm for c in specs]),
        ("CPU Architecture", [c.isa for c in specs]),
        ("Performance/Efficiency Cores", [c.core_config_label() for c in specs]),
        ("Clock Frequency (GHz)", [c.clock_label() for c in specs]),
        (
            "Vector Unit (name/size)",
            [f"NEON/{c.performance_cluster.simd_width_bits}" for c in specs],
        ),
        (
            "L1 Cache (KB)",
            [
                f"{c.performance_cluster.l1_kb} (P)/{c.efficiency_cluster.l1_kb} (E)"
                for c in specs
            ],
        ),
        (
            "L2 Cache (MB)",
            [
                f"{c.performance_cluster.l2_mb} (P)/{c.efficiency_cluster.l2_mb} (E)"
                for c in specs
            ],
        ),
        (
            "AMX Characteristics",
            [
                "FP16,32,64" + ("/BF16" if any(p.key == "bf16" for p in c.amx.precisions) else "")
                for c in specs
            ],
        ),
        (
            "GPU Cores",
            [
                f"{c.gpu.cores_min}-{c.gpu.cores_max}"
                if c.gpu.cores_min != c.gpu.cores_max
                else str(c.gpu.cores_max)
                for c in specs
            ],
        ),
        (
            "Native Precision Support",
            ["FP32, FP16, INT8" for _ in specs],
        ),
        ("GPU Clock Frequency (GHz)", [f"{c.gpu.clock_ghz:g}" for c in specs]),
        (
            "Theoretical FP32 FLOPS (TFLOPS)",
            [
                f"{c.gpu.table_fp32_tflops[0]:g}-{c.gpu.table_fp32_tflops[1]:g}"
                if c.gpu.table_fp32_tflops[0] != c.gpu.table_fp32_tflops[1]
                else f"{c.gpu.table_fp32_tflops[1]:g}"
                for c in specs
            ],
        ),
        ("Neural Engine Units (Core)", [str(c.neural_engine.cores) for c in specs]),
        ("Memory Technology", [c.memory.technology for c in specs]),
        (
            "Max Unified Memory (GB)",
            ["-".join(str(g) for g in c.memory.max_gb_options) for c in specs],
        ),
        ("Memory Bandwidth (GB/s)", [f"{c.memory.bandwidth_gbs:g}" for c in specs]),
    ]
    rows = [[feature] + values for feature, values in features]
    return render_table(
        ["Feature"] + list(chips),
        rows,
        title="Table 1. Comparison of Baseline Apple Silicon M Series Architecture.",
    )


def render_table2() -> str:
    """Table 2: Overview of matrix multiplication implementations."""
    return render_table(
        ["Implementation", "Framework", "Hardware"],
        [list(row) for row in table2_rows()],
        title="Table 2. Overview of matrix multiplication implementations.",
    )


def render_table3() -> str:
    """Table 3: Basic information of devices used."""
    devices = device_catalog()
    chips = list(devices)
    rows = [
        ["Device", *[devices[c].model for c in chips]],
        ["Release", *[str(devices[c].release_year) for c in chips]],
        ["Memory", *[f"{devices[c].memory_gb}GB" for c in chips]],
        ["Cooling", *[devices[c].cooling.value for c in chips]],
        ["MacOS", *[devices[c].macos_version for c in chips]],
    ]
    return render_table(
        ["Feature"] + chips,
        rows,
        title="Table 3. Basic information of devices used.",
    )
