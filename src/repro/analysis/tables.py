"""ASCII renderers for the paper's tables — facades over the study defs.

The tables' *content* lives as data in :data:`repro.study.defs.TABLES`
(builders from the system inventory to headers + rows); these functions
keep the historical API and render through the one generic
:func:`~repro.study.defs.render_plain_table` (re-exported here as
:func:`render_table` for compatibility)."""

from __future__ import annotations

from repro.soc.catalog import CHIP_NAMES
from repro.study.defs import get_table, render_plain_table as _render_plain

__all__ = [
    "render_table",
    "render_table1",
    "render_table2",
    "render_table3",
    "render_workloads_table",
]


def render_table(headers: list[str], rows: list[list[str]], title: str = "") -> str:
    """Plain-text table with padded columns."""
    return _render_plain(headers, rows, title)


def render_workloads_table() -> str:
    """Registered workload kinds and their implementation keys (Table-2 style)."""
    from repro.workloads import all_workloads

    rows = [
        [
            workload.kind,
            workload.display_name,
            ", ".join(workload.impl_keys) or "—",
            "yes" if workload.vectorized_body is not None else "scalar",
            workload.description,
        ]
        for workload in all_workloads()
    ]
    return render_table(
        ["Kind", "Workload", "Implementation keys", "Fast path", "Description"],
        rows,
        title="Registered workloads (repro.workloads)",
    )


def render_table1(chips: tuple[str, ...] = CHIP_NAMES) -> str:
    """Table 1: Comparison of Baseline Apple Silicon M Series Architecture."""
    return get_table("table1").render(chips)


def render_table2() -> str:
    """Table 2: Overview of matrix multiplication implementations."""
    return get_table("table2").render()


def render_table3() -> str:
    """Table 3: Basic information of devices used."""
    return get_table("table3").render()
