"""repro.calibrate — the trace-ingesting calibration loop.

Closes the loop between the simulator and measured data: ingest a
:class:`MeasuredTrace` (the paper's published numbers, a powermetrics
capture, or a synthetic forward run), search the calibration knobs declared
by a :class:`CalibrationSpec`, and report fitted parameters plus per-chip
MAPE as a deterministic :class:`CalibrationResult` artifact.

Quickstart::

    from repro.calibrate import MeasuredTrace, run_calibration

    result = run_calibration(MeasuredTrace.from_paper())
    print(result.overall_mape_pct)

See DESIGN.md section 11 for the trace model, the parameter space, the MAPE
contract and the determinism guarantee.
"""

from repro.calibrate.engine import (
    DEFAULT_BACKEND,
    run_calibration,
    synthesize_trace,
)
from repro.calibrate.result import CalibrationResult
from repro.calibrate.spec import (
    DEFAULT_KNOBS,
    CalibrationSpec,
    ParamSpec,
    default_spec,
)
from repro.calibrate.trace import METRICS, MeasuredTrace, Observation, load_trace

__all__ = [
    "CalibrationSpec",
    "ParamSpec",
    "CalibrationResult",
    "MeasuredTrace",
    "Observation",
    "run_calibration",
    "synthesize_trace",
    "load_trace",
    "default_spec",
    "DEFAULT_KNOBS",
    "DEFAULT_BACKEND",
    "METRICS",
]
