"""The calibration search: coarse grid -> local refinement, per chip.

Every candidate parameter set becomes a *derived chip* (see
:mod:`repro.calibration.overrides`), so candidate evaluation is nothing
special — ordinary experiment specs executed through the ordinary
:meth:`~repro.experiments.session.Session.run_batch` backend seam.  One
batch per round carries every (chip, knob, candidate, observation) cell of
that round, which is exactly the shape the vectorized fast path eats.

The search is block-coordinate: each knob is fit on a 1-D grid while the
chip's other knobs sit at their incumbent values, and each refinement round
re-grids the +/- one-step neighbourhood of the incumbent.  The forward model
is monotone in every knob over its bracket, so the bracket shrinks by
``2/(points-1)`` per round and lands well inside the 1 % acceptance band in
a handful of rounds.

Determinism: sessions run ``model-only`` numerics with ``noise_sigma=0.0``
(the zero default disables every noise source globally), candidate grids are
pure arithmetic, and ties break toward the lower candidate — the same seed
and trace always produce a byte-identical :class:`CalibrationResult`.

The registry of derived chips is process-local, so the ``processes`` and
``sharded`` backends (whose workers rebuild sessions from plain data) are
rejected with :class:`~repro.errors.CalibrationError`; the default —
``vectorized`` — is also the fastest seat for this workload.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import Callable, Mapping, Sequence

from repro.calibrate.result import CalibrationResult
from repro.calibrate.spec import CalibrationSpec, default_spec
from repro.calibrate.trace import MeasuredTrace, Observation, load_trace
from repro.calibration.overrides import anchored_knob_value, derive_calibrated_chip
from repro.errors import CalibrationError
from repro.experiments.backends import BACKEND_NAMES
from repro.experiments.session import Session
from repro.experiments.specs import (
    ExperimentSpec,
    GemmSpec,
    PoweredGemmSpec,
    StreamSpec,
)

__all__ = ["run_calibration", "synthesize_trace", "DEFAULT_BACKEND"]

#: The calibration loop's default execution backend.
DEFAULT_BACKEND = "vectorized"

#: Backends whose workers live in other processes and cannot see the
#: in-process derived-chip registry.
_REGISTRY_BOUND_BACKENDS = ("processes", "sharded")


def _check_backend(backend: str | None) -> str:
    resolved = backend or DEFAULT_BACKEND
    if resolved in _REGISTRY_BOUND_BACKENDS:
        raise CalibrationError(
            f"the {resolved!r} backend runs candidate cells in worker "
            f"processes that cannot see the in-process derived-chip "
            f"registry; use 'vectorized' (default), 'threads' or 'serial'"
        )
    if resolved not in BACKEND_NAMES:
        raise CalibrationError(
            f"unknown backend {resolved!r}; known: {', '.join(BACKEND_NAMES)}"
        )
    return resolved


def _make_session(
    backend: str, seed: int, cache_dir: Path | None = None
) -> Session:
    # model-only numerics + a zero default sigma: the pure closed-form
    # forward model, noise globally disabled — deterministic and cheap.
    return Session(
        numerics="model-only",
        noise_sigma=0.0,
        seed=seed,
        backend=backend,
        cache_dir=cache_dir,
    )


def _spec_for(obs: Observation, chip_name: str) -> ExperimentSpec:
    if obs.workload == "gemm":
        return GemmSpec(chip=chip_name, impl_key=obs.impl_key, n=obs.size)
    if obs.workload == "powered-gemm":
        return PoweredGemmSpec(chip=chip_name, impl_key=obs.impl_key, n=obs.size)
    return StreamSpec(chip=chip_name, target=obs.impl_key)


def _extract(envelope, metric: str) -> float:
    result = envelope.result
    if metric == "gflops":
        return float(result.best_gflops)
    if metric == "power_w":
        return float(result.mean_combined_w)
    return float(result.max_gbs)


def _knob_matches(knob: str, obs: Observation) -> bool:
    category, qualifier = knob.rsplit(".", 1)
    if category == "gemm.power_w":
        return obs.workload == "powered-gemm" and obs.impl_key == qualifier
    if category == "stream.gbs":
        return obs.workload == "stream" and obs.impl_key == qualifier
    # peak_gflops / overhead_s / traffic_read_factor all shape the timed GEMM
    return obs.workload == "gemm" and obs.impl_key == qualifier


def _grid(lo: float, hi: float, points: int) -> list[float]:
    step = (hi - lo) / (points - 1)
    return [lo + i * step for i in range(points)]


def synthesize_trace(
    chips: Sequence[str] | None = None,
    *,
    backend: str | None = None,
    seed: int = 0,
) -> MeasuredTrace:
    """A trace of the paper-anchored simulator's own outputs.

    Same observation skeleton as :meth:`MeasuredTrace.from_paper`, with
    values replaced by the anchored forward model's predictions — the
    closed-loop ground truth self-calibration must recover.
    """
    resolved = _check_backend(backend)
    skeleton = MeasuredTrace.from_paper(chips)
    session = _make_session(resolved, seed)
    envelopes = session.run_batch([_spec_for(o, o.chip) for o in skeleton])
    observations = tuple(
        dataclasses.replace(obs, value=_extract(env, obs.metric))
        for obs, env in zip(skeleton.observations, envelopes)
    )
    return MeasuredTrace(observations=observations, source="synthetic")


def run_calibration(
    trace: MeasuredTrace | str | Path,
    spec: CalibrationSpec | None = None,
    *,
    backend: str | None = None,
    out_dir: str | Path | None = None,
    log: Callable[[str], None] | None = None,
) -> CalibrationResult:
    """Fit the simulator's calibration knobs against a measured trace.

    Parameters
    ----------
    trace:
        A :class:`MeasuredTrace` or a path to a saved trace JSON file.
    spec:
        The parameter space; defaults to :func:`default_spec` over the
        trace's chips.
    backend:
        Execution backend for the candidate sweeps (default
        ``"vectorized"``; pool backends are rejected, see module docs).
    out_dir:
        When given, candidate envelopes persist to ``<out_dir>/store`` (an
        interrupted search resumes from cache) and the result artifact is
        written to ``<out_dir>/calibration.json``.
    log:
        Optional per-round progress callback (one line per call).

    Raises
    ------
    CalibrationError
        For unusable backends, empty chip/observation intersections, or
        malformed traces/specs.
    """
    if not isinstance(trace, MeasuredTrace):
        trace = load_trace(trace)
    if spec is None:
        spec = default_spec(chips=trace.chips)
    resolved_backend = _check_backend(backend)
    chips = [c for c in spec.chips if trace.for_chip(c)]
    if not chips:
        raise CalibrationError(
            f"trace ({', '.join(trace.chips)}) has no observations for the "
            f"spec's chips ({', '.join(spec.chips)})"
        )
    cache_dir = Path(out_dir) / "store" if out_dir is not None else None
    session = _make_session(resolved_backend, spec.seed, cache_dir)

    # Per-(chip, knob) state: the observations that score the knob, the
    # anchored default, the active bracket, and the incumbent value.
    fit_obs: dict[tuple[str, str], tuple[Observation, ...]] = {}
    anchors: dict[str, dict[str, float]] = {c: {} for c in chips}
    brackets: dict[tuple[str, str], tuple[float, float]] = {}
    bounds: dict[tuple[str, str], tuple[float, float]] = {}
    incumbent: dict[str, dict[str, float]] = {c: {} for c in chips}
    for chip in chips:
        observations = trace.for_chip(chip)
        for param in spec.params:
            matched = tuple(o for o in observations if _knob_matches(param.knob, o))
            if not matched:
                continue
            anchor = anchored_knob_value(chip, param.knob)
            key = (chip, param.knob)
            fit_obs[key] = matched
            anchors[chip][param.knob] = anchor
            hi = anchor * param.hi_rel
            if param.knob.startswith("gemm.peak_gflops."):
                # Targets above the engine's architectural peak would need
                # a compute efficiency over 1.0; clamp the bracket there.
                from repro.calibration.gemm import max_anchorable_peak_gflops
                from repro.soc.catalog import get_chip

                impl = param.knob.rsplit(".", 1)[1]
                cap = max_anchorable_peak_gflops(get_chip(chip), impl)
                hi = min(hi, cap * (1.0 - 1e-9))
            bounds[key] = (anchor * param.lo_rel, hi)
            brackets[key] = bounds[key]
            incumbent[chip][param.knob] = (bounds[key][0] + bounds[key][1]) / 2.0
    if not fit_obs:
        raise CalibrationError(
            "no spec knob matches any trace observation; nothing to fit"
        )

    total_rounds = 1 + spec.refine_rounds
    cells = 0
    rounds_run = 0
    for round_index in range(total_rounds):
        batch: list[ExperimentSpec] = []
        index: list[tuple[str, str, int, Observation]] = []
        candidates: dict[tuple[str, str], list[float]] = {}
        for (chip, knob), observations in fit_obs.items():
            lo, hi = brackets[(chip, knob)]
            if (hi - lo) <= spec.tolerance * anchors[chip][knob]:
                continue  # converged early; frozen at the incumbent
            values = _grid(lo, hi, spec.coarse_points)
            candidates[(chip, knob)] = values
            for value_index, value in enumerate(values):
                overlay = dict(incumbent[chip])
                overlay[knob] = value
                derived = derive_calibrated_chip(chip, overlay)
                for obs in observations:
                    batch.append(_spec_for(obs, derived))
                    index.append((chip, knob, value_index, obs))
        if not batch:
            break
        envelopes = session.run_batch(batch)
        cells += len(batch)
        rounds_run += 1
        scores: dict[tuple[str, str, int], list[float]] = {}
        for (chip, knob, value_index, obs), env in zip(index, envelopes):
            predicted = _extract(env, obs.metric)
            scores.setdefault((chip, knob, value_index), []).append(
                abs(predicted - obs.value) / abs(obs.value)
            )
        for (chip, knob), values in candidates.items():
            per_candidate = [
                sum(scores[(chip, knob, i)]) / len(scores[(chip, knob, i)])
                for i in range(len(values))
            ]
            # Ties break toward the lower candidate: min() keeps the first
            # minimum, and the grid is ascending.
            best_index = per_candidate.index(min(per_candidate))
            best_value = values[best_index]
            incumbent[chip][knob] = best_value
            lo, hi = brackets[(chip, knob)]
            step = (hi - lo) / (spec.coarse_points - 1)
            orig_lo, orig_hi = bounds[(chip, knob)]
            brackets[(chip, knob)] = (
                max(orig_lo, best_value - step),
                min(orig_hi, best_value + step),
            )
        if log is not None:
            widths = [
                (brackets[key][1] - brackets[key][0])
                / anchors[key[0]][key[1]]
                for key in candidates
            ]
            log(
                f"round {round_index + 1}/{total_rounds}: {len(batch)} cells, "
                f"{len(candidates)} active knobs, max bracket width "
                f"{max(widths) * 100.0:.3f}% of anchor"
            )

    # Final scoring pass: every observation of every chip under the fitted
    # overlay (not just the knob-matched ones).
    final_batch: list[ExperimentSpec] = []
    final_index: list[Observation] = []
    for chip in chips:
        overlay = incumbent[chip]
        target_chip = derive_calibrated_chip(chip, overlay) if overlay else chip
        for obs in trace.for_chip(chip):
            final_batch.append(_spec_for(obs, target_chip))
            final_index.append(obs)
    final_envelopes = session.run_batch(final_batch)
    cells += len(final_batch)

    mape: dict[str, dict[str, float]] = {}
    per_chip_overall: list[float] = []
    apes: dict[str, dict[str, list[float]]] = {c: {} for c in chips}
    for obs, env in zip(final_index, final_envelopes):
        predicted = _extract(env, obs.metric)
        apes[obs.chip].setdefault(obs.metric, []).append(
            abs(predicted - obs.value) / abs(obs.value)
        )
    for chip in chips:
        per_metric = {
            metric: 100.0 * sum(values) / len(values)
            for metric, values in apes[chip].items()
        }
        all_values = [v for values in apes[chip].values() for v in values]
        per_metric["overall"] = 100.0 * sum(all_values) / len(all_values)
        mape[chip] = per_metric
        per_chip_overall.append(per_metric["overall"])

    from repro.study.frame import ResultFrame

    result = CalibrationResult(
        spec=spec.to_dict(),
        trace_source=trace.source,
        trace_digest=trace.digest(),
        backend=resolved_backend,
        fitted={chip: dict(incumbent[chip]) for chip in chips},
        anchors={chip: dict(anchors[chip]) for chip in chips},
        mape=mape,
        overall_mape_pct=sum(per_chip_overall) / len(per_chip_overall),
        rounds=rounds_run,
        cells_evaluated=cells,
        frame=ResultFrame.from_envelopes(final_envelopes),
    )
    if out_dir is not None:
        result.save(Path(out_dir) / "calibration.json")
    return result
