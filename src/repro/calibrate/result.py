"""The calibration artifact: fitted knobs and per-chip MAPE, as plain data.

A :class:`CalibrationResult` is deterministic by construction — no
timestamps, no environment capture, canonical JSON with sorted keys — so
the acceptance contract "same seed + trace -> byte-identical result" is a
string comparison.  The final-evaluation envelopes ride along on a
non-serialized ``frame`` attribute so MAPE tables stay queryable through
:class:`repro.study.frame.ResultFrame` without bloating the artifact.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Mapping

from repro.errors import CalibrationError

__all__ = ["CalibrationResult"]


def _round6(value: float) -> float:
    """Stable rounding for serialized floats (6 significant decimals)."""
    return float(f"{value:.6g}")


@dataclasses.dataclass
class CalibrationResult:
    """Outcome of one :func:`repro.calibrate.run_calibration` run."""

    #: The search that produced this result (``CalibrationSpec.to_dict()``).
    spec: dict[str, Any]
    #: Source label and content hash of the fitted trace.
    trace_source: str
    trace_digest: str
    #: Execution backend the candidate sweeps ran through.
    backend: str
    #: chip -> knob -> fitted value.
    fitted: dict[str, dict[str, float]]
    #: chip -> knob -> paper-anchored default (what the search brackets).
    anchors: dict[str, dict[str, float]]
    #: chip -> metric -> MAPE in percent, plus an ``"overall"`` key per chip.
    mape: dict[str, dict[str, float]]
    #: Mean of the per-chip overall MAPEs, in percent.
    overall_mape_pct: float
    #: Rounds executed (1 coarse + refinements) and total cells evaluated.
    rounds: int
    cells_evaluated: int
    #: Final-evaluation envelopes as a queryable frame (not serialized).
    frame: Any | None = dataclasses.field(default=None, compare=False, repr=False)

    def to_dict(self) -> dict[str, Any]:
        """Plain-data form with stable key order and rounded floats."""
        return {
            "kind": "calibration-result",
            "spec": self.spec,
            "trace_source": self.trace_source,
            "trace_digest": self.trace_digest,
            "backend": self.backend,
            "fitted": {
                chip: {k: _round6(v) for k, v in sorted(knobs.items())}
                for chip, knobs in sorted(self.fitted.items())
            },
            "anchors": {
                chip: {k: _round6(v) for k, v in sorted(knobs.items())}
                for chip, knobs in sorted(self.anchors.items())
            },
            "mape": {
                chip: {m: _round6(v) for m, v in sorted(metrics.items())}
                for chip, metrics in sorted(self.mape.items())
            },
            "overall_mape_pct": _round6(self.overall_mape_pct),
            "rounds": self.rounds,
            "cells_evaluated": self.cells_evaluated,
        }

    def to_json(self) -> str:
        """Canonical JSON: sorted keys, compact separators, trailing newline."""
        return (
            json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
            + "\n"
        )

    def save(self, path: str | Path) -> Path:
        """Write the canonical JSON artifact, creating parent directories."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json())
        return path

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CalibrationResult":
        """Rebuild from :meth:`to_dict` data; malformed payloads raise."""
        if data.get("kind") != "calibration-result":
            raise CalibrationError(
                "payload is not a calibration result (missing kind tag)"
            )
        try:
            return cls(
                spec=dict(data["spec"]),
                trace_source=str(data["trace_source"]),
                trace_digest=str(data["trace_digest"]),
                backend=str(data["backend"]),
                fitted={c: dict(k) for c, k in data["fitted"].items()},
                anchors={c: dict(k) for c, k in data["anchors"].items()},
                mape={c: dict(m) for c, m in data["mape"].items()},
                overall_mape_pct=float(data["overall_mape_pct"]),
                rounds=int(data["rounds"]),
                cells_evaluated=int(data["cells_evaluated"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise CalibrationError(f"malformed calibration result: {exc}") from None

    @classmethod
    def load(cls, path: str | Path) -> "CalibrationResult":
        """Load a saved ``calibration.json`` artifact."""
        path = Path(path)
        try:
            data = json.loads(path.read_text())
        except OSError as exc:
            raise CalibrationError(f"cannot read result file {path}: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise CalibrationError(
                f"result file {path} is not valid JSON: {exc}"
            ) from exc
        return cls.from_dict(data)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def mape_table(self) -> tuple[list[str], list[list[str]]]:
        """(headers, rows) of the per-chip MAPE report, in percent."""
        metrics = sorted(
            {m for per_chip in self.mape.values() for m in per_chip if m != "overall"}
        )
        headers = ["Chip"] + [f"{m} MAPE %" for m in metrics] + ["Overall %"]
        rows: list[list[str]] = []
        for chip in sorted(self.mape):
            per_chip = self.mape[chip]
            rows.append(
                [chip]
                + [
                    f"{per_chip[m]:.3f}" if m in per_chip else "-"
                    for m in metrics
                ]
                + [f"{per_chip.get('overall', float('nan')):.3f}"]
            )
        rows.append(
            ["all"]
            + ["-"] * len(metrics)
            + [f"{self.overall_mape_pct:.3f}"]
        )
        return headers, rows
