"""The calibration parameter space: which knobs to fit, where, and how hard.

A :class:`CalibrationSpec` is frozen and hashable like every other spec in
the repo: its canonical JSON is its identity, so a result artifact can name
exactly which search produced it.  Bounds are *relative* brackets around the
paper-anchored defaults (:func:`repro.calibration.overrides.anchored_knob_value`)
— the search never needs absolute units, and a bracket of ``(0.5, 1.6)``
reads as "the anchor is wrong by at most -50 %/+60 %".
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any, Mapping, Sequence

from repro.calibration.overrides import validate_knob
from repro.errors import CalibrationError, UnknownChipError
from repro.soc.catalog import CHIP_NAMES

__all__ = ["ParamSpec", "CalibrationSpec", "default_spec", "DEFAULT_KNOBS"]

#: The knob set the default search fits: every Figure-2 peak, both Figure-4
#: power anchors, and the two Figure-1 STREAM bandwidths.
DEFAULT_KNOBS: tuple[str, ...] = (
    "gemm.peak_gflops.cpu-accelerate",
    "gemm.peak_gflops.gpu-naive",
    "gemm.peak_gflops.gpu-cutlass",
    "gemm.peak_gflops.gpu-mps",
    "gemm.power_w.cpu-accelerate",
    "gemm.power_w.gpu-mps",
    "stream.gbs.cpu",
    "stream.gbs.gpu",
)


@dataclasses.dataclass(frozen=True)
class ParamSpec:
    """One searched knob with its relative bracket around the anchor."""

    knob: str
    lo_rel: float = 0.5
    hi_rel: float = 1.6

    def __post_init__(self) -> None:
        validate_knob(self.knob)
        if not (0.0 < self.lo_rel < self.hi_rel):
            raise CalibrationError(
                f"knob {self.knob!r}: bounds must satisfy 0 < lo_rel < hi_rel, "
                f"got ({self.lo_rel}, {self.hi_rel})"
            )

    def to_dict(self) -> dict[str, Any]:
        """Plain-data form for the spec's canonical JSON."""
        return {"knob": self.knob, "lo_rel": self.lo_rel, "hi_rel": self.hi_rel}


@dataclasses.dataclass(frozen=True)
class CalibrationSpec:
    """A frozen, hashable description of one calibration search.

    ``coarse_points`` grid points cover each knob's bracket in the first
    round; each of the ``refine_rounds`` refinement rounds re-grids the
    same point count over the +/- one-grid-step neighbourhood of the
    incumbent, shrinking the bracket by ~``2/(points-1)`` per round.
    ``tolerance`` freezes a knob early once its bracket's relative width
    drops below it.
    """

    chips: tuple[str, ...] = CHIP_NAMES
    params: tuple[ParamSpec, ...] = tuple(ParamSpec(k) for k in DEFAULT_KNOBS)
    coarse_points: int = 9
    refine_rounds: int = 4
    tolerance: float = 1e-4
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.chips:
            raise CalibrationError("a calibration spec needs at least one chip")
        resolved = []
        for name in self.chips:
            key = name.strip().upper()
            if key not in CHIP_NAMES:
                raise UnknownChipError(name, CHIP_NAMES)
            resolved.append(key)
        if len(set(resolved)) != len(resolved):
            raise CalibrationError("duplicate chips in calibration spec")
        object.__setattr__(self, "chips", tuple(resolved))
        if not self.params:
            raise CalibrationError("a calibration spec needs at least one knob")
        knobs = [p.knob for p in self.params]
        if len(set(knobs)) != len(knobs):
            raise CalibrationError("duplicate knobs in calibration spec")
        if self.coarse_points < 3:
            raise CalibrationError(
                f"coarse grid needs >= 3 points, got {self.coarse_points}"
            )
        if self.refine_rounds < 0:
            raise CalibrationError("refine_rounds cannot be negative")
        if not (self.tolerance > 0.0):
            raise CalibrationError("tolerance must be positive")

    @property
    def knobs(self) -> tuple[str, ...]:
        """The searched knob names, in parameter order."""
        return tuple(p.knob for p in self.params)

    def to_dict(self) -> dict[str, Any]:
        """Plain-data form (round-trips through :meth:`from_dict`)."""
        return {
            "chips": list(self.chips),
            "params": [p.to_dict() for p in self.params],
            "coarse_points": self.coarse_points,
            "refine_rounds": self.refine_rounds,
            "tolerance": self.tolerance,
            "seed": self.seed,
        }

    def canonical_json(self) -> str:
        """Canonical JSON (sorted keys, compact) — the spec's identity."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    def spec_hash(self) -> str:
        """Stable content hash of the canonical JSON."""
        return hashlib.sha256(self.canonical_json().encode()).hexdigest()[:16]

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CalibrationSpec":
        try:
            params = tuple(ParamSpec(**p) for p in data.get("params", ()))
            return cls(
                chips=tuple(data.get("chips", CHIP_NAMES)),
                params=params,
                coarse_points=int(data.get("coarse_points", 9)),
                refine_rounds=int(data.get("refine_rounds", 4)),
                tolerance=float(data.get("tolerance", 1e-4)),
                seed=int(data.get("seed", 0)),
            )
        except (TypeError, ValueError) as exc:
            raise CalibrationError(f"malformed calibration spec: {exc}") from None


def default_spec(
    chips: Sequence[str] | None = None,
    *,
    knobs: Sequence[str] | None = None,
    coarse_points: int = 9,
    refine_rounds: int = 4,
    tolerance: float = 1e-4,
    seed: int = 0,
) -> CalibrationSpec:
    """The standard search: :data:`DEFAULT_KNOBS` over the study chips."""
    return CalibrationSpec(
        chips=tuple(chips) if chips is not None else CHIP_NAMES,
        params=tuple(ParamSpec(k) for k in (knobs or DEFAULT_KNOBS)),
        coarse_points=coarse_points,
        refine_rounds=refine_rounds,
        tolerance=tolerance,
        seed=seed,
    )
