"""Measured traces: the ground truth the calibration loop fits against.

A :class:`MeasuredTrace` is a normalized bag of observations —
``(chip, workload, impl/target, size, metric) -> value`` — with loaders for
the paper's published numbers (Figures 1, 2 and 4 via
:mod:`repro.calibration.paper`) and for ``powermetrics`` trace text (via
:mod:`repro.powermetrics.parse`).  Everything the search engine consumes is
an observation; where a number came from (a figure, a powermetrics capture,
a synthetic forward run) is just the trace's ``source`` label.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from pathlib import Path
from typing import Any, Iterable, Iterator, Mapping, Sequence

from repro.calibration import paper
from repro.errors import CalibrationError, UnknownChipError
from repro.soc.catalog import CHIP_NAMES

__all__ = ["Observation", "MeasuredTrace", "load_trace", "METRICS"]

#: Workload kinds a trace may observe, and the metric each one reports.
_WORKLOAD_METRICS: Mapping[str, str] = {
    "gemm": "gflops",
    "powered-gemm": "power_w",
    "stream": "gbs",
}

#: The metrics traces can carry (values are all "higher is the measurement",
#: never derived ratios — efficiency is computed, not observed).
METRICS: tuple[str, ...] = ("gflops", "power_w", "gbs")


@dataclasses.dataclass(frozen=True, order=True)
class Observation:
    """One measured number, normalized to the simulator's vocabulary.

    ``impl_key`` is a GEMM implementation key for the gemm workloads and the
    STREAM target (``"cpu"``/``"gpu"``) for ``stream``.  ``size`` is the
    matrix dimension for the gemm workloads and 0 for STREAM (the paper's
    default footprint).
    """

    chip: str
    workload: str
    impl_key: str
    size: int
    metric: str
    value: float

    def __post_init__(self) -> None:
        if self.chip.strip().upper() not in CHIP_NAMES:
            raise CalibrationError(
                f"observation names unknown chip {self.chip!r}; "
                f"calibration targets the catalog chips: {', '.join(CHIP_NAMES)}"
            )
        expected = _WORKLOAD_METRICS.get(self.workload)
        if expected is None:
            raise CalibrationError(
                f"observation workload must be one of "
                f"{', '.join(_WORKLOAD_METRICS)}, got {self.workload!r}"
            )
        if self.metric != expected:
            raise CalibrationError(
                f"workload {self.workload!r} reports {expected!r}, "
                f"not {self.metric!r}"
            )
        if self.workload == "stream":
            if self.impl_key not in ("cpu", "gpu"):
                raise CalibrationError(
                    f"STREAM observations target 'cpu' or 'gpu', "
                    f"got {self.impl_key!r}"
                )
        elif self.size <= 0:
            raise CalibrationError(
                f"gemm observations need a positive size, got {self.size}"
            )
        if not (self.value > 0.0):
            raise CalibrationError(
                f"observed {self.metric} must be positive, got {self.value!r}"
            )

    def to_dict(self) -> dict[str, Any]:
        """Plain-data form for trace serialization."""
        return {
            "chip": self.chip,
            "workload": self.workload,
            "impl_key": self.impl_key,
            "size": self.size,
            "metric": self.metric,
            "value": self.value,
        }


def _check_chips(chips: Sequence[str] | None) -> tuple[str, ...]:
    if chips is None:
        return paper.CHIPS
    resolved = []
    for name in chips:
        key = name.strip().upper()
        if key not in CHIP_NAMES:
            raise UnknownChipError(name, CHIP_NAMES)
        resolved.append(key)
    if not resolved:
        raise CalibrationError("a trace needs at least one chip")
    return tuple(resolved)


@dataclasses.dataclass(frozen=True)
class MeasuredTrace:
    """An immutable, content-addressable set of observations."""

    observations: tuple[Observation, ...]
    source: str = "unknown"

    def __post_init__(self) -> None:
        if not self.observations:
            raise CalibrationError("a measured trace needs observations")
        seen: set[tuple] = set()
        for obs in self.observations:
            key = (obs.chip, obs.workload, obs.impl_key, obs.size, obs.metric)
            if key in seen:
                raise CalibrationError(
                    f"duplicate observation for {key} in trace"
                )
            seen.add(key)

    def __iter__(self) -> Iterator[Observation]:
        return iter(self.observations)

    def __len__(self) -> int:
        return len(self.observations)

    @property
    def chips(self) -> tuple[str, ...]:
        """Chips present, in catalog (generational) order."""
        present = {obs.chip for obs in self.observations}
        return tuple(c for c in CHIP_NAMES if c in present)

    def for_chip(self, chip: str) -> tuple[Observation, ...]:
        """The observations for one chip (case-insensitive; may be empty)."""
        key = chip.strip().upper()
        return tuple(o for o in self.observations if o.chip == key)

    def digest(self) -> str:
        """Stable content hash of the observation set."""
        return hashlib.sha256(self.canonical_json().encode()).hexdigest()[:16]

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Plain-data form with observations in sorted order."""
        return {
            "source": self.source,
            "observations": [o.to_dict() for o in sorted(self.observations)],
        }

    def canonical_json(self) -> str:
        """Canonical JSON (sorted keys and observations) — the trace identity."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    def save(self, path: str | Path) -> Path:
        """Write the canonical JSON trace file (see :func:`load_trace`)."""
        path = Path(path)
        path.write_text(self.canonical_json() + "\n")
        return path

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "MeasuredTrace":
        """Rebuild from :meth:`to_dict` data; malformed payloads raise."""
        try:
            raw = data["observations"]
        except (KeyError, TypeError):
            raise CalibrationError(
                "trace payload needs an 'observations' list"
            ) from None
        if not isinstance(raw, list):
            raise CalibrationError("trace 'observations' must be a list")
        observations = []
        for i, entry in enumerate(raw):
            try:
                observations.append(Observation(**entry))
            except TypeError as exc:
                raise CalibrationError(
                    f"observation {i} is malformed: {exc}"
                ) from None
        return cls(
            observations=tuple(observations),
            source=str(data.get("source", "unknown")),
        )

    # ------------------------------------------------------------------
    # Loaders
    # ------------------------------------------------------------------
    @classmethod
    def from_paper(cls, chips: Sequence[str] | None = None) -> "MeasuredTrace":
        """The paper's published numbers as a trace.

        Peak GFLOPS from Figure 2 at the paper's peak size, watts derived
        from Figures 2 and 4 (watts = GFLOPS / (GFLOPS/W)), and the
        Figure-1 best-kernel STREAM bandwidths.
        """
        resolved = _check_chips(chips)
        peak_size = paper.GEMM_SIZES[-1]
        observations: list[Observation] = []
        for chip in resolved:
            for impl, table in paper.FIG2_PEAK_GFLOPS.items():
                observations.append(
                    Observation(chip, "gemm", impl, peak_size, "gflops", table[chip])
                )
            for impl, eff in paper.FIG4_EFFICIENCY_GFLOPS_PER_W.items():
                watts = paper.FIG2_PEAK_GFLOPS[impl][chip] / eff[chip]
                observations.append(
                    Observation(chip, "powered-gemm", impl, peak_size, "power_w", watts)
                )
            observations.append(
                Observation(
                    chip, "stream", "cpu", 0, "gbs", paper.FIG1_CPU_MAX_GBS[chip]
                )
            )
            observations.append(
                Observation(
                    chip, "stream", "gpu", 0, "gbs", paper.FIG1_GPU_MAX_GBS[chip]
                )
            )
        return cls(observations=tuple(observations), source="paper")

    @classmethod
    def from_powermetrics(
        cls,
        text: str,
        *,
        chip: str,
        impl_key: str = "gpu-mps",
        size: int | None = None,
        source: str = "powermetrics",
    ) -> "MeasuredTrace":
        """A trace from raw ``powermetrics`` output text.

        The samples' mean combined (CPU+GPU) draw becomes one ``power_w``
        observation for ``(chip, impl_key, size)`` — the paper's protocol
        for Figures 3-4 (section 3.3).

        Raises
        ------
        CalibrationError
            Wrapping the underlying :class:`~repro.errors.ParseError` for
            malformed trace text, so callers see one error family.
        """
        from repro.errors import ParseError
        from repro.powermetrics.parse import parse_samples

        try:
            samples = parse_samples(text)
        except ParseError as exc:
            raise CalibrationError(f"unreadable powermetrics trace: {exc}") from exc
        if not samples:
            raise CalibrationError("powermetrics trace contains no samples")
        mean_w = sum(s.combined_mw for s in samples) / len(samples) / 1000.0
        observation = Observation(
            chip=chip.strip().upper(),
            workload="powered-gemm",
            impl_key=impl_key,
            size=paper.GEMM_SIZES[-1] if size is None else size,
            metric="power_w",
            value=mean_w,
        )
        return cls(observations=(observation,), source=source)

    @classmethod
    def merge(cls, traces: Iterable["MeasuredTrace"], *, source: str) -> "MeasuredTrace":
        """Union of several traces (duplicate observations raise)."""
        observations: list[Observation] = []
        for trace in traces:
            observations.extend(trace.observations)
        return cls(observations=tuple(observations), source=source)


def load_trace(path: str | Path) -> MeasuredTrace:
    """Load a JSON trace file saved by :meth:`MeasuredTrace.save`.

    Raises
    ------
    CalibrationError
        For missing files, invalid JSON, or malformed observations.
    """
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise CalibrationError(f"cannot read trace file {path}: {exc}") from exc
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise CalibrationError(f"trace file {path} is not valid JSON: {exc}") from exc
    if not isinstance(data, Mapping):
        raise CalibrationError(f"trace file {path} must hold a JSON object")
    return MeasuredTrace.from_dict(data)
