"""Calibration layer: paper-reported targets and derived model parameters.

``repro.calibration.paper`` transcribes every number the paper reports
(Figures 1-4, the HPC-perspective reference points, the experiment protocol
constants).  ``repro.calibration.gemm`` and ``repro.calibration.stream`` turn
those targets into roofline efficiencies, overheads and power draws for the
simulator.  Nothing outside this package hard-codes a measured number.
"""

from repro.calibration import paper
from repro.calibration.gemm import (
    GemmCalibration,
    anchored_overhead_s,
    anchored_peak_gflops,
    anchored_power_w,
    anchored_traffic_read_factor,
    build_gemm_operation,
    gemm_calibration,
    gemm_flops,
    gemm_power_draws,
    max_anchorable_peak_gflops,
)
from repro.calibration.overrides import (
    CalibrationOverlay,
    anchored_knob_value,
    derive_calibrated_chip,
    knob_value,
    overlay_for,
    validate_knob,
)
from repro.calibration.stream import (
    StreamCalibration,
    cpu_stream_bandwidth_gbs,
    gpu_stream_bandwidth_gbs,
    stream_calibration,
    stream_power_draws,
)

__all__ = [
    "paper",
    "CalibrationOverlay",
    "derive_calibrated_chip",
    "overlay_for",
    "knob_value",
    "validate_knob",
    "anchored_knob_value",
    "anchored_peak_gflops",
    "anchored_power_w",
    "anchored_overhead_s",
    "anchored_traffic_read_factor",
    "max_anchorable_peak_gflops",
    "GemmCalibration",
    "gemm_calibration",
    "gemm_flops",
    "gemm_power_draws",
    "build_gemm_operation",
    "StreamCalibration",
    "stream_calibration",
    "cpu_stream_bandwidth_gbs",
    "gpu_stream_bandwidth_gbs",
    "stream_power_draws",
]
