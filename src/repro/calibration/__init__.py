"""Calibration layer: paper-reported targets and derived model parameters.

``repro.calibration.paper`` transcribes every number the paper reports
(Figures 1-4, the HPC-perspective reference points, the experiment protocol
constants).  ``repro.calibration.gemm`` and ``repro.calibration.stream`` turn
those targets into roofline efficiencies, overheads and power draws for the
simulator.  Nothing outside this package hard-codes a measured number.
"""

from repro.calibration import paper
from repro.calibration.gemm import (
    GemmCalibration,
    build_gemm_operation,
    gemm_calibration,
    gemm_flops,
    gemm_power_draws,
)
from repro.calibration.stream import (
    StreamCalibration,
    cpu_stream_bandwidth_gbs,
    gpu_stream_bandwidth_gbs,
    stream_calibration,
    stream_power_draws,
)

__all__ = [
    "paper",
    "GemmCalibration",
    "gemm_calibration",
    "gemm_flops",
    "gemm_power_draws",
    "build_gemm_operation",
    "StreamCalibration",
    "stream_calibration",
    "cpu_stream_bandwidth_gbs",
    "gpu_stream_bandwidth_gbs",
    "stream_power_draws",
]
