"""GEMM calibration: (chip, implementation) -> simulator parameters.

For the four study chips the efficiency curves are anchored so that the
best-of-repeats GFLOPS at the paper's peak size reproduces Figure 2, and the
saturated power draws reproduce Figures 3-4.  For chips outside the catalog
(user-defined :class:`~repro.soc.chip.ChipSpec`) a generic per-implementation
profile keeps the library usable — custom chips get plausible, not calibrated,
results.
"""

from __future__ import annotations

import dataclasses
from typing import Mapping

from repro.calibration import paper
from repro.calibration import overrides as _overrides
from repro.errors import CalibrationError
from repro.sim.efficiency import EfficiencyCurve, LogisticCurve, PeakDecayCurve
from repro.sim.engine import EngineKind, Operation
from repro.sim.roofline import OpCost
from repro.soc.catalog import base_chip_name
from repro.soc.chip import ChipSpec
from repro.soc.power import PowerComponent

__all__ = [
    "GemmCalibration",
    "gemm_calibration",
    "gemm_flops",
    "gemm_power_draws",
    "build_gemm_operation",
    "KNOWN_IMPL_KEYS",
    "anchored_peak_gflops",
    "anchored_power_w",
    "anchored_overhead_s",
    "anchored_traffic_read_factor",
    "max_anchorable_peak_gflops",
]

#: Implementation keys understood by this calibration layer.
KNOWN_IMPL_KEYS: tuple[str, ...] = (
    "cpu-single",
    "cpu-omp",
    "cpu-accelerate",
    "gpu-naive",
    "gpu-cutlass",
    "gpu-mps",
    "ane-fp16",
    "gpu-fp64-emulated",
)

_ENGINE_FOR_IMPL: dict[str, EngineKind] = {
    "cpu-single": EngineKind.CPU_SCALAR,
    "cpu-omp": EngineKind.CPU_SIMD,
    "cpu-accelerate": EngineKind.AMX,
    "gpu-naive": EngineKind.GPU,
    "gpu-cutlass": EngineKind.GPU,
    "gpu-mps": EngineKind.GPU,
    "ane-fp16": EngineKind.ANE,
    "gpu-fp64-emulated": EngineKind.GPU,
}

#: Fixed dispatch overheads (seconds).  GPU command-buffer round trips cost
#: hundreds of microseconds; Accelerate calls a few microseconds; the OpenMP
#: fork/join barrier tens of microseconds.
_OVERHEAD_S: dict[str, float] = {
    "cpu-single": 2.0e-6,
    "cpu-omp": 30.0e-6,
    "cpu-accelerate": 4.0e-6,
    "gpu-naive": 250.0e-6,
    "gpu-cutlass": 250.0e-6,
    "gpu-mps": 150.0e-6,
    "ane-fp16": 500.0e-6,  # Core ML dispatch is heavyweight
    "gpu-fp64-emulated": 250.0e-6,
}

#: DRAM traffic factor applied to the 2 * 4n^2 input bytes: how many times
#: the inputs effectively cross the memory interface given the blocking
#: strategy (outputs counted once).
_TRAFFIC_READ_FACTOR: dict[str, float] = {
    "cpu-single": 12.0,
    "cpu-omp": 3.0,
    "cpu-accelerate": 1.2,
    "gpu-naive": 8.0,
    "gpu-cutlass": 4.0,
    "gpu-mps": 1.2,
    "ane-fp16": 1.2,
    "gpu-fp64-emulated": 2.4,
}

#: Link efficiency of the engine's path to unified memory.
_MEMORY_EFFICIENCY: dict[EngineKind, float] = {
    EngineKind.CPU_SCALAR: 0.60,
    EngineKind.CPU_SIMD: 0.80,
    EngineKind.AMX: 0.80,
    EngineKind.GPU: 0.85,
    EngineKind.ANE: 0.70,
}

#: Peak GFLOPS targets for the study chips (Figure 2; CPU loop targets are
#: read off the figure, the rest are quoted in section 5.2).
_PEAK_GFLOPS: dict[str, dict[str, float]] = {
    "cpu-single": {"M1": 1.1, "M2": 1.25, "M3": 1.45, "M4": 1.6},
    "cpu-omp": {"M1": 5.5, "M2": 6.5, "M3": 7.5, "M4": 8.5},
    "cpu-accelerate": dict(paper.FIG2_PEAK_GFLOPS["cpu-accelerate"]),
    "gpu-naive": dict(paper.FIG2_PEAK_GFLOPS["gpu-naive"]),
    "gpu-cutlass": dict(paper.FIG2_PEAK_GFLOPS["gpu-cutlass"]),
    "gpu-mps": dict(paper.FIG2_PEAK_GFLOPS["gpu-mps"]),
}

#: Saturated power draws in watts for the study chips, chosen so that the
#: combined CPU+GPU figure reproduces Figures 3-4 (see DESIGN.md section 4).
#: Keys: implementation -> chip -> (cpu_w, gpu_w).
_POWER_TARGETS_W: dict[str, dict[str, tuple[float, float]]] = {
    "cpu-single": {
        "M1": (3.0, 0.0),
        "M2": (3.5, 0.0),
        "M3": (3.8, 0.0),
        "M4": (4.2, 0.0),
    },
    "cpu-omp": {
        "M1": (9.0, 0.0),
        "M2": (11.0, 0.0),
        "M3": (9.5, 0.0),
        "M4": (13.0, 0.0),
    },
    "cpu-accelerate": {
        "M1": (3.6, 0.0),
        "M2": (5.45, 0.0),
        "M3": (5.11, 0.0),
        "M4": (6.48, 0.0),
    },
    "gpu-naive": {
        "M1": (0.5, 4.5),
        "M2": (0.5, 7.0),
        "M3": (0.5, 6.5),
        "M4": (0.5, 11.3),
    },
    "gpu-cutlass": {
        "M1": (0.5, 8.0),
        "M2": (0.5, 10.0),
        "M3": (0.5, 9.0),
        "M4": (0.5, 19.3),
    },
    "gpu-mps": {
        "M1": (0.48, 6.0),
        "M2": (0.48, 5.1),
        "M3": (0.48, 4.9),
        "M4": (0.48, 8.3),
    },
    "ane-fp16": {
        "M1": (0.5, 0.0),
        "M2": (0.5, 0.0),
        "M3": (0.5, 0.0),
        "M4": (0.5, 0.0),
    },
    "gpu-fp64-emulated": {
        "M1": (0.5, 7.0),
        "M2": (0.5, 8.5),
        "M3": (0.5, 8.0),
        "M4": (0.5, 14.0),
    },
}

#: ANE draws its own rail; watts while active (efficient, section 2.3).
_ANE_POWER_W: dict[str, float] = {"M1": 3.0, "M2": 3.5, "M3": 3.8, "M4": 4.5}

#: DRAM draw while a GEMM streams operands (does not enter the CPU+GPU figure).
_DRAM_DRAW_W: float = 0.4

#: Extension implementations: efficiency relative to the engine peak.
_ANE_EFFICIENCY: float = 0.55
_FP64_EMU_SLOWDOWN: float = 20.0  # double-float arithmetic costs ~20x FP32


@dataclasses.dataclass(frozen=True)
class GemmCalibration:
    """Resolved simulator parameters for one (chip, implementation) pair."""

    impl_key: str
    engine: EngineKind
    curve: EfficiencyCurve
    overhead_s: float
    traffic_read_factor: float
    memory_efficiency: float
    power_cpu_w: float
    power_gpu_w: float
    power_ane_w: float
    power_ramp: EfficiencyCurve
    max_n: int | None
    noise_sigma: float = 0.012

    def efficiency(self, n: int) -> float:
        """Compute efficiency (fraction of engine peak) at dimension ``n``."""
        return self.curve(float(n))

    def supports(self, n: int) -> bool:
        """Whether this implementation executes dimension ``n`` (section 4)."""
        return self.max_n is None or n <= self.max_n


def gemm_flops(n: int) -> int:
    """Paper's FLOP count for an n x n GEMM."""
    return paper.gemm_flop_count(n)


def _curve_family(impl_key: str) -> tuple[str, float, float]:
    """(family, x_half/rise, steepness) describing the ramp shape."""
    table = {
        "cpu-single": ("peak-decay", 40.0, 2.0),
        "cpu-omp": ("logistic", 128.0, 1.5),
        "cpu-accelerate": ("logistic", 256.0, 1.5),
        "gpu-naive": ("logistic", 512.0, 1.4),
        "gpu-cutlass": ("logistic", 512.0, 1.4),
        "gpu-mps": ("logistic", 640.0, 1.3),
        "ane-fp16": ("logistic", 640.0, 1.3),
        "gpu-fp64-emulated": ("logistic", 512.0, 1.4),
    }
    return table[impl_key]


def _reference_size(impl_key: str) -> int:
    """Size at which the paper's peak GFLOPS occurs."""
    if impl_key in ("cpu-single", "cpu-omp"):
        return paper.CPU_LOOP_MAX_N
    return paper.GEMM_SIZES[-1]


def _proto_curve_max(impl_key: str) -> float:
    """Max of the unit-peak ramp over the paper's size sweep."""
    family, x_half, steepness = _curve_family(impl_key)
    if family == "peak-decay":
        proto: EfficiencyCurve = PeakDecayCurve(
            peak=1.0,
            rise_half=x_half,
            decay_start=724.0,
            rise_steepness=steepness,
            decay_exponent=0.35,
        )
    else:
        proto = LogisticCurve(peak=1.0, x_half=x_half, steepness=steepness)
    sizes = [n for n in paper.GEMM_SIZES if n <= _reference_size(impl_key)]
    return max(proto(float(n)) for n in sizes)


def max_anchorable_peak_gflops(chip: ChipSpec, impl_key: str) -> float:
    """Largest peak-GFLOPS target the curve family can express for a chip.

    Targets above this would need a compute efficiency over 1.0 — the
    calibration search clamps its brackets here.
    """
    return _engine_peak_flops(chip, impl_key) * _proto_curve_max(impl_key) / 1e9


def _build_curve(impl_key: str, target_eff: float) -> EfficiencyCurve:
    """A curve whose maximum over the paper's size sweep equals ``target_eff``."""
    family, x_half, steepness = _curve_family(impl_key)
    proto_max = _proto_curve_max(impl_key)
    peak = target_eff / proto_max
    if not (0.0 < peak <= 1.0):
        raise CalibrationError(
            f"{impl_key}: derived peak efficiency {peak:.3f} outside (0, 1]; "
            f"check engine peak vs target"
        )
    if family == "peak-decay":
        return PeakDecayCurve(
            peak=peak,
            rise_half=x_half,
            decay_start=724.0,
            rise_steepness=steepness,
            decay_exponent=0.35,
        )
    return LogisticCurve(peak=peak, x_half=x_half, steepness=steepness)


def _engine_peak_flops(chip: ChipSpec, impl_key: str) -> float:
    engine = _ENGINE_FOR_IMPL[impl_key]
    if engine is EngineKind.CPU_SCALAR:
        return chip.performance_cluster.scalar_fp32_flops()
    if engine is EngineKind.CPU_SIMD:
        return chip.cpu_simd_fp32_flops()
    if engine is EngineKind.AMX:
        return chip.amx.peak_fp32_flops()
    if engine is EngineKind.GPU:
        return chip.gpu.peak_fp32_flops()
    if engine is EngineKind.ANE:
        return chip.neural_engine.peak_fp16_flops()
    raise CalibrationError(f"no engine peak for {impl_key}")


#: Generic target efficiencies for non-catalog chips, as a fraction of the
#: engine peak (plausible values drawn from the study-chip averages).
_GENERIC_EFFICIENCY: dict[str, float] = {
    "cpu-single": 0.17,
    "cpu-omp": 0.011,
    "cpu-accelerate": 0.88,
    "gpu-naive": 0.11,
    "gpu-cutlass": 0.065,
    "gpu-mps": 0.63,
    "ane-fp16": _ANE_EFFICIENCY,
    "gpu-fp64-emulated": 0.63 / _FP64_EMU_SLOWDOWN,
}

#: Generic utilisation of the power envelope for non-catalog chips.
_GENERIC_UTILISATION: dict[str, tuple[float, float]] = {
    "cpu-single": (0.25, 0.0),
    "cpu-omp": (0.75, 0.0),
    "cpu-accelerate": (0.35, 0.0),
    "gpu-naive": (0.04, 0.55),
    "gpu-cutlass": (0.04, 0.85),
    "gpu-mps": (0.04, 0.42),
    "ane-fp16": (0.04, 0.0),
    "gpu-fp64-emulated": (0.04, 0.65),
}


def anchored_peak_gflops(chip_name: str, impl_key: str) -> float:
    """The Figure-2 peak-GFLOPS anchor for a catalog chip (base-resolved).

    Raises :class:`CalibrationError` when no anchor exists for the pair.
    """
    targets = _PEAK_GFLOPS.get(impl_key, {})
    key = base_chip_name(chip_name)
    if key not in targets:
        raise CalibrationError(
            f"no anchored peak-GFLOPS target for ({chip_name!r}, {impl_key!r})"
        )
    return targets[key]


def anchored_power_w(chip_name: str, impl_key: str) -> float:
    """Combined CPU+GPU saturated watts anchor for a catalog chip.

    Raises :class:`CalibrationError` when no anchor exists for the pair.
    """
    table = _POWER_TARGETS_W.get(impl_key, {})
    key = base_chip_name(chip_name)
    if key not in table:
        raise CalibrationError(
            f"no anchored power target for ({chip_name!r}, {impl_key!r})"
        )
    cpu_w, gpu_w = table[key]
    return cpu_w + gpu_w


def anchored_overhead_s(impl_key: str) -> float:
    """Fixed dispatch overhead anchor (seconds) for an implementation."""
    try:
        return _OVERHEAD_S[impl_key]
    except KeyError:
        raise CalibrationError(
            f"no anchored overhead for implementation {impl_key!r}"
        ) from None


def anchored_traffic_read_factor(impl_key: str) -> float:
    """DRAM input-traffic factor anchor for an implementation."""
    try:
        return _TRAFFIC_READ_FACTOR[impl_key]
    except KeyError:
        raise CalibrationError(
            f"no anchored traffic factor for implementation {impl_key!r}"
        ) from None


def _effective_peak_gflops(chip: ChipSpec, impl_key: str) -> float | None:
    """Peak-GFLOPS target after overlay knobs; ``None`` when generic."""
    override = _overrides.knob_value(chip.name, f"gemm.peak_gflops.{impl_key}")
    if override is not None:
        return override
    targets = _PEAK_GFLOPS.get(impl_key, {})
    return targets.get(base_chip_name(chip.name))


def _target_efficiency(chip: ChipSpec, impl_key: str) -> float:
    peak = _engine_peak_flops(chip, impl_key)
    if impl_key == "ane-fp16":
        return _ANE_EFFICIENCY
    if impl_key == "gpu-fp64-emulated":
        base = _effective_peak_gflops(chip, "gpu-mps")
        if base is None:
            return _GENERIC_EFFICIENCY[impl_key]
        return (base * 1e9 / peak) / _FP64_EMU_SLOWDOWN
    target = _effective_peak_gflops(chip, impl_key)
    if target is None:
        return _GENERIC_EFFICIENCY[impl_key]
    return target * 1e9 / peak


def _power_targets(chip: ChipSpec, impl_key: str) -> tuple[float, float, float]:
    """(cpu_w, gpu_w, ane_w) saturated draws."""
    base_key = base_chip_name(chip.name)
    ane_w = 0.0
    if impl_key == "ane-fp16":
        ane_w = _ANE_POWER_W.get(base_key, 3.5)
    table = _POWER_TARGETS_W.get(impl_key, {})
    if base_key in table:
        cpu_w, gpu_w = table[base_key]
    else:
        cpu_u, gpu_u = _GENERIC_UTILISATION[impl_key]
        from repro.soc.power import default_envelope_for

        envelope = default_envelope_for(chip.name)
        cpu_w = envelope.component(PowerComponent.CPU).at_utilisation(cpu_u)
        gpu_w = envelope.component(PowerComponent.GPU).at_utilisation(gpu_u)
        # Utilisation 0 still returns the idle floor; suppress to zero so
        # purely inactive rails do not appear as active draws.
        if gpu_u == 0.0:
            gpu_w = 0.0
        if cpu_u == 0.0:
            cpu_w = 0.0
    # A combined-watts knob scales both rails proportionally: a single
    # powermetrics CPU+GPU observation cannot split them.
    override = _overrides.knob_value(chip.name, f"gemm.power_w.{impl_key}")
    if override is not None and (cpu_w + gpu_w) > 0.0:
        scale = override / (cpu_w + gpu_w)
        cpu_w *= scale
        gpu_w *= scale
    return cpu_w, gpu_w, ane_w


def _power_ramp(impl_key: str) -> EfficiencyCurve:
    """How quickly the draw saturates with problem size (Figure 3 growth)."""
    if impl_key.startswith("cpu"):
        return LogisticCurve(peak=1.0, x_half=96.0, steepness=1.2)
    return LogisticCurve(peak=1.0, x_half=640.0, steepness=1.2)


def gemm_calibration(chip: ChipSpec, impl_key: str) -> GemmCalibration:
    """Resolved calibration for a chip/implementation pair.

    Raises
    ------
    CalibrationError
        If the implementation key is unknown.
    """
    if impl_key not in KNOWN_IMPL_KEYS:
        raise CalibrationError(
            f"unknown GEMM implementation key {impl_key!r}; "
            f"known: {', '.join(KNOWN_IMPL_KEYS)}"
        )
    engine = _ENGINE_FOR_IMPL[impl_key]
    target_eff = _target_efficiency(chip, impl_key)
    curve = _build_curve(impl_key, target_eff)
    cpu_w, gpu_w, ane_w = _power_targets(chip, impl_key)
    max_n = paper.CPU_LOOP_MAX_N if impl_key in ("cpu-single", "cpu-omp") else None
    overhead_s = _overrides.knob_value(chip.name, f"gemm.overhead_s.{impl_key}")
    traffic = _overrides.knob_value(
        chip.name, f"gemm.traffic_read_factor.{impl_key}"
    )
    return GemmCalibration(
        impl_key=impl_key,
        engine=engine,
        curve=curve,
        overhead_s=_OVERHEAD_S[impl_key] if overhead_s is None else overhead_s,
        traffic_read_factor=(
            _TRAFFIC_READ_FACTOR[impl_key] if traffic is None else traffic
        ),
        memory_efficiency=_MEMORY_EFFICIENCY[engine],
        power_cpu_w=cpu_w,
        power_gpu_w=gpu_w,
        power_ane_w=ane_w,
        power_ramp=_power_ramp(impl_key),
        max_n=max_n,
    )


def gemm_power_draws(
    chip: ChipSpec, impl_key: str, n: int
) -> dict[PowerComponent, float]:
    """Absolute component draws (W) while the GEMM runs at size ``n``."""
    cal = gemm_calibration(chip, impl_key)
    ramp = cal.power_ramp(float(n))
    draws: dict[PowerComponent, float] = {}
    if cal.power_cpu_w > 0.0:
        draws[PowerComponent.CPU] = cal.power_cpu_w * ramp
    if cal.power_gpu_w > 0.0:
        draws[PowerComponent.GPU] = cal.power_gpu_w * ramp
    if cal.power_ane_w > 0.0:
        draws[PowerComponent.ANE] = cal.power_ane_w * ramp
    draws[PowerComponent.DRAM] = _DRAM_DRAW_W * ramp
    return draws


def build_gemm_operation(
    chip: ChipSpec,
    impl_key: str,
    n: int,
    *,
    label: str | None = None,
    repetition: int = 0,
    element_bytes: int = 4,
    peak_flops_override: float | None = None,
) -> Operation:
    """The simulated operation behind one GEMM execution.

    ``element_bytes`` lets the FP16 (ANE) and emulated-FP64 paths account for
    their different traffic; ``peak_flops_override`` supports engines outside
    the chip spec (not used by the study implementations).
    """
    cal = gemm_calibration(chip, impl_key)
    if not cal.supports(n):
        raise CalibrationError(
            f"{impl_key} is excluded beyond n={cal.max_n} (section 4)"
        )
    input_bytes = 2.0 * element_bytes * n * n
    cost = OpCost(
        flops=float(gemm_flops(n)),
        bytes_read=cal.traffic_read_factor * input_bytes,
        bytes_written=float(element_bytes * n * n),
    )
    peak = (
        peak_flops_override
        if peak_flops_override is not None
        else _engine_peak_flops(chip, impl_key)
    )
    return Operation(
        engine=cal.engine,
        label=label or f"gemm/{impl_key}/n={n}",
        cost=cost,
        peak_flops=peak,
        peak_bytes_per_s=chip.memory.bandwidth_bytes_per_s(),
        compute_efficiency=cal.efficiency(n),
        memory_efficiency=cal.memory_efficiency,
        overhead_s=cal.overhead_s,
        power_draws_w=gemm_power_draws(chip, impl_key, n),
        noise_key=f"gemm/{chip.name}/{impl_key}/n={n}/rep={repetition}",
        noise_sigma=cal.noise_sigma,
    )
