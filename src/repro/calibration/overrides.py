"""Calibration overlays: named parameter variants of the catalog chips.

The calibration loop (:mod:`repro.calibrate`) searches over a handful of
scalar *knobs* — anchored peak-GFLOPS targets, saturated power draws,
dispatch overheads, traffic factors, STREAM bandwidths.  Each candidate
parameter set becomes a **derived chip**: a renamed clone of a catalog chip
registered via :func:`repro.soc.catalog.register_derived_chip`, whose name
embeds a content hash of the overlay.  Everything keyed on ``chip.name``
(lowering caches, session fingerprints, machine templates) therefore stays
sound: two different parameter sets can never collide on a name, and the
same parameter set always resolves to the same name.

The gemm/stream calibration modules consult :func:`knob_value` at their
anchored-table lookups, so a derived chip behaves exactly like its base
except where a knob overrides a constant.

Knob grammar::

    gemm.peak_gflops.<impl>          Figure-2 peak GFLOPS target
    gemm.power_w.<impl>              combined CPU+GPU saturated watts
    gemm.overhead_s.<impl>           fixed dispatch overhead (seconds)
    gemm.traffic_read_factor.<impl>  DRAM traffic multiplier on input bytes
    stream.gbs.cpu | stream.gbs.gpu  best-kernel STREAM bandwidth (GB/s)
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from types import MappingProxyType
from typing import Mapping

from repro.errors import CalibrationError
from repro.soc.catalog import (
    CHIP_NAMES,
    base_chip_name,
    get_chip,
    register_derived_chip,
)

__all__ = [
    "CalibrationOverlay",
    "derive_calibrated_chip",
    "overlay_for",
    "knob_value",
    "validate_knob",
    "anchored_knob_value",
    "KNOB_CATEGORIES",
]

#: Knob categories and whether they take an implementation qualifier.
KNOB_CATEGORIES: Mapping[str, bool] = MappingProxyType(
    {
        "gemm.peak_gflops": True,
        "gemm.power_w": True,
        "gemm.overhead_s": True,
        "gemm.traffic_read_factor": True,
        "stream.gbs": False,  # qualifier is the target: "cpu" | "gpu"
    }
)

#: Categories whose anchored peak-GFLOPS table does not cover every impl.
#: ``gemm.peak_gflops`` only makes sense for implementations with a
#: Figure-2 anchor (the ANE and emulated-FP64 paths derive theirs).
_PEAK_GFLOPS_IMPLS: tuple[str, ...] = (
    "cpu-single",
    "cpu-omp",
    "cpu-accelerate",
    "gpu-naive",
    "gpu-cutlass",
    "gpu-mps",
)


@dataclasses.dataclass(frozen=True)
class CalibrationOverlay:
    """One derived chip's parameter overrides: knob name -> value."""

    base: str
    values: Mapping[str, float]

    def canonical_json(self) -> str:
        """Canonical JSON of (base, values) — the overlay's identity."""
        payload = {"base": self.base, "values": dict(sorted(self.values.items()))}
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    def digest(self) -> str:
        """Content hash embedded in the derived chip's name."""
        return hashlib.sha256(self.canonical_json().encode()).hexdigest()[:10].upper()


#: Derived chip name (upper-case) -> its overlay.
_OVERLAYS: dict[str, CalibrationOverlay] = {}


def _split_knob(knob: str) -> tuple[str, str]:
    """(category, qualifier); raises :class:`CalibrationError` if malformed."""
    for category, takes_impl in KNOB_CATEGORIES.items():
        prefix = category + "."
        if knob.startswith(prefix):
            qualifier = knob[len(prefix):]
            if qualifier:
                return category, qualifier
    raise CalibrationError(
        f"malformed calibration knob {knob!r}; knob categories: "
        f"{', '.join(KNOB_CATEGORIES)}"
    )


def validate_knob(knob: str) -> None:
    """Check a knob name against the grammar; raise :class:`CalibrationError`."""
    category, qualifier = _split_knob(knob)
    if category == "stream.gbs":
        if qualifier not in ("cpu", "gpu"):
            raise CalibrationError(
                f"stream.gbs target must be 'cpu' or 'gpu', got {qualifier!r}"
            )
        return
    from repro.calibration.gemm import KNOWN_IMPL_KEYS

    if qualifier not in KNOWN_IMPL_KEYS:
        raise CalibrationError(
            f"{knob!r}: unknown implementation key {qualifier!r}; "
            f"known: {', '.join(KNOWN_IMPL_KEYS)}"
        )
    if category == "gemm.peak_gflops" and qualifier not in _PEAK_GFLOPS_IMPLS:
        raise CalibrationError(
            f"{knob!r}: {qualifier!r} has no Figure-2 peak anchor; "
            f"tunable implementations: {', '.join(_PEAK_GFLOPS_IMPLS)}"
        )


def anchored_knob_value(chip_name: str, knob: str) -> float:
    """The paper-anchored default a knob would override, for a catalog chip.

    This is what the search brackets its bounds around, and what
    self-calibration must recover.

    Raises
    ------
    CalibrationError
        For malformed knobs or non-catalog chips.
    """
    validate_knob(knob)
    key = base_chip_name(chip_name.strip().upper())
    if key not in CHIP_NAMES:
        raise CalibrationError(
            f"anchored knob values exist only for catalog chips "
            f"({', '.join(CHIP_NAMES)}), not {chip_name!r}"
        )
    category, qualifier = _split_knob(knob)
    if category == "stream.gbs":
        from repro.calibration.stream import stream_calibration

        cal = stream_calibration(get_chip(key))
        return cal.cpu_max_gbs() if qualifier == "cpu" else cal.gpu_max_gbs()
    from repro.calibration import gemm as _gemm

    if category == "gemm.peak_gflops":
        return _gemm.anchored_peak_gflops(key, qualifier)
    if category == "gemm.power_w":
        return _gemm.anchored_power_w(key, qualifier)
    if category == "gemm.overhead_s":
        return _gemm.anchored_overhead_s(qualifier)
    return _gemm.anchored_traffic_read_factor(qualifier)


def derive_calibrated_chip(base: str, values: Mapping[str, float]) -> str:
    """Register a derived chip carrying a knob overlay; return its name.

    The name is content-addressed (``M1+CAL<digest>``), so deriving the same
    (base, values) twice returns the same name, and distinct overlays can
    never alias.

    Raises
    ------
    CalibrationError
        For unknown knobs, non-positive values, or a non-catalog base.
    """
    base_key = base.strip().upper()
    if base_key not in CHIP_NAMES:
        raise CalibrationError(
            f"calibration overlays derive from catalog chips "
            f"({', '.join(CHIP_NAMES)}), not {base!r}"
        )
    if not values:
        raise CalibrationError("a calibration overlay needs at least one knob")
    for knob, value in values.items():
        validate_knob(knob)
        if not (value > 0.0):
            raise CalibrationError(
                f"knob {knob!r} must be positive, got {value!r}"
            )
    overlay = CalibrationOverlay(
        base=base_key, values=MappingProxyType(dict(values))
    )
    name = f"{base_key}+CAL{overlay.digest()}"
    spec = dataclasses.replace(get_chip(base_key), name=name)
    register_derived_chip(spec, base_key)
    _OVERLAYS[name] = overlay
    return name


def overlay_for(chip_name: str) -> CalibrationOverlay | None:
    """The overlay attached to a derived chip, or ``None``."""
    return _OVERLAYS.get(chip_name.strip().upper())


def knob_value(chip_name: str, knob: str) -> float | None:
    """A chip's override for one knob, or ``None`` if not overridden."""
    overlay = _OVERLAYS.get(chip_name.strip().upper())
    if overlay is None:
        return None
    return overlay.values.get(knob)
