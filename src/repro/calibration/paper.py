"""Every number the paper reports, transcribed as data.

Sources are quoted by section so EXPERIMENTS.md and the comparison tests can
trace each constant.  GFLOPS values follow the paper's convention of counting
``n^2 (2n - 1)`` floating-point operations per n x n GEMM (section 3.2).
"""

from __future__ import annotations

from types import MappingProxyType
from typing import Mapping

__all__ = [
    "CHIPS",
    "GEMM_SIZES",
    "POWER_SIZES",
    "CPU_LOOP_MAX_N",
    "STREAM_CPU_REPEATS",
    "STREAM_GPU_REPEATS",
    "GEMM_REPEATS",
    "POWERMETRICS_WARMUP_S",
    "THEORETICAL_BANDWIDTH_GBS",
    "FIG1_CPU_MAX_GBS",
    "FIG1_GPU_MAX_GBS",
    "FIG1_M2_CPU_ANOMALY_GAP_GBS",
    "FIG2_PEAK_GFLOPS",
    "FIG4_EFFICIENCY_GFLOPS_PER_W",
    "PAPER_IMPLEMENTATIONS",
    "GH200",
    "LITERATURE",
    "gemm_flop_count",
]

#: Generational order used by every figure.
CHIPS: tuple[str, ...] = ("M1", "M2", "M3", "M4")

#: Section 4: "values of n as follows".
GEMM_SIZES: tuple[int, ...] = (32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384)

#: Figures 3-4 plot the power study over these sizes.
POWER_SIZES: tuple[int, ...] = (2048, 4096, 8192, 16384)

#: Section 4: CPU-Single and CPU-OMP "did not execute 8,192 and 16,384".
CPU_LOOP_MAX_N: int = 4096

#: Section 4: repetition counts; "only the maximum bandwidth is considered".
STREAM_CPU_REPEATS: int = 10
STREAM_GPU_REPEATS: int = 20
GEMM_REPEATS: int = 5

#: Section 3.3: "After two seconds (to ensure the utility is warmed up)".
POWERMETRICS_WARMUP_S: float = 2.0

#: Table 1 "Memory Bandwidth (GB/s)".
THEORETICAL_BANDWIDTH_GBS: Mapping[str, float] = MappingProxyType(
    {"M1": 67.0, "M2": 100.0, "M3": 100.0, "M4": 120.0}
)

#: Section 5.1: "M1 to M4 (respectively) see up to 59 GB/s, 78 GB/s, 92 GB/s,
#: and 103 GB/s bandwidth for CPU; 60 GB/s, 91 GB/s, 92 GB/s, and 100 GB/s for GPU."
FIG1_CPU_MAX_GBS: Mapping[str, float] = MappingProxyType(
    {"M1": 59.0, "M2": 78.0, "M3": 92.0, "M4": 103.0}
)
FIG1_GPU_MAX_GBS: Mapping[str, float] = MappingProxyType(
    {"M1": 60.0, "M2": 91.0, "M3": 92.0, "M4": 100.0}
)

#: Section 5.1: "The M2 CPU deviates with a 20-30 GB/s gap comparing the Copy
#: and Scale to other kernels."
FIG1_M2_CPU_ANOMALY_GAP_GBS: tuple[float, float] = (20.0, 30.0)

#: Section 5.2 peak GFLOPS per implementation.  The running text describes
#: the naive shader as "lagging" while giving it the *higher* numbers; the
#: numbers are taken as ground truth (see DESIGN.md "Fidelity notes").
FIG2_PEAK_GFLOPS: Mapping[str, Mapping[str, float]] = MappingProxyType(
    {
        "cpu-accelerate": MappingProxyType(
            {"M1": 900.0, "M2": 1090.0, "M3": 1380.0, "M4": 1490.0}
        ),
        "gpu-mps": MappingProxyType(
            {"M1": 1360.0, "M2": 2240.0, "M3": 2470.0, "M4": 2900.0}
        ),
        "gpu-naive": MappingProxyType(
            {"M1": 200.0, "M2": 390.0, "M3": 450.0, "M4": 540.0}
        ),
        "gpu-cutlass": MappingProxyType(
            {"M1": 150.0, "M2": 160.0, "M3": 270.0, "M4": 340.0}
        ),
    }
)

#: Section 5.3: GFLOPS per watt.  GPU-MPS: "0.21 TFLOPS/W on M1, 0.4 T/W on
#: M2, 0.46 T/W on M3 and 0.33 T/W on M4"; CPU-Accelerate: "0.25 / 0.2 /
#: 0.27 / 0.23"; CPU-Single and CPU-OMP "less than 1 GFLOPS per Watt".
FIG4_EFFICIENCY_GFLOPS_PER_W: Mapping[str, Mapping[str, float]] = MappingProxyType(
    {
        "gpu-mps": MappingProxyType(
            {"M1": 210.0, "M2": 400.0, "M3": 460.0, "M4": 330.0}
        ),
        "cpu-accelerate": MappingProxyType(
            {"M1": 250.0, "M2": 200.0, "M3": 270.0, "M4": 230.0}
        ),
    }
)

#: Table 2 rows: (implementation, framework, hardware).  CPU-OMP appears in
#: the experimental text (section 3.2) but not in Table 2 itself.
PAPER_IMPLEMENTATIONS: tuple[tuple[str, str, str], ...] = (
    ("Naive algorithm", "C++", "CPU"),
    ("BLAS/vDSP", "Accelerate", "CPU"),
    ("Naive algorithm as shader", "Metal", "GPU"),
    ("Cutlass-style tiled shader", "Metal", "GPU"),
    ("Metal Performance Shaders (MPS)", "Metal", "GPU"),
)

#: Section 4/5 GH200 reference points.  Theoretical peaks back-derived from
#: the paper's percentages match the GH200-480GB datasheet (384 GB/s LPDDR5X,
#: 4 TB/s HBM3, 67 TFLOPS FP32, 494.5 TFLOPS TF32 dense).
GH200: Mapping[str, float] = MappingProxyType(
    {
        "stream_cpu_gbs": 310.0,
        "stream_cpu_fraction": 0.81,
        "stream_cpu_theoretical_gbs": 384.0,
        "stream_hbm3_gbs": 3700.0,
        "stream_hbm3_fraction": 0.94,
        "stream_hbm3_theoretical_gbs": 4000.0,
        "sgemm_cuda_tflops": 41.0,
        "sgemm_cuda_fraction": 0.61,
        "sgemm_cuda_theoretical_tflops": 67.0,
        "sgemm_tf32_tflops": 338.0,
        "sgemm_tf32_fraction": 0.69,
        "sgemm_tf32_theoretical_tflops": 494.5,
    }
)

#: Section 5/7 literature comparison points.
LITERATURE: Mapping[str, Mapping[str, float | str]] = MappingProxyType(
    {
        "green500-top": MappingProxyType(
            {"gflops_per_w": 72.0, "source": "Green500 Nov 2024 [27]"}
        ),
        "nvidia-a100": MappingProxyType(
            {"tflops_per_w": 0.7, "source": "Luo et al. [13], mixed-precision MMA"}
        ),
        "rtx-4090": MappingProxyType(
            {
                "tflops_per_w": 0.51,
                "watts": 174.0,
                "source": "Luo et al. [13], tensor-core MMA",
            }
        ),
        "xeon-max-9468": MappingProxyType(
            {"fp64_tflops": 5.7, "source": "Siegmann et al. [24]"}
        ),
        "amd-mi250x": MappingProxyType(
            {
                "gbs": 28.0,
                "fraction_of_peak": 0.85,
                "source": "Schieffer et al. [21], fine-grained remote access",
            }
        ),
    }
)


def gemm_flop_count(n: int) -> int:
    """The paper's GEMM operation count ``n^2 (2n - 1)`` (section 3.2)."""
    if n <= 0:
        raise ValueError(f"matrix dimension must be positive, got {n}")
    return n * n * (2 * n - 1)
