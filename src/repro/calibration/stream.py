"""STREAM calibration: per-chip, per-kernel effective bandwidths.

Reproduces Figure 1: each chip reaches ~85 % of its theoretical unified-memory
bandwidth from both the CPU and the GPU, with the documented M2 CPU anomaly
(Copy and Scale trail Add and Triad by 20-30 GB/s, section 5.1).  The CPU
model additionally provides the OpenMP thread-scaling curve the paper sweeps
(1..physical cores, keeping the maximum), and the GPU model a ramp over the
array footprint (small buffers cannot saturate the fabric).
"""

from __future__ import annotations

import dataclasses
from typing import Mapping

from repro.calibration import overrides as _overrides
from repro.errors import CalibrationError
from repro.soc.catalog import base_chip_name
from repro.soc.chip import ChipSpec
from repro.soc.power import PowerComponent

__all__ = [
    "STREAM_KERNELS",
    "StreamCalibration",
    "stream_calibration",
    "cpu_stream_bandwidth_gbs",
    "gpu_stream_bandwidth_gbs",
    "stream_power_draws",
]

#: Kernel names in the canonical STREAM order.
STREAM_KERNELS: tuple[str, ...] = ("copy", "scale", "add", "triad")

#: Saturated CPU bandwidth targets in GB/s (Figure 1).  The M2 Copy/Scale
#: values encode the paper's unexplained CPU-link anomaly.
_CPU_TARGETS_GBS: dict[str, dict[str, float]] = {
    "M1": {"copy": 55.5, "scale": 56.2, "add": 58.1, "triad": 59.0},
    "M2": {"copy": 50.0, "scale": 52.0, "add": 76.5, "triad": 78.0},
    "M3": {"copy": 88.0, "scale": 89.0, "add": 91.0, "triad": 92.0},
    "M4": {"copy": 97.0, "scale": 98.5, "add": 101.0, "triad": 103.0},
}

#: Saturated GPU bandwidth targets in GB/s (Figure 1).
_GPU_TARGETS_GBS: dict[str, dict[str, float]] = {
    "M1": {"copy": 57.0, "scale": 58.0, "add": 59.5, "triad": 60.0},
    "M2": {"copy": 87.0, "scale": 88.5, "add": 90.0, "triad": 91.0},
    "M3": {"copy": 88.5, "scale": 89.5, "add": 91.5, "triad": 92.0},
    "M4": {"copy": 96.0, "scale": 97.0, "add": 99.0, "triad": 100.0},
}

#: Fractions of theoretical peak for non-catalog chips.
_GENERIC_CPU_FRACTION: dict[str, float] = {
    "copy": 0.82,
    "scale": 0.83,
    "add": 0.85,
    "triad": 0.86,
}
_GENERIC_GPU_FRACTION: dict[str, float] = {
    "copy": 0.87,
    "scale": 0.88,
    "add": 0.90,
    "triad": 0.91,
}

#: CPU thread-scaling shape: bw(T) ~ T / (T + c), renormalised to the target
#: at the full core count.
_THREAD_HALF_CORES: float = 1.2

#: GPU footprint ramp: bw(bytes) ~ bytes / (bytes + half).
_GPU_RAMP_HALF_BYTES: float = 256.0 * 1024.0

#: Saturated power draws in watts while STREAM runs.
_CPU_STREAM_POWER_W: dict[str, float] = {"M1": 2.2, "M2": 3.4, "M3": 3.0, "M4": 3.6}
_GPU_STREAM_POWER_W: dict[str, float] = {"M1": 3.2, "M2": 4.5, "M3": 4.2, "M4": 5.0}
_GPU_STREAM_HOST_CPU_W: float = 0.3
_STREAM_DRAM_W: float = 1.0

#: Repeat-to-repeat jitter for STREAM (tighter than GEMM; pure bandwidth).
STREAM_NOISE_SIGMA: float = 0.008


@dataclasses.dataclass(frozen=True)
class StreamCalibration:
    """Saturated per-kernel bandwidth targets for one chip."""

    chip_name: str
    cpu_targets_gbs: Mapping[str, float]
    gpu_targets_gbs: Mapping[str, float]

    def cpu_target(self, kernel: str) -> float:
        """Saturated CPU bandwidth target for one kernel (GB/s)."""
        return self.cpu_targets_gbs[_check_kernel(kernel)]

    def gpu_target(self, kernel: str) -> float:
        """Saturated GPU bandwidth target for one kernel (GB/s)."""
        return self.gpu_targets_gbs[_check_kernel(kernel)]

    def cpu_max_gbs(self) -> float:
        """Best CPU kernel target — the Figure-1 'up to' number."""
        return max(self.cpu_targets_gbs.values())

    def gpu_max_gbs(self) -> float:
        """Best GPU kernel target — the Figure-1 'up to' number."""
        return max(self.gpu_targets_gbs.values())


def _check_kernel(kernel: str) -> str:
    key = kernel.lower()
    if key not in STREAM_KERNELS:
        raise CalibrationError(
            f"unknown STREAM kernel {kernel!r}; known: {', '.join(STREAM_KERNELS)}"
        )
    return key


def _apply_bandwidth_knob(
    chip_name: str, target: str, table: dict[str, float]
) -> dict[str, float]:
    """Rescale a per-kernel table so its best kernel equals the knob value.

    Scaling the whole table preserves the inter-kernel ratios (including the
    M2 Copy/Scale anomaly) while letting one scalar knob fit the Figure-1
    'up to' bandwidth.
    """
    knob = _overrides.knob_value(chip_name, f"stream.gbs.{target}")
    if knob is None:
        return table
    scale = knob / max(table.values())
    return {k: v * scale for k, v in table.items()}


def stream_calibration(chip: ChipSpec) -> StreamCalibration:
    """Per-kernel targets for a chip (generic fractions off-catalog).

    Derived chips (calibration overlays) resolve their base's anchored
    tables, then apply any ``stream.gbs.*`` knobs.
    """
    base_key = base_chip_name(chip.name)
    if base_key in _CPU_TARGETS_GBS:
        cpu_targets = dict(_CPU_TARGETS_GBS[base_key])
        gpu_targets = dict(_GPU_TARGETS_GBS[base_key])
    else:
        theoretical = chip.memory.bandwidth_gbs
        cpu_targets = {
            k: theoretical * f for k, f in _GENERIC_CPU_FRACTION.items()
        }
        gpu_targets = {
            k: theoretical * f for k, f in _GENERIC_GPU_FRACTION.items()
        }
    return StreamCalibration(
        chip_name=chip.name,
        cpu_targets_gbs=_apply_bandwidth_knob(chip.name, "cpu", cpu_targets),
        gpu_targets_gbs=_apply_bandwidth_knob(chip.name, "gpu", gpu_targets),
    )


def cpu_stream_bandwidth_gbs(chip: ChipSpec, kernel: str, threads: int) -> float:
    """Effective CPU STREAM bandwidth at a given OpenMP thread count.

    The saturating shape means a single core reaches roughly half the link
    bandwidth and the full complement of physical cores reaches the target,
    matching the paper's observation that the maximum is obtained from the
    OMP_NUM_THREADS sweep (section 3.1).
    """
    if threads < 1:
        raise CalibrationError(f"thread count must be >= 1, got {threads}")
    target = stream_calibration(chip).cpu_target(kernel)
    max_threads = chip.total_cores
    t = min(threads, max_threads)
    shape = t / (t + _THREAD_HALF_CORES)
    norm = max_threads / (max_threads + _THREAD_HALF_CORES)
    return target * shape / norm


def gpu_stream_bandwidth_gbs(chip: ChipSpec, kernel: str, array_bytes: int) -> float:
    """Effective GPU STREAM bandwidth for a given per-array footprint."""
    if array_bytes <= 0:
        raise CalibrationError("array footprint must be positive")
    target = stream_calibration(chip).gpu_target(kernel)
    ramp = array_bytes / (array_bytes + _GPU_RAMP_HALF_BYTES)
    return target * ramp


def stream_power_draws(chip: ChipSpec, target: str) -> dict[PowerComponent, float]:
    """Component draws (W) while a STREAM kernel runs on ``"cpu"`` or ``"gpu"``."""
    base_key = base_chip_name(chip.name)
    if target == "cpu":
        cpu_w = _CPU_STREAM_POWER_W.get(base_key, 3.0)
        return {PowerComponent.CPU: cpu_w, PowerComponent.DRAM: _STREAM_DRAM_W}
    if target == "gpu":
        gpu_w = _GPU_STREAM_POWER_W.get(base_key, 4.0)
        return {
            PowerComponent.CPU: _GPU_STREAM_HOST_CPU_W,
            PowerComponent.GPU: gpu_w,
            PowerComponent.DRAM: _STREAM_DRAM_W,
        }
    raise CalibrationError(f"STREAM target must be 'cpu' or 'gpu', got {target!r}")
