"""Command-line interface: regenerate any table or figure of the paper.

Examples::

    repro table1
    repro figure1 --chips M1 M4
    repro figure2 --fast
    repro workloads
    repro run --kind gemm --chips M1 M4 --workers 4 --out results/
    repro run --kind spmv --chips M1 --out results/
    repro run --from results/
    repro figure2 --from results/
    repro study list
    repro study run --fast --out results/
    repro study render figure4 --from results/
    repro study render efficiency --from results/
    repro serve --store results/ --backend vectorized
    repro submit --study --fast --url http://127.0.0.1:8765
    repro query --figure figure2 --url http://127.0.0.1:8765
    repro gh200
    repro all --fast
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro._version import PAPER_ARXIV, PAPER_TITLE, __version__
from repro.analysis.compare import compare_to_paper, render_comparison, shape_checks
from repro.analysis.export import figure_series_to_rows, rows_to_csv
from repro.analysis.figures import (
    figure1_data,
    figure1_from_envelopes,
    figure2_data,
    figure2_from_envelopes,
    figure3_data,
    figure3_from_envelopes,
    figure4_data,
    figure4_from_envelopes,
    make_session,
)
from repro.analysis.reference_systems import render_reference_table
from repro.analysis.tables import (
    render_table1,
    render_table2,
    render_table3,
    render_workloads_table,
)
from repro.calibration import paper
from repro.cuda import CublasHandle, CudaMathMode, GH200Machine, run_gh200_stream
from repro.errors import ReproError
from repro.experiments import (
    BACKEND_NAMES,
    NUMERICS_PROFILES,
    RetryPolicy,
    RunHealth,
    RunManifest,
    Session,
    SweepSpec,
    load_envelopes,
    run_with_manifest,
    save_envelopes,
)
from repro.study import (
    FIGURES,
    TABLES,
    ResultFrame,
    compare_study,
    get_figure,
    get_table,
    paper_study,
    render_efficiency_report,
    run_study,
)
from repro.workloads import all_workloads, get_workload, workload_kinds

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse parser for the ``repro`` command."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=f"Reproduction of '{PAPER_TITLE}' (arXiv:{PAPER_ARXIV})",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    for name, help_text in (
        ("table1", "architecture comparison (Table 1)"),
        ("table2", "GEMM implementation overview (Table 2)"),
        ("table3", "devices used (Table 3)"),
        ("references", "literature reference points"),
        ("workloads", "registered workload kinds (plugin registry)"),
    ):
        sub.add_parser(name, help=help_text)

    def add_figure(name: str, help_text: str) -> argparse.ArgumentParser:
        p = sub.add_parser(name, help=help_text)
        p.add_argument(
            "--chips",
            nargs="+",
            default=list(paper.CHIPS),
            choices=list(paper.CHIPS),
            help="chips to run (default: all four)",
        )
        p.add_argument(
            "--fast",
            action="store_true",
            help="model-only numerics and trimmed repetitions",
        )
        p.add_argument("--csv", action="store_true", help="emit CSV instead of text")
        p.add_argument(
            "--chart", action="store_true", help="draw an ASCII chart of the figure"
        )
        p.add_argument("--seed", type=int, default=0, help="measurement noise seed")
        p.add_argument(
            "--workers",
            type=int,
            default=1,
            help="parallel experiment cells (default: sequential)",
        )
        p.add_argument(
            "--out",
            default=None,
            metavar="DIR",
            help="persist the run's result envelopes to DIR",
        )
        p.add_argument(
            "--from",
            dest="from_dir",
            default=None,
            metavar="DIR",
            help="render from envelopes saved in DIR instead of running",
        )
        return p

    add_figure("figure1", "STREAM bandwidths (Figure 1)")
    add_figure("figure2", "GEMM GFLOPS sweep (Figure 2)")
    add_figure("figure3", "power dissipation (Figure 3)")
    add_figure("figure4", "power efficiency (Figure 4)")
    add_figure("compare", "paper-vs-measured summary across figures")

    run = sub.add_parser(
        "run", help="execute a declarative experiment sweep (spec grid)"
    )
    run.add_argument(
        "--kind",
        default="gemm",
        choices=list(workload_kinds()),
        help="workload kind from the plugin registry (default: gemm)",
    )
    run.add_argument(
        "--chips",
        nargs="+",
        default=list(paper.CHIPS),
        choices=list(paper.CHIPS),
        help="chips to run (default: all four)",
    )
    run.add_argument(
        "--impls",
        nargs="+",
        default=None,
        metavar="KEY",
        help="implementation keys (default: the workload's own legend)",
    )
    run.add_argument(
        "--sizes",
        nargs="+",
        type=int,
        default=None,
        metavar="N",
        help="problem sizes (default: the workload's own sweep)",
    )
    run.add_argument(
        "--targets",
        nargs="+",
        default=["cpu", "gpu"],
        choices=["cpu", "gpu"],
        help="target processors (stream and spmv kinds)",
    )
    run.add_argument("--repeats", type=int, default=None, help="repetitions per cell")
    run.add_argument("--seed", type=int, default=0, help="measurement noise seed")
    run.add_argument(
        "--numerics",
        default="sampled",
        choices=list(NUMERICS_PROFILES),
        help="numerics profile (default: sampled)",
    )
    run.add_argument(
        "--workers", type=int, default=1, help="parallel experiment cells"
    )
    run.add_argument(
        "--backend",
        default=None,
        choices=list(BACKEND_NAMES),
        help="execution backend (default: serial for --workers 1, else threads; "
        "processes sidesteps the GIL for real-NumPy numerics, vectorized "
        "batch-evaluates whole grids through the roofline model, sharded "
        "streams contiguous grid shards through vectorized worker "
        "processes — the million-cell path)",
    )
    run.add_argument(
        "--shard-size",
        type=int,
        default=None,
        metavar="N",
        help="cells per worker shard for --backend sharded "
        "(default: 4096)",
    )
    run.add_argument(
        "--json", action="store_true", help="emit the envelopes as JSON on stdout"
    )
    run.add_argument(
        "--out", default=None, metavar="DIR", help="write envelope files to DIR"
    )
    run.add_argument(
        "--cache",
        default=None,
        metavar="DIR",
        help="session result cache directory (reused across runs)",
    )
    run.add_argument(
        "--quiet", action="store_true", help="suppress the per-cell progress line"
    )
    run.add_argument(
        "--on-error",
        dest="on_error",
        default="raise",
        choices=["raise", "collect"],
        help="what exhausted-retry cell failures do: 'raise' aborts with an "
        "error naming the cells (default); 'collect' finishes the siblings, "
        "records each failure in the manifest and reports them on stderr",
    )
    run.add_argument(
        "--max-retries",
        dest="max_retries",
        type=int,
        default=None,
        metavar="N",
        help="re-executions per cell for transient failures before the cell "
        "is declared failed (default: 2, with exponential backoff)",
    )
    run.add_argument(
        "--cell-timeout",
        dest="cell_timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-cell deadline arming hung-worker detection in the pool "
        "backends (default: no deadline)",
    )
    source = run.add_mutually_exclusive_group()
    source.add_argument(
        "--from",
        dest="from_dir",
        default=None,
        metavar="DIR",
        help="re-render summaries from envelopes saved in DIR instead of "
        "running; combined with --out, re-saves them there (envelope files "
        "only — no run manifest, so the copy is not --resume-able)",
    )
    source.add_argument(
        "--resume",
        dest="resume_dir",
        default=None,
        metavar="DIR",
        help="complete an interrupted run: execute only the cells DIR's "
        "manifest does not mark done (sweep flags are taken from the manifest)",
    )

    study = sub.add_parser(
        "study", help="declarative study API: run grids, render views"
    )
    study_sub = study.add_subparsers(dest="study_command", required=True)

    study_sub.add_parser(
        "list", help="registered figures, tables, reports and metrics"
    )

    srun = study_sub.add_parser(
        "run", help="run a declarative study grid (default: the whole paper)"
    )
    srun.add_argument(
        "--figures",
        nargs="+",
        default=None,
        choices=list(FIGURES),
        metavar="FIGURE",
        help="restrict the grid to these figures' axes (default: all four)",
    )
    srun.add_argument(
        "--chips",
        nargs="+",
        default=list(paper.CHIPS),
        choices=list(paper.CHIPS),
        help="chips to run (default: all four)",
    )
    srun.add_argument(
        "--fast",
        action="store_true",
        help="model-only numerics and trimmed axes (the smoke grid)",
    )
    srun.add_argument("--seed", type=int, default=0, help="measurement noise seed")
    srun.add_argument(
        "--workers", type=int, default=1, help="parallel experiment cells"
    )
    srun.add_argument(
        "--backend",
        default=None,
        choices=list(BACKEND_NAMES),
        help="execution backend (default: serial for --workers 1, else threads)",
    )
    srun.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help="persist to a manifest-indexed store (re-running resumes it)",
    )
    srun.add_argument(
        "--quiet", action="store_true", help="suppress the per-cell progress line"
    )

    srender = study_sub.add_parser(
        "render", help="render a figure, table or report from a store or live"
    )
    srender.add_argument(
        "name",
        choices=[*FIGURES, *TABLES, "efficiency", "compare"],
        help="what to render",
    )
    srender.add_argument(
        "--from",
        dest="from_dir",
        default=None,
        metavar="DIR",
        help="render from envelopes saved in DIR instead of running",
    )
    srender.add_argument(
        "--chips",
        nargs="+",
        default=None,
        choices=list(paper.CHIPS),
        help="chips to include (default: whatever the store holds)",
    )
    srender.add_argument(
        "--fast", action="store_true", help="live runs use the smoke grid"
    )
    srender.add_argument("--seed", type=int, default=0, help="noise seed (live runs)")
    srender.add_argument(
        "--workers", type=int, default=1, help="parallel cells (live runs)"
    )
    srender.add_argument("--csv", action="store_true", help="emit CSV instead of text")

    serve = sub.add_parser(
        "serve", help="experiment service over a shared result-cache store"
    )
    serve.add_argument(
        "--store",
        required=True,
        metavar="DIR",
        help="shared manifest-indexed store (created if missing; restarting "
        "on the same DIR resumes interrupted jobs and keeps the cache warm)",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument("--port", type=int, default=8765, help="bind port")
    serve.add_argument(
        "--backend",
        default=None,
        choices=list(BACKEND_NAMES),
        help="execution backend for submitted grids (vectorized recommended "
        "for pure-model sweeps)",
    )
    serve.add_argument(
        "--workers", type=int, default=1, help="parallel cells per job"
    )
    serve.add_argument(
        "--job-workers", type=int, default=2, help="concurrently executing jobs"
    )
    serve.add_argument(
        "--numerics",
        default="sampled",
        choices=list(NUMERICS_PROFILES),
        help="session numerics profile (one store = one session fingerprint)",
    )
    serve.add_argument("--seed", type=int, default=0, help="session default seed")
    serve.add_argument(
        "--max-retries",
        dest="max_retries",
        type=int,
        default=None,
        metavar="N",
        help="per-cell transient-failure retries for every job (default: 2)",
    )
    serve.add_argument(
        "--cell-timeout",
        dest="cell_timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-cell deadline for hung-worker detection (default: none)",
    )
    serve.add_argument(
        "--verbose", action="store_true", help="log every HTTP request"
    )

    submit = sub.add_parser(
        "submit", help="submit a study or sweep to a running experiment service"
    )
    submit.add_argument(
        "--url", default="http://127.0.0.1:8765", help="service base URL"
    )
    submit.add_argument(
        "--study",
        action="store_true",
        help="submit the declarative paper study instead of a single sweep",
    )
    submit.add_argument(
        "--figures",
        nargs="+",
        default=None,
        choices=list(FIGURES),
        metavar="FIGURE",
        help="with --study: restrict the grid to these figures' axes",
    )
    submit.add_argument(
        "--fast",
        action="store_true",
        help="with --study: model-only numerics and trimmed axes",
    )
    submit.add_argument(
        "--kind",
        default="gemm",
        choices=list(workload_kinds()),
        help="sweep workload kind (ignored with --study)",
    )
    submit.add_argument(
        "--chips",
        nargs="+",
        default=None,
        choices=list(paper.CHIPS),
        help="chips to run (default: all four)",
    )
    submit.add_argument(
        "--impls", nargs="+", default=None, metavar="KEY",
        help="implementation keys (sweep submissions)",
    )
    submit.add_argument(
        "--sizes", nargs="+", type=int, default=None, metavar="N",
        help="problem sizes (sweep submissions)",
    )
    submit.add_argument(
        "--targets",
        nargs="+",
        default=["cpu", "gpu"],
        choices=["cpu", "gpu"],
        help="target processors (sweep submissions)",
    )
    submit.add_argument(
        "--repeats", type=int, default=None, help="repetitions per cell"
    )
    submit.add_argument("--seed", type=int, default=0, help="measurement noise seed")
    submit.add_argument(
        "--no-wait",
        action="store_true",
        help="return after queueing instead of polling to completion",
    )
    submit.add_argument(
        "--timeout", type=float, default=600.0, help="--wait poll timeout (s)"
    )
    submit.add_argument(
        "--json", action="store_true", help="emit the final job record as JSON"
    )

    query = sub.add_parser(
        "query", help="query a running experiment service's warm store"
    )
    query.add_argument(
        "--url", default="http://127.0.0.1:8765", help="service base URL"
    )
    query.add_argument(
        "--figure",
        default=None,
        metavar="NAME",
        choices=[*FIGURES, *TABLES, "efficiency"],
        help="render a registered figure/table/report from the store",
    )
    query.add_argument(
        "--chips",
        nargs="+",
        default=None,
        choices=list(paper.CHIPS),
        help="chips to include",
    )
    query.add_argument(
        "--fields",
        nargs="+",
        default=None,
        metavar="FIELD",
        help="tidy-record columns to fetch (e.g. chip kind gflops)",
    )
    query.add_argument(
        "--where",
        nargs="+",
        default=None,
        metavar="FIELD=VALUE",
        help="equality/membership filters (e.g. kind=gemm chips=M1,M4)",
    )
    query.add_argument(
        "--grid",
        default=None,
        metavar="REF",
        help="restrict to one job id's (or grid hash's) cells",
    )
    query.add_argument(
        "--csv", action="store_true", help="emit CSV instead of JSON records"
    )

    gh = sub.add_parser("gh200", help="GH200 reference points (sections 4-5)")
    gh.add_argument("--fast", action="store_true")

    stream = sub.add_parser(
        "stream", help="one STREAM run with classic stream.c-style output"
    )
    stream.add_argument("--chip", default="M4", choices=list(paper.CHIPS))
    stream.add_argument("--target", default="cpu", choices=["cpu", "gpu"])
    stream.add_argument("--fast", action="store_true")

    roof = sub.add_parser(
        "roofline", help="roofline placement of the GEMM implementations"
    )
    roof.add_argument(
        "--chips", nargs="+", default=list(paper.CHIPS), choices=list(paper.CHIPS)
    )
    roof.add_argument("--n", type=int, default=16384)

    cal = sub.add_parser(
        "calibrate",
        help="fit the simulator against a measured trace; report per-chip MAPE",
    )
    cal_src = cal.add_mutually_exclusive_group()
    cal_src.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="JSON trace file (see MeasuredTrace.save)",
    )
    cal_src.add_argument(
        "--against",
        default="paper",
        choices=["paper", "synthetic"],
        help="built-in trace: the paper's published numbers, or a "
        "self-calibration trace synthesized from the anchored simulator",
    )
    cal.add_argument(
        "--chips",
        nargs="+",
        default=None,
        choices=list(paper.CHIPS),
        help="chips to fit (default: all chips in the trace)",
    )
    cal.add_argument(
        "--backend",
        default=None,
        choices=["serial", "threads", "vectorized"],
        help="candidate-sweep backend (default: vectorized; pool backends "
        "cannot see the in-process derived-chip registry)",
    )
    cal.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help="write calibration.json and the resumable candidate store to DIR",
    )
    cal.add_argument(
        "--points", type=int, default=9, help="grid points per knob per round"
    )
    cal.add_argument(
        "--rounds", type=int, default=4, help="refinement rounds after the coarse grid"
    )
    cal.add_argument("--seed", type=int, default=0, help="search seed")
    cal.add_argument(
        "--json", action="store_true", help="emit the result artifact JSON"
    )
    cal.add_argument(
        "--quiet", action="store_true", help="suppress per-round progress"
    )

    exp = sub.add_parser(
        "experiments", help="run the reproduction and write EXPERIMENTS.md"
    )
    exp.add_argument("--output", default="EXPERIMENTS.md")
    exp.add_argument("--seed", type=int, default=0)

    alls = sub.add_parser("all", help="everything, in paper order")
    alls.add_argument("--fast", action="store_true")
    return parser


def _figure_session(args) -> Session:
    return make_session(fast=args.fast, seed=args.seed)


def _figure_envelopes(args):
    """Envelopes for --from rendering, or None when the figure should run."""
    if args.from_dir is None:
        return None
    return load_envelopes(args.from_dir)


def _figure1_series(args) -> dict:
    """Figure-1 data from envelopes (--from) or a live session run."""
    envelopes = _figure_envelopes(args)
    if envelopes is not None:
        return figure1_from_envelopes(envelopes, chips=args.chips)
    session = _figure_session(args)
    data = figure1_data(args.chips, session=session, max_workers=args.workers)
    _flush_sink(args, session)
    return data


def _render_figure1_text(data: dict) -> None:
    print("Figure 1 — STREAM bandwidth (GB/s), max over repetitions")
    for chip, entry in data.items():
        print(f"\n{chip} (theoretical {entry['theoretical']:.0f} GB/s)")
        for target in ("cpu", "gpu"):
            if target not in entry:
                continue  # partial stores may hold only one target
            cells = "  ".join(
                f"{kernel}={gbs:6.1f}" for kernel, gbs in entry[target].items()
            )
            print(f"  {target.upper():3s}: {cells}")


def _figure1_csv_rows(data: dict) -> list[dict]:
    rows = []
    for chip, entry in data.items():
        for target in ("cpu", "gpu"):
            for kernel, gbs in entry.get(target, {}).items():
                rows.append(
                    {
                        "chip": chip,
                        "target": target,
                        "kernel": kernel,
                        "bandwidth_gbs": round(gbs, 2),
                    }
                )
    return rows


def _print_figure1(args) -> None:
    data = _figure1_series(args)
    if args.csv:
        print(rows_to_csv(_figure1_csv_rows(data)), end="")
        return
    _render_figure1_text(data)


def _flush_sink(args, session: Session) -> None:
    """Persist the session's computed envelopes when --out was given."""
    if getattr(args, "out", None):
        paths = save_envelopes(args.out, session.cached_envelopes())
        print(f"[wrote {len(paths)} envelopes to {args.out}]", file=sys.stderr)


def _figure_series(args, builder, from_builder) -> dict:
    envelopes = _figure_envelopes(args)
    if envelopes is not None:
        return from_builder(envelopes, chips=args.chips)
    session = _figure_session(args)
    data = builder(
        args.chips, fast=args.fast, session=session, max_workers=args.workers
    )
    _flush_sink(args, session)
    return data


def _print_series_figure(
    name: str,
    data: dict,
    value_name: str,
    unit: str,
    as_csv: bool,
) -> None:
    if as_csv:
        print(rows_to_csv(figure_series_to_rows(data, value_name)), end="")
        return
    print(f"{name} ({unit})")
    for chip, impls in data.items():
        print(f"\n{chip}")
        for impl, series in impls.items():
            cells = "  ".join(f"n={n}:{v:9.1f}" for n, v in sorted(series.items()))
            print(f"  {impl:16s} {cells}")


def _sorted_envelopes(envelopes) -> list:
    """Deterministic, human-scannable emission order.

    Sorting by (kind, chip, variant, size) — falling back to the spec hash
    for anything else — keeps rows grouped the way a sweep reads while
    making live runs and ``--from`` re-renders byte-identical regardless of
    sweep expansion or directory listing order.
    """

    from repro.workloads.base import spec_size, spec_variant

    def key(env):
        spec = env.spec
        return (
            env.kind,
            spec.chip,
            spec_variant(spec),
            spec_size(spec),
            env.spec_hash,
        )

    return sorted(envelopes, key=key)


def _emit_envelopes(args, envelopes) -> None:
    """Render envelopes as JSON or per-kind summary lines (registry-driven).

    ``--on-error collect`` runs leave ``None`` holes at failed cells'
    positions — those are reported separately (stderr) and skipped here.
    """
    ordered = _sorted_envelopes([env for env in envelopes if env is not None])
    if getattr(args, "json", False):
        import json as _json

        print(
            _json.dumps(
                [env.to_dict() for env in ordered], indent=2, sort_keys=True
            )
        )
        return
    for env in ordered:
        print(get_workload(env.kind).summary_line(env.spec, env.result))


def _run_progress(args):
    """Per-cell progress printer that also counts executed cells.

    Returns ``(progress, executed)``: the hook only fires for cells that
    actually ran (manifest-skipped cells never reach it), so ``executed``
    ends up holding the true number of envelope files written.
    """
    executed = [0]

    def progress(done: int, total: int, envelope) -> None:
        executed[0] += 1
        if getattr(args, "quiet", False) or getattr(args, "json", False):
            return
        cell = get_workload(envelope.kind).cell_label(envelope.spec)
        # streaming backends report total < 0 while the grid's size is
        # still unknown (the stream's end defines it)
        shown = total if total >= 0 else "?"
        print(f"[{done}/{shown}] {cell}", file=sys.stderr)

    return progress, executed


def _warn_processes_footgun(backend, specs, session) -> None:
    """Steer ``--backend processes`` away from pure-model grids.

    BENCH_PR4.json measured the 216-cell model-only grid at 941.3 cells/s
    serial, 661.9 with processes (spawn + IPC overhead swamps the cheap
    cells) and 15,822.6 vectorized; BENCH_PR8.json adds the million-cell
    record, where the sharded backend (vectorized lowering inside each
    worker) sustains 1,329 cells/s against 29.05 serial — so when every
    cell of the grid would actually lower (its workload declares a
    vectorized body *and* its effective numerics profile is model-only, the
    gate every lowering applies), processes is strictly the wrong tool and
    the envelopes would be byte-identical either way.
    """
    if backend != "processes":
        return
    from repro.sim.policy import NumericsPolicy

    specs = list(specs)
    kinds = {spec.kind for spec in specs}
    if (
        kinds
        and all(
            get_workload(kind).vectorized_body is not None for kind in kinds
        )
        and all(
            session.numerics_for(spec).policy is NumericsPolicy.MODEL_ONLY
            for spec in specs
        )
    ):
        print(
            "warning: every workload in this grid has a vectorized lowering; "
            "--backend processes pays process spawn/IPC per cheap model cell "
            "(BENCH_PR4.json: 662 cells/s vs 941 serial vs 15,823 "
            "vectorized). --backend vectorized yields byte-identical "
            "envelopes ~17x faster on one core; for grids too large for "
            "one core, --backend sharded runs the vectorized lowering "
            "inside each worker (BENCH_PR8.json: 1,329 cells/s vs 29 "
            "serial on the million-cell grid, 45.8x).",
            file=sys.stderr,
        )


def _effective_backend(args):
    """The backend argument for ``repro run``: a name, or a configured
    :class:`~repro.experiments.backends.ShardedBackend` when ``--shard-size``
    tunes it."""
    shard_size = getattr(args, "shard_size", None)
    if shard_size is None:
        return args.backend
    if args.backend != "sharded":
        raise ReproError("--shard-size only applies to --backend sharded")
    from repro.experiments.backends import ShardedBackend

    return ShardedBackend(args.workers, shard_size)


def _retry_from_args(args) -> RetryPolicy | None:
    """The retry policy ``--max-retries``/``--cell-timeout`` describe
    (``None`` when neither flag was given — the stock defaults apply)."""
    overrides = {}
    if getattr(args, "max_retries", None) is not None:
        overrides["max_retries"] = args.max_retries
    if getattr(args, "cell_timeout", None) is not None:
        overrides["cell_timeout"] = args.cell_timeout
    return RetryPolicy(**overrides) if overrides else None


def _report_health(args, health: RunHealth) -> None:
    """Surface the run-health report on stderr when anything happened."""
    if not health.eventful:
        return
    print(f"[run health: {health.summary()}]", file=sys.stderr)
    for failure in health.failures:
        print(f"[failed] {failure}", file=sys.stderr)


def _run_sweep(args) -> int:
    """The ``repro run`` subcommand: declarative sweep -> envelopes.

    With ``--from DIR`` no cells execute; the saved envelopes re-render
    through the same registry summary path.  With ``--resume DIR`` the
    sweep, session and completion state all come from DIR's manifest, and
    only cells not marked done (failed cells included) execute.  With
    ``--out DIR`` envelopes land in the sharded store as cells complete,
    indexed by a ``manifest.json`` that a later ``--resume`` picks up.

    Returns the exit code: under ``--on-error collect`` a run with failed
    cells finishes its siblings, reports the failures on stderr and exits
    1 instead of aborting.
    """
    out_dir = args.out
    written = 0
    exec_backend = _effective_backend(args)
    retry = _retry_from_args(args)
    health = RunHealth()
    if args.from_dir is not None:
        envelopes = load_envelopes(args.from_dir)
        if not args.quiet:
            print(
                f"[rendering {len(envelopes)} stored envelopes from "
                f"{args.from_dir}; sweep flags are ignored]",
                file=sys.stderr,
            )
        if args.out:  # re-save: migrates legacy flat stores to sharded
            written = len(save_envelopes(args.out, envelopes))
    elif args.resume_dir is not None:
        if args.out:
            raise ReproError(
                "--resume already names the output store; --out cannot "
                "redirect it (cells land back in the resumed directory)"
            )
        manifest = RunManifest.load(args.resume_dir)
        session = manifest.make_session(cache_dir=args.cache)
        counts = manifest.status_counts()
        if not args.quiet:
            pending = sum(
                n for status, n in counts.items() if status != "done"
            )
            print(
                f"[resuming {args.resume_dir}: {counts.get('done', 0)} cells "
                f"done, {pending} to run; sweep flags are ignored]",
                file=sys.stderr,
            )
        _warn_processes_footgun(args.backend, manifest.specs(), session)
        progress, executed = _run_progress(args)
        envelopes, manifest = run_with_manifest(
            session,
            manifest.specs(),
            args.resume_dir,
            backend=exec_backend,
            max_workers=args.workers,
            progress=progress,
            manifest=manifest,
            on_mismatch="error",  # resuming claims continuation, never a redo
            load_done=bool(args.json),  # done cells re-read only for --json
            on_error=args.on_error,
            retry=retry,
            health=health,
        )
        written = executed[0]
        out_dir = args.resume_dir
    else:
        sweep = SweepSpec(
            kind=args.kind,
            chips=tuple(args.chips),
            impl_keys=tuple(args.impls) if args.impls else (),
            sizes=tuple(args.sizes) if args.sizes else (),
            targets=tuple(args.targets),
            repeats=args.repeats,
            seed=args.seed,
        )
        session = Session(
            numerics=args.numerics, seed=args.seed, cache_dir=args.cache
        )
        # the sweep goes down un-expanded: run_with_manifest expands it in
        # one lazy pass, and run_batch hands it whole to streaming backends
        # (sharded never materializes the grid in this process at all)
        _warn_processes_footgun(args.backend, sweep.expand_iter(), session)
        progress, executed = _run_progress(args)
        if args.out:
            envelopes, _ = run_with_manifest(
                session,
                sweep,
                args.out,
                backend=exec_backend,
                max_workers=args.workers,
                progress=progress,
                on_error=args.on_error,
                retry=retry,
                health=health,
            )
            written = executed[0]
        else:
            envelopes = session.run_batch(
                sweep,
                max_workers=args.workers,
                backend=exec_backend,
                progress=progress,
                on_error=args.on_error,
                retry=retry,
                health=health,
            )
    _report_health(args, health)
    if out_dir:
        print(f"wrote {written} envelopes to {out_dir}")
    if args.json or not out_dir:
        _emit_envelopes(args, envelopes)
    return 1 if health.failures else 0


def _study_list() -> None:
    """The ``repro study list`` subcommand: every registered definition."""
    print("Figures (repro study render <name> [--from DIR]):")
    for fig in FIGURES.values():
        print(f"  {fig.name:10s} {fig.title}  [{fig.kind}: {fig.metric}]")
    print("\nTables:")
    for table in TABLES.values():
        print(f"  {table.name:10s} {table.title}")
    print("\nReports:")
    print("  efficiency GFLOPS/W across every power-bearing workload")
    print("  compare    paper-vs-measured comparison rows")
    print("\nFrame metrics (per workload kind):")
    for workload in all_workloads():
        names = ", ".join(sorted(workload.metrics)) or "—"
        print(f"  {workload.kind:14s} {names}")


def _study_session(args) -> Session:
    return make_session(fast=args.fast, seed=args.seed)


def _study_run(args) -> None:
    """The ``repro study run`` subcommand: one declarative grid, optionally
    persisted to a resumable, manifest-indexed store."""
    study = paper_study(
        tuple(args.chips), seed=args.seed, fast=args.fast, figures=args.figures
    )
    session = _study_session(args)
    progress, executed = _run_progress(args)
    frame = run_study(
        study,
        session=session,
        backend=args.backend,
        max_workers=args.workers,
        out=args.out,
        progress=progress,
    )
    # run_study returns the whole grid (manifest-skipped cells included),
    # so len(frame) is the compiled cell count.
    print(
        f"study {study.name} ({study.study_hash()}): {len(frame)} cells"
        + (f", {executed[0]} executed into {args.out}" if args.out else "")
    )
    if not args.out:
        _emit_envelopes(args, frame.envelopes)


def _study_frame(args) -> ResultFrame:
    """The frame a ``repro study render`` reads: a store, or a live run."""
    if args.from_dir is not None:
        return ResultFrame.from_store(args.from_dir)
    figures = [args.name] if args.name in FIGURES else None
    study = paper_study(
        tuple(args.chips) if args.chips else None,
        seed=args.seed,
        fast=args.fast,
        figures=figures,
    )
    return run_study(
        study, session=_study_session(args), max_workers=args.workers
    )


def _study_render(args) -> None:
    """The ``repro study render`` subcommand: any view, from store or live."""
    if args.name in TABLES:
        if args.csv:
            raise ReproError(f"{args.name} has no CSV form; tables render as text")
        if args.name == "table1" and args.chips:
            print(get_table("table1").render(tuple(args.chips)))
        elif args.name == "calibration-mape" and args.chips:
            print(get_table(args.name).render(chips=tuple(args.chips)))
        elif args.chips:
            raise ReproError(f"{args.name} does not take --chips")
        else:
            print(get_table(args.name).render())
        return
    frame = _study_frame(args)
    chips = tuple(args.chips) if args.chips else None
    if args.name == "efficiency":
        if args.csv:
            from repro.study import efficiency_rows

            print(rows_to_csv(efficiency_rows(frame, chips=chips)), end="")
        else:
            print(render_efficiency_report(frame, chips=chips))
        return
    if args.name == "compare":
        print(render_comparison(compare_study(frame, chips=chips)))
        return
    figure = get_figure(args.name)
    data = figure.series(frame, chips=chips)
    if args.name == "figure1":
        if args.csv:
            print(rows_to_csv(_figure1_csv_rows(data)), end="")
        else:
            _render_figure1_text(data)
        return
    _print_series_figure(
        figure.title, data, figure.value_name, figure.unit, args.csv
    )


def _run_serve(args) -> None:
    """The ``repro serve`` subcommand: a blocking experiment service."""
    import time

    from repro.service import ExperimentService

    session = Session(numerics=args.numerics, seed=args.seed)
    service = ExperimentService(
        args.store,
        session=session,
        backend=args.backend,
        max_workers=args.workers,
        job_workers=args.job_workers,
        retry=_retry_from_args(args),
        host=args.host,
        port=args.port,
        verbose=args.verbose,
    )
    service.start()
    health = service.health()
    warm = health["cells"].get("done", 0)
    resumed = health["jobs"].get("queued", 0)
    print(
        f"experiment service listening on {service.url}",
        file=sys.stderr,
    )
    print(
        f"  store:   {health['store']} ({warm} cells warm"
        + (f", {resumed} interrupted jobs resuming" if resumed else "")
        + ")",
        file=sys.stderr,
    )
    print(f"  backend: {health['backend']}", file=sys.stderr)
    print(
        f"  try:     repro submit --study --fast --url {service.url}",
        file=sys.stderr,
    )
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        print("\n[stopping; queued jobs resume on restart]", file=sys.stderr)
        service.stop()


def _submit_spec(args):
    """The spec a ``repro submit`` sends: the paper study or one sweep."""
    if args.study:
        return paper_study(
            tuple(args.chips) if args.chips else None,
            seed=args.seed,
            fast=args.fast,
            figures=args.figures,
        )
    return SweepSpec(
        kind=args.kind,
        chips=tuple(args.chips) if args.chips else tuple(paper.CHIPS),
        impl_keys=tuple(args.impls) if args.impls else (),
        sizes=tuple(args.sizes) if args.sizes else (),
        targets=tuple(args.targets),
        repeats=args.repeats,
        seed=args.seed,
    )


def _run_submit(args) -> None:
    """The ``repro submit`` subcommand: send a grid, poll it to done."""
    from repro.service import ServiceClient

    client = ServiceClient(args.url)
    job = client.submit(_submit_spec(args))
    verb = "coalesced onto in-flight" if job["deduplicated"] else "queued"
    print(
        f"[{verb} job {job['id']} (grid {job['grid_hash']})]", file=sys.stderr
    )
    if not args.no_wait:
        job = client.wait(job["id"], timeout=args.timeout)
    if args.json:
        import json as _json

        print(_json.dumps(job, indent=2, sort_keys=True))
        return
    if args.no_wait:
        print(f"job {job['id']} {job['status']}: poll GET {args.url}/jobs/{job['id']}")
        return
    print(
        f"job {job['id']} done: {job['done']}/{job['total']} cells, "
        f"{job['executed']} executed, cache {job['cache_status']}"
    )


def _parse_where(pairs) -> dict:
    """``FIELD=VALUE`` pairs into a frame-filter dict.

    Comma-separated values become membership lists; numeric-looking tokens
    are coerced so ``size=4096`` matches the integer field.
    """

    def coerce(token: str):
        for cast in (int, float):
            try:
                return cast(token)
            except ValueError:
                continue
        return token

    where = {}
    for pair in pairs or ():
        field, sep, value = pair.partition("=")
        if not sep or not field or not value:
            raise ReproError(
                f"--where takes FIELD=VALUE pairs (e.g. kind=gemm), got {pair!r}"
            )
        tokens = [coerce(token) for token in value.split(",") if token]
        where[field] = tokens if len(tokens) > 1 else tokens[0]
    return where


def _run_query(args) -> None:
    """The ``repro query`` subcommand: read the service's warm store."""
    from repro.service import ServiceClient

    client = ServiceClient(args.url)
    if args.figure:
        if args.fields or args.where or args.csv:
            raise ReproError(
                "--figure renders a registered view; it does not combine "
                "with --fields/--where/--csv"
            )
        print(client.figure(args.figure, chips=args.chips), end="")
        return
    if not args.fields:
        raise ReproError(
            "query needs --figure NAME or --fields COLUMN... "
            "(optionally with --where FIELD=VALUE)"
        )
    body: dict = {"fields": list(args.fields)}
    where = _parse_where(args.where)
    if args.chips:
        where.setdefault("chip", list(args.chips))
    if where:
        body["where"] = where
    if args.grid:
        body["grid"] = args.grid
    if args.csv:
        body["format"] = "csv"
        print(client.query(**body)["csv"], end="")
        return
    import json as _json

    print(_json.dumps(client.query(**body)["records"], indent=2, sort_keys=True))


def _run_study_command(args) -> None:
    if args.study_command == "list":
        _study_list()
    elif args.study_command == "run":
        _study_run(args)
    elif args.study_command == "render":
        _study_render(args)
    else:  # pragma: no cover - argparse enforces choices
        raise AssertionError(args.study_command)


def _run_gh200(fast: bool) -> None:
    from repro.sim.policy import NumericsConfig
    import numpy as np

    machine = GH200Machine(
        numerics=NumericsConfig.model_only() if fast else None
    )
    print("GH200 reference (sections 4-5)")
    for target, label in (("cpu", "Grace LPDDR5X"), ("hbm3", "Hopper HBM3")):
        # Large arrays keep overhead below 1%; with --fast the numerics are
        # skipped so the footprint costs nothing.
        result = run_gh200_stream(machine, target, n_elements=1 << 24)
        print(
            f"  STREAM {label:14s}: {result.max_gbs:7.1f} GB/s "
            f"({result.fraction_of_peak:.0%} of {result.theoretical_gbs:.0f})"
        )
    n = 4096 if fast else 16384
    for mode, label in (
        (CudaMathMode.CUDA_CORES_FP32, "CUDA cores (FP32)"),
        (CudaMathMode.TF32_TENSOR, "Tensor cores (TF32)"),
    ):
        handle = CublasHandle(machine, math_mode=mode)
        a = np.zeros((n, n), dtype=np.float32)
        b = np.zeros((n, n), dtype=np.float32)
        c = np.zeros((n, n), dtype=np.float32)
        t0 = machine.now_ns()
        from repro.cuda.cublas import CUBLAS_OP_N, cublas_sgemm

        cublas_sgemm(handle, CUBLAS_OP_N, CUBLAS_OP_N, n, n, n, 1.0, a, n, b, n, 0.0, c, n)
        elapsed = machine.now_ns() - t0
        tflops = n * n * (2 * n - 1) / elapsed / 1e3
        print(f"  cublasSgemm {label:18s}: {tflops:6.1f} TFLOPS (n={n})")


def _run_calibrate(args) -> None:
    """``repro calibrate``: fit the simulator, print the per-chip MAPE table."""
    from repro.calibrate import (
        MeasuredTrace,
        default_spec,
        load_trace,
        run_calibration,
        synthesize_trace,
    )
    from repro.study.defs import render_plain_table

    if args.trace is not None:
        trace = load_trace(args.trace)
    elif args.against == "synthetic":
        trace = synthesize_trace(chips=args.chips, backend=args.backend)
    else:
        trace = MeasuredTrace.from_paper(chips=args.chips)
    chips = tuple(args.chips) if args.chips else trace.chips
    spec = default_spec(
        chips=chips,
        coarse_points=args.points,
        refine_rounds=args.rounds,
        seed=args.seed,
    )
    log = None if (args.quiet or args.json) else (
        lambda line: print(line, file=sys.stderr)
    )
    result = run_calibration(
        trace, spec, backend=args.backend, out_dir=args.out, log=log
    )
    if args.json:
        print(result.to_json(), end="")
    else:
        headers, rows = result.mape_table()
        print(
            render_plain_table(
                headers,
                rows,
                title=f"Calibration MAPE vs {trace.source} trace "
                f"({result.cells_evaluated} cells, backend {result.backend})",
            )
        )
        print(
            f"\noverall MAPE: {result.overall_mape_pct:.3f}%  "
            f"(trace {trace.digest()}, spec {spec.spec_hash()})"
        )
    if args.out is not None:
        import pathlib as _pathlib

        print(
            f"wrote {_pathlib.Path(args.out) / 'calibration.json'}",
            file=sys.stderr,
        )


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return _dispatch(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _dispatch(args) -> int:
    command = args.command

    if command == "table1":
        print(render_table1())
    elif command == "table2":
        print(render_table2())
    elif command == "table3":
        print(render_table3())
    elif command == "references":
        print(render_reference_table())
    elif command == "workloads":
        print(render_workloads_table())
    elif command == "figure1":
        if args.chart:
            from repro.analysis.plots import figure1_chart

            print(figure1_chart(_figure1_series(args)))
        else:
            _print_figure1(args)
    elif command == "figure2":
        data = _figure_series(args, figure2_data, figure2_from_envelopes)
        if args.chart:
            from repro.analysis.plots import figure2_chart

            print(figure2_chart(data))
        else:
            _print_series_figure("Figure 2 — GEMM", data, "gflops", "GFLOPS", args.csv)
    elif command == "figure3":
        data = _figure_series(args, figure3_data, figure3_from_envelopes)
        _print_series_figure("Figure 3 — power", data, "power_mw", "mW", args.csv)
    elif command == "figure4":
        data = _figure_series(args, figure4_data, figure4_from_envelopes)
        _print_series_figure(
            "Figure 4 — efficiency", data, "gflops_per_w", "GFLOPS/W", args.csv
        )
    elif command == "compare":
        envelopes = _figure_envelopes(args)
        if envelopes is not None:
            fig1 = figure1_from_envelopes(envelopes, chips=args.chips)
            fig2 = figure2_from_envelopes(envelopes, chips=args.chips)
            fig4 = figure4_from_envelopes(envelopes, chips=args.chips)
        else:
            session = _figure_session(args)
            fig1 = figure1_data(
                args.chips, session=session, max_workers=args.workers
            )
            fig2 = figure2_data(
                args.chips, session=session, max_workers=args.workers
            )
            fig4 = figure4_data(
                args.chips, session=session, max_workers=args.workers
            )
            _flush_sink(args, session)
        print(render_comparison(compare_to_paper(fig1=fig1, fig2=fig2, fig4=fig4)))
        print()
        for name, ok in shape_checks(fig1=fig1, fig2=fig2, fig4=fig4).items():
            print(f"  [{'ok' if ok else 'FAIL'}] {name}")
    elif command == "run":
        return _run_sweep(args)
    elif command == "study":
        _run_study_command(args)
    elif command == "serve":
        _run_serve(args)
    elif command == "submit":
        _run_submit(args)
    elif command == "query":
        _run_query(args)
    elif command == "gh200":
        _run_gh200(args.fast)
    elif command == "stream":
        from repro.core.stream.report import render_stream_report
        from repro.core.stream.runner import run_stream as _run_stream
        from repro.sim.machine import Machine
        from repro.sim.policy import NumericsConfig

        machine = Machine.for_chip(
            args.chip,
            numerics=NumericsConfig.model_only() if args.fast else None,
        )
        print(render_stream_report(_run_stream(machine, args.target)))
    elif command == "roofline":
        from repro.analysis.roofline_analysis import render_roofline, roofline_points
        from repro.core.gemm.registry import paper_implementation_keys
        from repro.sim.policy import NumericsConfig
        from repro.sim.machine import Machine

        for chip in args.chips:
            machine = Machine.for_chip(chip, numerics=NumericsConfig.model_only())
            points = roofline_points(
                machine, paper_implementation_keys(), n=args.n
            )
            print(render_roofline(machine, points))
            print()
    elif command == "calibrate":
        _run_calibrate(args)
    elif command == "experiments":
        from repro.analysis.experiments_report import generate_experiments_report

        report = generate_experiments_report(seed=args.seed)
        import pathlib as _pathlib

        _pathlib.Path(args.output).write_text(report)
        print(f"wrote {args.output} ({len(report.splitlines())} lines)")
    elif command == "all":
        for block in (render_table1(), render_table2(), render_table3()):
            print(block)
            print()
        session = make_session(fast=args.fast)
        data1 = figure1_data(list(paper.CHIPS), session=session)
        _render_figure1_text(data1)
        print()
        data2 = figure2_data(list(paper.CHIPS), session=session)
        _print_series_figure("Figure 2 — GEMM", data2, "gflops", "GFLOPS", False)
        print()
        data3 = figure3_data(list(paper.CHIPS), session=session)
        _print_series_figure("Figure 3 — power", data3, "power_mw", "mW", False)
        print()
        data4 = figure4_data(list(paper.CHIPS), session=session)
        _print_series_figure(
            "Figure 4 — efficiency", data4, "gflops_per_w", "GFLOPS/W", False
        )
        print()
        _run_gh200(args.fast)
        print()
        print(render_reference_table())
    else:  # pragma: no cover - argparse enforces choices
        raise AssertionError(command)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
