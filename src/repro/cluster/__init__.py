"""Multi-node extension: the paper's section-7 future work.

"Future work in this area could explore the performance of the M-Series
chips in multi-node or distributed HPC systems."  This package models a
cluster of Table-3 machines joined by a commodity interconnect (Thunderbolt
IP or 10 GbE — what one can actually wire Mac minis with), an MPI-flavoured
communication layer on top, and two distributed workloads:

* a cluster-wide STREAM (embarrassingly parallel, aggregate bandwidth);
* a SUMMA distributed GEMM, whose communication/computation balance exposes
  how quickly a laptop-class interconnect starves the M-series' efficient
  compute — the quantitative answer to the paper's open question.
"""

from repro.cluster.interconnect import INTERCONNECTS, InterconnectSpec
from repro.cluster.machine import ClusterMachine
from repro.cluster.comm import ClusterCommunicator
from repro.cluster.summa import SummaResult, run_summa_gemm
from repro.cluster.stream import run_cluster_stream

__all__ = [
    "InterconnectSpec",
    "INTERCONNECTS",
    "ClusterMachine",
    "ClusterCommunicator",
    "SummaResult",
    "run_summa_gemm",
    "run_cluster_stream",
]
