"""MPI-flavoured collectives over the cluster's link model.

Cost formulas are the textbook ones (Chan et al. / MPICH defaults):
broadcast and reduce are log2(P)-stage trees, allgather is a (P-1)-step
ring.  Only the *timing* is modelled here; data placement is handled by the
workloads, which keep per-node NumPy blocks.
"""

from __future__ import annotations

import math

from repro.cluster.machine import ClusterMachine
from repro.errors import ConfigurationError

__all__ = ["ClusterCommunicator"]


class ClusterCommunicator:
    """Collective timing over a :class:`ClusterMachine`."""

    def __init__(self, cluster: ClusterMachine) -> None:
        self.cluster = cluster

    def _phase(self, duration_s: float) -> float:
        self.cluster.barrier()
        for node in self.cluster.nodes:
            node.clock.advance(duration_s)
        return duration_s

    # -- collectives -----------------------------------------------------
    def broadcast(self, nbytes: float, root: int = 0) -> float:
        """Binomial-tree broadcast: ceil(log2 P) link transfers."""
        self._check(nbytes, root)
        p = self.cluster.node_count
        if p == 1:
            return 0.0
        stages = math.ceil(math.log2(p))
        duration = stages * self.cluster.interconnect.transfer_time_s(nbytes)
        return self._phase(duration)

    def reduce(self, nbytes: float, root: int = 0) -> float:
        """Binomial-tree reduction (same link cost as broadcast)."""
        self._check(nbytes, root)
        p = self.cluster.node_count
        if p == 1:
            return 0.0
        stages = math.ceil(math.log2(p))
        duration = stages * self.cluster.interconnect.transfer_time_s(nbytes)
        return self._phase(duration)

    def allgather(self, nbytes_per_node: float) -> float:
        """Ring allgather: (P-1) steps of one block each."""
        self._check(nbytes_per_node, 0)
        p = self.cluster.node_count
        if p == 1:
            return 0.0
        duration = (p - 1) * self.cluster.interconnect.transfer_time_s(
            nbytes_per_node
        )
        return self._phase(duration)

    def ring_shift(self, nbytes: float) -> float:
        """One neighbour exchange (Cannon-style shift)."""
        self._check(nbytes, 0)
        if self.cluster.node_count == 1:
            return 0.0
        return self._phase(self.cluster.interconnect.transfer_time_s(nbytes))

    def _check(self, nbytes: float, root: int) -> None:
        if nbytes < 0:
            raise ConfigurationError("collective size must be non-negative")
        if not (0 <= root < self.cluster.node_count):
            raise ConfigurationError(
                f"root {root} outside cluster of {self.cluster.node_count}"
            )
