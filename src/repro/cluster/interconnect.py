"""Interconnects one can realistically build a Mac cluster with."""

from __future__ import annotations

import dataclasses
from types import MappingProxyType
from typing import Mapping

from repro.errors import ConfigurationError

__all__ = ["InterconnectSpec", "INTERCONNECTS"]


@dataclasses.dataclass(frozen=True)
class InterconnectSpec:
    """A simple latency/bandwidth (Hockney) link model."""

    name: str
    bandwidth_gbs: float  # per-link, each direction
    latency_us: float
    #: Fraction of nominal bandwidth achieved by a well-tuned transport.
    efficiency: float = 0.85

    def __post_init__(self) -> None:
        if self.bandwidth_gbs <= 0 or self.latency_us < 0:
            raise ConfigurationError("interconnect needs positive bandwidth")
        if not (0.0 < self.efficiency <= 1.0):
            raise ConfigurationError("interconnect efficiency must be in (0, 1]")

    def transfer_time_s(self, nbytes: float) -> float:
        """Hockney model: latency + size / effective bandwidth."""
        if nbytes < 0:
            raise ConfigurationError("transfer size must be non-negative")
        return self.latency_us * 1e-6 + nbytes / (
            self.bandwidth_gbs * 1e9 * self.efficiency
        )


INTERCONNECTS: Mapping[str, InterconnectSpec] = MappingProxyType(
    {
        # Thunderbolt 4 IP networking: ~40 Gb/s nominal, high stack latency.
        "thunderbolt-ip": InterconnectSpec(
            name="thunderbolt-ip", bandwidth_gbs=5.0, latency_us=120.0,
            efficiency=0.70,
        ),
        # 10 GbE through a switch (the Mac mini's built-in option).
        "10gbe": InterconnectSpec(
            name="10gbe", bandwidth_gbs=1.25, latency_us=30.0, efficiency=0.90
        ),
        # An HPC-class fabric, for contrast with what real clusters use.
        "infiniband-ndr": InterconnectSpec(
            name="infiniband-ndr", bandwidth_gbs=50.0, latency_us=2.0,
            efficiency=0.92,
        ),
    }
)
