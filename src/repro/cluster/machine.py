"""A cluster of simulated machines sharing a virtual timeline."""

from __future__ import annotations

from repro.cluster.interconnect import INTERCONNECTS, InterconnectSpec
from repro.errors import ConfigurationError
from repro.sim.machine import Machine
from repro.sim.policy import NumericsConfig

__all__ = ["ClusterMachine"]


class ClusterMachine:
    """``node_count`` identical machines plus one interconnect.

    Nodes run in lockstep (BSP-style): collective phases advance every
    node's clock by the same amount, which is how a well-balanced SUMMA or
    STREAM executes.  Per-node state (power traces) stays per machine.
    """

    def __init__(
        self,
        chip_name: str,
        node_count: int,
        interconnect: InterconnectSpec | str = "10gbe",
        *,
        seed: int = 0,
        numerics: NumericsConfig | None = None,
    ) -> None:
        if node_count < 1:
            raise ConfigurationError("a cluster needs at least one node")
        if isinstance(interconnect, str):
            try:
                interconnect = INTERCONNECTS[interconnect]
            except KeyError:
                raise ConfigurationError(
                    f"unknown interconnect {interconnect!r}; "
                    f"known: {', '.join(INTERCONNECTS)}"
                ) from None
        self.interconnect = interconnect
        self.nodes = [
            Machine.for_chip(chip_name, seed=seed + rank, numerics=numerics)
            for rank in range(node_count)
        ]

    @property
    def node_count(self) -> int:
        return len(self.nodes)

    @property
    def chip_name(self) -> str:
        return self.nodes[0].chip.name

    def now_s(self) -> float:
        """Cluster time = the furthest-ahead node (the BSP frontier)."""
        return max(node.now_s() for node in self.nodes)

    def barrier(self) -> float:
        """Synchronise all node clocks to the frontier; returns the time."""
        frontier = self.now_s()
        for node in self.nodes:
            node.clock.advance_to(frontier)
        return frontier

    def communicate(self, nbytes_per_node: float, label: str = "exchange") -> float:
        """A balanced exchange phase: every node moves ``nbytes`` on the link.

        Advances every node's clock by the Hockney transfer time and returns
        the phase duration.
        """
        self.barrier()
        duration = self.interconnect.transfer_time_s(nbytes_per_node)
        for node in self.nodes:
            node.clock.advance(duration)
        return duration
