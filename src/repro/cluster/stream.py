"""Cluster-wide STREAM: aggregate bandwidth of N independent nodes.

STREAM has no communication, so a cluster's aggregate bandwidth is the sum
of its nodes' — the optimistic upper bound against which the SUMMA result
shows what coupling through a real interconnect costs.
"""

from __future__ import annotations

from repro.cluster.machine import ClusterMachine
from repro.core.stream.runner import run_stream

__all__ = ["run_cluster_stream"]


def run_cluster_stream(
    cluster: ClusterMachine,
    target: str = "gpu",
    *,
    n_elements: int | None = None,
    repeats: int | None = None,
) -> dict[str, float]:
    """Per-kernel aggregate GB/s over all nodes (run in lockstep)."""
    per_node = [
        run_stream(node, target, n_elements=n_elements, repeats=repeats)
        for node in cluster.nodes
    ]
    cluster.barrier()
    kernels = per_node[0].kernels.keys()
    return {
        kernel: sum(result.kernels[kernel].max_gbs for result in per_node)
        for kernel in kernels
    }
