"""SUMMA distributed GEMM across a cluster of M-series nodes.

SUMMA on a sqrt(P) x sqrt(P) process grid: in each of the K-panel steps the
owning row/column broadcasts its A-panel and B-panel, and every node runs a
local GEMM on its block through the single-node MPS path (the paper's best
engine).  The result quantifies the paper's future-work question: how much
of the M-series' efficiency survives a commodity interconnect.
"""

from __future__ import annotations

import dataclasses
import math

from repro.calibration.gemm import build_gemm_operation
from repro.cluster.comm import ClusterCommunicator
from repro.cluster.machine import ClusterMachine
from repro.errors import ConfigurationError, UnsupportedProblemError

__all__ = ["SummaResult", "run_summa_gemm"]


@dataclasses.dataclass(frozen=True)
class SummaResult:
    """Outcome of one distributed multiplication."""

    n: int
    node_count: int
    grid_dim: int
    panel: int
    elapsed_s: float
    compute_s: float
    communication_s: float
    aggregate_gflops: float
    single_node_gflops: float

    @property
    def speedup(self) -> float:
        return self.aggregate_gflops / self.single_node_gflops

    @property
    def parallel_efficiency(self) -> float:
        return self.speedup / self.node_count

    @property
    def communication_fraction(self) -> float:
        if self.elapsed_s == 0.0:
            return 0.0
        return self.communication_s / self.elapsed_s


def run_summa_gemm(
    cluster: ClusterMachine,
    n: int,
    *,
    panel: int | None = None,
    impl_key: str = "gpu-mps",
) -> SummaResult:
    """One n x n FP32 GEMM over the cluster via SUMMA.

    Requires a square process grid (P a perfect square) and n divisible by
    the grid dimension.
    """
    p = cluster.node_count
    grid = int(math.isqrt(p))
    if grid * grid != p:
        raise ConfigurationError(
            f"SUMMA needs a square node count, got {p}"
        )
    if n % grid != 0:
        raise ConfigurationError(f"n={n} not divisible by grid dimension {grid}")
    block = n // grid
    panel = panel or min(block, 512)
    if block % panel != 0:
        raise ConfigurationError(f"block {block} not divisible by panel {panel}")

    comm = ClusterCommunicator(cluster)
    # The local multiply-accumulate is block x panel @ panel x block; map it
    # to calibration through its cube-equivalent size.
    local_equiv = max(1, int(round((block * block * panel) ** (1.0 / 3.0))))
    for node in cluster.nodes:
        from repro.calibration.gemm import gemm_calibration

        if not gemm_calibration(node.chip, impl_key).supports(local_equiv):
            raise UnsupportedProblemError(
                f"{impl_key} cannot run local blocks of ~{local_equiv}"
            )

    start = cluster.barrier()
    compute_s = 0.0
    communication_s = 0.0
    steps = n // panel
    panel_bytes = float(block * panel * 4)
    for step in range(steps):
        # Row and column broadcasts of the current panels.
        communication_s += comm.broadcast(panel_bytes)
        communication_s += comm.broadcast(panel_bytes)
        # Local rank-panel update on every node (lockstep, same size).
        phase_start = cluster.barrier()
        for node in cluster.nodes:
            node.execute(
                build_gemm_operation(
                    node.chip,
                    impl_key,
                    local_equiv,
                    label=f"summa/step{step}/local",
                )
            )
        cluster.barrier()
        compute_s += cluster.now_s() - phase_start
    elapsed = cluster.barrier() - start

    flops = float(n) * n * (2 * n - 1)
    aggregate = flops / elapsed / 1e9 if elapsed > 0 else 0.0

    # Single-node reference: the same total multiplication on one machine.
    reference = cluster.nodes[0]
    single_op = build_gemm_operation(reference.chip, impl_key, n)
    single_gflops = (
        flops
        / (
            flops
            / (single_op.peak_flops * single_op.compute_efficiency)
            + single_op.overhead_s
        )
        / 1e9
    )

    return SummaResult(
        n=n,
        node_count=p,
        grid_dim=grid,
        panel=panel,
        elapsed_s=elapsed,
        compute_s=compute_s,
        communication_s=communication_s,
        aggregate_gflops=aggregate,
        single_node_gflops=single_gflops,
    )
