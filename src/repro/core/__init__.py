"""The paper's benchmark suite — the primary contribution being reproduced.

* :mod:`repro.core.stream` — STREAM for CPU (OpenMP sweep) and GPU (Metal);
* :mod:`repro.core.gemm` — the six GEMM implementations of Table 2 plus the
  extension paths (ANE FP16, emulated FP64);
* :mod:`repro.core.power` — the powermetrics measurement protocol of §3.3;
* :mod:`repro.core.harness` — the experiment runner of §4 (sizes, repeats,
  chrono timing, verification).
"""

from repro.core.data import PageAlignedAllocation, aligned_alloc, make_matrix
from repro.core.harness import ExperimentRunner
from repro.core.results import (
    GemmRepetition,
    GemmResult,
    PowerMeasurement,
    PoweredGemmResult,
    StreamKernelResult,
    StreamResult,
)

__all__ = [
    "aligned_alloc",
    "make_matrix",
    "PageAlignedAllocation",
    "ExperimentRunner",
    "GemmRepetition",
    "GemmResult",
    "StreamKernelResult",
    "StreamResult",
    "PowerMeasurement",
    "PoweredGemmResult",
]
