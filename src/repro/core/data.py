"""Page-aligned allocation and input-matrix generation.

Follows section 3.2 of the paper exactly: all matrices are allocated via
(the moral equivalent of) ``aligned_alloc`` with a 16,384-byte page size,
and "allocation lengths were automatically extended to the nearest page
multiple" so the GPU can wrap them with zero-copy shared buffers.  Matrix
entries are dense single-precision values drawn uniformly from [0, 1).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import AllocationError
from repro.units import PAGE_SIZE, round_up

__all__ = ["PageAlignedAllocation", "aligned_alloc", "make_matrix"]


@dataclasses.dataclass(frozen=True)
class PageAlignedAllocation:
    """A page-aligned byte buffer with its padded length.

    ``data`` is a uint8 view whose base address is ``PAGE_SIZE``-aligned and
    whose size equals ``length`` (a page multiple >= the requested bytes).
    """

    data: np.ndarray
    requested_bytes: int
    length: int

    def __post_init__(self) -> None:
        if self.data.ctypes.data % PAGE_SIZE != 0:
            raise AllocationError("allocation base is not page-aligned")
        if self.length % PAGE_SIZE != 0:
            raise AllocationError("allocation length is not a page multiple")
        if self.data.size != self.length:
            raise AllocationError("allocation view size differs from its length")

    def view(self, dtype: np.dtype | type, count: int) -> np.ndarray:
        """Typed view of the first ``count`` elements."""
        dt = np.dtype(dtype)
        if count * dt.itemsize > self.length:
            raise AllocationError(
                f"requested {count} x {dt} exceeds allocation of {self.length} bytes"
            )
        return self.data[: count * dt.itemsize].view(dt)


def aligned_alloc(nbytes: int, page_size: int = PAGE_SIZE) -> PageAlignedAllocation:
    """Allocate ``nbytes`` rounded up to a page multiple, page-aligned.

    NumPy gives no alignment guarantees, so we over-allocate by one page and
    slice at the first aligned offset — the standard trick behind
    ``aligned_alloc`` shims.
    """
    if nbytes <= 0:
        raise AllocationError(f"allocation size must be positive, got {nbytes}")
    length = round_up(nbytes, page_size)
    raw = np.zeros(length + page_size, dtype=np.uint8)
    offset = (-raw.ctypes.data) % page_size
    data = raw[offset : offset + length]
    return PageAlignedAllocation(data=data, requested_bytes=nbytes, length=length)


def make_matrix(
    n: int,
    seed: int,
    dtype: np.dtype | type = np.float32,
    *,
    fill_random: bool = True,
) -> tuple[np.ndarray, PageAlignedAllocation]:
    """An n x n matrix inside a fresh page-aligned allocation.

    Returns the matrix view and the allocation (whose ``length`` is what the
    paper passes to ``newBufferWithBytesNoCopy``).  With ``fill_random`` the
    entries are uniform in [0, 1) from a seeded generator; otherwise zeros.
    """
    if n <= 0:
        raise AllocationError(f"matrix dimension must be positive, got {n}")
    dt = np.dtype(dtype)
    alloc = aligned_alloc(n * n * dt.itemsize)
    matrix = alloc.view(dt, n * n).reshape(n, n)
    if fill_random:
        rng = np.random.default_rng(seed)
        if dt == np.dtype(np.float32):
            matrix[...] = rng.random((n, n), dtype=np.float32)
        elif dt == np.dtype(np.float64):
            matrix[...] = rng.random((n, n), dtype=np.float64)
        else:
            matrix[...] = rng.random((n, n)).astype(dt)
    return matrix, alloc
