"""The GEMM benchmark: Table 2's implementations and their registry."""

from repro.core.gemm.base import GemmImplementation, GemmProblem
from repro.core.gemm.registry import (
    all_implementations,
    get_implementation,
    implementation_keys,
    paper_implementation_keys,
    table2_rows,
)
from repro.core.gemm.verify import verify_result

__all__ = [
    "GemmProblem",
    "GemmImplementation",
    "get_implementation",
    "all_implementations",
    "implementation_keys",
    "paper_implementation_keys",
    "table2_rows",
    "verify_result",
]
