"""ANE-FP16: Neural Engine GEMM — the paper's named future work.

"A large gap left behind in this research is the lack of Neural Engine
testing" (section 7).  The Neural Engine only runs FP16/INT8 and cannot be
programmed directly (Core ML decides placement, section 2.3); this extension
models a Core-ML-dispatched FP16 matrix multiply so the precision-ablation
bench can situate the ANE against the Figure-2 FP32 results the way the
paper situates Nvidia tensor cores.

Numerically the inputs are rounded to FP16 and accumulated in FP32 (the ANE
MAC-array behaviour), so results carry genuine half-precision error — which
is exactly the paper's argument for why it is unsuited to FP32/FP64 HPC.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.calibration.gemm import build_gemm_operation
from repro.core.gemm.base import GemmImplementation, GemmProblem
from repro.sim.machine import Machine
from repro.sim.policy import NumericsPolicy
from repro.soc.ane import ane_supports
from repro.soc.precision import Precision

__all__ = ["AneFp16Gemm"]


@dataclasses.dataclass
class _AneContext:
    a_fp16: np.ndarray
    b_fp16: np.ndarray


class AneFp16Gemm(GemmImplementation):
    key = "ane-fp16"
    display_name = "Core ML (Neural Engine, FP16)"
    framework = "Core ML"
    hardware = "ANE"
    in_table2 = False
    extension = True

    def supports(self, machine: Machine, n: int) -> bool:
        return ane_supports(machine.chip, Precision.FP16) and super().supports(
            machine, n
        )

    def prepare(self, machine: Machine, problem: GemmProblem) -> _AneContext:
        if machine.numerics.policy is NumericsPolicy.MODEL_ONLY:
            # No numerics will run; skip the (large) quantisation pass.
            empty = np.empty((0, 0), dtype=np.float16)
            return _AneContext(a_fp16=empty, b_fp16=empty)
        # Core ML quantises the model weights/inputs ahead of dispatch.
        return _AneContext(
            a_fp16=problem.a.astype(np.float16),
            b_fp16=problem.b.astype(np.float16),
        )

    def execute(
        self, machine: Machine, problem: GemmProblem, context: _AneContext
    ) -> None:
        self.check_supports(machine, problem.n)
        n = problem.n
        policy = machine.numerics.effective_policy(n)
        if policy is NumericsPolicy.FULL:
            acc = context.a_fp16.astype(np.float32) @ context.b_fp16.astype(np.float32)
            problem.out[...] = acc
        elif policy is NumericsPolicy.SAMPLED:
            rows = machine.numerics.sampled_row_indices(n)
            acc = context.a_fp16[rows, :].astype(np.float32) @ context.b_fp16.astype(
                np.float32
            )
            problem.out[rows, :] = acc

        machine.execute(
            build_gemm_operation(machine.chip, self.key, n, element_bytes=2)
        )
