"""GEMM problem setup and the implementation interface.

A :class:`GemmProblem` owns the page-aligned input/output matrices of one
benchmark cell (section 3.2's allocation rules).  A
:class:`GemmImplementation` prepares once (shader/pipeline/buffer setup is
"program setup time", excluded from timing) and executes per repetition.
"""

from __future__ import annotations

import abc
import dataclasses
from typing import Any

import numpy as np

from repro.calibration.gemm import gemm_calibration
from repro.core.data import PageAlignedAllocation, make_matrix
from repro.errors import UnsupportedProblemError
from repro.sim.machine import Machine

__all__ = ["GemmProblem", "GemmImplementation"]


@dataclasses.dataclass(frozen=True)
class GemmProblem:
    """Inputs and output of one n x n single-precision multiplication."""

    n: int
    seed: int
    a: np.ndarray
    b: np.ndarray
    out: np.ndarray
    a_alloc: PageAlignedAllocation
    b_alloc: PageAlignedAllocation
    out_alloc: PageAlignedAllocation

    @classmethod
    def generate(
        cls, n: int, seed: int = 0, *, fill_random: bool = True
    ) -> "GemmProblem":
        """Dense matrices in [0, 1), page-aligned (section 3.2).

        ``fill_random=False`` leaves the inputs zeroed — used by MODEL_ONLY
        runs where numerics never execute and filling gigabyte matrices
        would dominate the wall time.
        """
        a, a_alloc = make_matrix(n, seed=seed * 3 + 1, fill_random=fill_random)
        b, b_alloc = make_matrix(n, seed=seed * 3 + 2, fill_random=fill_random)
        out, out_alloc = make_matrix(n, seed=0, fill_random=False)
        return cls(
            n=n,
            seed=seed,
            a=a,
            b=b,
            out=out,
            a_alloc=a_alloc,
            b_alloc=b_alloc,
            out_alloc=out_alloc,
        )

    @property
    def memory_length(self) -> int:
        """Padded byte length per matrix — the no-copy buffer length."""
        return self.out_alloc.length

    def reset_output(self) -> None:
        """Zero the output matrix between repetitions."""
        self.out.fill(0.0)


class GemmImplementation(abc.ABC):
    """One row of Table 2 (or an extension path)."""

    #: Calibration key, e.g. ``"gpu-mps"``.
    key: str
    #: Display name as printed in Table 2.
    display_name: str
    #: Framework column of Table 2.
    framework: str
    #: Hardware column of Table 2.
    hardware: str
    #: Whether the paper's Table 2 lists this implementation.
    in_table2: bool = True
    #: Extension paths (ANE, emulated FP64) are not part of the paper's study.
    extension: bool = False

    def supports(self, machine: Machine, n: int) -> bool:
        """Whether this implementation runs size ``n`` (section 4 exclusions)."""
        return gemm_calibration(machine.chip, self.key).supports(n)

    def check_supports(self, machine: Machine, n: int) -> None:
        """Raise :class:`UnsupportedProblemError` for excluded sizes."""
        if not self.supports(machine, n):
            raise UnsupportedProblemError(
                f"{self.key} does not execute n={n} "
                f"(the paper excludes it for its long execution time)"
            )

    @abc.abstractmethod
    def prepare(self, machine: Machine, problem: GemmProblem) -> Any:
        """One-time setup (buffers, pipelines); excluded from timing."""

    @abc.abstractmethod
    def execute(self, machine: Machine, problem: GemmProblem, context: Any) -> None:
        """Run one multiplication; advances the virtual clock."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} key={self.key!r}>"
