"""CPU-Accelerate: ``cblas_sgemm`` / vDSP on the AMX units (Table 2, row 2).

Host code mirrors the paper's Listing 1::

    cblas_sgemm(CblasRowMajor, CblasNoTrans, CblasNoTrans,
                n, n, n, 1, left, n, right, n, 0, out, n);

The BLAS and vDSP variants "perform nearly identically ... they assumedly
both run on AMX" (section 5.2); both are offered here and route to the same
AMX timing model.
"""

from __future__ import annotations

import numpy as np

from repro.accelerate import (
    CBLAS_NO_TRANS,
    CBLAS_ROW_MAJOR,
    cblas_sgemm,
    vDSP_mmul,
)
from repro.calibration.gemm import build_gemm_operation
from repro.core.gemm.base import GemmImplementation, GemmProblem
from repro.errors import ConfigurationError
from repro.sim.machine import Machine
from repro.sim.policy import NumericsPolicy

__all__ = ["AccelerateGemm"]


class AccelerateGemm(GemmImplementation):
    key = "cpu-accelerate"
    display_name = "BLAS/vDSP"
    framework = "Accelerate"
    hardware = "CPU"

    def __init__(self, variant: str = "vdsp") -> None:
        if variant not in ("blas", "vdsp"):
            raise ConfigurationError(
                f"Accelerate variant must be 'blas' or 'vdsp', got {variant!r}"
            )
        self.variant = variant

    def prepare(self, machine: Machine, problem: GemmProblem) -> None:
        return None

    def execute(self, machine: Machine, problem: GemmProblem, context: None) -> None:
        self.check_supports(machine, problem.n)
        n = problem.n
        policy = machine.numerics.effective_policy(n)
        if policy is NumericsPolicy.FULL:
            if self.variant == "blas":
                cblas_sgemm(
                    CBLAS_ROW_MAJOR,
                    CBLAS_NO_TRANS,
                    CBLAS_NO_TRANS,
                    n,
                    n,
                    n,
                    1.0,
                    problem.a,
                    n,
                    problem.b,
                    n,
                    0.0,
                    problem.out,
                    n,
                )
            else:
                vDSP_mmul(problem.a, 1, problem.b, 1, problem.out, 1, n, n, n)
        elif policy is NumericsPolicy.SAMPLED:
            rows = machine.numerics.sampled_row_indices(n)
            problem.out[rows, :] = (problem.a[rows, :] @ problem.b).astype(
                np.float32, copy=False
            )

        machine.execute(build_gemm_operation(machine.chip, self.key, n))
