"""CPU-OMP: multi-threaded tiled matrix multiplication with OpenMP.

"We also use a multi-threaded tiled matrix-matrix multiplication with
OpenMP, using an open-source implementation" (section 3.2, citing the
Block-Matrix-Multiplication-OpenMP repository).  The numerics reproduce that
code's structure — a parallel-for over row blocks with an inner blocked
k/j loop — through :class:`repro.omp.OpenMPRuntime`; timing models all CPU
cores running the (unvectorised) blocked loop.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.calibration.gemm import build_gemm_operation
from repro.core.gemm.base import GemmImplementation, GemmProblem
from repro.omp import OpenMPRuntime, Schedule
from repro.sim.machine import Machine
from repro.sim.policy import NumericsPolicy

__all__ = ["OpenMPTiledGemm", "BLOCK"]

#: Block edge of the open-source tiled algorithm.
BLOCK = 64


@dataclasses.dataclass
class _OmpContext:
    runtime: OpenMPRuntime
    num_threads: int


def _blocked_rows(
    a: np.ndarray, b: np.ndarray, out: np.ndarray, row_start: int, row_stop: int
) -> None:
    """The inner blocked loops for one chunk of rows (k-blocked accumulate)."""
    n = b.shape[0]
    out[row_start:row_stop, :] = 0.0
    for k0 in range(0, n, BLOCK):
        k1 = min(k0 + BLOCK, n)
        a_blk = a[row_start:row_stop, k0:k1]
        for j0 in range(0, n, BLOCK):
            j1 = min(j0 + BLOCK, n)
            out[row_start:row_stop, j0:j1] += a_blk @ b[k0:k1, j0:j1]


class OpenMPTiledGemm(GemmImplementation):
    key = "cpu-omp"
    display_name = "Tiled algorithm (OpenMP)"
    framework = "C++/OpenMP"
    hardware = "CPU"
    #: The paper's Table 2 omits this row; the text and figures include it.
    in_table2 = False

    def prepare(self, machine: Machine, problem: GemmProblem) -> _OmpContext:
        threads = machine.chip.total_cores
        runtime = OpenMPRuntime()
        runtime.set_num_threads(threads)
        return _OmpContext(runtime=runtime, num_threads=threads)

    def execute(
        self, machine: Machine, problem: GemmProblem, context: _OmpContext
    ) -> None:
        self.check_supports(machine, problem.n)
        n = problem.n
        policy = machine.numerics.effective_policy(n)
        if policy is NumericsPolicy.FULL:
            context.runtime.parallel_for(
                n,
                lambda start, stop, thread: _blocked_rows(
                    problem.a, problem.b, problem.out, start, stop
                ),
                schedule=Schedule.parse("static"),
            )
        elif policy is NumericsPolicy.SAMPLED:
            rows = machine.numerics.sampled_row_indices(n)
            problem.out[rows, :] = (problem.a[rows, :] @ problem.b).astype(
                np.float32, copy=False
            )

        machine.execute(build_gemm_operation(machine.chip, self.key, n))
