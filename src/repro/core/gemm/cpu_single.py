"""CPU-Single: the naive triple-nested-loop baseline (Table 2, row 1).

"An implementation of the standard algorithm with a triple nested loop
provides a reference baseline" (section 3.2).  The numerics walk the output
row by row with the classic i/j/k ordering (fully scalar for tiny problems,
row-at-a-time for larger ones so the Python loop does not dominate); the
simulated timing models a single P-core running unvectorised code whose
efficiency collapses once the working set spills the caches.
"""

from __future__ import annotations

import numpy as np

from repro.calibration.gemm import build_gemm_operation
from repro.core.gemm.base import GemmImplementation, GemmProblem
from repro.sim.machine import Machine
from repro.sim.policy import NumericsPolicy

__all__ = ["SingleThreadedGemm", "triple_loop_matmul"]

#: Below this size the numerics use the literal scalar triple loop.
_SCALAR_LOOP_LIMIT = 32


def triple_loop_matmul(a: np.ndarray, b: np.ndarray, out: np.ndarray) -> None:
    """The literal i/j/k loop, FP32 accumulate — the reference semantics."""
    n_i, n_k = a.shape
    n_j = b.shape[1]
    for i in range(n_i):
        for j in range(n_j):
            acc = np.float32(0.0)
            for k in range(n_k):
                acc = np.float32(acc + a[i, k] * b[k, j])
            out[i, j] = acc


class SingleThreadedGemm(GemmImplementation):
    key = "cpu-single"
    display_name = "Naive algorithm"
    framework = "C++"
    hardware = "CPU"

    def prepare(self, machine: Machine, problem: GemmProblem) -> None:
        return None

    def execute(self, machine: Machine, problem: GemmProblem, context: None) -> None:
        self.check_supports(machine, problem.n)
        n = problem.n
        policy = machine.numerics.effective_policy(n)
        if policy is NumericsPolicy.FULL:
            if n <= _SCALAR_LOOP_LIMIT:
                triple_loop_matmul(problem.a, problem.b, problem.out)
            else:
                # Row-at-a-time keeps the i-loop explicit while the inner two
                # loops are fused into a vector product of identical ordering.
                for i in range(n):
                    problem.out[i, :] = problem.a[i, :] @ problem.b
        elif policy is NumericsPolicy.SAMPLED:
            rows = machine.numerics.sampled_row_indices(n)
            for i in rows:
                problem.out[i, :] = problem.a[i, :] @ problem.b

        machine.execute(build_gemm_operation(machine.chip, self.key, n))
