"""GPU-FP64-emulated: double precision via double-float shader arithmetic.

The M-series GPUs "lack native FP64 support (which can be emulated)"
(section 1).  This extension wraps the
:mod:`repro.metal.shaders.gemm_fp64_emulated` kernel: inputs are split into
(hi, lo) FP32 pairs on the host, multiplied with compensated arithmetic on
the (simulated) GPU at a ~20x throughput penalty, and recombined.  The
precision-ablation bench uses it to quantify what FP64 HPC would cost on
this architecture.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.data import aligned_alloc
from repro.core.gemm.base import GemmImplementation, GemmProblem
from repro.metal.buffer import MTLBuffer
from repro.metal.command_buffer import MTLCommandQueue
from repro.metal.device import MTLCreateSystemDefaultDevice
from repro.metal.pipeline import MTLComputePipelineState
from repro.metal.resources import MTLResourceStorageMode, MTLSize
from repro.metal.shaders.gemm_fp64_emulated import (
    merge_float_pair,
    split_to_float_pair,
)
from repro.sim.machine import Machine

__all__ = ["EmulatedFp64Gemm"]

_TG = 8


@dataclasses.dataclass
class _Fp64Context:
    queue: MTLCommandQueue
    pipeline: MTLComputePipelineState
    buffers: tuple[MTLBuffer, ...]  # a_hi, a_lo, b_hi, b_lo, c_hi, c_lo
    c_views: tuple[np.ndarray, np.ndarray]


class EmulatedFp64Gemm(GemmImplementation):
    key = "gpu-fp64-emulated"
    display_name = "Double-float emulated FP64 shader"
    framework = "Metal"
    hardware = "GPU"
    in_table2 = False
    extension = True

    def prepare(self, machine: Machine, problem: GemmProblem) -> _Fp64Context:
        device = MTLCreateSystemDefaultDevice(machine)
        library = device.new_default_library()
        pipeline = device.new_compute_pipeline_state_with_function(
            library.new_function_with_name("gemm_fp64_emulated")
        )
        n = problem.n
        from repro.sim.policy import NumericsPolicy

        skip_numerics = machine.numerics.policy is NumericsPolicy.MODEL_ONLY
        # Promote the FP32 study inputs to FP64 and split into pairs; each
        # plane lives in its own page-aligned allocation.
        planes: list[MTLBuffer] = []
        views: list[np.ndarray] = []
        if skip_numerics:
            sources: tuple[np.ndarray, ...] = ()
        else:
            sources = (problem.a.astype(np.float64), problem.b.astype(np.float64))
        for idx in range(2):
            pair = split_to_float_pair(sources[idx]) if not skip_numerics else (None, None)
            for plane in pair:
                alloc = aligned_alloc(n * n * 4)
                view = alloc.view(np.float32, n * n).reshape(n, n)
                if plane is not None:
                    view[...] = plane
                planes.append(
                    device.new_buffer_with_bytes_no_copy(
                        alloc.data, alloc.length, MTLResourceStorageMode.SHARED
                    )
                )
                views.append(view)
        c_views: list[np.ndarray] = []
        for _ in range(2):
            alloc = aligned_alloc(n * n * 4)
            view = alloc.view(np.float32, n * n).reshape(n, n)
            planes.append(
                device.new_buffer_with_bytes_no_copy(
                    alloc.data, alloc.length, MTLResourceStorageMode.SHARED
                )
            )
            c_views.append(view)
        return _Fp64Context(
            queue=device.new_command_queue(),
            pipeline=pipeline,
            buffers=tuple(planes),
            c_views=(c_views[0], c_views[1]),
        )

    def execute(
        self, machine: Machine, problem: GemmProblem, context: _Fp64Context
    ) -> None:
        self.check_supports(machine, problem.n)
        n = problem.n
        groups = (n + _TG - 1) // _TG
        command_buffer = context.queue.command_buffer()
        encoder = command_buffer.compute_command_encoder()
        encoder.set_compute_pipeline_state(context.pipeline)
        for index, buffer in enumerate(context.buffers):
            encoder.set_buffer(buffer, 0, index)
        encoder.set_bytes(np.uint32(n), 6)
        encoder.dispatch_threadgroups(MTLSize(groups, groups), MTLSize(_TG, _TG))
        encoder.end_encoding()
        command_buffer.commit()
        command_buffer.wait_until_completed()
        from repro.sim.policy import NumericsPolicy

        if machine.numerics.policy is not NumericsPolicy.MODEL_ONLY:
            # Fold the double-float result into the FP32 study output buffer
            # so generic verification still applies (exact in FP32 range).
            problem.out[...] = merge_float_pair(*context.c_views).astype(np.float32)

    def result_fp64(self, context: _Fp64Context) -> np.ndarray:
        """The full-precision FP64 result (hi + lo)."""
        return merge_float_pair(*context.c_views)
