"""GPU-CUTLASS: the CUTLASS-style tiled MSL shader (Table 2, row 4)."""

from __future__ import annotations

from repro.core.gemm.gpu_shader import ShaderGemmBase

__all__ = ["CutlassShaderGemm"]


class CutlassShaderGemm(ShaderGemmBase):
    key = "gpu-cutlass"
    display_name = "Cutlass-style tiled shader"
    framework = "Metal"
    hardware = "GPU"
    shader_name = "gemm_tiled"
