"""GPU-MPS: Metal Performance Shaders matrix multiplication (Table 2, row 5).

Host code mirrors the paper's Listing 2: no-copy shared buffers wrap the
page-aligned matrices, an ``MPSMatrixDescriptor`` describes the square
layout, and an ``MPSMatrixMultiplication`` kernel is encoded into a command
buffer which is committed and awaited.
"""

from __future__ import annotations

import dataclasses

from repro.core.gemm.base import GemmImplementation, GemmProblem
from repro.metal.command_buffer import MTLCommandQueue
from repro.metal.device import MTLCreateSystemDefaultDevice
from repro.metal.mps import (
    MPSDataType,
    MPSMatrix,
    MPSMatrixDescriptor,
    MPSMatrixMultiplication,
)
from repro.metal.resources import MTLResourceStorageMode
from repro.sim.machine import Machine

__all__ = ["MpsGemm"]


@dataclasses.dataclass
class _MpsContext:
    queue: MTLCommandQueue
    multiplication: MPSMatrixMultiplication
    mat_a: MPSMatrix
    mat_b: MPSMatrix
    mat_out: MPSMatrix


class MpsGemm(GemmImplementation):
    key = "gpu-mps"
    display_name = "Metal Performance Shaders (MPS)"
    framework = "Metal"
    hardware = "GPU"

    def prepare(self, machine: Machine, problem: GemmProblem) -> _MpsContext:
        device = MTLCreateSystemDefaultDevice(machine)
        n = problem.n
        length = problem.memory_length
        buf_a = device.new_buffer_with_bytes_no_copy(
            problem.a_alloc.data, length, MTLResourceStorageMode.SHARED
        )
        buf_b = device.new_buffer_with_bytes_no_copy(
            problem.b_alloc.data, length, MTLResourceStorageMode.SHARED
        )
        buf_out = device.new_buffer_with_bytes_no_copy(
            problem.out_alloc.data, length, MTLResourceStorageMode.SHARED
        )
        descriptor = MPSMatrixDescriptor(
            rows=n, columns=n, row_bytes=n * 4, data_type=MPSDataType.FLOAT32
        )
        multiplication = MPSMatrixMultiplication(
            device,
            result_rows=n,
            result_columns=n,
            interior_columns=n,
        )
        return _MpsContext(
            queue=device.new_command_queue(),
            multiplication=multiplication,
            mat_a=MPSMatrix(buf_a, descriptor),
            mat_b=MPSMatrix(buf_b, descriptor),
            mat_out=MPSMatrix(buf_out, descriptor),
        )

    def execute(
        self, machine: Machine, problem: GemmProblem, context: _MpsContext
    ) -> None:
        self.check_supports(machine, problem.n)
        command_buffer = context.queue.command_buffer()
        context.multiplication.encode_to_command_buffer(
            command_buffer, context.mat_a, context.mat_b, context.mat_out
        )
        command_buffer.commit()
        command_buffer.wait_until_completed()
