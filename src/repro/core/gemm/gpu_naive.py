"""GPU-Naive: the naive MSL shader (Table 2, row 3)."""

from __future__ import annotations

from repro.core.gemm.gpu_shader import ShaderGemmBase

__all__ = ["NaiveShaderGemm"]


class NaiveShaderGemm(ShaderGemmBase):
    key = "gpu-naive"
    display_name = "Naive algorithm as shader"
    framework = "Metal"
    hardware = "GPU"
    shader_name = "gemm_naive"
