"""Shared host code for the custom-shader GPU implementations.

Both the naive and the CUTLASS-style implementations follow the paper's host
flow (section 3.2): the shader library is loaded at startup (``prepare``),
matrices are wrapped in MTL-shared *no-copy* buffers, and every execution
encodes one dispatch with 8x8-thread threadgroups, commits, and waits.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.gemm.base import GemmImplementation, GemmProblem
from repro.metal.buffer import MTLBuffer
from repro.metal.command_buffer import MTLCommandQueue
from repro.metal.device import MTLCreateSystemDefaultDevice, MTLDevice
from repro.metal.pipeline import MTLComputePipelineState
from repro.metal.resources import MTLResourceStorageMode, MTLSize
from repro.sim.machine import Machine

__all__ = ["ShaderGemmBase", "ShaderGemmContext", "THREADGROUP_EDGE"]

#: "Eight horizontal and eight vertical thread groups were used" — the
#: threadgroups are 8x8 threads; the grid scales with the matrix.
THREADGROUP_EDGE = 8


@dataclasses.dataclass
class ShaderGemmContext:
    device: MTLDevice
    queue: MTLCommandQueue
    pipeline: MTLComputePipelineState
    buf_a: MTLBuffer
    buf_b: MTLBuffer
    buf_out: MTLBuffer


class ShaderGemmBase(GemmImplementation):
    """Template for custom-shader GEMMs; subclasses name the kernel."""

    shader_name: str

    def prepare(self, machine: Machine, problem: GemmProblem) -> ShaderGemmContext:
        device = MTLCreateSystemDefaultDevice(machine)
        # The paper compiles the two shaders into a .metallib and loads it on
        # startup; our equivalent is a restricted library.
        library = device.new_library_with_functions(("gemm_naive", "gemm_tiled"))
        function = library.new_function_with_name(self.shader_name)
        pipeline = device.new_compute_pipeline_state_with_function(function)
        length = problem.memory_length
        buf_a = device.new_buffer_with_bytes_no_copy(
            problem.a_alloc.data, length, MTLResourceStorageMode.SHARED
        )
        buf_b = device.new_buffer_with_bytes_no_copy(
            problem.b_alloc.data, length, MTLResourceStorageMode.SHARED
        )
        buf_out = device.new_buffer_with_bytes_no_copy(
            problem.out_alloc.data, length, MTLResourceStorageMode.SHARED
        )
        return ShaderGemmContext(
            device=device,
            queue=device.new_command_queue(),
            pipeline=pipeline,
            buf_a=buf_a,
            buf_b=buf_b,
            buf_out=buf_out,
        )

    def execute(
        self, machine: Machine, problem: GemmProblem, context: ShaderGemmContext
    ) -> None:
        self.check_supports(machine, problem.n)
        n = problem.n
        groups = (n + THREADGROUP_EDGE - 1) // THREADGROUP_EDGE
        command_buffer = context.queue.command_buffer()
        encoder = command_buffer.compute_command_encoder()
        encoder.set_compute_pipeline_state(context.pipeline)
        encoder.set_buffer(context.buf_a, 0, 0)
        encoder.set_buffer(context.buf_b, 0, 1)
        encoder.set_buffer(context.buf_out, 0, 2)
        encoder.set_bytes(np.uint32(n), 3)
        encoder.dispatch_threadgroups(
            MTLSize(groups, groups), MTLSize(THREADGROUP_EDGE, THREADGROUP_EDGE)
        )
        encoder.end_encoding()
        command_buffer.commit()
        command_buffer.wait_until_completed()
