"""Registry of GEMM implementations — Table 2 as executable objects."""

from __future__ import annotations

from typing import Callable

from repro.core.gemm.ane import AneFp16Gemm
from repro.core.gemm.base import GemmImplementation
from repro.core.gemm.cpu_accelerate import AccelerateGemm
from repro.core.gemm.cpu_omp import OpenMPTiledGemm
from repro.core.gemm.cpu_single import SingleThreadedGemm
from repro.core.gemm.fp64_emulated import EmulatedFp64Gemm
from repro.core.gemm.gpu_cutlass import CutlassShaderGemm
from repro.core.gemm.gpu_mps import MpsGemm
from repro.core.gemm.gpu_naive import NaiveShaderGemm
from repro.errors import UnknownImplementationError

__all__ = [
    "get_implementation",
    "all_implementations",
    "implementation_keys",
    "paper_implementation_keys",
    "table2_rows",
]

_FACTORIES: dict[str, Callable[[], GemmImplementation]] = {
    "cpu-single": SingleThreadedGemm,
    "cpu-omp": OpenMPTiledGemm,
    "cpu-accelerate": AccelerateGemm,
    "gpu-naive": NaiveShaderGemm,
    "gpu-cutlass": CutlassShaderGemm,
    "gpu-mps": MpsGemm,
    "ane-fp16": AneFp16Gemm,
    "gpu-fp64-emulated": EmulatedFp64Gemm,
}

#: The six implementations the paper's figures plot, in legend order.
_PAPER_KEYS: tuple[str, ...] = (
    "cpu-single",
    "cpu-omp",
    "cpu-accelerate",
    "gpu-naive",
    "gpu-cutlass",
    "gpu-mps",
)


def get_implementation(key: str) -> GemmImplementation:
    """Instantiate an implementation by key."""
    try:
        factory = _FACTORIES[key]
    except KeyError:
        raise UnknownImplementationError(
            f"unknown GEMM implementation {key!r}; "
            f"known: {', '.join(_FACTORIES)}"
        ) from None
    return factory()


def implementation_keys(include_extensions: bool = True) -> tuple[str, ...]:
    """All registry keys, optionally including the extension paths."""
    if include_extensions:
        return tuple(_FACTORIES)
    return _PAPER_KEYS


def paper_implementation_keys() -> tuple[str, ...]:
    """The Figure-2/3/4 legend, in order."""
    return _PAPER_KEYS


def all_implementations(
    include_extensions: bool = False,
) -> list[GemmImplementation]:
    """Instantiate every registered implementation (optionally with extensions)."""
    return [get_implementation(k) for k in implementation_keys(include_extensions)]


def table2_rows() -> list[tuple[str, str, str]]:
    """(Implementation, Framework, Hardware) rows exactly as in Table 2."""
    rows = []
    for key in _PAPER_KEYS:
        impl = get_implementation(key)
        if impl.in_table2:
            rows.append((impl.display_name, impl.framework, impl.hardware))
    return rows
