"""Numerical verification of GEMM results.

Under FULL numerics the whole output is compared against a float64 reference;
under SAMPLED only the deterministically sampled rows are checked (the rest
of the buffer is not computed).  Tolerances account for FP32 accumulation
error growing with the reduction depth n.
"""

from __future__ import annotations

import numpy as np

from repro.core.gemm.base import GemmProblem
from repro.errors import ValidationError
from repro.sim.machine import Machine
from repro.sim.policy import NumericsPolicy

__all__ = ["verify_result", "fp32_gemm_tolerance"]


def fp32_gemm_tolerance(n: int) -> float:
    """Relative tolerance for an n-deep FP32 accumulation vs FP64 reference.

    Error grows ~ sqrt(n) * eps for random [0,1) inputs; the constant is
    generous because the implementations use different accumulation orders.
    """
    eps = float(np.finfo(np.float32).eps)
    return max(1e-5, 16.0 * eps * np.sqrt(float(n)))


def verify_result(
    machine: Machine,
    problem: GemmProblem,
    *,
    rtol: float | None = None,
    reduced_precision: bool = False,
) -> bool:
    """Check ``problem.out`` against the float64 reference product.

    Returns ``True`` on success, ``None``-equivalent ``True`` short-circuit
    never happens — MODEL_ONLY runs raise, since there is nothing to verify.

    Raises
    ------
    ValidationError
        If the produced values deviate beyond tolerance, or verification was
        requested for a MODEL_ONLY run.
    """
    n = problem.n
    policy = machine.numerics.effective_policy(n)
    if policy is NumericsPolicy.MODEL_ONLY:
        raise ValidationError(
            "cannot verify a MODEL_ONLY run: numerics were skipped"
        )
    tol = rtol if rtol is not None else fp32_gemm_tolerance(n)
    if reduced_precision:
        # FP16 inputs (ANE path): rounding inputs to half costs ~2^-11.
        tol = max(tol, 2.0 ** -9)

    a64 = problem.a.astype(np.float64)
    b64 = problem.b.astype(np.float64)
    if policy is NumericsPolicy.SAMPLED:
        rows = machine.numerics.sampled_row_indices(n)
        reference = a64[rows, :] @ b64
        produced = problem.out[rows, :].astype(np.float64)
    else:
        reference = a64 @ b64
        produced = problem.out.astype(np.float64)

    scale = np.maximum(np.abs(reference), 1.0)
    max_rel = float(np.max(np.abs(produced - reference) / scale))
    if max_rel > tol:
        raise ValidationError(
            f"GEMM verification failed for n={n}: max relative error "
            f"{max_rel:.3e} exceeds tolerance {tol:.3e}"
        )
    return True
