"""The experiment runner of section 4 — now a compatibility facade.

Historically this module *was* the execution engine; the bodies moved to
:mod:`repro.experiments.executor` when the declarative spec/session API
landed, and :class:`ExperimentRunner` remains as a thin imperative wrapper:
it translates each call into a single spec and executes it on its one
shared machine (preserving the original stateful semantics — the virtual
clock keeps advancing across calls).  New code should prefer
:class:`repro.experiments.Session`, which adds caching, batching and
persistence on top of the same executor.
"""

from __future__ import annotations

from repro.calibration import paper
from repro.core.gemm.base import GemmImplementation
from repro.core.gemm.registry import get_implementation
from repro.core.results import GemmResult, PoweredGemmResult, StreamResult
from repro.experiments.executor import (
    run_gemm_spec,
    run_powered_gemm_spec,
    run_stream_spec,
)
from repro.experiments.specs import GemmSpec, PoweredGemmSpec, StreamSpec
from repro.sim.machine import Machine

__all__ = ["ExperimentRunner"]


class ExperimentRunner:
    """Drives the paper's experiments imperatively on one machine."""

    def __init__(self, machine: Machine, *, seed: int = 0) -> None:
        self.machine = machine
        self.seed = seed

    def _impl(
        self, implementation: GemmImplementation | str
    ) -> GemmImplementation:
        if isinstance(implementation, str):
            return get_implementation(implementation)
        return implementation

    # ------------------------------------------------------------------
    # GEMM (Figure 2)
    # ------------------------------------------------------------------
    def run_gemm(
        self,
        implementation: GemmImplementation | str,
        n: int,
        *,
        repeats: int = paper.GEMM_REPEATS,
        verify: bool | None = None,
    ) -> GemmResult:
        """One Figure-2 cell: ``repeats`` timed multiplications.

        ``verify=None`` verifies whenever numerics ran (FULL or SAMPLED).
        """
        impl = self._impl(implementation)
        spec = GemmSpec(
            chip=self.machine.chip.name,
            seed=self.seed,
            impl_key=impl.key,
            n=n,
            repeats=repeats,
            verify=verify,
        )
        return run_gemm_spec(self.machine, spec, implementation=impl)

    def run_gemm_sweep(
        self,
        implementation: GemmImplementation | str,
        sizes: tuple[int, ...] = paper.GEMM_SIZES,
        *,
        repeats: int = paper.GEMM_REPEATS,
    ) -> dict[int, GemmResult]:
        """One Figure-2 line: skip the sizes the implementation excludes."""
        impl = self._impl(implementation)
        results: dict[int, GemmResult] = {}
        for n in sizes:
            if not impl.supports(self.machine, n):
                continue
            results[n] = self.run_gemm(impl, n, repeats=repeats)
        return results

    # ------------------------------------------------------------------
    # GEMM + power (Figures 3-4)
    # ------------------------------------------------------------------
    def run_powered_gemm(
        self,
        implementation: GemmImplementation | str,
        n: int,
        *,
        repeats: int = paper.GEMM_REPEATS,
    ) -> PoweredGemmResult:
        """Figure-3/4 cell: compute timing with the piggybacked power protocol.

        "The power measurement occurs during the run in which CPU/GPU
        performance is measured ... it too sees five repetitions."
        """
        impl = self._impl(implementation)
        spec = PoweredGemmSpec(
            chip=self.machine.chip.name,
            seed=self.seed,
            impl_key=impl.key,
            n=n,
            repeats=repeats,
        )
        return run_powered_gemm_spec(self.machine, spec, implementation=impl)

    # ------------------------------------------------------------------
    # STREAM (Figure 1)
    # ------------------------------------------------------------------
    def run_stream(
        self,
        target: str,
        *,
        n_elements: int | None = None,
        repeats: int | None = None,
    ) -> StreamResult:
        """Run the Figure-1 STREAM study on one target processor."""
        spec = StreamSpec(
            chip=self.machine.chip.name,
            seed=self.seed,
            target=target,
            n_elements=n_elements,
            repeats=repeats,
        )
        return run_stream_spec(self.machine, spec)
