"""The experiment runner of section 4.

Runs each GEMM cell five times with chrono-style nanosecond timing that
excludes setup, derives GFLOPS from the paper's ``n^2 (2n - 1)`` operation
count, optionally piggybacks the powermetrics protocol onto every repetition,
and optionally verifies the numerics.  STREAM runs delegate to
:mod:`repro.core.stream.runner`.
"""

from __future__ import annotations

from repro.calibration import paper
from repro.core.gemm.base import GemmImplementation, GemmProblem
from repro.core.gemm.registry import get_implementation
from repro.core.gemm.verify import verify_result
from repro.core.power.harness import measure_gemm_power
from repro.core.results import (
    GemmRepetition,
    GemmResult,
    PoweredGemmResult,
    StreamResult,
)
from repro.core.stream.runner import run_stream
from repro.core.timer import measure_ns
from repro.errors import UnsupportedProblemError
from repro.sim.machine import Machine
from repro.sim.policy import NumericsPolicy

__all__ = ["ExperimentRunner"]


class ExperimentRunner:
    """Drives the paper's experiments on one machine."""

    def __init__(self, machine: Machine, *, seed: int = 0) -> None:
        self.machine = machine
        self.seed = seed

    # ------------------------------------------------------------------
    # GEMM (Figure 2)
    # ------------------------------------------------------------------
    def run_gemm(
        self,
        implementation: GemmImplementation | str,
        n: int,
        *,
        repeats: int = paper.GEMM_REPEATS,
        verify: bool | None = None,
    ) -> GemmResult:
        """One Figure-2 cell: ``repeats`` timed multiplications.

        ``verify=None`` verifies whenever numerics ran (FULL or SAMPLED).
        """
        impl = (
            get_implementation(implementation)
            if isinstance(implementation, str)
            else implementation
        )
        if not impl.supports(self.machine, n):
            raise UnsupportedProblemError(
                f"{impl.key} does not execute n={n} on {self.machine.chip.name}"
            )
        fill = self.machine.numerics.policy is not NumericsPolicy.MODEL_ONLY
        problem = GemmProblem.generate(n, seed=self.seed, fill_random=fill)
        context = impl.prepare(self.machine, problem)

        repetitions = []
        for rep in range(repeats):
            elapsed = measure_ns(
                self.machine, lambda: impl.execute(self.machine, problem, context)
            )
            repetitions.append(GemmRepetition(repetition=rep, elapsed_ns=elapsed))

        verified: bool | None = None
        policy = self.machine.numerics.effective_policy(n)
        want_verify = (
            verify
            if verify is not None
            else policy is not NumericsPolicy.MODEL_ONLY
        )
        if want_verify:
            verified = verify_result(
                self.machine,
                problem,
                reduced_precision=(impl.key == "ane-fp16"),
            )
        return GemmResult(
            impl_key=impl.key,
            chip_name=self.machine.chip.name,
            n=n,
            flop_count=paper.gemm_flop_count(n),
            repetitions=tuple(repetitions),
            verified=verified,
        )

    def run_gemm_sweep(
        self,
        implementation: GemmImplementation | str,
        sizes: tuple[int, ...] = paper.GEMM_SIZES,
        *,
        repeats: int = paper.GEMM_REPEATS,
    ) -> dict[int, GemmResult]:
        """One Figure-2 line: skip the sizes the implementation excludes."""
        impl = (
            get_implementation(implementation)
            if isinstance(implementation, str)
            else implementation
        )
        results: dict[int, GemmResult] = {}
        for n in sizes:
            if not impl.supports(self.machine, n):
                continue
            results[n] = self.run_gemm(impl, n, repeats=repeats)
        return results

    # ------------------------------------------------------------------
    # GEMM + power (Figures 3-4)
    # ------------------------------------------------------------------
    def run_powered_gemm(
        self,
        implementation: GemmImplementation | str,
        n: int,
        *,
        repeats: int = paper.GEMM_REPEATS,
    ) -> PoweredGemmResult:
        """Figure-3/4 cell: compute timing with the piggybacked power protocol.

        "The power measurement occurs during the run in which CPU/GPU
        performance is measured ... it too sees five repetitions."
        """
        impl = (
            get_implementation(implementation)
            if isinstance(implementation, str)
            else implementation
        )
        if not impl.supports(self.machine, n):
            raise UnsupportedProblemError(
                f"{impl.key} does not execute n={n} on {self.machine.chip.name}"
            )
        fill = self.machine.numerics.policy is not NumericsPolicy.MODEL_ONLY
        problem = GemmProblem.generate(n, seed=self.seed, fill_random=fill)
        context = impl.prepare(self.machine, problem)

        repetitions = []
        measurements = []
        for rep in range(repeats):
            t0 = self.machine.now_ns()
            measurement = measure_gemm_power(self.machine, impl, problem, context)
            elapsed_protocol = self.machine.now_ns() - t0
            # The multiplication window is the measurement window itself.
            elapsed = int(measurement.elapsed_ms * 1e6)
            del elapsed_protocol  # warm-up excluded from the compute timing
            repetitions.append(
                GemmRepetition(repetition=rep, elapsed_ns=max(1, elapsed))
            )
            measurements.append(measurement)
        gemm = GemmResult(
            impl_key=impl.key,
            chip_name=self.machine.chip.name,
            n=n,
            flop_count=paper.gemm_flop_count(n),
            repetitions=tuple(repetitions),
        )
        return PoweredGemmResult(gemm=gemm, measurements=tuple(measurements))

    # ------------------------------------------------------------------
    # STREAM (Figure 1)
    # ------------------------------------------------------------------
    def run_stream(
        self,
        target: str,
        *,
        n_elements: int | None = None,
        repeats: int | None = None,
    ) -> StreamResult:
        """Run the Figure-1 STREAM study on one target processor."""
        return run_stream(
            self.machine, target, n_elements=n_elements, repeats=repeats
        )
