"""The power-measurement framework of section 3.3."""

from repro.core.power.harness import PowerInstrumentedRun, measure_gemm_power
from repro.core.power.metrics import efficiency_gflops_per_w, energy_to_solution_j

__all__ = [
    "PowerInstrumentedRun",
    "measure_gemm_power",
    "efficiency_gflops_per_w",
    "energy_to_solution_j",
]
