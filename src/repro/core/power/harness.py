"""The paper's powermetrics protocol, reproduced step by step (section 3.3).

1. Start ``powermetrics -i 0 -a 0 -s cpu_power,gpu_power -o FILE`` (no
   periodic sampling; samples only on SIGINFO).
2. Wait two seconds so the utility is warmed up.
3. Send SIGINFO — this *resets* the sampler; the warm-up window's sample is
   discarded.
4. Run the multiplication (the same run in which compute performance is
   timed — the measurement "piggybacks").
5. Send the second SIGINFO — its sample covers exactly the multiplication —
   then shut the monitor down and parse the output file.
"""

from __future__ import annotations

import dataclasses
import pathlib

from repro.calibration import paper
from repro.core.gemm.base import GemmImplementation, GemmProblem
from repro.core.results import PowerMeasurement
from repro.errors import ProtocolError
from repro.powermetrics import PowerMetrics, PowerMetricsOptions, parse_samples
from repro.sim.machine import Machine

__all__ = ["PowerInstrumentedRun", "measure_gemm_power"]


@dataclasses.dataclass
class PowerInstrumentedRun:
    """Drives one workload under the section-3.3 measurement protocol."""

    machine: Machine
    warmup_s: float = paper.POWERMETRICS_WARMUP_S
    output_path: str | pathlib.Path | None = None

    def measure(self, workload) -> tuple[PowerMeasurement, str]:
        """Run ``workload()`` under the protocol; returns (measurement, text).

        The returned text is the full powermetrics output (two samples: the
        discarded warm-up window and the measurement window).
        """
        tool = PowerMetrics(
            self.machine,
            PowerMetricsOptions(
                interval_ms=0,
                accumulate=0,
                samplers=("cpu_power", "gpu_power"),
                output_path=self.output_path,
            ),
        )
        tool.start()
        # "After two seconds (to ensure the utility is warmed up), a SIGINFO
        # is sent to reset the sampler before the multiplication runs."
        self.machine.sleep(self.warmup_s)
        tool.siginfo()
        workload()
        # "After the multiplication, the second SIGINFO is sent, thereafter
        # shutting down the monitor."
        tool.siginfo()
        text = tool.stop()

        samples = parse_samples(text)
        if len(samples) != 2:
            raise ProtocolError(
                f"expected warm-up + measurement samples, parsed {len(samples)}"
            )
        measurement_window = samples[1]
        if measurement_window.elapsed_ms <= 0.0:
            raise ProtocolError(
                "measurement window is empty — the workload consumed no "
                "simulated time"
            )
        return (
            PowerMeasurement(
                cpu_mw=measurement_window.cpu_mw,
                gpu_mw=measurement_window.gpu_mw,
                elapsed_ms=measurement_window.elapsed_ms,
            ),
            text,
        )


def measure_gemm_power(
    machine: Machine,
    implementation: GemmImplementation,
    problem: GemmProblem,
    context,
    *,
    warmup_s: float = paper.POWERMETRICS_WARMUP_S,
) -> PowerMeasurement:
    """One protocol pass around one multiplication execution."""
    run = PowerInstrumentedRun(machine, warmup_s=warmup_s)
    measurement, _ = run.measure(
        lambda: implementation.execute(machine, problem, context)
    )
    return measurement
