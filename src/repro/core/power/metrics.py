"""Derived power metrics (Figure 4 and the HPC-perspective comparisons)."""

from __future__ import annotations

from repro.core.results import GemmResult, PowerMeasurement
from repro.units import gflops_per_watt

__all__ = ["efficiency_gflops_per_w", "energy_to_solution_j"]


def efficiency_gflops_per_w(
    gemm: GemmResult, measurement: PowerMeasurement
) -> float:
    """Figure-4 metric: achieved GFLOPS per watt of combined CPU+GPU draw."""
    return gflops_per_watt(gemm.best_gflops, measurement.combined_w)


def energy_to_solution_j(
    gemm: GemmResult, measurement: PowerMeasurement
) -> float:
    """Joules to complete one multiplication at the measured draw."""
    return measurement.combined_w * gemm.best_elapsed_ns / 1e9
