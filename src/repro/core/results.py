"""Result records produced by the benchmark suite.

Aggregation rules follow the paper: STREAM reports the *maximum* bandwidth
over repetitions (section 4); GEMM figures quote peak GFLOPS over the five
repetitions; the power study reports the mean draw over the measured windows.
"""

from __future__ import annotations

import dataclasses
import statistics
from typing import Mapping, Sequence

from repro.errors import ConfigurationError
from repro.units import gflops_per_watt

__all__ = [
    "GemmRepetition",
    "GemmResult",
    "StreamKernelResult",
    "StreamResult",
    "PowerMeasurement",
    "PoweredGemmResult",
    "summarize_series",
    "timed_repetitions",
]


@dataclasses.dataclass(frozen=True)
class GemmRepetition:
    """One timed multiplication."""

    repetition: int
    elapsed_ns: int

    def __post_init__(self) -> None:
        if self.elapsed_ns <= 0:
            raise ConfigurationError("repetition must take positive time")


def timed_repetitions(elapsed_ns: Sequence[int]) -> tuple[GemmRepetition, ...]:
    """``(GemmRepetition(0, ns), GemmRepetition(1, ns), ...)`` in bulk.

    Grid engines construct hundreds of thousands of repetition records per
    sweep, where the generated dataclass ``__init__`` dominates.  This maker
    fills instances directly — callers guarantee ``elapsed_ns >= 1`` by
    construction (both clock paths apply ``max(1, round(...))``), so the
    positivity check is already discharged — and yields objects
    indistinguishable from the regular constructor.
    """
    new = GemmRepetition.__new__
    out = []
    append = out.append
    for rep, ns in enumerate(elapsed_ns):
        obj = new(GemmRepetition)
        obj.__dict__["repetition"] = rep
        obj.__dict__["elapsed_ns"] = ns
        append(obj)
    return tuple(out)


@dataclasses.dataclass(frozen=True)
class GemmResult:
    """All repetitions of one (implementation, chip, n) cell of Figure 2."""

    impl_key: str
    chip_name: str
    n: int
    flop_count: int
    repetitions: tuple[GemmRepetition, ...]
    verified: bool | None = None

    def __post_init__(self) -> None:
        if not self.repetitions:
            raise ConfigurationError("a GEMM result needs at least one repetition")
        if self.flop_count <= 0:
            raise ConfigurationError("FLOP count must be positive")

    def _gflops(self, elapsed_ns: int) -> float:
        return self.flop_count / elapsed_ns  # flops/ns == GFLOPS

    @property
    def best_gflops(self) -> float:
        return max(self._gflops(r.elapsed_ns) for r in self.repetitions)

    @property
    def mean_gflops(self) -> float:
        return statistics.fmean(self._gflops(r.elapsed_ns) for r in self.repetitions)

    @property
    def best_elapsed_ns(self) -> int:
        return min(r.elapsed_ns for r in self.repetitions)

    @property
    def mean_elapsed_ns(self) -> float:
        return statistics.fmean(r.elapsed_ns for r in self.repetitions)


@dataclasses.dataclass(frozen=True)
class StreamKernelResult:
    """Per-repetition bandwidths of one STREAM kernel."""

    kernel: str
    bandwidths_gbs: tuple[float, ...]
    best_threads: int | None = None

    def __post_init__(self) -> None:
        if not self.bandwidths_gbs:
            raise ConfigurationError("a STREAM kernel result needs repetitions")
        if any(bw <= 0.0 for bw in self.bandwidths_gbs):
            raise ConfigurationError("bandwidths must be positive")

    @property
    def max_gbs(self) -> float:
        """The paper's reported statistic ("only the maximum is considered")."""
        return max(self.bandwidths_gbs)

    @property
    def mean_gbs(self) -> float:
        return statistics.fmean(self.bandwidths_gbs)


@dataclasses.dataclass(frozen=True)
class StreamResult:
    """One STREAM run (one chip, one target processor)."""

    chip_name: str
    target: str  # "cpu" | "gpu"
    n_elements: int
    element_bytes: int
    kernels: Mapping[str, StreamKernelResult]
    theoretical_gbs: float

    def __post_init__(self) -> None:
        if self.target not in ("cpu", "gpu"):
            raise ConfigurationError("STREAM target must be 'cpu' or 'gpu'")
        if not self.kernels:
            raise ConfigurationError("a STREAM result needs at least one kernel")

    @property
    def max_gbs(self) -> float:
        """Best bandwidth over all kernels — the Figure-1 bar height."""
        return max(k.max_gbs for k in self.kernels.values())

    @property
    def fraction_of_peak(self) -> float:
        """Best kernel bandwidth as a fraction of the theoretical peak."""
        return self.max_gbs / self.theoretical_gbs


@dataclasses.dataclass(frozen=True)
class PowerMeasurement:
    """One parsed powermetrics window (the paper's measurement sample)."""

    cpu_mw: float
    gpu_mw: float
    elapsed_ms: float

    def __post_init__(self) -> None:
        if self.elapsed_ms <= 0.0:
            raise ConfigurationError("measurement window must be positive")
        if self.cpu_mw < 0.0 or self.gpu_mw < 0.0:
            raise ConfigurationError("power must be non-negative")

    @property
    def combined_mw(self) -> float:
        """CPU + GPU draw, the Figure-3 quantity."""
        return self.cpu_mw + self.gpu_mw

    @property
    def combined_w(self) -> float:
        return self.combined_mw / 1e3

    @property
    def energy_j(self) -> float:
        return self.combined_w * self.elapsed_ms / 1e3


@dataclasses.dataclass(frozen=True)
class PoweredGemmResult:
    """A GEMM result with its piggybacked power measurements (section 3.3)."""

    gemm: GemmResult
    measurements: tuple[PowerMeasurement, ...]

    def __post_init__(self) -> None:
        if not self.measurements:
            raise ConfigurationError("a powered result needs measurements")

    @property
    def mean_combined_mw(self) -> float:
        return statistics.fmean(m.combined_mw for m in self.measurements)

    @property
    def mean_combined_w(self) -> float:
        return self.mean_combined_mw / 1e3

    @property
    def efficiency_gflops_per_w(self) -> float:
        """Figure-4 metric: peak GFLOPS over mean measured power."""
        return gflops_per_watt(self.gemm.best_gflops, self.mean_combined_w)


def summarize_series(values: Sequence[float]) -> dict[str, float]:
    """Common summary statistics for reporting/export."""
    if not values:
        raise ConfigurationError("cannot summarise an empty series")
    data = list(values)
    return {
        "min": min(data),
        "max": max(data),
        "mean": statistics.fmean(data),
        "stdev": statistics.pstdev(data) if len(data) > 1 else 0.0,
    }
