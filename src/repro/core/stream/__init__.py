"""The STREAM benchmark for CPU (OpenMP) and GPU (Metal) — section 3.1."""

from repro.core.stream.kernels import (
    KERNEL_ORDER,
    StreamArrays,
    expected_values,
    kernel_bytes_per_element,
    kernel_flops_per_element,
)
from repro.core.stream.cpu import CpuStreamBenchmark
from repro.core.stream.gpu import GpuStreamBenchmark
from repro.core.stream.report import render_stream_report
from repro.core.stream.runner import figure1_row, run_stream

__all__ = [
    "render_stream_report",
    "KERNEL_ORDER",
    "StreamArrays",
    "expected_values",
    "kernel_bytes_per_element",
    "kernel_flops_per_element",
    "CpuStreamBenchmark",
    "GpuStreamBenchmark",
    "run_stream",
    "figure1_row",
]
