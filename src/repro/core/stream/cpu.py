"""CPU STREAM: McCalpin's ``stream.c`` under the OpenMP runtime model.

"The original stream.c by John D. McCalpin is used, which utilizes OpenMP to
control the CPU threads ... every chip model was tested multiple times with
OMP_NUM_THREADS threads set from one to the number of physical cores, to get
the maximum reachable CPU bandwidth" (section 3.1).  Arrays are FP64, as in
the original.

Numerics note: bandwidth *timing* is simulated per (thread-count, repetition)
from the calibrated link model, while the array numerics execute once per
repetition (they do not depend on the thread count) and are validated with
stream.c's closed-form check.  MODEL_ONLY machines skip numerics entirely.
"""

from __future__ import annotations

import numpy as np

from repro.calibration.stream import (
    STREAM_NOISE_SIGMA,
    cpu_stream_bandwidth_gbs,
    stream_power_draws,
)
from repro.core.results import StreamKernelResult, StreamResult
from repro.core.stream.kernels import (
    KERNEL_ORDER,
    StreamArrays,
    kernel_bytes_per_element,
    kernel_flops_per_element,
    validate_arrays,
)
from repro.errors import ConfigurationError
from repro.omp import OpenMPEnvironment, OpenMPRuntime, parallel_chunks
from repro.sim.engine import EngineKind, Operation
from repro.sim.machine import Machine
from repro.sim.policy import NumericsPolicy
from repro.sim.roofline import OpCost
from repro.soc.power import PowerComponent

__all__ = ["CpuStreamBenchmark", "DEFAULT_CPU_ELEMENTS"]

#: Default array length: 2^23 FP64 elements = 67 MB per array, comfortably
#: above every chip's last-level cache (stream.c's "4x cache" rule).
DEFAULT_CPU_ELEMENTS = 1 << 23


class CpuStreamBenchmark:
    """One chip's CPU STREAM study with the OMP_NUM_THREADS sweep."""

    element_bytes = 8  # FP64, as stream.c

    def __init__(
        self,
        machine: Machine,
        n_elements: int = DEFAULT_CPU_ELEMENTS,
        ntimes: int = 10,
    ) -> None:
        if ntimes < 1:
            raise ConfigurationError("STREAM needs at least one repetition")
        self.machine = machine
        self.n_elements = int(n_elements)
        self.ntimes = int(ntimes)
        self._validated_iterations = 0

    # -- one timed kernel execution --------------------------------------
    def _execute_kernel(self, kernel: str, threads: int, repetition: int) -> float:
        """Simulate one kernel pass; returns achieved GB/s."""
        machine = self.machine
        chip = machine.chip
        bytes_moved = float(
            kernel_bytes_per_element(kernel, self.element_bytes) * self.n_elements
        )
        eff_gbs = cpu_stream_bandwidth_gbs(chip, kernel, threads)
        theoretical = chip.memory.bandwidth_gbs
        # Power scales mildly with active threads on top of a base fraction.
        ramp = 0.35 + 0.65 * min(threads, chip.total_cores) / chip.total_cores
        draws = {
            comp: watts * ramp if comp is PowerComponent.CPU else watts
            for comp, watts in stream_power_draws(chip, "cpu").items()
        }
        op = Operation(
            engine=EngineKind.CPU_SIMD,
            label=f"stream/cpu/{kernel}/T={threads}",
            cost=OpCost(
                flops=float(kernel_flops_per_element(kernel) * self.n_elements),
                bytes_read=bytes_moved / 2.0,
                bytes_written=bytes_moved / 2.0,
            ),
            peak_flops=machine.peak_flops(EngineKind.CPU_SIMD),
            peak_bytes_per_s=machine.memory_bandwidth_bytes_per_s(),
            memory_efficiency=min(1.0, eff_gbs / theoretical),
            overhead_s=5e-6,
            power_draws_w=draws,
            noise_key=(
                f"stream/cpu/{chip.name}/{kernel}/T={threads}/rep={repetition}"
            ),
            noise_sigma=STREAM_NOISE_SIGMA,
        )
        done = machine.execute(op)
        return bytes_moved / done.elapsed_s / 1e9

    # -- benchmark entry points -------------------------------------------
    def run(
        self, threads: int, *, run_numerics: bool | None = None
    ) -> dict[str, StreamKernelResult]:
        """``ntimes`` repetitions at a fixed OMP_NUM_THREADS.

        ``run_numerics=None`` follows the machine's policy; the sweep passes
        ``False`` for all but one thread setting since the array contents do
        not depend on the thread count.
        """
        env = OpenMPEnvironment.with_threads(threads)
        runtime = OpenMPRuntime(env)
        actual_threads = runtime.get_max_threads()
        if actual_threads > self.machine.chip.total_cores:
            actual_threads = self.machine.chip.total_cores

        if run_numerics is None:
            run_numerics = (
                self.machine.numerics.policy is not NumericsPolicy.MODEL_ONLY
            )
        arrays = (
            StreamArrays.allocate(self.n_elements, np.float64)
            if run_numerics
            else None
        )

        bandwidths: dict[str, list[float]] = {k: [] for k in KERNEL_ORDER}
        for rep in range(self.ntimes):
            for kernel in KERNEL_ORDER:
                if arrays is not None:
                    # The OpenMP work-sharing construct: each thread's chunk
                    # of the array is processed; chunk order covers [0, n).
                    for chunk in parallel_chunks(self.n_elements, actual_threads):
                        sub = StreamArrays(
                            a=arrays.a[chunk.start : chunk.stop],
                            b=arrays.b[chunk.start : chunk.stop],
                            c=arrays.c[chunk.start : chunk.stop],
                        )
                        sub.run_kernel(kernel)
                bandwidths[kernel].append(
                    self._execute_kernel(kernel, actual_threads, rep)
                )
        if arrays is not None:
            validate_arrays(arrays, self.ntimes)
            self._validated_iterations = self.ntimes
        return {
            kernel: StreamKernelResult(
                kernel=kernel,
                bandwidths_gbs=tuple(values),
                best_threads=actual_threads,
            )
            for kernel, values in bandwidths.items()
        }

    def run_sweep(self, max_threads: int | None = None) -> StreamResult:
        """The paper's sweep: 1..physical cores, keep the per-kernel maximum."""
        cores = max_threads or self.machine.chip.total_cores
        policy_allows = self.machine.numerics.policy is not NumericsPolicy.MODEL_ONLY
        best: dict[str, StreamKernelResult] = {}
        for threads in range(1, cores + 1):
            # Numerics once per sweep: the array values are thread-agnostic.
            numerics = policy_allows and threads == 1
            for kernel, result in self.run(threads, run_numerics=numerics).items():
                current = best.get(kernel)
                if current is None or result.max_gbs > current.max_gbs:
                    best[kernel] = result
        return StreamResult(
            chip_name=self.machine.chip.name,
            target="cpu",
            n_elements=self.n_elements,
            element_bytes=self.element_bytes,
            kernels=best,
            theoretical_gbs=self.machine.chip.memory.bandwidth_gbs,
        )
