"""GPU STREAM: the MSL port of Copy/Scale/Add/Triad (section 3.1).

"We adopt the STREAM benchmark from a CUDA/HIP GPU version, ported the Copy,
Scale, Add, and Triad kernels with MSL, and implemented the main logic with
Objective-C++."  Arrays are FP32 (the MSL port), allocated page-aligned and
wrapped in zero-copy shared buffers; each repetition encodes one kernel
dispatch per command buffer, and the achieved bandwidth comes from the
command buffer's GPU timestamps.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.data import PageAlignedAllocation, aligned_alloc
from repro.core.results import StreamKernelResult, StreamResult
from repro.core.stream.kernels import (
    KERNEL_ORDER,
    StreamArrays,
    validate_arrays,
)
from repro.errors import ConfigurationError
from repro.metal.buffer import MTLBuffer
from repro.metal.command_buffer import MTLCommandQueue
from repro.metal.device import MTLCreateSystemDefaultDevice, MTLDevice
from repro.metal.pipeline import MTLComputePipelineState
from repro.metal.resources import MTLResourceStorageMode, MTLSize
from repro.metal.shaders.stream import stream_moved_bytes
from repro.sim.machine import Machine

__all__ = ["GpuStreamBenchmark", "DEFAULT_GPU_ELEMENTS"]

#: Default array length: 2^24 FP32 elements = 67 MB per array — large enough
#: that the footprint ramp and dispatch overhead cost well under 1 %.
DEFAULT_GPU_ELEMENTS = 1 << 24

#: Thread configuration of the MSL kernels (1-D, 256 threads per group).
_THREADS_PER_GROUP = 256


@dataclasses.dataclass
class _GpuStreamContext:
    device: MTLDevice
    queue: MTLCommandQueue
    pipelines: dict[str, MTLComputePipelineState]
    buffers: dict[str, MTLBuffer]
    allocations: dict[str, PageAlignedAllocation]
    arrays: StreamArrays


class GpuStreamBenchmark:
    """One chip's GPU STREAM study."""

    element_bytes = 4  # FP32 (the MSL port)

    def __init__(
        self,
        machine: Machine,
        n_elements: int = DEFAULT_GPU_ELEMENTS,
        ntimes: int = 20,
    ) -> None:
        if ntimes < 1:
            raise ConfigurationError("STREAM needs at least one repetition")
        self.machine = machine
        self.n_elements = int(n_elements)
        self.ntimes = int(ntimes)
        self._context: _GpuStreamContext | None = None

    # -- setup ------------------------------------------------------------
    def _setup(self) -> _GpuStreamContext:
        if self._context is not None:
            return self._context
        device = MTLCreateSystemDefaultDevice(self.machine)
        library = device.new_default_library()
        pipelines = {
            kernel: device.new_compute_pipeline_state_with_function(
                library.new_function_with_name(f"stream_{kernel}")
            )
            for kernel in KERNEL_ORDER
        }
        allocations: dict[str, PageAlignedAllocation] = {}
        views: dict[str, np.ndarray] = {}
        buffers: dict[str, MTLBuffer] = {}
        for name, initial in (("a", 1.0), ("b", 2.0), ("c", 0.0)):
            alloc = aligned_alloc(self.n_elements * self.element_bytes)
            view = alloc.view(np.float32, self.n_elements)
            view[:] = initial
            buffers[name] = device.new_buffer_with_bytes_no_copy(
                alloc.data, alloc.length, MTLResourceStorageMode.SHARED
            )
            allocations[name] = alloc
            views[name] = view
        self._context = _GpuStreamContext(
            device=device,
            queue=device.new_command_queue(),
            pipelines=pipelines,
            buffers=buffers,
            allocations=allocations,
            arrays=StreamArrays(a=views["a"], b=views["b"], c=views["c"]),
        )
        return self._context

    # -- one timed kernel dispatch ----------------------------------------
    def _execute_kernel(self, ctx: _GpuStreamContext, kernel: str) -> float:
        """Dispatch one kernel; returns achieved GB/s from GPU timestamps."""
        command_buffer = ctx.queue.command_buffer()
        encoder = command_buffer.compute_command_encoder()
        encoder.set_compute_pipeline_state(ctx.pipelines[kernel])
        encoder.set_buffer(ctx.buffers["a"], 0, 0)
        encoder.set_buffer(ctx.buffers["b"], 0, 1)
        encoder.set_buffer(ctx.buffers["c"], 0, 2)
        encoder.set_bytes(np.uint32(self.n_elements), 0)
        encoder.set_bytes(np.float32(3.0), 1)
        groups = (self.n_elements + _THREADS_PER_GROUP - 1) // _THREADS_PER_GROUP
        encoder.dispatch_threadgroups(
            MTLSize(groups), MTLSize(_THREADS_PER_GROUP)
        )
        encoder.end_encoding()
        command_buffer.commit()
        command_buffer.wait_until_completed()
        assert command_buffer.gpu_start_time is not None
        assert command_buffer.gpu_end_time is not None
        elapsed = command_buffer.gpu_end_time - command_buffer.gpu_start_time
        moved = stream_moved_bytes(kernel, self.n_elements, self.element_bytes)
        return moved / elapsed / 1e9

    # -- benchmark entry point ----------------------------------------------
    def run(self) -> StreamResult:
        """Twenty repetitions of the four MSL kernels (section 4)."""
        ctx = self._setup()
        bandwidths: dict[str, list[float]] = {k: [] for k in KERNEL_ORDER}
        for _rep in range(self.ntimes):
            for kernel in KERNEL_ORDER:
                bandwidths[kernel].append(self._execute_kernel(ctx, kernel))
        from repro.sim.policy import NumericsPolicy

        if self.machine.numerics.policy is not NumericsPolicy.MODEL_ONLY:
            validate_arrays(ctx.arrays, self.ntimes, rtol=1e-5)
        return StreamResult(
            chip_name=self.machine.chip.name,
            target="gpu",
            n_elements=self.n_elements,
            element_bytes=self.element_bytes,
            kernels={
                kernel: StreamKernelResult(kernel=kernel, bandwidths_gbs=tuple(vals))
                for kernel, vals in bandwidths.items()
            },
            theoretical_gbs=self.machine.chip.memory.bandwidth_gbs,
        )
