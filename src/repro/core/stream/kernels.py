"""STREAM kernel definitions and validation (McCalpin's stream.c semantics).

The four kernels and their byte/FLOP accounting follow the original
benchmark exactly::

    copy :  c = a          2 arrays moved, 0 FLOPs per element
    scale:  b = s * c      2 arrays moved, 1 FLOP  per element
    add  :  c = a + b      3 arrays moved, 1 FLOP  per element
    triad:  a = b + s * c  3 arrays moved, 2 FLOPs per element

with initial values a=1, b=2, c=0 and scalar s=3, and the closed-form
expected values after k full iterations used by ``checkSTREAMresults``.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import ConfigurationError, ValidationError

__all__ = [
    "KERNEL_ORDER",
    "SCALAR",
    "StreamArrays",
    "kernel_bytes_per_element",
    "kernel_flops_per_element",
    "expected_values",
    "validate_arrays",
]

KERNEL_ORDER: tuple[str, ...] = ("copy", "scale", "add", "triad")

#: stream.c's scalar.
SCALAR = 3.0

#: Arrays moved per element per kernel (reads + writes).
_ARRAYS_MOVED: dict[str, int] = {"copy": 2, "scale": 2, "add": 3, "triad": 3}
_FLOPS: dict[str, int] = {"copy": 0, "scale": 1, "add": 1, "triad": 2}


def kernel_bytes_per_element(kernel: str, element_bytes: int) -> int:
    """STREAM's byte accounting for one element."""
    try:
        return _ARRAYS_MOVED[kernel] * element_bytes
    except KeyError:
        raise ConfigurationError(f"unknown STREAM kernel {kernel!r}") from None


def kernel_flops_per_element(kernel: str) -> int:
    """STREAM's FLOP accounting for one element of a kernel."""
    try:
        return _FLOPS[kernel]
    except KeyError:
        raise ConfigurationError(f"unknown STREAM kernel {kernel!r}") from None


@dataclasses.dataclass
class StreamArrays:
    """The three STREAM arrays with stream.c's initial values."""

    a: np.ndarray
    b: np.ndarray
    c: np.ndarray

    @classmethod
    def allocate(
        cls, n_elements: int, dtype: np.dtype | type = np.float64
    ) -> "StreamArrays":
        if n_elements <= 0:
            raise ConfigurationError("STREAM needs a positive element count")
        dt = np.dtype(dtype)
        return cls(
            a=np.full(n_elements, 1.0, dtype=dt),
            b=np.full(n_elements, 2.0, dtype=dt),
            c=np.zeros(n_elements, dtype=dt),
        )

    def run_kernel(self, kernel: str) -> None:
        """Execute one kernel in place (stream.c order within an iteration)."""
        if kernel == "copy":
            self.c[:] = self.a
        elif kernel == "scale":
            self.b[:] = self.b.dtype.type(SCALAR) * self.c
        elif kernel == "add":
            self.c[:] = self.a + self.b
        elif kernel == "triad":
            self.a[:] = self.b + self.b.dtype.type(SCALAR) * self.c
        else:
            raise ConfigurationError(f"unknown STREAM kernel {kernel!r}")

    def run_iteration(self) -> None:
        """One full Copy/Scale/Add/Triad pass."""
        for kernel in KERNEL_ORDER:
            self.run_kernel(kernel)


def expected_values(iterations: int) -> tuple[float, float, float]:
    """(a, b, c) scalars after ``iterations`` full passes (stream.c check)."""
    if iterations < 0:
        raise ConfigurationError("iteration count must be non-negative")
    a, b, c = 1.0, 2.0, 0.0
    for _ in range(iterations):
        c = a
        b = SCALAR * c
        c = a + b
        a = b + SCALAR * c
    return a, b, c


def validate_arrays(arrays: StreamArrays, iterations: int, rtol: float = 1e-8) -> None:
    """stream.c's checkSTREAMresults: all entries equal the expected scalars."""
    exp_a, exp_b, exp_c = expected_values(iterations)
    for name, arr, expected in (
        ("a", arrays.a, exp_a),
        ("b", arrays.b, exp_b),
        ("c", arrays.c, exp_c),
    ):
        # Relative tolerance scales with the float type's epsilon, as the
        # original's epsilon-based check does.
        eps = float(np.finfo(arr.dtype).eps)
        tol = max(rtol, 20.0 * eps * max(1.0, abs(expected)))
        err = float(np.max(np.abs(arr.astype(np.float64) - expected)))
        if err > tol * max(1.0, abs(expected)):
            raise ValidationError(
                f"STREAM validation failed for array {name} after "
                f"{iterations} iterations: max error {err:.3e} vs "
                f"expected {expected!r}"
            )
