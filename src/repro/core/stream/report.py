"""Classic ``stream.c`` output rendering.

McCalpin's benchmark prints a fixed table ("Function  Best Rate MB/s  Avg
time  Min time  Max time") followed by the validation verdict; tooling in
the wild parses that shape.  This renderer reproduces it from a
:class:`~repro.core.results.StreamResult`, so the simulated benchmark's
output is drop-in recognisable.
"""

from __future__ import annotations

from repro.core.results import StreamResult
from repro.core.stream.kernels import kernel_bytes_per_element

__all__ = ["render_stream_report"]

_LABELS = {"copy": "Copy", "scale": "Scale", "add": "Add", "triad": "Triad"}


def render_stream_report(result: StreamResult) -> str:
    """The classic STREAM results table (rates in MB/s, times in seconds)."""
    lines = [
        "-" * 62,
        f"STREAM ({result.target.upper()}, {result.chip_name}): "
        f"array size = {result.n_elements} elements of "
        f"{result.element_bytes} bytes",
        "-" * 62,
        f"{'Function':12s}{'Best Rate MB/s':>16s}{'Avg time':>12s}"
        f"{'Min time':>12s}{'Max time':>12s}",
    ]
    for kernel in ("copy", "scale", "add", "triad"):
        if kernel not in result.kernels:
            continue
        entry = result.kernels[kernel]
        bytes_moved = kernel_bytes_per_element(
            kernel, result.element_bytes
        ) * result.n_elements
        times = [bytes_moved / (bw * 1e9) for bw in entry.bandwidths_gbs]
        best_mb_s = entry.max_gbs * 1e3  # decimal MB/s, as stream.c
        lines.append(
            f"{_LABELS[kernel] + ':':12s}{best_mb_s:16.1f}"
            f"{sum(times) / len(times):12.6f}{min(times):12.6f}"
            f"{max(times):12.6f}"
        )
    lines.append("-" * 62)
    fraction = result.fraction_of_peak
    lines.append(
        f"Best bandwidth {result.max_gbs:.1f} GB/s = {fraction:.0%} of the "
        f"{result.theoretical_gbs:.0f} GB/s theoretical peak"
    )
    lines.append("Solution Validates: avg error less than 1.000000e-13 on all arrays")
    lines.append("-" * 62)
    return "\n".join(lines)
