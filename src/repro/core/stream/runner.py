"""STREAM experiment entry points used by figures, benches and the CLI."""

from __future__ import annotations

from repro.calibration import paper
from repro.core.results import StreamResult
from repro.core.stream.cpu import DEFAULT_CPU_ELEMENTS, CpuStreamBenchmark
from repro.core.stream.gpu import DEFAULT_GPU_ELEMENTS, GpuStreamBenchmark
from repro.errors import ConfigurationError
from repro.sim.machine import Machine

__all__ = ["run_stream", "figure1_row"]


def run_stream(
    machine: Machine,
    target: str,
    *,
    n_elements: int | None = None,
    repeats: int | None = None,
) -> StreamResult:
    """Run the paper's STREAM study on one processor of one chip.

    CPU runs sweep the OpenMP thread count and keep the per-kernel maximum
    (10 repetitions per setting); GPU runs take 20 repetitions.
    """
    if target == "cpu":
        bench = CpuStreamBenchmark(
            machine,
            n_elements=n_elements or DEFAULT_CPU_ELEMENTS,
            ntimes=repeats or paper.STREAM_CPU_REPEATS,
        )
        return bench.run_sweep()
    if target == "gpu":
        gpu_bench = GpuStreamBenchmark(
            machine,
            n_elements=n_elements or DEFAULT_GPU_ELEMENTS,
            ntimes=repeats or paper.STREAM_GPU_REPEATS,
        )
        return gpu_bench.run()
    raise ConfigurationError(f"STREAM target must be 'cpu' or 'gpu', got {target!r}")


def figure1_row(
    machine: Machine,
    *,
    n_elements: int | None = None,
    repeats: int | None = None,
) -> dict[str, StreamResult]:
    """Both bars of Figure 1 for one chip: ``{"cpu": ..., "gpu": ...}``."""
    return {
        target: run_stream(
            machine, target, n_elements=n_elements, repeats=repeats
        )
        for target in ("cpu", "gpu")
    }
