"""Chrono-style timing against the virtual clock.

The paper measures "the difference between
``std::chrono::high_resolution_clock::now()`` before and after running the
multiplication algorithm, excluding program setup time.  The time delta is
reported in nanosecond granularity" (section 4).
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterator

from repro.sim.machine import Machine

__all__ = ["high_resolution_clock_now", "measure_ns", "Stopwatch"]


def high_resolution_clock_now(machine: Machine) -> int:
    """Current virtual timestamp in integral nanoseconds."""
    return machine.now_ns()


def measure_ns(machine: Machine, fn: Callable[[], None]) -> int:
    """Elapsed virtual nanoseconds of ``fn()`` (truncated, chrono-style)."""
    t0 = machine.now_ns()
    fn()
    return machine.now_ns() - t0


class Stopwatch:
    """Accumulating nanosecond stopwatch over the virtual clock."""

    def __init__(self, machine: Machine) -> None:
        self._machine = machine
        self.total_ns = 0
        self.laps: list[int] = []

    @contextlib.contextmanager
    def lap(self) -> Iterator[None]:
        """Context manager timing one lap on the virtual clock."""
        t0 = self._machine.now_ns()
        yield
        dt = self._machine.now_ns() - t0
        self.laps.append(dt)
        self.total_ns += dt
