"""The Nvidia GH200 reference substrate (sections 4-5 comparisons).

The paper benchmarks an internal GH200 to situate Apple Silicon against HPC
state of the art: STREAM from the NVIDIA HPC benchmark suite on both the
Grace LPDDR5X memory and the Hopper HBM3, and ``cublasSgemm`` on CUDA cores
and (TF32) tensor cores.  This package models that superchip with the same
roofline machinery used for the M-series.
"""

from repro.cuda.specs import GH200_SPEC, GraceHopperSpec, CudaMathMode
from repro.cuda.machine import GH200Machine
from repro.cuda.stream import run_gh200_stream
from repro.cuda.cublas import CublasHandle, cublas_sgemm

__all__ = [
    "GraceHopperSpec",
    "GH200_SPEC",
    "CudaMathMode",
    "GH200Machine",
    "run_gh200_stream",
    "CublasHandle",
    "cublas_sgemm",
]
