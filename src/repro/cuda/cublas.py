"""``cublasSgemm`` on the GH200 (section 4).

"For GEMM performance evaluation, the cublasSgemm in cuBLAS 12.4.2 is used,
while both CUDA core and Tensor core (TF32 accelerated path, as FP32 is not
supported) performance are tested."  The paper quotes 41 TFLOPS (61 % of
peak) for CUDA cores and 338 TFLOPS (69 %) for TF32 tensor cores.

The column-major convention of cuBLAS is honoured; the TF32 path rounds
inputs to TF32's 10-bit mantissa before the product, so results carry the
genuine reduced-precision error the paper flags as the "unfair comparison"
caveat.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.calibration import paper
from repro.cuda.machine import GH200Machine
from repro.cuda.specs import CudaMathMode
from repro.errors import ConfigurationError
from repro.sim.policy import NumericsPolicy

__all__ = ["CublasHandle", "cublas_sgemm", "CUBLAS_OP_N", "CUBLAS_OP_T"]

CUBLAS_OP_N = 0
CUBLAS_OP_T = 1

#: Achieved fraction of peak at saturation (back-derived from the paper).
_SGEMM_EFFICIENCY: dict[CudaMathMode, float] = {
    CudaMathMode.CUDA_CORES_FP32: float(paper.GH200["sgemm_cuda_fraction"]),
    CudaMathMode.TF32_TENSOR: float(paper.GH200["sgemm_tf32_fraction"]),
}

#: Kernel-launch plus cuBLAS dispatch overhead.
_LAUNCH_OVERHEAD_S = 12e-6


@dataclasses.dataclass
class CublasHandle:
    """``cublasHandle_t``: the library context bound to one device."""

    machine: GH200Machine
    math_mode: CudaMathMode = CudaMathMode.CUDA_CORES_FP32

    def set_math_mode(self, mode: CudaMathMode) -> None:
        """Switch between CUDA-core FP32 and TF32 tensor-core paths."""
        self.math_mode = mode


def _round_tf32(values: np.ndarray) -> np.ndarray:
    """Round FP32 values to TF32's 10-bit mantissa (bitmask truncation)."""
    as_int = values.astype(np.float32).view(np.uint32)
    mask = np.uint32(0xFFFFE000)  # keep sign, exponent, top 10 mantissa bits
    return (as_int & mask).view(np.float32)


def cublas_sgemm(
    handle: CublasHandle,
    trans_a: int,
    trans_b: int,
    m: int,
    n: int,
    k: int,
    alpha: float,
    a: np.ndarray,
    lda: int,
    b: np.ndarray,
    ldb: int,
    beta: float,
    c: np.ndarray,
    ldc: int,
) -> None:
    """Column-major ``C := alpha op(A) op(B) + beta C`` with simulated timing."""
    if min(m, n, k) < 0:
        raise ConfigurationError("sgemm dimensions must be non-negative")
    for name, val in (("transa", trans_a), ("transb", trans_b)):
        if val not in (CUBLAS_OP_N, CUBLAS_OP_T):
            raise ConfigurationError(f"{name} must be CUBLAS_OP_N or CUBLAS_OP_T")

    def col_major(buf: np.ndarray, rows: int, cols: int, ld: int, nm: str) -> np.ndarray:
        arr = np.asarray(buf)
        if arr.dtype != np.float32:
            raise ConfigurationError(f"{nm}: sgemm requires float32")
        if ld < rows:
            raise ConfigurationError(f"{nm}: ld {ld} < rows {rows}")
        flat = arr.reshape(-1)
        needed = (cols - 1) * ld + rows if cols else 0
        if flat.size < needed:
            raise ConfigurationError(f"{nm}: buffer too small")
        return np.lib.stride_tricks.as_strided(
            flat, shape=(rows, cols), strides=(4, ld * 4), writeable=True
        )

    a_rows, a_cols = (m, k) if trans_a == CUBLAS_OP_N else (k, m)
    b_rows, b_cols = (k, n) if trans_b == CUBLAS_OP_N else (n, k)
    mat_a = col_major(a, a_rows, a_cols, lda, "A")
    mat_b = col_major(b, b_rows, b_cols, ldb, "B")
    mat_c = col_major(c, m, n, ldc, "C")
    op_a = mat_a if trans_a == CUBLAS_OP_N else mat_a.T
    op_b = mat_b if trans_b == CUBLAS_OP_N else mat_b.T

    machine = handle.machine
    policy = machine.numerics.effective_policy(max(m, n, k))
    if policy is not NumericsPolicy.MODEL_ONLY and m and n:
        if handle.math_mode is CudaMathMode.TF32_TENSOR:
            op_a_num = _round_tf32(np.ascontiguousarray(op_a))
            op_b_num = _round_tf32(np.ascontiguousarray(op_b))
        else:
            op_a_num, op_b_num = op_a, op_b
        if policy is NumericsPolicy.SAMPLED:
            rows = machine.numerics.sampled_row_indices(m)
            product = (op_a_num[rows, :] @ op_b_num).astype(np.float32)
            if beta == 0.0:
                mat_c[rows, :] = np.float32(alpha) * product
            else:
                mat_c[rows, :] = (
                    np.float32(alpha) * product + np.float32(beta) * mat_c[rows, :]
                )
        else:
            product = (op_a_num @ op_b_num).astype(np.float32)
            if beta == 0.0:
                mat_c[...] = np.float32(alpha) * product
            else:
                mat_c[...] = np.float32(alpha) * product + np.float32(beta) * mat_c

    # -- timing -----------------------------------------------------------
    flops = float(m) * n * (2 * k - 1) if k else 0.0
    peak = machine.spec.peak_flops(handle.math_mode)
    eff = _SGEMM_EFFICIENCY[handle.math_mode]
    # Ramp with problem scale (cuBLAS saturates around n ~ 4096 on Hopper),
    # normalised so the paper's reference size n = 16384 achieves `eff`.
    def _ramp(x: float) -> float:
        return 1.0 / (1.0 + (2048.0 / max(x, 1.0)) ** 1.3)

    scale = (float(m) * n * k) ** (1.0 / 3.0) if k else 1.0
    ramp = _ramp(scale) / _ramp(16384.0)
    duration = flops / (peak * eff * min(max(ramp, 1e-6), 1.0 / eff)) + _LAUNCH_OVERHEAD_S
    machine.execute_timed(
        label=f"gh200/sgemm/{handle.math_mode.value}/{m}x{n}x{k}",
        engine="hopper",
        duration_s=duration,
        flops=flops,
    )
