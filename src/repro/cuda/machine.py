"""A minimal virtual machine for the GH200 reference runs.

The M-series :class:`~repro.sim.machine.Machine` is built around a
:class:`~repro.soc.chip.ChipSpec`; the GH200 is a different beast, so it gets
its own thin wrapper over the same clock/trace primitives.  Power is not
modelled — the paper explicitly could not measure GH200 power ("We were
unable to measure power consumption on the GH200 due to time constraints").
"""

from __future__ import annotations

from repro.cuda.specs import GH200_SPEC, GraceHopperSpec
from repro.sim.clock import VirtualClock
from repro.sim.noise import DeterministicNoise
from repro.sim.policy import NumericsConfig
from repro.sim.trace import ExecutionTrace, TraceEvent

__all__ = ["GH200Machine"]


class GH200Machine:
    """Virtual GH200 superchip: clock + trace, no power rail."""

    def __init__(
        self,
        spec: GraceHopperSpec = GH200_SPEC,
        *,
        seed: int = 0,
        noise_sigma: float = 0.01,
        numerics: NumericsConfig | None = None,
    ) -> None:
        self.spec = spec
        self.clock = VirtualClock()
        self.trace = ExecutionTrace()
        self.noise = DeterministicNoise(seed, noise_sigma)
        self.numerics = numerics or NumericsConfig.sampled()

    def now_s(self) -> float:
        """Current virtual time in seconds."""
        return self.clock.now_s()

    def now_ns(self) -> int:
        """Current virtual time in integral nanoseconds."""
        return self.clock.now_ns()

    def execute_timed(
        self,
        *,
        label: str,
        engine: str,
        duration_s: float,
        flops: float = 0.0,
        bytes_moved: float = 0.0,
        noise_key: str | None = None,
    ) -> float:
        """Advance the clock by a jittered duration; returns actual seconds."""
        jitter = self.noise.factor(noise_key or label)
        actual = duration_s * jitter
        start = self.clock.now_s()
        end = self.clock.advance(actual)
        self.trace.append(
            TraceEvent(
                start_s=start,
                end_s=end,
                engine=engine,
                label=label,
                flops=flops,
                bytes_moved=bytes_moved,
            )
        )
        return actual
