"""GH200 Grace-Hopper specifications.

Peaks follow the GH200-480GB datasheet and reconcile exactly with the
fractions the paper reports: 310 GB/s is 81 % of the 384 GB/s LPDDR5X peak,
3700 GB/s is ~94 % of the 4 TB/s HBM3 peak, 41 TFLOPS is 61 % of the 67
TFLOPS FP32 peak and 338 TFLOPS is ~69 % of the 494.5 TFLOPS dense-TF32 peak.
"""

from __future__ import annotations

import dataclasses
import enum

__all__ = ["CudaMathMode", "GraceHopperSpec", "GH200_SPEC"]


class CudaMathMode(enum.Enum):
    """cuBLAS math modes the paper exercises for sgemm."""

    CUDA_CORES_FP32 = "fp32-cuda-cores"
    TF32_TENSOR = "tf32-tensor-cores"


@dataclasses.dataclass(frozen=True)
class GraceHopperSpec:
    """The slice of the GH200 the reference benchmarks touch."""

    name: str
    # Grace CPU
    cpu_cores: int
    cpu_memory_gb: int
    cpu_memory_technology: str
    cpu_bandwidth_gbs: float
    # Hopper GPU
    gpu_memory_gb: int
    gpu_memory_technology: str
    hbm_bandwidth_gbs: float
    fp32_tflops: float
    tf32_tensor_tflops: float
    # NVLink-C2C between the two
    nvlink_c2c_gbs: float

    def peak_flops(self, mode: CudaMathMode) -> float:
        """Architectural FLOP/s peak for a cuBLAS math mode."""
        if mode is CudaMathMode.CUDA_CORES_FP32:
            return self.fp32_tflops * 1e12
        return self.tf32_tensor_tflops * 1e12


GH200_SPEC = GraceHopperSpec(
    name="GH200",
    cpu_cores=72,
    cpu_memory_gb=480,
    cpu_memory_technology="LPDDR5X",
    cpu_bandwidth_gbs=384.0,
    gpu_memory_gb=96,
    gpu_memory_technology="HBM3",
    hbm_bandwidth_gbs=4000.0,
    fp32_tflops=67.0,
    tf32_tensor_tflops=494.5,
    nvlink_c2c_gbs=900.0,
)
