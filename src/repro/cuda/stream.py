"""GH200 STREAM, after the NVIDIA HPC benchmark 24.9 runs in the paper.

"For Grace CPU and Hopper GPU memory bandwidth measurements, the STREAM
tests in the official Nvidia HPC benchmark 24.9 are used" (section 4).  The
paper quotes 310 GB/s from CPU (LPDDR5X) memory and 3700 GB/s from HBM3.
"""

from __future__ import annotations

import numpy as np

from repro.calibration import paper
from repro.core.results import StreamKernelResult, StreamResult
from repro.core.stream.kernels import (
    KERNEL_ORDER,
    StreamArrays,
    kernel_bytes_per_element,
    validate_arrays,
)
from repro.cuda.machine import GH200Machine
from repro.errors import ConfigurationError
from repro.sim.policy import NumericsPolicy

__all__ = ["run_gh200_stream", "DEFAULT_GH200_ELEMENTS", "paper_reference_gbs"]

DEFAULT_GH200_ELEMENTS = 1 << 23

#: Saturated link efficiencies per kernel, tuned so the best kernel matches
#: the paper's quoted maxima (310 / 3700 GB/s).
_LINK_EFFICIENCY: dict[str, dict[str, float]] = {
    "cpu": {"copy": 0.78, "scale": 0.785, "add": 0.80, "triad": 0.807},
    "hbm3": {"copy": 0.90, "scale": 0.905, "add": 0.92, "triad": 0.925},
}


def run_gh200_stream(
    machine: GH200Machine,
    target: str,
    *,
    n_elements: int = DEFAULT_GH200_ELEMENTS,
    repeats: int = 10,
) -> StreamResult:
    """STREAM on the Grace LPDDR5X (``"cpu"``) or Hopper HBM3 (``"hbm3"``)."""
    if target not in ("cpu", "hbm3"):
        raise ConfigurationError(
            f"GH200 STREAM target must be 'cpu' or 'hbm3', got {target!r}"
        )
    spec = machine.spec
    theoretical = (
        spec.cpu_bandwidth_gbs if target == "cpu" else spec.hbm_bandwidth_gbs
    )
    element_bytes = 8  # the NVIDIA HPC STREAM uses FP64

    run_numerics = machine.numerics.policy is not NumericsPolicy.MODEL_ONLY
    arrays = StreamArrays.allocate(n_elements, np.float64) if run_numerics else None

    bandwidths: dict[str, list[float]] = {k: [] for k in KERNEL_ORDER}
    for rep in range(repeats):
        for kernel in KERNEL_ORDER:
            if arrays is not None:
                arrays.run_kernel(kernel)
            moved = float(kernel_bytes_per_element(kernel, element_bytes) * n_elements)
            effective = theoretical * _LINK_EFFICIENCY[target][kernel]
            duration = moved / (effective * 1e9) + 1e-6
            actual = machine.execute_timed(
                label=f"gh200/stream/{target}/{kernel}",
                engine="grace" if target == "cpu" else "hopper",
                duration_s=duration,
                bytes_moved=moved,
                noise_key=f"gh200/stream/{target}/{kernel}/rep={rep}",
            )
            bandwidths[kernel].append(moved / actual / 1e9)
    if arrays is not None:
        validate_arrays(arrays, repeats)

    return StreamResult(
        chip_name=spec.name,
        target="cpu" if target == "cpu" else "gpu",
        n_elements=n_elements,
        element_bytes=element_bytes,
        kernels={
            kernel: StreamKernelResult(kernel=kernel, bandwidths_gbs=tuple(vals))
            for kernel, vals in bandwidths.items()
        },
        theoretical_gbs=theoretical,
    )


def paper_reference_gbs(target: str) -> float:
    """The paper's quoted GH200 STREAM result for a target."""
    key = "stream_cpu_gbs" if target == "cpu" else "stream_hbm3_gbs"
    return float(paper.GH200[key])
