"""Exception hierarchy shared by every subsystem of :mod:`repro`.

All library errors derive from :class:`ReproError` so downstream users can
catch one base class.  Subsystems raise the most specific subclass available;
the Metal simulation layer additionally defines API-shaped errors in
:mod:`repro.metal.errors` that derive from these.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "UnknownChipError",
    "UnknownDeviceError",
    "UnknownImplementationError",
    "CalibrationError",
    "SimulationError",
    "TransientError",
    "WorkerCrashError",
    "CellTimeoutError",
    "ClockError",
    "AllocationError",
    "AlignmentError",
    "ValidationError",
    "ProtocolError",
    "ParseError",
    "UnsupportedProblemError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """An object was constructed or configured with inconsistent parameters."""


class UnknownChipError(ConfigurationError):
    """A chip name was not found in the catalog."""

    def __init__(self, name: str, known: tuple[str, ...] = ()) -> None:
        msg = f"unknown chip {name!r}"
        if known:
            msg += f" (known: {', '.join(known)})"
        super().__init__(msg)
        self.name = name
        self.known = known


class UnknownDeviceError(ConfigurationError):
    """A device model was not found in the catalog."""


class UnknownImplementationError(ConfigurationError):
    """A GEMM/STREAM implementation key was not found in the registry."""


class CalibrationError(ConfigurationError):
    """Calibration data is missing or internally inconsistent."""


class SimulationError(ReproError):
    """The simulation engine was driven into an invalid state."""


class TransientError(ReproError):
    """A cell execution failed in a way that may succeed on retry.

    The retry layer (:mod:`repro.experiments.resilience`) re-executes cells
    that fail with this class — or any subclass — with bounded attempts and
    exponential backoff; every other exception class is treated as a hard
    failure and reported without retrying.  Because cells are pure
    functions of (spec, session fingerprint), a retried cell that succeeds
    is byte-identical to one that never failed.
    """


class WorkerCrashError(TransientError):
    """A worker process died (or its pool broke) while executing a cell.

    Raised parent-side when a process-pool future is lost to a crashed
    worker — a ``BrokenProcessPool``, an ``os._exit`` in the worker, an
    OOM kill.  Retryable: the pool is rebuilt per attempt, and cells that
    keep crashing degrade to the in-process serial path.
    """


class CellTimeoutError(TransientError):
    """A cell (or shard) exceeded its execution deadline.

    Raised parent-side when a dispatched cell runs past the configured
    ``cell_timeout``; the hung worker is abandoned, never joined.
    Retryable: a hang caused by transient contention clears on re-execution.
    """


class ClockError(SimulationError):
    """The virtual clock was asked to move backwards or by a negative delta."""


class AllocationError(ReproError):
    """A simulated memory allocation failed (size, bounds, exhaustion)."""


class AlignmentError(AllocationError):
    """A buffer does not satisfy a page-alignment requirement.

    The paper requires 16,384-byte page alignment so Metal can wrap matrices
    with no-copy shared buffers (section 3.2).
    """


class ValidationError(ReproError):
    """Numerical verification of a kernel result failed."""


class ProtocolError(ReproError):
    """A measurement protocol (e.g. powermetrics SIGINFO flow) was violated."""


class ParseError(ReproError):
    """Text output (e.g. powermetrics samples) could not be parsed."""


class UnsupportedProblemError(ReproError):
    """An implementation cannot run the requested problem size/precision.

    Mirrors the paper's exclusion of n >= 8192 for the CPU-Single and CPU-OMP
    implementations (section 4).
    """
