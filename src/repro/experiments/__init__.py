"""Declarative experiment API: specs, sessions, batches and envelopes.

The grid behind the paper's study — {M1..M4} x {STREAM, GEMM, power} x sizes
— is described by frozen :mod:`~repro.experiments.specs`, executed (and
cached, and parallelised) by a :class:`~repro.experiments.session.Session`,
and persisted as JSON :class:`~repro.experiments.envelope.ResultEnvelope`
records that figures re-render from disk::

    from repro.experiments import GemmSpec, Session

    session = Session(numerics="sampled", cache_dir="results-cache")
    env = session.run(GemmSpec(chip="M4", impl_key="gpu-mps", n=4096))
    print(env.result.best_gflops)

    sweep = SweepSpec(kind="gemm", chips=("M1", "M4"), sizes=(4096, 16384))
    envelopes = session.run_batch(sweep, max_workers=4, backend="processes")

Batches execute through pluggable :mod:`~repro.experiments.backends`
(serial / threads / processes / vectorized — bit-identical by
construction; ``vectorized`` batch-evaluates whole grids through
:mod:`repro.sim.vectorized` instead of per-operation Python loops), and
:func:`~repro.experiments.manifest.run_with_manifest` makes long campaigns
resumable: envelopes land in a sharded store indexed by a ``manifest.json``
that ``repro run --resume DIR`` completes after an interrupt.
"""

from repro.experiments.backends import (
    BACKEND_NAMES,
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    VectorizedBackend,
    resolve_backend,
)
from repro.experiments.envelope import (
    ENVELOPE_SCHEMA_VERSION,
    ResultEnvelope,
    result_from_dict,
    result_to_dict,
)
from repro.experiments.executor import (
    execute_spec,
    run_gemm_spec,
    run_powered_gemm_spec,
    run_stream_spec,
)
from repro.experiments.faults import (
    FAULT_KINDS,
    FAULTS_ENV_VAR,
    FaultPlan,
    FaultRule,
    resolve_fault_plan,
)
from repro.experiments.resilience import CellFailure, RetryPolicy, RunHealth
from repro.experiments.session import (
    FailureCallback,
    ProgressCallback,
    Session,
)
from repro.experiments.specs import (
    NUMERICS_PROFILES,
    ExperimentSpec,
    GemmSpec,
    PoweredGemmSpec,
    StreamSpec,
    SweepSpec,
    spec_from_dict,
)
from repro.experiments.manifest import (
    MANIFEST_SCHEMA_VERSION,
    CellRecord,
    RunManifest,
    run_with_manifest,
)
from repro.experiments.store import (
    MANIFEST_FILENAME,
    atomic_write_text,
    envelope_filename,
    envelope_path,
    load_envelopes,
    save_envelopes,
)

__all__ = [
    "BACKEND_NAMES",
    "ExecutionBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "VectorizedBackend",
    "resolve_backend",
    "MANIFEST_FILENAME",
    "MANIFEST_SCHEMA_VERSION",
    "CellRecord",
    "RunManifest",
    "run_with_manifest",
    "NUMERICS_PROFILES",
    "ENVELOPE_SCHEMA_VERSION",
    "ExperimentSpec",
    "GemmSpec",
    "PoweredGemmSpec",
    "StreamSpec",
    "SweepSpec",
    "spec_from_dict",
    "Session",
    "ProgressCallback",
    "FailureCallback",
    "FAULT_KINDS",
    "FAULTS_ENV_VAR",
    "FaultPlan",
    "FaultRule",
    "resolve_fault_plan",
    "CellFailure",
    "RetryPolicy",
    "RunHealth",
    "ResultEnvelope",
    "result_to_dict",
    "result_from_dict",
    "execute_spec",
    "run_gemm_spec",
    "run_powered_gemm_spec",
    "run_stream_spec",
    "atomic_write_text",
    "envelope_filename",
    "envelope_path",
    "save_envelopes",
    "load_envelopes",
]
