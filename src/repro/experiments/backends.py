"""Pluggable execution backends for batched spec execution.

A :class:`Session` decides *what* to run (cache lookups, machine
construction, envelope stamping); an :class:`ExecutionBackend` decides *how*
the cells of a batch execute:

* ``serial`` — an in-order loop in the calling thread (the reference
  semantics every other backend must reproduce bit-identically);
* ``threads`` — a :class:`~concurrent.futures.ThreadPoolExecutor`; cheap to
  spin up, but the real-NumPy numerics paths serialize on the GIL;
* ``processes`` — a :class:`~concurrent.futures.ProcessPoolExecutor`; each
  cell's spec crosses the boundary as plain data through the workload
  registry codecs (``spec.to_dict`` / ``spec_from_dict``) and comes back as
  an envelope dict, so worker dispatch needs nothing picklable beyond the
  session's numeric configuration;
* ``vectorized`` — the batch fast path: cells of workloads that declare a
  ``vectorized_body`` are lowered onto shared chip templates and evaluated
  in bulk NumPy array operations (:mod:`repro.sim.vectorized`) instead of
  per-operation Python loops, with automatic per-cell fallback to the
  scalar executor for workloads that do not;
* ``sharded`` — vectorized × processes for million-cell grids: the grid is
  cut into contiguous shards, each shard crosses to a worker process (as a
  sweep slice or as plain-data specs), runs there under the vectorized
  backend, and streams its envelopes back as plain data; the parent
  delivers shards strictly in submission order with a bounded number in
  flight, so a grid of any size runs in constant parent memory.

Because every cell is a pure function of (spec, session fingerprint) — the
simulator's jitter is content-addressed, machines are fresh per cell — all
backends produce byte-identical envelope JSON; the cross-backend
determinism suite (``tests/experiments/test_backends.py``) enforces that
invariant over every registered workload.

Backend selection: ``Session.run_batch(backend=...)`` accepts a name or an
instance; ``None`` defers to the ``REPRO_BACKEND`` environment variable
(the CI matrix hook) and finally to the historical default — serial for one
worker, threads otherwise.  Sessions with a custom ``machine_factory``
cannot ship cells to worker processes (arbitrary callables don't cross the
boundary) or onto the vectorized engine's shared chip templates; an
*explicit* ``processes`` or ``vectorized`` request on such a session raises,
while the environment-variable soft default quietly falls back to threads.
"""

from __future__ import annotations

import concurrent.futures
import itertools
import os
import pickle
import time
from functools import partial
from typing import TYPE_CHECKING, Any, Callable, Mapping, Sequence

from repro.errors import CellTimeoutError, ConfigurationError, WorkerCrashError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.experiments.envelope import ResultEnvelope
    from repro.experiments.session import Session
    from repro.experiments.specs import ExperimentSpec

__all__ = [
    "BACKEND_NAMES",
    "BACKEND_ENV_VAR",
    "ExecutionBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "VectorizedBackend",
    "ShardedBackend",
    "resolve_backend",
]

#: The registered backend names, in documentation order.
BACKEND_NAMES: tuple[str, ...] = (
    "serial",
    "threads",
    "processes",
    "vectorized",
    "sharded",
)

#: Environment variable consulted when no backend is named explicitly —
#: the CI matrix runs the whole fast tier under each value.
BACKEND_ENV_VAR = "REPRO_BACKEND"

#: ``finish(index, envelope)`` — the session's completion callback; must be
#: called exactly once per spec, in any order.
FinishCallback = Callable[[int, "ResultEnvelope"], None]

#: ``fail(index, exc, spec)`` — the per-cell failure channel.  When a caller
#: provides it, a cell that raises is *reported* instead of aborting the
#: batch (partial-failure semantics: sibling cells keep executing); when it
#: is ``None``, backends preserve the historical fail-fast behavior.  The
#: spec rides along so the caller can identify — and retry — the cell
#: without holding the whole batch materialized.
FailCallback = Callable[[int, BaseException, Any], None]


class ExecutionBackend:
    """How the cells of one batch execute.

    Subclasses implement :meth:`run`, calling ``finish(index, envelope)``
    exactly once per completed spec — in any order, but always from the
    thread that called :meth:`run` (its consumers — batch bookkeeping,
    manifest checkpointing — are deliberately unsynchronized; the built-in
    pool backends satisfy this by finishing from their drain loops).
    Backends must preserve the serial reference semantics bit-for-bit;
    they may differ only in wall-clock time.

    Fault-tolerance contract (all keyword-only, all optional):

    * ``fail(index, exc, spec)`` — report a cell's failure instead of
      raising; every spec reaches exactly one of ``finish``/``fail``.  With
      ``fail=None`` the first failure aborts the batch (legacy semantics).
    * ``attempt`` — 1-based attempt number of this round, threaded to
      ``Session.run`` (and across worker boundaries) so deterministic
      fault injection can count attempts.
    * ``cell_timeout`` — per-cell deadline in seconds; the pool backends
      abandon cells that run past it and report
      :class:`~repro.errors.CellTimeoutError` through ``fail``.  In-process
      backends cannot preempt a running cell and ignore it.
    * ``health`` — optional :class:`~repro.experiments.resilience.RunHealth`
      a backend with *internal* recovery (sharded) uses to report the
      retries/fallbacks it performed itself.
    """

    #: Registry/CLI name of this backend.
    name = "base"

    #: Streaming backends additionally implement :meth:`run_sweep` and accept
    #: an un-expanded :class:`~repro.experiments.specs.SweepSpec`;
    #: ``Session.run_batch`` routes grids to it so they are never fully
    #: materialized in the parent process.
    streaming = False

    def run(
        self,
        session: "Session",
        specs: Sequence["ExperimentSpec"],
        finish: FinishCallback,
        *,
        use_cache: bool = True,
        fail: "FailCallback | None" = None,
        attempt: int = 1,
        cell_timeout: float | None = None,
        health: Any = None,
    ) -> None:
        """Execute every spec, reporting completions through ``finish``."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}()"


def _drain_with_deadline(not_done: set, cell_timeout: float | None):
    """Yield ``(future, timed_out)`` as pool futures finish or expire.

    Without a deadline this is ``as_completed``.  With one, the loop polls
    (bounded by the deadline granularity), starts each future's clock when
    it is first observed *running* — queued cells don't burn their budget
    waiting for a worker — and yields expired futures with
    ``timed_out=True`` after attempting to cancel them.  An expired future
    that was already running cannot be cancelled; it is abandoned (the
    caller must shut its pool down with ``wait=False``).
    """
    started: dict[Any, float] = {}
    poll = None if cell_timeout is None else max(min(cell_timeout / 8, 0.1), 0.01)
    while not_done:
        done, not_done = concurrent.futures.wait(
            not_done,
            timeout=poll,
            return_when=concurrent.futures.FIRST_COMPLETED,
        )
        for future in done:
            yield future, False
        if cell_timeout is None:
            continue
        now = time.monotonic()
        expired = []
        for future in not_done:
            if future.running():
                begun = started.setdefault(future, now)
                if now - begun >= cell_timeout:
                    expired.append(future)
        for future in expired:
            future.cancel()
            not_done.discard(future)
            yield future, True


class SerialBackend(ExecutionBackend):
    """In-order execution in the calling thread (the reference semantics)."""

    name = "serial"

    def run(
        self,
        session,
        specs,
        finish,
        *,
        use_cache=True,
        fail=None,
        attempt=1,
        cell_timeout=None,
        health=None,
    ):
        """Execute the specs one after another, in input order.

        ``cell_timeout`` is ignored: a cell running in the calling thread
        cannot be preempted (the serial path is also the degradation
        target — it must always make progress).
        """
        for index, spec in enumerate(specs):
            try:
                envelope = session.run(spec, use_cache=use_cache, attempt=attempt)
            except Exception as exc:
                _report_cell_failure(fail, index, exc, spec)
                continue
            finish(index, envelope)


class ThreadBackend(ExecutionBackend):
    """Thread-pool execution: concurrent cells sharing the interpreter."""

    name = "threads"

    def __init__(self, max_workers: int = 4) -> None:
        if max_workers < 1:
            raise ConfigurationError("max_workers must be >= 1")
        self.max_workers = int(max_workers)

    def run(
        self,
        session,
        specs,
        finish,
        *,
        use_cache=True,
        fail=None,
        attempt=1,
        cell_timeout=None,
        health=None,
    ):
        """Execute the specs on a shared-interpreter thread pool."""
        pool = concurrent.futures.ThreadPoolExecutor(max_workers=self.max_workers)
        abandoned = False
        try:
            futures = {
                pool.submit(
                    session.run, spec, use_cache=use_cache, attempt=attempt
                ): (index, spec)
                for index, spec in enumerate(specs)
            }
            for future, timed_out in _drain_with_deadline(
                set(futures), cell_timeout
            ):
                index, spec = futures[future]
                if timed_out:
                    # The thread keeps running (threads cannot be killed);
                    # abandon it and let pool shutdown skip the join.
                    abandoned = True
                    _report_cell_failure(
                        fail,
                        index,
                        CellTimeoutError(
                            f"{spec.kind} cell {spec.spec_hash()} exceeded "
                            f"the {cell_timeout:g}s deadline "
                            f"(attempt {attempt})"
                        ),
                        spec,
                    )
                    continue
                try:
                    envelope = future.result()
                except Exception as exc:
                    _report_cell_failure(fail, index, exc, spec)
                    continue
                finish(index, envelope)
        finally:
            pool.shutdown(wait=not abandoned, cancel_futures=True)


def _report_cell_failure(
    fail: "FailCallback | None",
    index: int,
    exc: BaseException,
    spec: Any,
) -> None:
    """Route one cell failure: through ``fail`` when provided, else raise."""
    if fail is None:
        raise exc
    fail(index, exc, spec)


def _resolve_cache_hits(
    session: "Session",
    specs: "Sequence[ExperimentSpec]",
    finish: FinishCallback,
    use_cache: bool,
) -> list[tuple[int, "ExperimentSpec", str]]:
    """Finish every cache hit now; return the (index, spec, key) misses.

    Shared by the backends that resolve caching *before* dispatch (processes,
    vectorized) so hit/miss counters and in-memory population stay identical
    to the in-process backends, whatever executes the misses.
    """
    pending: list[tuple[int, "ExperimentSpec", str]] = []
    for index, spec in enumerate(specs):
        key = session.cache_key(spec)
        cached = session.cache_lookup(key) if use_cache else None
        if cached is not None:
            finish(index, cached)
        else:
            if not use_cache:
                session.record_miss()  # cache_lookup counted it otherwise
            pending.append((index, spec, key))
    return pending


def _session_payload(session: "Session") -> dict[str, Any]:
    """The constructor kwargs a worker needs to rebuild an equivalent session.

    Only plain data and the frozen :class:`NumericsConfig` cross the
    boundary; the worker session carries no cache directory (the parent owns
    all persistence) and must fingerprint identically so envelope metadata —
    and therefore envelope JSON — is byte-identical to in-process execution.
    """
    payload: dict[str, Any] = {
        "numerics": session.numerics,
        "seed": session.seed,
        "noise_sigma": session.noise_sigma,
        "thermal_enabled": session.thermal_enabled,
    }
    if session.fault_plan is not None:
        # Plans cross as plain data so crash/hang rules fire inside the
        # worker that executes the targeted cell.  They never enter the
        # session fingerprint, so shipping one changes no envelope bytes.
        payload["fault_plan"] = session.fault_plan.to_dict()
    return payload


def _execute_cell_payload(
    spec_data: Mapping[str, Any],
    session_config: Mapping[str, Any],
    attempt: int = 1,
) -> dict[str, Any]:
    """Worker-side entry point: plain-data spec in, plain-data envelope out.

    Module-level so it is importable (picklable) by worker processes.  The
    spec is rebuilt through the workload registry codecs, executed on a
    fresh session with the parent's configuration, and the envelope returns
    as its ``to_dict`` form — the same codec path the on-disk store uses,
    which is what makes process execution provably byte-identical.
    """
    from repro.experiments.session import Session
    from repro.experiments.specs import spec_from_dict

    session = Session(**session_config)
    spec = spec_from_dict(spec_data)
    return session.run(spec, use_cache=False, attempt=attempt).to_dict()


class ProcessBackend(ExecutionBackend):
    """Process-pool execution: true parallelism for GIL-bound numerics.

    The parent session resolves cache hits before dispatch and stores
    worker results afterwards, so caching semantics (hit/miss counters,
    in-memory population, on-disk writes) match the in-process backends.
    """

    name = "processes"

    def __init__(self, max_workers: int = 4) -> None:
        if max_workers < 1:
            raise ConfigurationError("max_workers must be >= 1")
        self.max_workers = int(max_workers)

    def run(
        self,
        session,
        specs,
        finish,
        *,
        use_cache=True,
        fail=None,
        attempt=1,
        cell_timeout=None,
        health=None,
    ):
        """Dispatch cache misses to worker processes as plain-data specs."""
        from concurrent.futures.process import BrokenProcessPool

        from repro.errors import SimulationError
        from repro.experiments.envelope import ResultEnvelope

        if session.machine_factory is not None:
            raise ConfigurationError(
                "the processes backend cannot ship a custom machine_factory "
                "to worker processes; use the serial or threads backend"
            )
        pending = _resolve_cache_hits(session, specs, finish, use_cache)
        if not pending:
            return
        config = _session_payload(session)
        pool = concurrent.futures.ProcessPoolExecutor(
            max_workers=min(self.max_workers, len(pending))
        )
        abandoned = False
        try:
            futures = {
                pool.submit(
                    _execute_cell_payload, spec.to_dict(), config, attempt
                ): (index, spec, key)
                for index, spec, key in pending
            }
            for future, timed_out in _drain_with_deadline(
                set(futures), cell_timeout
            ):
                index, spec, key = futures[future]
                if timed_out:
                    # A hung worker cannot be joined; abandon the pool at
                    # shutdown so the batch is not held hostage.
                    abandoned = True
                    _report_cell_failure(
                        fail,
                        index,
                        CellTimeoutError(
                            f"{spec.kind} cell {spec.spec_hash()} exceeded "
                            f"the {cell_timeout:g}s deadline "
                            f"(attempt {attempt})"
                        ),
                        spec,
                    )
                    continue
                try:
                    payload = future.result()
                except concurrent.futures.CancelledError as exc:
                    # collateral of a pool break: the cell never ran
                    _report_cell_failure(
                        fail,
                        index,
                        WorkerCrashError(
                            f"{spec.kind} cell {spec.spec_hash()} was "
                            f"cancelled by a broken worker pool "
                            f"(attempt {attempt})"
                        ),
                        spec,
                    )
                    continue
                except BrokenProcessPool as exc:
                    abandoned = True
                    _report_cell_failure(
                        fail,
                        index,
                        WorkerCrashError(
                            f"worker process died executing {spec.kind} "
                            f"cell {spec.spec_hash()} "
                            f"(attempt {attempt}): {exc}"
                        ),
                        spec,
                    )
                    continue
                except Exception as exc:
                    if fail is not None:
                        fail(index, exc, spec)
                        continue
                    # One dead cell fails the batch: cancel what has not
                    # started yet (no point finishing a batch the caller
                    # will never see) and name the failing cell — a bare
                    # pickled traceback from a pool worker otherwise says
                    # nothing about *which* spec died.
                    for other in futures:
                        other.cancel()
                    raise SimulationError(
                        f"worker process failed on {spec.kind} cell "
                        f"{spec.spec_hash()}: {exc}"
                    ) from exc
                envelope = ResultEnvelope.from_dict(payload)
                if use_cache:
                    session.cache_store(key, envelope)
                finish(index, envelope)
        finally:
            pool.shutdown(wait=not abandoned, cancel_futures=True)


class VectorizedBackend(ExecutionBackend):
    """Bulk NumPy evaluation of the whole batch (the sweep fast path).

    Cache misses of workloads that declare a ``vectorized_body`` are lowered
    onto shared chip templates and evaluated together in a handful of array
    operations through :func:`repro.sim.vectorized.evaluate_cells`; cells of
    workloads without a vectorized body fall back to the scalar executor,
    per cell, inside the same batch.  Either way the arithmetic is the
    scalar engine's, operation for operation, so envelopes are byte-identical
    to the ``serial`` reference — the cross-backend determinism suite
    enforces this for every registered workload.
    """

    name = "vectorized"

    def run(
        self,
        session,
        specs,
        finish,
        *,
        use_cache=True,
        fail=None,
        attempt=1,
        cell_timeout=None,
        health=None,
    ):
        """Lower every cache miss, evaluate the grid in bulk, finish in order."""
        from repro import workloads
        from repro.experiments.envelope import ResultEnvelope
        from repro.sim.vectorized import (
            LoweredSequence,
            evaluate_cells,
            evaluate_sequences,
            vector_context,
        )

        if session.machine_factory is not None:
            raise ConfigurationError(
                "the vectorized backend lowers cells onto shared chip "
                "templates and cannot honour a custom machine_factory; use "
                "the serial or threads backend"
            )
        pending = _resolve_cache_hits(session, specs, finish, use_cache)
        if not pending:
            return
        plan = session.fault_plan

        def deliver(index: int, spec, key: str, result: Any) -> None:
            # fingerprint() per envelope, as session.run stamps it — the
            # nested meta dicts must never be shared across envelopes
            envelope = ResultEnvelope.create(
                spec,
                result,
                meta={"session": session.fingerprint(), "cache_key": key},
            )
            if use_cache:
                session.cache_store(key, envelope)
            finish(index, envelope)

        cell_entries: list[tuple[int, "ExperimentSpec", str]] = []
        lowered_cells: list[Any] = []
        sequence_entries: list[tuple[int, "ExperimentSpec", str]] = []
        lowered_sequences: list[Any] = []
        fallback: list[tuple[int, "ExperimentSpec", str, Any]] = []
        for index, spec, key in pending:
            workload = workloads.workload_for_spec(spec)
            try:
                # Lowering is this backend's per-cell execution point, so
                # cell-targeted faults (transient/crash/hang) fire here.
                if plan is not None:
                    plan.invoke("execute", spec.spec_hash(), attempt)
                lowered = None
                if workload.vectorized_body is not None:
                    context = vector_context(
                        spec.chip,
                        session.thermal_enabled,
                        session.numerics_for(spec),
                    )
                    lowered = workload.vectorized_body(context, spec)
            except Exception as exc:
                _report_cell_failure(fail, index, exc, spec)
                continue
            if lowered is None:
                # no vectorized body, or the body declined this cell
                # (full-numerics GEMM, off-policy protocols) — scalar fallback
                fallback.append((index, spec, key, workload))
            elif isinstance(lowered, LoweredSequence):
                sequence_entries.append((index, spec, key))
                lowered_sequences.append(lowered)
            else:
                cell_entries.append((index, spec, key))
                lowered_cells.append(lowered)

        def bulk(entries, lowered, evaluate):
            try:
                evaluated = evaluate(lowered, default_sigma=session.noise_sigma)
            except Exception as exc:
                # a bulk-evaluation failure takes its whole group down; with
                # a failure channel, report each member instead of aborting
                # the batch's other groups
                if fail is None:
                    raise
                for index, spec, key in entries:
                    fail(index, exc, spec)
                return
            for (index, spec, key), result in zip(entries, evaluated):
                deliver(index, spec, key, result)

        if lowered_cells:
            bulk(cell_entries, lowered_cells, evaluate_cells)
        if lowered_sequences:
            bulk(sequence_entries, lowered_sequences, evaluate_sequences)
        # Scalar-fallback cells run last, delivered one by one — they are
        # the slow ones (real kernels), so per-cell completion keeps
        # manifest checkpoints and progress reporting incremental.
        for index, spec, key, workload in fallback:
            try:
                result = workload.execute(session.machine_for(spec), spec)
            except Exception as exc:
                _report_cell_failure(fail, index, exc, spec)
                continue
            deliver(index, spec, key, result)


#: Worker-side cursor over the most recent sweep's lazy expansion.  The
#: parent ships contiguous grid slices and each worker sees its share in
#: increasing order, so resuming one iterator makes slice expansion cost
#: O(cells skipped or handled) per worker instead of re-expanding the grid
#: from cell zero for every shard.
_WORKER_SWEEP_CURSOR: dict[str, Any] = {"key": None, "iter": None, "pos": 0}


def _sweep_slice_specs(
    sweep_data: Mapping[str, Any], start: int, stop: int
) -> list:
    """Expand cells ``[start, stop)`` of a sweep grid, resuming the cursor.

    Slices past the end of the grid come back short or empty — that is how
    the parent learns the grid's length without ever expanding it.
    """
    from repro.experiments.specs import SweepSpec

    cursor = _WORKER_SWEEP_CURSOR
    # plain-data equality (C-level, even for six-figure size axes) — a
    # canonical-JSON key would cost milliseconds per shard on huge grids
    key = dict(sweep_data)
    if cursor["key"] != key or cursor["pos"] > start:
        cursor["key"] = key
        cursor["iter"] = SweepSpec.from_dict(sweep_data).expand_iter()
        cursor["pos"] = 0
    iterator = cursor["iter"]
    skip = start - cursor["pos"]
    if skip:
        # drain the gap cells other workers own (spec construction only)
        for _ in itertools.islice(iterator, skip):
            pass
    specs = list(itertools.islice(iterator, stop - start))
    cursor["pos"] = start + len(specs)
    return specs


def _shard_specs(shard: Mapping[str, Any]) -> list:
    """Materialize one shard's specs (worker-side, or in-parent on redo)."""
    from repro.experiments.specs import spec_from_dict

    if "specs" in shard:
        return [spec_from_dict(data) for data in shard["specs"]]
    return _sweep_slice_specs(shard["sweep"], shard["start"], shard["stop"])


def _execute_shard_payload(
    shard: Mapping[str, Any],
    session_config: Mapping[str, Any],
    attempt: int = 1,
) -> tuple[int, bytes]:
    """Worker-side entry point: one shard in, its envelope dicts out in order.

    ``shard`` is either ``{"specs": [...]}`` (plain-data cells, the caching
    path) or ``{"sweep": ..., "start": i, "stop": j}`` (a grid slice the
    worker expands itself, so the parent never builds the spec objects).
    The shard executes under the vectorized backend on a fresh session with
    the parent's configuration, which is what keeps the payloads
    byte-identical to every other backend.

    Returns ``(cell count, pickled payload list)``: one pre-pickled blob
    crosses the pool boundary as a cheap bytes copy, and the parent defers
    decoding it until an envelope field is actually read — the count alone
    drives delivery and end-of-grid detection.
    """
    from repro.experiments.session import Session

    specs = _shard_specs(shard)
    if not specs:
        return 0, _EMPTY_SHARD
    session = Session(**session_config)
    out: list[Any] = [None] * len(specs)

    def collect(index: int, envelope) -> None:
        out[index] = envelope.to_dict()

    VectorizedBackend().run(
        session, specs, collect, use_cache=False, attempt=attempt
    )
    return len(out), pickle.dumps(out, protocol=pickle.HIGHEST_PROTOCOL)


_EMPTY_SHARD = pickle.dumps([], protocol=pickle.HIGHEST_PROTOCOL)


class _ShardResults:
    """One shard's pickled envelope payloads, decoded on first touch.

    Every lazy envelope of a shard holds a loader into the same instance,
    so the unpickle cost is paid once per shard — and only if some envelope
    field is actually read.
    """

    __slots__ = ("_blob", "_items")

    def __init__(self, blob: bytes) -> None:
        self._blob = blob
        self._items = None

    def item(self, index: int) -> Mapping[str, Any]:
        items = self._items
        if items is None:
            items = self._items = pickle.loads(self._blob)
            self._blob = b""
        return items[index]


class _ListResults:
    """In-parent shard results (the degradation path): plain list, no pickle."""

    __slots__ = ("_items",)

    def __init__(self, items: list) -> None:
        self._items = items

    def item(self, index: int) -> Mapping[str, Any]:
        return self._items[index]


class ShardedBackend(ExecutionBackend):
    """Vectorized × processes: contiguous grid shards in worker processes.

    The batch is cut into shards of ``shard_size`` consecutive cells; each
    shard crosses to a worker as plain data, runs there under the
    vectorized backend, and streams its envelope dicts back.  The parent
    keeps a bounded number of shards in flight and delivers them strictly
    in submission order, wrapping payloads in lazy envelopes
    (:meth:`ResultEnvelope.from_payload`) — so a million-cell grid runs in
    constant parent memory and the parent's per-cell work is a dict handoff,
    not codec rehydration.

    Two dispatch modes, chosen per call:

    * **sweep slices** (:meth:`run_sweep` with caching off) — the parent
      ships ``(sweep, start, stop)`` descriptors and the workers expand
      their own slices; the parent never materializes a single spec.
      Submission is open-ended: the grid's end is detected when a shard
      comes back short.
    * **plain-data cells** (:meth:`run`, or :meth:`run_sweep` with caching
      on) — the parent streams the expansion shard-wise, resolves cache
      hits per shard, and ships only the misses.  Hits are held and merged
      back when their shard returns, keeping delivery in grid order.
    """

    name = "sharded"
    streaming = True

    #: Default cells per shard — large enough to amortize process dispatch
    #: and NumPy batch setup, small enough to keep ``max_workers`` busy on
    #: modest grids.
    DEFAULT_SHARD_SIZE = 4096

    def __init__(
        self, max_workers: int = 4, shard_size: int | None = None
    ) -> None:
        if max_workers < 1:
            raise ConfigurationError("max_workers must be >= 1")
        if shard_size is not None and shard_size < 1:
            raise ConfigurationError("shard_size must be >= 1")
        self.max_workers = int(max_workers)
        self.shard_size = int(shard_size or self.DEFAULT_SHARD_SIZE)

    def _check_session(self, session: "Session") -> None:
        if session.machine_factory is not None:
            raise ConfigurationError(
                "the sharded backend ships cells to worker processes and "
                "lowers them onto shared chip templates; a custom "
                "machine_factory supports neither — use the serial or "
                "threads backend"
            )

    def run(
        self,
        session,
        specs,
        finish,
        *,
        use_cache=True,
        fail=None,
        attempt=1,
        cell_timeout=None,
        health=None,
    ):
        """Execute a materialized spec sequence shard-wise."""
        self._check_session(session)
        self._run_chunked(
            session,
            iter(enumerate(specs)),
            finish,
            use_cache,
            fail=fail,
            attempt=attempt,
            cell_timeout=cell_timeout,
            health=health,
        )

    def run_sweep(
        self,
        session,
        sweep,
        finish,
        *,
        use_cache=True,
        fail=None,
        attempt=1,
        cell_timeout=None,
        health=None,
    ):
        """Execute a grid without materializing it in the parent.

        With caching on, the parent must see every spec to compute its
        cache key, so cells stream through the chunked plain-data path
        (still never holding more than the in-flight window).  With caching
        off, the workers expand their own contiguous slices and the parent
        touches nothing but envelope payloads.
        """
        self._check_session(session)
        if use_cache:
            self._run_chunked(
                session,
                iter(enumerate(sweep.expand_iter())),
                finish,
                use_cache,
                fail=fail,
                attempt=attempt,
                cell_timeout=cell_timeout,
                health=health,
            )
            return
        from repro.experiments.envelope import ResultEnvelope

        sweep_data = sweep.to_dict()
        size = self.shard_size

        def shards():
            for start in itertools.count(0, size):
                yield {
                    "sweep": sweep_data,
                    "start": start,
                    "stop": start + size,
                }

        def deliver(shard, count, results, failures):
            base = shard["start"]
            item = results.item
            from_deferred = ResultEnvelope.from_deferred
            record_miss = session.record_miss
            for offset in range(count):
                record_miss()
                if offset in failures:
                    exc, spec = failures[offset]
                    _report_cell_failure(fail, base + offset, exc, spec)
                    continue
                finish(base + offset, from_deferred(partial(item, offset)))

        self._pump(
            session,
            shards(),
            deliver,
            open_ended=True,
            fail=fail,
            attempt=attempt,
            cell_timeout=cell_timeout,
            health=health,
        )

    def _run_chunked(
        self,
        session,
        indexed_specs,
        finish,
        use_cache,
        *,
        fail=None,
        attempt=1,
        cell_timeout=None,
        health=None,
    ):
        """Stream ``(index, spec)`` pairs shard-wise through the pool.

        Cache hits are resolved per shard but *held* until the shard's
        misses return, so ``finish`` always runs in grid order; peak
        materialized state is the in-flight window's worth of specs.
        """
        import collections

        from repro.experiments.envelope import ResultEnvelope

        size = self.shard_size
        pending_entries: "collections.deque" = collections.deque()

        def shards():
            while True:
                chunk = list(itertools.islice(indexed_specs, size))
                if not chunk:
                    return
                entries = []
                payloads = []
                for index, spec in chunk:
                    key = session.cache_key(spec)
                    cached = session.cache_lookup(key) if use_cache else None
                    if cached is None:
                        if not use_cache:
                            session.record_miss()
                        payloads.append(spec.to_dict())
                    entries.append((index, spec, key, cached))
                pending_entries.append(entries)
                first = chunk[0][1]
                yield {
                    "specs": payloads,
                    "label": f"{first.kind} cells from {first.spec_hash()}",
                }

        def deliver(shard, count, results, failures):
            entries = pending_entries.popleft()
            position = 0
            for index, spec, key, cached in entries:
                envelope = cached
                if envelope is None:
                    if position in failures:
                        exc, _ = failures[position]
                        position += 1
                        _report_cell_failure(fail, index, exc, spec)
                        continue
                    envelope = ResultEnvelope.from_deferred(
                        partial(results.item, position)
                    )
                    position += 1
                    if use_cache:
                        session.cache_store(key, envelope)
                finish(index, envelope)

        self._pump(
            session,
            shards(),
            deliver,
            fail=fail,
            attempt=attempt,
            cell_timeout=cell_timeout,
            health=health,
        )

    @staticmethod
    def _redo_shard_in_parent(config, shard, attempt):
        """Re-execute a failed shard in this process — the degradation rung.

        Runs the worker's exact code path (a fresh session from the shipped
        config, vectorized execution, envelope dicts out), so recovered
        payloads are byte-identical to an undisturbed worker's.  Crash
        faults are worker-only no-ops here, which is what terminates the
        ladder for a persistently crashing shard.  Cells that *still* fail
        come back in the failures map instead of taking the shard down.
        """
        from repro.experiments.session import Session

        specs = _shard_specs(shard)
        worker = Session(**config)
        items: list[Any] = [None] * len(specs)
        failures: dict[int, tuple] = {}

        def collect(index, envelope):
            items[index] = envelope.to_dict()

        def collect_fail(index, exc, spec):
            failures[index] = (exc, spec)

        VectorizedBackend().run(
            worker,
            specs,
            collect,
            use_cache=False,
            fail=collect_fail,
            attempt=attempt,
        )
        return len(specs), items, failures

    def _pump(
        self,
        session,
        shards,
        deliver,
        *,
        open_ended=False,
        fail=None,
        attempt=1,
        cell_timeout=None,
        health=None,
    ):
        """Submit shards with a bounded in-flight window; deliver in order.

        ``open_ended`` shards describe grid slices of unknown total count:
        submission stops once a completed shard comes back short (the grid
        ended at or before its ``stop``); slices already in flight beyond
        the end return empty and deliver nothing.

        Failure handling is shard-grained: a shard whose worker raises,
        crashes, or hangs past its deadline (``cell_timeout`` × shard
        cells) is re-executed on the in-parent vectorized path at
        ``attempt + 1`` — and once the pool is broken or holds a hung
        worker, every remaining shard degrades the same way rather than
        trusting it.  With no failure channel and no health report the
        historical fail-fast ``SimulationError`` is preserved.
        """
        from concurrent.futures.process import BrokenProcessPool

        from repro.errors import SimulationError

        config = _session_payload(session)
        window = self.max_workers + 2
        recover = fail is not None or health is not None
        pool = concurrent.futures.ProcessPoolExecutor(
            max_workers=self.max_workers
        )
        pool_broken = False
        abandoned = False
        try:
            in_flight: dict[int, tuple] = {}
            next_submit = 0
            next_deliver = 0
            exhausted = False
            while True:
                while not exhausted and len(in_flight) < window:
                    shard = next(shards, None)
                    if shard is None:
                        exhausted = True
                        break
                    future = (
                        None
                        if pool_broken
                        else pool.submit(
                            _execute_shard_payload, shard, config, attempt
                        )
                    )
                    in_flight[next_submit] = (future, shard)
                    next_submit += 1
                if next_deliver not in in_flight:
                    break
                future, shard = in_flight.pop(next_deliver)
                shard_index = next_deliver
                next_deliver += 1
                if "start" in shard:
                    where = f"grid cells {shard['start']}..{shard['stop']}"
                    cells = shard["stop"] - shard["start"]
                else:
                    where = shard.get("label", "a shard")
                    cells = max(1, len(shard.get("specs", ())))
                cause = None
                count = None
                results = None
                if future is not None:
                    deadline = (
                        None if cell_timeout is None else cell_timeout * cells
                    )
                    try:
                        count, blob = future.result(timeout=deadline)
                        results = _ShardResults(blob)
                    except concurrent.futures.TimeoutError:
                        future.cancel()
                        # the hung worker holds a pool slot forever; stop
                        # trusting the pool and never join it
                        pool_broken = True
                        abandoned = True
                        cause = CellTimeoutError(
                            f"shard {shard_index} ({where}) exceeded its "
                            f"{deadline:g}s deadline (attempt {attempt})"
                        )
                    except concurrent.futures.CancelledError as exc:
                        cause = WorkerCrashError(
                            f"shard {shard_index} ({where}) was cancelled "
                            f"by a broken worker pool (attempt {attempt})"
                        )
                    except Exception as exc:
                        if isinstance(exc, BrokenProcessPool):
                            pool_broken = True
                            abandoned = True
                            cause = WorkerCrashError(
                                f"worker process died executing shard "
                                f"{shard_index} ({where}) "
                                f"(attempt {attempt}): {exc}"
                            )
                        else:
                            cause = exc
                if results is None:
                    # pool lost the shard (or was already written off)
                    if not recover:
                        for other, _ in in_flight.values():
                            if other is not None:
                                other.cancel()
                        raise SimulationError(
                            f"worker process failed on shard {shard_index} "
                            f"({where}): {cause}"
                        ) from cause
                    if health is not None:
                        health.fallbacks += 1
                        if cause is not None:
                            health.count(cause)
                    count, items, failures = self._redo_shard_in_parent(
                        config, shard, attempt + 1
                    )
                    results = _ListResults(items)
                else:
                    failures = {}
                if open_ended and count < (shard["stop"] - shard["start"]):
                    exhausted = True
                deliver(shard, count, results, failures)
        finally:
            pool.shutdown(wait=not abandoned, cancel_futures=True)


def resolve_backend(
    backend: "str | ExecutionBackend | None",
    max_workers: int,
    *,
    session: "Session | None" = None,
) -> ExecutionBackend:
    """The backend instance for one batch.

    ``backend`` may be an instance (used as-is), a name from
    :data:`BACKEND_NAMES`, or ``None`` — which consults ``REPRO_BACKEND``
    and finally falls back to the historical default (serial for one
    worker, threads otherwise).  The environment variable is a *soft*
    default: it never overrides an explicit argument, and it degrades for
    sessions whose custom ``machine_factory`` cannot cross a process
    boundary or be lowered onto shared chip templates — to threads, or to
    serial when the batch has one worker anyway (an explicit
    ``"processes"``, ``"vectorized"`` or ``"sharded"`` request still
    raises).
    """
    if isinstance(backend, ExecutionBackend):
        return backend
    name = backend
    from_env = False
    if name is None:
        name = os.environ.get(BACKEND_ENV_VAR) or None
        from_env = name is not None
    if name is None:
        return SerialBackend() if max_workers <= 1 else ThreadBackend(max_workers)
    if (
        from_env
        and name in ("processes", "vectorized", "sharded")
        and session is not None
        and session.machine_factory is not None
    ):
        # a single-worker degrade used to hand back a ThreadBackend whose
        # pool dispatch buys nothing over the serial reference loop
        return (
            SerialBackend() if max_workers <= 1 else ThreadBackend(max_workers)
        )
    if name == "serial":
        return SerialBackend()
    if name == "threads":
        return ThreadBackend(max_workers)
    if name == "processes":
        return ProcessBackend(max_workers)
    if name == "vectorized":
        return VectorizedBackend()
    if name == "sharded":
        return ShardedBackend(max_workers)
    origin = f" (from ${BACKEND_ENV_VAR})" if from_env else ""
    raise ConfigurationError(
        f"unknown execution backend {name!r}{origin}; "
        f"known: {', '.join(BACKEND_NAMES)}"
    )
