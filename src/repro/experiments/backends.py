"""Pluggable execution backends for batched spec execution.

A :class:`Session` decides *what* to run (cache lookups, machine
construction, envelope stamping); an :class:`ExecutionBackend` decides *how*
the cells of a batch execute:

* ``serial`` — an in-order loop in the calling thread (the reference
  semantics every other backend must reproduce bit-identically);
* ``threads`` — a :class:`~concurrent.futures.ThreadPoolExecutor`; cheap to
  spin up, but the real-NumPy numerics paths serialize on the GIL;
* ``processes`` — a :class:`~concurrent.futures.ProcessPoolExecutor`; each
  cell's spec crosses the boundary as plain data through the workload
  registry codecs (``spec.to_dict`` / ``spec_from_dict``) and comes back as
  an envelope dict, so worker dispatch needs nothing picklable beyond the
  session's numeric configuration;
* ``vectorized`` — the batch fast path: cells of workloads that declare a
  ``vectorized_body`` are lowered onto shared chip templates and evaluated
  in bulk NumPy array operations (:mod:`repro.sim.vectorized`) instead of
  per-operation Python loops, with automatic per-cell fallback to the
  scalar executor for workloads that do not.

Because every cell is a pure function of (spec, session fingerprint) — the
simulator's jitter is content-addressed, machines are fresh per cell — all
three backends produce byte-identical envelope JSON; the cross-backend
determinism suite (``tests/experiments/test_backends.py``) enforces that
invariant over every registered workload.

Backend selection: ``Session.run_batch(backend=...)`` accepts a name or an
instance; ``None`` defers to the ``REPRO_BACKEND`` environment variable
(the CI matrix hook) and finally to the historical default — serial for one
worker, threads otherwise.  Sessions with a custom ``machine_factory``
cannot ship cells to worker processes (arbitrary callables don't cross the
boundary) or onto the vectorized engine's shared chip templates; an
*explicit* ``processes`` or ``vectorized`` request on such a session raises,
while the environment-variable soft default quietly falls back to threads.
"""

from __future__ import annotations

import concurrent.futures
import os
from typing import TYPE_CHECKING, Any, Callable, Mapping, Sequence

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.experiments.envelope import ResultEnvelope
    from repro.experiments.session import Session
    from repro.experiments.specs import ExperimentSpec

__all__ = [
    "BACKEND_NAMES",
    "BACKEND_ENV_VAR",
    "ExecutionBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "VectorizedBackend",
    "resolve_backend",
]

#: The registered backend names, in documentation order.
BACKEND_NAMES: tuple[str, ...] = ("serial", "threads", "processes", "vectorized")

#: Environment variable consulted when no backend is named explicitly —
#: the CI matrix runs the whole fast tier under each value.
BACKEND_ENV_VAR = "REPRO_BACKEND"

#: ``finish(index, envelope)`` — the session's completion callback; must be
#: called exactly once per spec, in any order.
FinishCallback = Callable[[int, "ResultEnvelope"], None]


class ExecutionBackend:
    """How the cells of one batch execute.

    Subclasses implement :meth:`run`, calling ``finish(index, envelope)``
    exactly once per spec as cells complete — in any order, but always
    from the thread that called :meth:`run` (its consumers — batch
    bookkeeping, manifest checkpointing — are deliberately unsynchronized;
    the built-in pool backends satisfy this by finishing from the
    ``as_completed`` loop).  Backends must preserve the serial reference
    semantics bit-for-bit; they may differ only in wall-clock time.
    """

    #: Registry/CLI name of this backend.
    name = "base"

    def run(
        self,
        session: "Session",
        specs: Sequence["ExperimentSpec"],
        finish: FinishCallback,
        *,
        use_cache: bool = True,
    ) -> None:
        """Execute every spec, reporting completions through ``finish``."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}()"


class SerialBackend(ExecutionBackend):
    """In-order execution in the calling thread (the reference semantics)."""

    name = "serial"

    def run(self, session, specs, finish, *, use_cache=True):
        """Execute the specs one after another, in input order."""
        for index, spec in enumerate(specs):
            finish(index, session.run(spec, use_cache=use_cache))


class ThreadBackend(ExecutionBackend):
    """Thread-pool execution: concurrent cells sharing the interpreter."""

    name = "threads"

    def __init__(self, max_workers: int = 4) -> None:
        if max_workers < 1:
            raise ConfigurationError("max_workers must be >= 1")
        self.max_workers = int(max_workers)

    def run(self, session, specs, finish, *, use_cache=True):
        """Execute the specs on a shared-interpreter thread pool."""
        with concurrent.futures.ThreadPoolExecutor(
            max_workers=self.max_workers
        ) as pool:
            futures = {
                pool.submit(session.run, spec, use_cache=use_cache): index
                for index, spec in enumerate(specs)
            }
            for future in concurrent.futures.as_completed(futures):
                finish(futures[future], future.result())


def _resolve_cache_hits(
    session: "Session",
    specs: "Sequence[ExperimentSpec]",
    finish: FinishCallback,
    use_cache: bool,
) -> list[tuple[int, "ExperimentSpec", str]]:
    """Finish every cache hit now; return the (index, spec, key) misses.

    Shared by the backends that resolve caching *before* dispatch (processes,
    vectorized) so hit/miss counters and in-memory population stay identical
    to the in-process backends, whatever executes the misses.
    """
    pending: list[tuple[int, "ExperimentSpec", str]] = []
    for index, spec in enumerate(specs):
        key = session.cache_key(spec)
        cached = session.cache_lookup(key) if use_cache else None
        if cached is not None:
            finish(index, cached)
        else:
            if not use_cache:
                session.record_miss()  # cache_lookup counted it otherwise
            pending.append((index, spec, key))
    return pending


def _session_payload(session: "Session") -> dict[str, Any]:
    """The constructor kwargs a worker needs to rebuild an equivalent session.

    Only plain data and the frozen :class:`NumericsConfig` cross the
    boundary; the worker session carries no cache directory (the parent owns
    all persistence) and must fingerprint identically so envelope metadata —
    and therefore envelope JSON — is byte-identical to in-process execution.
    """
    return {
        "numerics": session.numerics,
        "seed": session.seed,
        "noise_sigma": session.noise_sigma,
        "thermal_enabled": session.thermal_enabled,
    }


def _execute_cell_payload(
    spec_data: Mapping[str, Any], session_config: Mapping[str, Any]
) -> dict[str, Any]:
    """Worker-side entry point: plain-data spec in, plain-data envelope out.

    Module-level so it is importable (picklable) by worker processes.  The
    spec is rebuilt through the workload registry codecs, executed on a
    fresh session with the parent's configuration, and the envelope returns
    as its ``to_dict`` form — the same codec path the on-disk store uses,
    which is what makes process execution provably byte-identical.
    """
    from repro.experiments.session import Session
    from repro.experiments.specs import spec_from_dict

    session = Session(**session_config)
    spec = spec_from_dict(spec_data)
    return session.run(spec, use_cache=False).to_dict()


class ProcessBackend(ExecutionBackend):
    """Process-pool execution: true parallelism for GIL-bound numerics.

    The parent session resolves cache hits before dispatch and stores
    worker results afterwards, so caching semantics (hit/miss counters,
    in-memory population, on-disk writes) match the in-process backends.
    """

    name = "processes"

    def __init__(self, max_workers: int = 4) -> None:
        if max_workers < 1:
            raise ConfigurationError("max_workers must be >= 1")
        self.max_workers = int(max_workers)

    def run(self, session, specs, finish, *, use_cache=True):
        """Dispatch cache misses to worker processes as plain-data specs."""
        from repro.experiments.envelope import ResultEnvelope

        if session.machine_factory is not None:
            raise ConfigurationError(
                "the processes backend cannot ship a custom machine_factory "
                "to worker processes; use the serial or threads backend"
            )
        pending = _resolve_cache_hits(session, specs, finish, use_cache)
        if not pending:
            return
        config = _session_payload(session)
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=min(self.max_workers, len(pending))
        ) as pool:
            futures = {
                pool.submit(
                    _execute_cell_payload, spec.to_dict(), config
                ): (index, key)
                for index, spec, key in pending
            }
            for future in concurrent.futures.as_completed(futures):
                index, key = futures[future]
                envelope = ResultEnvelope.from_dict(future.result())
                if use_cache:
                    session.cache_store(key, envelope)
                finish(index, envelope)


class VectorizedBackend(ExecutionBackend):
    """Bulk NumPy evaluation of the whole batch (the sweep fast path).

    Cache misses of workloads that declare a ``vectorized_body`` are lowered
    onto shared chip templates and evaluated together in a handful of array
    operations through :func:`repro.sim.vectorized.evaluate_cells`; cells of
    workloads without a vectorized body fall back to the scalar executor,
    per cell, inside the same batch.  Either way the arithmetic is the
    scalar engine's, operation for operation, so envelopes are byte-identical
    to the ``serial`` reference — the cross-backend determinism suite
    enforces this for every registered workload.
    """

    name = "vectorized"

    def run(self, session, specs, finish, *, use_cache=True):
        """Lower every cache miss, evaluate the grid in bulk, finish in order."""
        from repro import workloads
        from repro.experiments.envelope import ResultEnvelope
        from repro.sim.vectorized import evaluate_cells, vector_context

        if session.machine_factory is not None:
            raise ConfigurationError(
                "the vectorized backend lowers cells onto shared chip "
                "templates and cannot honour a custom machine_factory; use "
                "the serial or threads backend"
            )
        pending = _resolve_cache_hits(session, specs, finish, use_cache)
        if not pending:
            return

        def deliver(index: int, spec, key: str, result: Any) -> None:
            # fingerprint() per envelope, as session.run stamps it — the
            # nested meta dicts must never be shared across envelopes
            envelope = ResultEnvelope.create(
                spec,
                result,
                meta={"session": session.fingerprint(), "cache_key": key},
            )
            if use_cache:
                session.cache_store(key, envelope)
            finish(index, envelope)

        lowered_entries: list[tuple[int, "ExperimentSpec", str]] = []
        lowered_cells: list[Any] = []
        fallback: list[tuple[int, "ExperimentSpec", str, Any]] = []
        for index, spec, key in pending:
            workload = workloads.workload_for_spec(spec)
            if workload.vectorized_body is None:
                fallback.append((index, spec, key, workload))
            else:
                context = vector_context(
                    spec.chip,
                    session.thermal_enabled,
                    session.numerics_for(spec),
                )
                lowered_entries.append((index, spec, key))
                lowered_cells.append(workload.vectorized_body(context, spec))

        if lowered_cells:
            evaluated = evaluate_cells(
                lowered_cells, default_sigma=session.noise_sigma
            )
            for (index, spec, key), result in zip(lowered_entries, evaluated):
                deliver(index, spec, key, result)
        # Scalar-fallback cells run last, delivered one by one — they are
        # the slow ones (real kernels), so per-cell completion keeps
        # manifest checkpoints and progress reporting incremental.
        for index, spec, key, workload in fallback:
            deliver(
                index, spec, key, workload.execute(session.machine_for(spec), spec)
            )


def resolve_backend(
    backend: "str | ExecutionBackend | None",
    max_workers: int,
    *,
    session: "Session | None" = None,
) -> ExecutionBackend:
    """The backend instance for one batch.

    ``backend`` may be an instance (used as-is), a name from
    :data:`BACKEND_NAMES`, or ``None`` — which consults ``REPRO_BACKEND``
    and finally falls back to the historical default (serial for one
    worker, threads otherwise).  The environment variable is a *soft*
    default: it never overrides an explicit argument, and it degrades to
    threads for sessions whose custom ``machine_factory`` cannot cross a
    process boundary or be lowered onto shared chip templates (an explicit
    ``"processes"`` or ``"vectorized"`` request still raises).
    """
    if isinstance(backend, ExecutionBackend):
        return backend
    name = backend
    from_env = False
    if name is None:
        name = os.environ.get(BACKEND_ENV_VAR) or None
        from_env = name is not None
    if name is None:
        return SerialBackend() if max_workers <= 1 else ThreadBackend(max_workers)
    if (
        from_env
        and name in ("processes", "vectorized")
        and session is not None
        and session.machine_factory is not None
    ):
        return ThreadBackend(max_workers)
    if name == "serial":
        return SerialBackend()
    if name == "threads":
        return ThreadBackend(max_workers)
    if name == "processes":
        return ProcessBackend(max_workers)
    if name == "vectorized":
        return VectorizedBackend()
    origin = f" (from ${BACKEND_ENV_VAR})" if from_env else ""
    raise ConfigurationError(
        f"unknown execution backend {name!r}{origin}; "
        f"known: {', '.join(BACKEND_NAMES)}"
    )
