"""The serializable result envelope.

A :class:`ResultEnvelope` wraps one spec together with its result record and
provenance metadata in a uniform, JSON-round-trippable shell: ``repro run
--json --out results/`` persists envelopes, ``repro figure2 --from results/``
re-renders figures from them without recomputation.  Serialization covers the
*raw* fields only (repetitions, per-kernel bandwidths, measurement windows);
every derived statistic (``best_gflops``, ``max_gbs``,
``efficiency_gflops_per_w``) is recomputed from them, so a round trip
reproduces the statistics to full precision — JSON preserves finite doubles
exactly.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Mapping

from repro._version import __version__
from repro.errors import ConfigurationError
from repro.experiments.specs import ExperimentSpec, spec_from_dict

__all__ = [
    "ENVELOPE_SCHEMA_VERSION",
    "ResultEnvelope",
    "result_to_dict",
    "result_from_dict",
]

#: Bumped whenever the on-disk envelope layout changes shape.
ENVELOPE_SCHEMA_VERSION = 1


# ---------------------------------------------------------------------------
# Result record <-> plain data (workload-registry codecs)
# ---------------------------------------------------------------------------
def result_to_dict(result: Any) -> dict[str, Any]:
    """Serialize any registered result record to plain data, tagged ``type``.

    Codecs live with their workload plugins (:mod:`repro.workloads`); this
    is a thin facade over the registry's codec table.
    """
    from repro import workloads

    return workloads.serialize_result(result)


def result_from_dict(data: Mapping[str, Any]) -> Any:
    """Rebuild a result record from :func:`result_to_dict` output."""
    from repro import workloads

    return workloads.deserialize_result(data)


def _check_schema(data: Mapping[str, Any]) -> None:
    schema = data.get("schema", ENVELOPE_SCHEMA_VERSION)
    if schema != ENVELOPE_SCHEMA_VERSION:
        raise ConfigurationError(
            f"unsupported envelope schema {schema} "
            f"(this version reads {ENVELOPE_SCHEMA_VERSION})"
        )


# ---------------------------------------------------------------------------
# The envelope
# ---------------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class ResultEnvelope:
    """One spec, its result, and provenance — the unit of persistence.

    ``meta`` carries the spec hash, the library version and the session
    fingerprint under which the cell executed; figure assembly reads only
    ``spec``/``result``, so envelopes from different sessions can be mixed.
    """

    spec: ExperimentSpec
    result: Any
    meta: Mapping[str, Any] = dataclasses.field(default_factory=dict)

    @classmethod
    def create(
        cls,
        spec: ExperimentSpec,
        result: Any,
        *,
        meta: Mapping[str, Any] | None = None,
    ) -> "ResultEnvelope":
        """Wrap a result, stamping the standard provenance fields."""
        stamped = {
            "spec_hash": spec.spec_hash(),
            "repro_version": __version__,
        }
        if meta:
            stamped.update(meta)
        return cls(spec=spec, result=result, meta=stamped)

    @property
    def kind(self) -> str:
        """The spec's registered workload kind (``gemm``, ``stream``, ...)."""
        return self.spec.kind

    @property
    def spec_hash(self) -> str:
        """The spec's content hash (also stamped into ``meta``)."""
        return self.meta.get("spec_hash") or self.spec.spec_hash()

    def to_dict(self) -> dict[str, Any]:
        """Plain-data form: schema version, spec, result, meta."""
        return {
            "schema": ENVELOPE_SCHEMA_VERSION,
            "spec": self.spec.to_dict(),
            "result": result_to_dict(self.result),
            "meta": dict(self.meta),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ResultEnvelope":
        """Rebuild an envelope from :meth:`to_dict` output."""
        _check_schema(data)
        return cls(
            spec=spec_from_dict(data["spec"]),
            result=result_from_dict(data["result"]),
            meta=dict(data.get("meta", {})),
        )

    @classmethod
    def from_payload(cls, data: Mapping[str, Any]) -> "ResultEnvelope":
        """Wrap a :meth:`to_dict` payload without rehydrating it yet.

        The streaming counterpart of :meth:`from_dict`: the returned
        envelope holds the plain-data payload and defers the registry codec
        work (``spec_from_dict``/``result_from_dict``) until ``spec`` or
        ``result`` is first read.  ``to_dict``/``to_json``/``spec_hash``
        serve straight from the payload, so a sharded batch can persist a
        million envelopes without parsing fields nobody reads — at ~16 us
        per codec rehydration, eager parsing would otherwise dominate the
        parent process's share of a sharded run.
        """
        _check_schema(data)
        return _LazyEnvelope(data)

    @classmethod
    def from_deferred(cls, loader: "Any") -> "ResultEnvelope":
        """Wrap a payload that has not even been decoded yet.

        ``loader`` is a zero-argument callable returning a :meth:`to_dict`
        payload; it runs (once) on the first access to any envelope field.
        The sharded backend ships whole shards as single pickled blobs and
        hands each cell a loader into the shared decode — so a timing loop
        that only counts envelopes never deserializes them at all.  The
        schema check of :meth:`from_payload` runs when the loader fires.
        """
        return _LazyEnvelope(None, loader=loader)

    def to_json(self, *, indent: int | None = 2) -> str:
        """JSON text with deterministic key order."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def __eq__(self, other: Any) -> bool:
        # Field-value equality across eager and lazy envelopes — the
        # dataclass-generated comparison would reject the subclass.
        if isinstance(other, ResultEnvelope):
            return (
                self.spec == other.spec
                and self.result == other.result
                and dict(self.meta) == dict(other.meta)
            )
        return NotImplemented

    @classmethod
    def from_json(cls, text: str) -> "ResultEnvelope":
        """Rebuild an envelope from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))

    @classmethod
    def load(cls, path: "Any") -> "ResultEnvelope":
        """Read one envelope file, naming the path in every failure mode.

        Truncated or hand-edited files surface as a
        :class:`ConfigurationError` that points at the offending file
        instead of a bare ``JSONDecodeError`` halfway through a directory
        scan — the store and run manifests load through here.
        """
        import pathlib

        path = pathlib.Path(path)
        try:
            text = path.read_text()
        except OSError as exc:
            raise ConfigurationError(
                f"envelope file {path} cannot be read: {exc}"
            ) from exc
        try:
            return cls.from_json(text)
        except ConfigurationError as exc:
            raise ConfigurationError(f"envelope file {path}: {exc}") from exc
        except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"envelope file {path} is corrupt or not an envelope: {exc}"
            ) from exc


class _LazyEnvelope(ResultEnvelope):
    """An envelope backed by its plain-data payload, rehydrated on demand.

    Built only by :meth:`ResultEnvelope.from_payload` and
    :meth:`ResultEnvelope.from_deferred`.  ``spec`` and ``result`` are data
    descriptors that run the registry codecs on first read and memoize the
    hydrated objects; ``meta``, ``kind``, ``spec_hash`` and the serializers
    read the payload directly, so an envelope that is only persisted or
    keyed never pays for codec work at all.  A deferred envelope holds a
    loader instead of the payload and decodes (with the schema check) on
    the first touch of any field.
    """

    def __init__(
        self, payload: "Mapping[str, Any] | None", *, loader: Any = None
    ) -> None:
        object.__setattr__(self, "_payload_data", payload)
        object.__setattr__(self, "_loader", loader)

    @property
    def _payload(self) -> Mapping[str, Any]:
        data = self._payload_data
        if data is None:
            data = self._loader()
            _check_schema(data)
            object.__setattr__(self, "_payload_data", data)
            object.__setattr__(self, "_loader", None)
        return data

    @property
    def meta(self) -> Mapping[str, Any]:
        cached = self.__dict__.get("_meta_cache")
        if cached is None:
            cached = self._payload.get("meta", {})
            self.__dict__["_meta_cache"] = cached
        return cached

    @property
    def spec(self) -> ExperimentSpec:
        cached = self.__dict__.get("_spec_cache")
        if cached is None:
            cached = spec_from_dict(self._payload["spec"])
            object.__setattr__(self, "_spec_cache", cached)
        return cached

    @property
    def result(self) -> Any:
        cached = self.__dict__.get("_result_cache")
        if cached is None:
            cached = result_from_dict(self._payload["result"])
            object.__setattr__(self, "_result_cache", cached)
        return cached

    @property
    def kind(self) -> str:
        return self._payload["spec"]["kind"]

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": ENVELOPE_SCHEMA_VERSION,
            "spec": dict(self._payload["spec"]),
            "result": dict(self._payload["result"]),
            "meta": dict(self._payload.get("meta", {})),
        }
