"""The serializable result envelope.

A :class:`ResultEnvelope` wraps one spec together with its result record and
provenance metadata in a uniform, JSON-round-trippable shell: ``repro run
--json --out results/`` persists envelopes, ``repro figure2 --from results/``
re-renders figures from them without recomputation.  Serialization covers the
*raw* fields only (repetitions, per-kernel bandwidths, measurement windows);
every derived statistic (``best_gflops``, ``max_gbs``,
``efficiency_gflops_per_w``) is recomputed from them, so a round trip
reproduces the statistics to full precision — JSON preserves finite doubles
exactly.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Mapping

from repro._version import __version__
from repro.errors import ConfigurationError
from repro.experiments.specs import ExperimentSpec, spec_from_dict

__all__ = [
    "ENVELOPE_SCHEMA_VERSION",
    "ResultEnvelope",
    "result_to_dict",
    "result_from_dict",
]

#: Bumped whenever the on-disk envelope layout changes shape.
ENVELOPE_SCHEMA_VERSION = 1


# ---------------------------------------------------------------------------
# Result record <-> plain data (workload-registry codecs)
# ---------------------------------------------------------------------------
def result_to_dict(result: Any) -> dict[str, Any]:
    """Serialize any registered result record to plain data, tagged ``type``.

    Codecs live with their workload plugins (:mod:`repro.workloads`); this
    is a thin facade over the registry's codec table.
    """
    from repro import workloads

    return workloads.serialize_result(result)


def result_from_dict(data: Mapping[str, Any]) -> Any:
    """Rebuild a result record from :func:`result_to_dict` output."""
    from repro import workloads

    return workloads.deserialize_result(data)


# ---------------------------------------------------------------------------
# The envelope
# ---------------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class ResultEnvelope:
    """One spec, its result, and provenance — the unit of persistence.

    ``meta`` carries the spec hash, the library version and the session
    fingerprint under which the cell executed; figure assembly reads only
    ``spec``/``result``, so envelopes from different sessions can be mixed.
    """

    spec: ExperimentSpec
    result: Any
    meta: Mapping[str, Any] = dataclasses.field(default_factory=dict)

    @classmethod
    def create(
        cls,
        spec: ExperimentSpec,
        result: Any,
        *,
        meta: Mapping[str, Any] | None = None,
    ) -> "ResultEnvelope":
        """Wrap a result, stamping the standard provenance fields."""
        stamped = {
            "spec_hash": spec.spec_hash(),
            "repro_version": __version__,
        }
        if meta:
            stamped.update(meta)
        return cls(spec=spec, result=result, meta=stamped)

    @property
    def kind(self) -> str:
        """The spec's registered workload kind (``gemm``, ``stream``, ...)."""
        return self.spec.kind

    @property
    def spec_hash(self) -> str:
        """The spec's content hash (also stamped into ``meta``)."""
        return self.meta.get("spec_hash") or self.spec.spec_hash()

    def to_dict(self) -> dict[str, Any]:
        """Plain-data form: schema version, spec, result, meta."""
        return {
            "schema": ENVELOPE_SCHEMA_VERSION,
            "spec": self.spec.to_dict(),
            "result": result_to_dict(self.result),
            "meta": dict(self.meta),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ResultEnvelope":
        """Rebuild an envelope from :meth:`to_dict` output."""
        schema = data.get("schema", ENVELOPE_SCHEMA_VERSION)
        if schema != ENVELOPE_SCHEMA_VERSION:
            raise ConfigurationError(
                f"unsupported envelope schema {schema} "
                f"(this version reads {ENVELOPE_SCHEMA_VERSION})"
            )
        return cls(
            spec=spec_from_dict(data["spec"]),
            result=result_from_dict(data["result"]),
            meta=dict(data.get("meta", {})),
        )

    def to_json(self, *, indent: int | None = 2) -> str:
        """JSON text with deterministic key order."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ResultEnvelope":
        """Rebuild an envelope from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))

    @classmethod
    def load(cls, path: "Any") -> "ResultEnvelope":
        """Read one envelope file, naming the path in every failure mode.

        Truncated or hand-edited files surface as a
        :class:`ConfigurationError` that points at the offending file
        instead of a bare ``JSONDecodeError`` halfway through a directory
        scan — the store and run manifests load through here.
        """
        import pathlib

        path = pathlib.Path(path)
        try:
            text = path.read_text()
        except OSError as exc:
            raise ConfigurationError(
                f"envelope file {path} cannot be read: {exc}"
            ) from exc
        try:
            return cls.from_json(text)
        except ConfigurationError as exc:
            raise ConfigurationError(f"envelope file {path}: {exc}") from exc
        except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"envelope file {path} is corrupt or not an envelope: {exc}"
            ) from exc
