"""The serializable result envelope.

A :class:`ResultEnvelope` wraps one spec together with its result record and
provenance metadata in a uniform, JSON-round-trippable shell: ``repro run
--json --out results/`` persists envelopes, ``repro figure2 --from results/``
re-renders figures from them without recomputation.  Serialization covers the
*raw* fields only (repetitions, per-kernel bandwidths, measurement windows);
every derived statistic (``best_gflops``, ``max_gbs``,
``efficiency_gflops_per_w``) is recomputed from them, so a round trip
reproduces the statistics to full precision — JSON preserves finite doubles
exactly.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Mapping

from repro._version import __version__
from repro.core.results import (
    GemmRepetition,
    GemmResult,
    PoweredGemmResult,
    PowerMeasurement,
    StreamKernelResult,
    StreamResult,
)
from repro.errors import ConfigurationError
from repro.experiments.specs import ExperimentSpec, spec_from_dict

__all__ = [
    "ENVELOPE_SCHEMA_VERSION",
    "ResultEnvelope",
    "result_to_dict",
    "result_from_dict",
]

#: Bumped whenever the on-disk envelope layout changes shape.
ENVELOPE_SCHEMA_VERSION = 1


# ---------------------------------------------------------------------------
# Result record <-> plain data
# ---------------------------------------------------------------------------
def _gemm_to_dict(result: GemmResult) -> dict[str, Any]:
    return {
        "type": "gemm",
        "impl_key": result.impl_key,
        "chip_name": result.chip_name,
        "n": result.n,
        "flop_count": result.flop_count,
        "repetitions": [
            {"repetition": r.repetition, "elapsed_ns": r.elapsed_ns}
            for r in result.repetitions
        ],
        "verified": result.verified,
    }


def _gemm_from_dict(data: Mapping[str, Any]) -> GemmResult:
    return GemmResult(
        impl_key=data["impl_key"],
        chip_name=data["chip_name"],
        n=int(data["n"]),
        flop_count=int(data["flop_count"]),
        repetitions=tuple(
            GemmRepetition(
                repetition=int(r["repetition"]), elapsed_ns=int(r["elapsed_ns"])
            )
            for r in data["repetitions"]
        ),
        verified=data.get("verified"),
    )


def _stream_to_dict(result: StreamResult) -> dict[str, Any]:
    return {
        "type": "stream",
        "chip_name": result.chip_name,
        "target": result.target,
        "n_elements": result.n_elements,
        "element_bytes": result.element_bytes,
        "theoretical_gbs": result.theoretical_gbs,
        "kernels": {
            name: {
                "kernel": k.kernel,
                "bandwidths_gbs": list(k.bandwidths_gbs),
                "best_threads": k.best_threads,
            }
            for name, k in result.kernels.items()
        },
    }


def _stream_from_dict(data: Mapping[str, Any]) -> StreamResult:
    from repro.core.stream.kernels import KERNEL_ORDER

    # JSON serialization sorts mapping keys; restore the canonical kernel
    # order (copy, scale, add, triad) so re-rendered figures match live runs.
    raw = data["kernels"]
    names = [k for k in KERNEL_ORDER if k in raw]
    names += [k for k in raw if k not in names]
    return StreamResult(
        chip_name=data["chip_name"],
        target=data["target"],
        n_elements=int(data["n_elements"]),
        element_bytes=int(data["element_bytes"]),
        theoretical_gbs=float(data["theoretical_gbs"]),
        kernels={
            name: StreamKernelResult(
                kernel=raw[name]["kernel"],
                bandwidths_gbs=tuple(
                    float(b) for b in raw[name]["bandwidths_gbs"]
                ),
                best_threads=raw[name].get("best_threads"),
            )
            for name in names
        },
    )


def _power_to_dict(m: PowerMeasurement) -> dict[str, Any]:
    return {
        "type": "power",
        "cpu_mw": m.cpu_mw,
        "gpu_mw": m.gpu_mw,
        "elapsed_ms": m.elapsed_ms,
    }


def _power_from_dict(data: Mapping[str, Any]) -> PowerMeasurement:
    return PowerMeasurement(
        cpu_mw=float(data["cpu_mw"]),
        gpu_mw=float(data["gpu_mw"]),
        elapsed_ms=float(data["elapsed_ms"]),
    )


def _powered_to_dict(result: PoweredGemmResult) -> dict[str, Any]:
    return {
        "type": "powered-gemm",
        "gemm": _gemm_to_dict(result.gemm),
        "measurements": [_power_to_dict(m) for m in result.measurements],
    }


def _powered_from_dict(data: Mapping[str, Any]) -> PoweredGemmResult:
    return PoweredGemmResult(
        gemm=_gemm_from_dict(data["gemm"]),
        measurements=tuple(_power_from_dict(m) for m in data["measurements"]),
    )


_TO_DICT = {
    GemmResult: _gemm_to_dict,
    StreamResult: _stream_to_dict,
    PowerMeasurement: _power_to_dict,
    PoweredGemmResult: _powered_to_dict,
}

_FROM_DICT = {
    "gemm": _gemm_from_dict,
    "stream": _stream_from_dict,
    "power": _power_from_dict,
    "powered-gemm": _powered_from_dict,
}


def result_to_dict(result: Any) -> dict[str, Any]:
    """Serialize any result record to plain data, tagged with ``type``."""
    try:
        serialize = _TO_DICT[type(result)]
    except KeyError:
        raise ConfigurationError(
            f"cannot serialize result of type {type(result).__name__}"
        ) from None
    return serialize(result)


def result_from_dict(data: Mapping[str, Any]) -> Any:
    """Rebuild a result record from :func:`result_to_dict` output."""
    try:
        tag = data["type"]
    except KeyError:
        raise ConfigurationError("result dictionary lacks a 'type' tag") from None
    try:
        deserialize = _FROM_DICT[tag]
    except KeyError:
        raise ConfigurationError(
            f"unknown result type {tag!r}; known: {', '.join(_FROM_DICT)}"
        ) from None
    return deserialize(data)


# ---------------------------------------------------------------------------
# The envelope
# ---------------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class ResultEnvelope:
    """One spec, its result, and provenance — the unit of persistence.

    ``meta`` carries the spec hash, the library version and the session
    fingerprint under which the cell executed; figure assembly reads only
    ``spec``/``result``, so envelopes from different sessions can be mixed.
    """

    spec: ExperimentSpec
    result: Any
    meta: Mapping[str, Any] = dataclasses.field(default_factory=dict)

    @classmethod
    def create(
        cls,
        spec: ExperimentSpec,
        result: Any,
        *,
        meta: Mapping[str, Any] | None = None,
    ) -> "ResultEnvelope":
        """Wrap a result, stamping the standard provenance fields."""
        stamped = {
            "spec_hash": spec.spec_hash(),
            "repro_version": __version__,
        }
        if meta:
            stamped.update(meta)
        return cls(spec=spec, result=result, meta=stamped)

    @property
    def kind(self) -> str:
        """The spec kind (``gemm`` / ``powered-gemm`` / ``stream``)."""
        return self.spec.kind

    @property
    def spec_hash(self) -> str:
        """The spec's content hash (also stamped into ``meta``)."""
        return self.meta.get("spec_hash") or self.spec.spec_hash()

    def to_dict(self) -> dict[str, Any]:
        """Plain-data form: schema version, spec, result, meta."""
        return {
            "schema": ENVELOPE_SCHEMA_VERSION,
            "spec": self.spec.to_dict(),
            "result": result_to_dict(self.result),
            "meta": dict(self.meta),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ResultEnvelope":
        """Rebuild an envelope from :meth:`to_dict` output."""
        schema = data.get("schema", ENVELOPE_SCHEMA_VERSION)
        if schema != ENVELOPE_SCHEMA_VERSION:
            raise ConfigurationError(
                f"unsupported envelope schema {schema} "
                f"(this version reads {ENVELOPE_SCHEMA_VERSION})"
            )
        return cls(
            spec=spec_from_dict(data["spec"]),
            result=result_from_dict(data["result"]),
            meta=dict(data.get("meta", {})),
        )

    def to_json(self, *, indent: int | None = 2) -> str:
        """JSON text with deterministic key order."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ResultEnvelope":
        """Rebuild an envelope from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))
