"""Single-spec execution: one experiment cell on one machine.

This is the engine room shared by :class:`~repro.experiments.session.Session`
(which hands every spec a *fresh* machine, making execution a pure function
of the spec) and the legacy :class:`~repro.core.harness.ExperimentRunner`
facade (which keeps its historical shared-machine semantics).  The bodies
are the section-4 protocol: five chrono-timed repetitions per GEMM cell,
``n^2 (2n - 1)`` operation counting, the piggybacked powermetrics protocol
for the power study, and the STREAM thread sweep / 20-repetition GPU runs.
"""

from __future__ import annotations

from repro.calibration import paper
from repro.core.gemm.base import GemmImplementation, GemmProblem
from repro.core.gemm.registry import get_implementation
from repro.core.gemm.verify import verify_result
from repro.core.power.harness import measure_gemm_power
from repro.core.results import (
    GemmRepetition,
    GemmResult,
    PoweredGemmResult,
    StreamResult,
)
from repro.core.stream.runner import run_stream
from repro.core.timer import measure_ns
from repro.errors import UnsupportedProblemError
from repro.experiments.specs import (
    ExperimentSpec,
    GemmSpec,
    PoweredGemmSpec,
    StreamSpec,
)
from repro.sim.machine import Machine
from repro.sim.policy import NumericsPolicy

__all__ = [
    "execute_spec",
    "run_gemm_spec",
    "run_powered_gemm_spec",
    "run_stream_spec",
]


def _resolve(
    spec_key: str, implementation: GemmImplementation | None
) -> GemmImplementation:
    return implementation if implementation is not None else get_implementation(
        spec_key
    )


def run_gemm_spec(
    machine: Machine,
    spec: GemmSpec,
    *,
    implementation: GemmImplementation | None = None,
) -> GemmResult:
    """Execute one Figure-2 cell on ``machine``.

    ``implementation`` overrides the registry lookup of ``spec.impl_key`` —
    the compatibility path for pre-instantiated implementation objects
    (e.g. ``AccelerateGemm(variant="blas")``).
    """
    impl = _resolve(spec.impl_key, implementation)
    if not impl.supports(machine, spec.n):
        raise UnsupportedProblemError(
            f"{impl.key} does not execute n={spec.n} on {machine.chip.name}"
        )
    fill = machine.numerics.policy is not NumericsPolicy.MODEL_ONLY
    problem = GemmProblem.generate(spec.n, seed=spec.seed, fill_random=fill)
    context = impl.prepare(machine, problem)

    repetitions = []
    for rep in range(spec.repeats):
        elapsed = measure_ns(
            machine, lambda: impl.execute(machine, problem, context)
        )
        repetitions.append(GemmRepetition(repetition=rep, elapsed_ns=elapsed))

    verified: bool | None = None
    policy = machine.numerics.effective_policy(spec.n)
    want_verify = (
        spec.verify
        if spec.verify is not None
        else policy is not NumericsPolicy.MODEL_ONLY
    )
    if want_verify:
        verified = verify_result(
            machine,
            problem,
            reduced_precision=(impl.key == "ane-fp16"),
        )
    return GemmResult(
        impl_key=impl.key,
        chip_name=machine.chip.name,
        n=spec.n,
        flop_count=paper.gemm_flop_count(spec.n),
        repetitions=tuple(repetitions),
        verified=verified,
    )


def run_powered_gemm_spec(
    machine: Machine,
    spec: PoweredGemmSpec,
    *,
    implementation: GemmImplementation | None = None,
) -> PoweredGemmResult:
    """Execute one Figure-3/4 cell: timing with the power protocol piggybacked.

    "The power measurement occurs during the run in which CPU/GPU
    performance is measured ... it too sees five repetitions."
    """
    impl = _resolve(spec.impl_key, implementation)
    if not impl.supports(machine, spec.n):
        raise UnsupportedProblemError(
            f"{impl.key} does not execute n={spec.n} on {machine.chip.name}"
        )
    fill = machine.numerics.policy is not NumericsPolicy.MODEL_ONLY
    problem = GemmProblem.generate(spec.n, seed=spec.seed, fill_random=fill)
    context = impl.prepare(machine, problem)

    repetitions = []
    measurements = []
    for rep in range(spec.repeats):
        t0 = machine.now_ns()
        measurement = measure_gemm_power(machine, impl, problem, context)
        elapsed_protocol = machine.now_ns() - t0
        # The multiplication window is the measurement window itself.
        elapsed = int(measurement.elapsed_ms * 1e6)
        del elapsed_protocol  # warm-up excluded from the compute timing
        repetitions.append(
            GemmRepetition(repetition=rep, elapsed_ns=max(1, elapsed))
        )
        measurements.append(measurement)
    gemm = GemmResult(
        impl_key=impl.key,
        chip_name=machine.chip.name,
        n=spec.n,
        flop_count=paper.gemm_flop_count(spec.n),
        repetitions=tuple(repetitions),
    )
    return PoweredGemmResult(gemm=gemm, measurements=tuple(measurements))


def run_stream_spec(machine: Machine, spec: StreamSpec) -> StreamResult:
    """Execute one Figure-1 bar: the STREAM study on one target processor."""
    return run_stream(
        machine, spec.target, n_elements=spec.n_elements, repeats=spec.repeats
    )


def execute_spec(machine: Machine, spec: ExperimentSpec):
    """Dispatch a concrete spec to its registered workload's executor.

    The lookup goes through the workload registry (exact spec-class match),
    so any workload registered at runtime executes through the same
    session/batch machinery with no edits here — including the process
    backend's workers, which rebuild specs from their registry-codec dict
    form and land back in this dispatch.  Raises
    :class:`ConfigurationError` for spec types no workload registers.
    """
    from repro import workloads

    return workloads.workload_for_spec(spec).execute(machine, spec)
