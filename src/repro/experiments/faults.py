"""Deterministic fault injection for the chaos suite.

A :class:`FaultPlan` makes the execution stack misbehave *on purpose* — and
reproducibly — so the fault-tolerance layer can be tested against real
failure classes instead of mocks.  A plan is a seeded set of
:class:`FaultRule` records; each rule targets cells (by explicit spec hash,
or by a seeded fraction of the grid) and injects one fault class:

* ``transient`` — raise :class:`~repro.errors.TransientError` from the
  cell's execution path;
* ``crash`` — terminate the executing **worker process** via ``os._exit``
  (a no-op when the cell runs in the parent process: the plan simulates a
  dying worker, never a dying run);
* ``hang`` — sleep ``seconds`` inside the cell's execution path, past any
  configured deadline;
* ``torn-write`` — truncate the cell's envelope file immediately after the
  store writes it, simulating a torn write that an atomic rename cannot
  protect against (e.g. a disk dying mid-journal).

Every rule carries ``times``: the number of *attempts* it fires for
(attempt numbers are threaded through the retry layer and across process
boundaries), so ``times=1`` produces a fault that recovery must — and,
byte-identically, does — survive, while ``times=None`` produces a
persistent fault that must surface as a reported failure.

Activation: pass a plan to :class:`~repro.experiments.session.Session`
(``Session(fault_plan=...)``) or set the ``REPRO_FAULTS`` environment
variable to the plan's JSON (or ``@/path/to/plan.json``).  Plans are
**off by default** and add zero work when absent — every injection site is
a single ``is None`` check.  A plan never enters the session fingerprint:
injected faults may delay or fail cells, but a recovered run is
indistinguishable from an undisturbed one.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pathlib
import time
from typing import Any, Iterable, Mapping, Sequence

from repro.errors import ConfigurationError, TransientError

__all__ = [
    "FAULTS_ENV_VAR",
    "FAULT_KINDS",
    "FaultRule",
    "FaultPlan",
    "resolve_fault_plan",
]

#: Environment variable activating a fault plan process-wide: JSON text, or
#: ``@<path>`` naming a JSON file.  The chaos CI job sets it per leg.
FAULTS_ENV_VAR = "REPRO_FAULTS"

#: Every injectable fault class, in documentation order.
FAULT_KINDS = ("transient", "crash", "hang", "torn-write")

#: Injection sites a rule can fire at: ``execute`` (inside the cell's
#: execution path — transient/crash/hang) and ``write`` (immediately after
#: an envelope file lands — torn-write).
_SITE_FOR_FAULT = {
    "transient": "execute",
    "crash": "execute",
    "hang": "execute",
    "torn-write": "write",
}


def _reject_rule(rule: Any) -> "FaultRule":
    raise ConfigurationError(
        f"each fault rule must be a JSON object, got {type(rule).__name__}"
    )


def _in_worker_process() -> bool:
    """Whether this process is a pool worker (has a multiprocessing parent)."""
    import multiprocessing

    return multiprocessing.parent_process() is not None


@dataclasses.dataclass(frozen=True)
class FaultRule:
    """One injected fault: which cells, which fault class, how often.

    ``cells`` names spec hashes explicitly; an empty tuple selects by
    ``fraction`` instead — a seeded, content-addressed draw per spec hash,
    so the *same* cells fault on every run of the same plan.  ``times``
    bounds the fault to the first N attempts of each cell (``None`` =
    every attempt, a persistent fault).
    """

    fault: str
    cells: tuple[str, ...] = ()
    fraction: float = 0.0
    times: int | None = 1
    seconds: float = 1.0
    exit_code: int = 13

    def __post_init__(self) -> None:
        if self.fault not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.fault!r}; known: "
                f"{', '.join(FAULT_KINDS)}"
            )
        if not self.cells and not (0.0 < self.fraction <= 1.0):
            raise ConfigurationError(
                "a fault rule needs explicit cells=(spec_hash, ...) or a "
                "fraction in (0, 1]"
            )
        object.__setattr__(self, "cells", tuple(self.cells))

    @property
    def site(self) -> str:
        """The injection site this rule fires at."""
        return _SITE_FOR_FAULT[self.fault]

    def matches(self, spec_hash: str, attempt: int, seed: int) -> bool:
        """Whether this rule fires for ``spec_hash`` on ``attempt``."""
        if self.times is not None and attempt > self.times:
            return False
        if self.cells:
            return spec_hash in self.cells
        digest = hashlib.sha256(
            f"{seed}:{self.fault}:{spec_hash}".encode()
        ).digest()
        draw = int.from_bytes(digest[:8], "big") / 2**64
        return draw < self.fraction

    def to_dict(self) -> dict[str, Any]:
        """Plain-data form (JSON-ready)."""
        return {
            "fault": self.fault,
            "cells": list(self.cells),
            "fraction": self.fraction,
            "times": self.times,
            "seconds": self.seconds,
            "exit_code": self.exit_code,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultRule":
        """Rebuild a rule from :meth:`to_dict` output."""
        if "fault" not in data:
            raise ConfigurationError(
                "a fault rule needs a 'fault' key naming the fault kind "
                f"({', '.join(FAULT_KINDS)}); got keys: "
                f"{', '.join(sorted(map(str, data))) or '(none)'}"
            )
        try:
            return cls(
                fault=data["fault"],
                cells=tuple(data.get("cells") or ()),
                fraction=float(data.get("fraction", 0.0)),
                times=data.get("times", 1),
                seconds=float(data.get("seconds", 1.0)),
                exit_code=int(data.get("exit_code", 13)),
            )
        except (TypeError, ValueError) as exc:
            raise ConfigurationError(f"malformed fault rule: {exc}") from exc


@dataclasses.dataclass(frozen=True)
class FaultPlan:
    """A seeded, deterministic set of fault rules.

    Frozen and plain-data round-trippable so it crosses process boundaries
    with the session payload: a crash or hang rule fires inside the worker
    that executes the targeted cell, wherever that is.
    """

    rules: tuple[FaultRule, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "rules",
            tuple(
                rule if isinstance(rule, FaultRule) else FaultRule.from_dict(rule)
                for rule in self.rules
            ),
        )

    # ------------------------------------------------------------------
    # Injection sites
    # ------------------------------------------------------------------
    def invoke(self, site: str, spec_hash: str, attempt: int = 1) -> None:
        """Fire every matching rule at an execution site.

        Called from the cell execution paths (``Session.run``, the
        vectorized lowering loop) with the current attempt number; hangs
        sleep, crashes ``os._exit`` the surrounding *worker* process (a
        deliberate no-op in the parent), transients raise
        :class:`TransientError`.
        """
        for rule in self.rules:
            if rule.site != site or not rule.matches(spec_hash, attempt, self.seed):
                continue
            if rule.fault == "hang":
                time.sleep(rule.seconds)
            elif rule.fault == "crash":
                if _in_worker_process():  # never crash the caller's process
                    os._exit(rule.exit_code)
            elif rule.fault == "transient":
                raise TransientError(
                    f"injected transient fault on cell {spec_hash} "
                    f"(attempt {attempt})"
                )

    def tear(
        self, spec_hash: str, path: "pathlib.Path", attempt: int = 1
    ) -> bool:
        """Tear the envelope file just written for ``spec_hash``, if a
        ``torn-write`` rule matches — truncating it mid-JSON the way a
        crash between write and sync would.  Returns whether it tore."""
        for rule in self.rules:
            if rule.fault != "torn-write" or not rule.matches(
                spec_hash, attempt, self.seed
            ):
                continue
            path = pathlib.Path(path)
            data = path.read_text()
            path.write_text(data[: max(1, len(data) // 2)])
            return True
        return False

    # ------------------------------------------------------------------
    # Codecs
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Plain-data form (JSON-ready; crosses the worker boundary)."""
        return {
            "seed": self.seed,
            "rules": [rule.to_dict() for rule in self.rules],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_dict` output."""
        rules = data.get("rules", ())
        if not isinstance(rules, Sequence) or isinstance(rules, (str, bytes)):
            raise ConfigurationError("fault plan 'rules' must be a list")
        try:
            seed = int(data.get("seed", 0))
        except (TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"fault plan 'seed' must be an integer: {exc}"
            ) from exc
        return cls(
            rules=tuple(
                FaultRule.from_dict(rule)
                if isinstance(rule, Mapping)
                else _reject_rule(rule)
                for rule in rules
            ),
            seed=seed,
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Rebuild a plan from its JSON form (the ``REPRO_FAULTS`` shape)."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"fault plan is not valid JSON: {exc}"
            ) from exc
        if not isinstance(data, Mapping):
            raise ConfigurationError("fault plan JSON must be an object")
        return cls.from_dict(data)

    @classmethod
    def single(
        cls, fault: str, cells: Iterable[str], **kwargs: Any
    ) -> "FaultPlan":
        """A one-rule plan — the common chaos-test construction."""
        return cls(rules=(FaultRule(fault=fault, cells=tuple(cells), **kwargs),))


def resolve_fault_plan(
    plan: "FaultPlan | Mapping[str, Any] | None",
) -> FaultPlan | None:
    """The active fault plan: an explicit one, or the ``REPRO_FAULTS`` env.

    ``None`` with no environment variable set — the production case — costs
    one dict lookup and keeps every injection site disabled.
    """
    if plan is not None:
        if isinstance(plan, FaultPlan):
            return plan
        return FaultPlan.from_dict(plan)
    text = os.environ.get(FAULTS_ENV_VAR)
    if not text:
        return None
    if text.startswith("@"):
        path = pathlib.Path(text[1:])
        try:
            text = path.read_text()
        except OSError as exc:
            raise ConfigurationError(
                f"${FAULTS_ENV_VAR} names an unreadable fault plan file "
                f"{path}: {exc}"
            ) from exc
    return FaultPlan.from_json(text)
