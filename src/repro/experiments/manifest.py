"""Run manifests: the JSON index that makes experiment campaigns resumable.

A campaign grid (``repro run --out DIR``) multiplies into thousands of
cells; interrupting it used to throw the half-finished work away because
the store was just a directory of files with no record of what the run
*intended*.  A :class:`RunManifest` fixes that: it lives as
``manifest.json`` alongside the envelopes and records, for every cell of
the run, its workload kind, spec hash, serialized spec and completion
status — plus the session fingerprint (and, when reconstructible, the
session configuration) the cells execute under.

:func:`run_with_manifest` is the write path: it persists each envelope to
the sharded store layout and checkpoints completion *as cells complete*, so
an interrupt loses at most the in-flight cells.  Per-cell checkpoints go to
an append-only journal (``manifest.journal``, one JSON line per completed
cell) rather than rewriting the whole manifest — O(1) per cell instead of
O(grid) — and the journal is folded back into ``manifest.json`` whenever a
manifest is loaded or a run completes.  Running it again over the
same directory — or ``repro run --resume DIR``, which rebuilds the session
and specs from the manifest alone — skips every cell already marked done
by manifest lookup instead of re-executing it, and the completed store
renders byte-identically to an uninterrupted run.

Because every cell is a pure function of (spec, session fingerprint), a
resumed run is indistinguishable from an uninterrupted one; the manifest
refuses to resume under a session whose fingerprint differs from the
recorded one, naming the mismatched fields.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pathlib
from typing import TYPE_CHECKING, Any, Iterable, Mapping, Sequence

from repro.errors import ConfigurationError
from repro.experiments.envelope import ResultEnvelope
from repro.experiments.specs import ExperimentSpec, SweepSpec, spec_from_dict
from repro.experiments.store import (
    MANIFEST_FILENAME,
    atomic_write_text,
    envelope_path,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.experiments.backends import ExecutionBackend
    from repro.experiments.session import Session

__all__ = [
    "MANIFEST_SCHEMA_VERSION",
    "JOURNAL_FILENAME",
    "STATUS_PENDING",
    "STATUS_DONE",
    "STATUS_FAILED",
    "CellRecord",
    "RunManifest",
    "run_with_manifest",
]

#: Bumped whenever the on-disk manifest layout changes shape.
MANIFEST_SCHEMA_VERSION = 1

#: Per-cell completion checkpoints between full manifest saves: one JSON
#: line per completed cell, appended as it finishes.
JOURNAL_FILENAME = "manifest.journal"

STATUS_PENDING = "pending"
STATUS_DONE = "done"
STATUS_FAILED = "failed"


@dataclasses.dataclass
class CellRecord:
    """One cell of a manifested run: identity, serialized spec, status.

    A failed cell carries the structured error payload
    (:meth:`CellFailure.to_dict <repro.experiments.resilience.CellFailure>`)
    in ``error`` — the failure is *recorded*, never silently dropped, and a
    resume re-executes the cell (``failed`` is not ``done``).
    """

    kind: str
    spec_hash: str
    spec: dict[str, Any]
    status: str = STATUS_PENDING
    path: str | None = None
    error: dict[str, Any] | None = None

    def to_dict(self) -> dict[str, Any]:
        """Plain-data form (JSON-ready)."""
        data = {
            "kind": self.kind,
            "spec_hash": self.spec_hash,
            "spec": self.spec,
            "status": self.status,
            "path": self.path,
        }
        if self.error is not None:
            data["error"] = self.error
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CellRecord":
        """Rebuild a record from :meth:`to_dict` output."""
        return cls(
            kind=data["kind"],
            spec_hash=data["spec_hash"],
            spec=dict(data["spec"]),
            status=data.get("status", STATUS_PENDING),
            path=data.get("path"),
            error=data.get("error"),
        )


def _session_config(session: "Session") -> dict[str, Any] | None:
    """JSON-able constructor payload for :meth:`RunManifest.make_session`.

    ``None`` when the session is not reconstructible from plain data (a
    custom ``machine_factory`` is an arbitrary callable) — such runs still
    manifest and resume in-process, but not via ``repro run --resume``.
    """
    from repro.experiments.session import _config_fingerprint

    if session.machine_factory is not None:
        return None
    return {
        # same shape the session fingerprint uses, so the two stay in sync
        "numerics": _config_fingerprint(session.numerics),
        "seed": session.seed,
        "noise_sigma": session.noise_sigma,
        "thermal_enabled": session.thermal_enabled,
    }


class RunManifest:
    """The JSON index of one (possibly interrupted) experiment run."""

    def __init__(
        self,
        directory: str | pathlib.Path,
        *,
        fingerprint: Mapping[str, Any],
        session_config: Mapping[str, Any] | None,
        cells: "dict[str, CellRecord] | None" = None,
    ) -> None:
        self.directory = pathlib.Path(directory)
        self.fingerprint = dict(fingerprint)
        self.session_config = (
            dict(session_config) if session_config is not None else None
        )
        #: Insertion-ordered ``spec_hash -> CellRecord`` (run order).
        self.cells: dict[str, CellRecord] = cells if cells is not None else {}

    # ------------------------------------------------------------------
    # Construction / persistence
    # ------------------------------------------------------------------
    @property
    def path(self) -> pathlib.Path:
        """Where this manifest lives (``<directory>/manifest.json``)."""
        return self.directory / MANIFEST_FILENAME

    @property
    def journal_path(self) -> pathlib.Path:
        """The append-only per-cell checkpoint file next to the manifest."""
        return self.directory / JOURNAL_FILENAME

    @classmethod
    def create(
        cls,
        directory: str | pathlib.Path,
        session: "Session",
        specs: Iterable[ExperimentSpec],
    ) -> "RunManifest":
        """A fresh manifest: every spec recorded as a pending cell."""
        manifest = cls(
            directory,
            fingerprint=session.fingerprint(),
            session_config=_session_config(session),
        )
        manifest.merge_specs(specs)
        return manifest

    @classmethod
    def load(cls, directory: str | pathlib.Path) -> "RunManifest":
        """Read ``manifest.json`` from ``directory``.

        Raises :class:`ConfigurationError` — naming the path — when the
        manifest is missing, truncated or structurally invalid.
        """
        path = pathlib.Path(directory) / MANIFEST_FILENAME
        if not path.is_file():
            raise ConfigurationError(f"no run manifest at {path}")
        try:
            data = json.loads(path.read_text())
            schema = data.get("schema")
            if schema != MANIFEST_SCHEMA_VERSION:
                raise ConfigurationError(
                    f"unsupported manifest schema {schema} "
                    f"(this version reads {MANIFEST_SCHEMA_VERSION})"
                )
            cells = {}
            for cell_data in data["cells"]:
                record = CellRecord.from_dict(cell_data)
                cells[record.spec_hash] = record
            manifest = cls(
                path.parent,
                fingerprint=data["session"],
                session_config=data.get("session_config"),
                cells=cells,
            )
            manifest._apply_journal()
            return manifest
        except ConfigurationError:
            raise
        except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"run manifest {path} is corrupt: {exc}"
            ) from exc

    def to_dict(self) -> dict[str, Any]:
        """Plain-data form (JSON-ready)."""
        return {
            "schema": MANIFEST_SCHEMA_VERSION,
            "session": self.fingerprint,
            "session_config": self.session_config,
            "cells": [record.to_dict() for record in self.cells.values()],
        }

    def save(self) -> pathlib.Path:
        """Atomically write the manifest (temp file + rename).

        The full manifest now reflects everything the journal recorded, so
        the journal — if any — is retired afterwards.
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        text = json.dumps(self.to_dict(), indent=2, sort_keys=True)
        tmp = self.path.with_suffix(".json.tmp")
        tmp.write_text(text + "\n")
        os.replace(tmp, self.path)
        self.journal_path.unlink(missing_ok=True)
        return self.path

    def checkpoint(self, envelope: ResultEnvelope, path: pathlib.Path) -> None:
        """Record one completed cell durably, in O(1).

        Marks the cell done in memory and appends a single JSON line —
        spec hash and store path only, never the spec itself — to the
        journal instead of rewriting the whole manifest: a
        thousands-of-cell campaign would otherwise spend O(grid)
        serialization per cell.  For on-grid cells (the overwhelmingly
        common case) the append touches no spec codec at all; a cell
        executed outside the recorded grid is indexed first, reusing the
        spec's memoized serialized form.  :meth:`load` folds the journal
        back in, so an interrupt loses at most the in-flight cells.
        """
        self.mark_done(envelope, path)
        record = self.cells[envelope.spec_hash]
        line = json.dumps(
            {"spec_hash": record.spec_hash, "path": record.path},
            sort_keys=True,
        )
        with open(self.journal_path, "a") as journal:
            journal.write(line + "\n")
            journal.flush()

    def checkpoint_failed(
        self, spec: ExperimentSpec, error: Mapping[str, Any]
    ) -> None:
        """Record one *failed* cell durably, in O(1).

        Mirrors :meth:`checkpoint` for cells that exhausted the retry
        ladder: the cell is marked ``failed`` with its structured error
        payload in memory and in the journal, so an interrupt cannot turn
        a reported failure back into a silent pending cell.  A later
        resume re-executes it (and :meth:`mark_done` clears the error).
        """
        self.mark_failed(spec, error)
        line = json.dumps(
            {
                "spec_hash": spec.spec_hash(),
                "status": STATUS_FAILED,
                "error": dict(error),
            },
            sort_keys=True,
        )
        with open(self.journal_path, "a") as journal:
            journal.write(line + "\n")
            journal.flush()

    def _apply_journal(self) -> None:
        """Fold journal checkpoints into the cell table (tolerating a torn
        final line from an interrupt mid-append)."""
        if not self.journal_path.is_file():
            return
        for line in self.journal_path.read_text().splitlines():
            try:
                entry = json.loads(line)
                record = self.cells.get(entry["spec_hash"])
                status = entry.get("status", STATUS_DONE)
                journal_file_path = (
                    entry["path"] if status == STATUS_DONE else None
                )
            except (json.JSONDecodeError, KeyError, TypeError):
                break  # torn tail — everything after it never completed
            if record is None:
                continue
            record.status = status
            record.path = journal_file_path
            record.error = (
                entry.get("error") if status == STATUS_FAILED else None
            )

    # ------------------------------------------------------------------
    # Cell bookkeeping
    # ------------------------------------------------------------------
    def merge_specs(self, specs: Iterable[ExperimentSpec]) -> None:
        """Record any not-yet-known specs as pending cells (in order)."""
        for spec in specs:
            spec_hash = spec.spec_hash()
            if spec_hash not in self.cells:
                self.cells[spec_hash] = CellRecord(
                    kind=spec.kind, spec_hash=spec_hash, spec=spec.to_dict()
                )

    def specs(self) -> tuple[ExperimentSpec, ...]:
        """Every cell's spec, rebuilt through the registry, in run order."""
        return tuple(
            spec_from_dict(record.spec) for record in self.cells.values()
        )

    def is_done(self, spec: ExperimentSpec) -> bool:
        """Whether ``spec``'s cell is already marked complete."""
        record = self.cells.get(spec.spec_hash())
        return record is not None and record.status == STATUS_DONE

    def mark_done(self, envelope: ResultEnvelope, path: pathlib.Path) -> None:
        """Record one completed cell and its store-relative envelope path."""
        record = self.cells.get(envelope.spec_hash)
        if record is None:  # a cell executed outside the recorded grid
            record = CellRecord(
                kind=envelope.kind,
                spec_hash=envelope.spec_hash,
                spec=envelope.spec.to_dict(),
            )
            self.cells[envelope.spec_hash] = record
        record.status = STATUS_DONE
        record.path = pathlib.Path(path).as_posix()
        record.error = None  # a re-executed failure is a failure no more

    def mark_failed(
        self, spec: ExperimentSpec, error: Mapping[str, Any]
    ) -> None:
        """Record one failed cell and its structured error payload."""
        spec_hash = spec.spec_hash()
        record = self.cells.get(spec_hash)
        if record is None:  # a cell executed outside the recorded grid
            record = CellRecord(
                kind=spec.kind, spec_hash=spec_hash, spec=spec.to_dict()
            )
            self.cells[spec_hash] = record
        record.status = STATUS_FAILED
        record.path = None
        record.error = dict(error)

    def failed_cells(self) -> tuple[CellRecord, ...]:
        """Every cell currently marked failed, in run order."""
        return tuple(
            record
            for record in self.cells.values()
            if record.status == STATUS_FAILED
        )

    def status_counts(self) -> dict[str, int]:
        """``{status: cell count}`` — the resume progress summary."""
        counts: dict[str, int] = {}
        for record in self.cells.values():
            counts[record.status] = counts.get(record.status, 0) + 1
        return counts

    # ------------------------------------------------------------------
    # Session compatibility
    # ------------------------------------------------------------------
    def check_session(self, session: "Session") -> None:
        """Refuse to mix sessions: results are pure only per fingerprint."""
        theirs = session.fingerprint()
        if theirs == self.fingerprint:
            return
        differing = sorted(
            key
            for key in set(theirs) | set(self.fingerprint)
            if theirs.get(key) != self.fingerprint.get(key)
        )
        raise ConfigurationError(
            f"session fingerprint does not match the run manifest at "
            f"{self.path} (differs in: {', '.join(differing)}); resuming "
            f"under a different configuration would mix incompatible results"
        )

    def make_session(self, **overrides: Any) -> "Session":
        """Rebuild the recorded session (the ``--resume`` entry point)."""
        from repro.experiments.session import Session
        from repro.sim.policy import NumericsConfig, NumericsPolicy

        if self.session_config is None:
            raise ConfigurationError(
                f"the run manifest at {self.path} was written by a session "
                f"with a custom machine_factory; rebuild that session and "
                f"resume with run_with_manifest() instead of --resume"
            )
        config = dict(self.session_config)
        numerics = config.pop("numerics")
        session = Session(
            numerics=NumericsConfig(
                policy=NumericsPolicy(numerics["policy"]),
                full_threshold=int(numerics["full_threshold"]),
                sample_rows=int(numerics["sample_rows"]),
            ),
            **config,
            **overrides,
        )
        self.check_session(session)
        return session

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        counts = self.status_counts()
        return f"RunManifest({self.path}, {counts})"


def run_with_manifest(
    session: "Session",
    specs: "Iterable[ExperimentSpec] | SweepSpec",
    directory: str | pathlib.Path,
    *,
    backend: "str | ExecutionBackend | None" = None,
    max_workers: int | None = None,
    progress=None,
    use_cache: bool = True,
    manifest: "RunManifest | None" = None,
    on_mismatch: str = "replace",
    load_done: bool = True,
    on_error: str = "raise",
    retry=None,
    health=None,
) -> tuple[list[ResultEnvelope], RunManifest]:
    """Execute ``specs`` into a manifest-indexed, resumable store.

    Creates (or loads and extends) the manifest under ``directory``, skips
    every cell it already marks done — loading those envelopes from disk —
    and executes only the rest, persisting each envelope (sharded layout)
    and checkpointing the manifest as cells complete.  ``progress`` counts
    over the *whole* grid, so a resumed run reports ``[already-done +
    k / total]``.  Returns the envelopes in input order plus the manifest.

    A caller that already loaded the directory's manifest (the CLI resume
    path) passes it via ``manifest`` to skip a redundant reload, and one
    that only needs this run's new results passes ``load_done=False`` to
    skip re-reading already-done envelopes from disk (the returned list
    then holds only the executed cells, still in input order — resuming a
    near-complete thousand-cell campaign shouldn't start by parsing a
    thousand JSON files).  When an
    existing manifest carries a *different* session fingerprint,
    ``on_mismatch`` decides: ``"replace"`` (default) starts a fresh
    manifest for this run — done cells of the old run are not skipped, but
    their envelope files stay in the store, preserving the mixed-session
    store contract — while ``"error"`` refuses, naming the mismatch.

    Failure semantics (``on_error``, ``retry``, ``health`` — see
    :meth:`Session.run_batch`): every cell that exhausts the retry ladder
    is checkpointed into the manifest as ``status=failed`` with its
    structured error payload, durably, before ``on_error`` decides whether
    the call raises.  Failed cells — like pending ones — re-execute on the
    next run over the same directory.  Cells whose manifest says done but
    whose envelope file is corrupt (a torn write) are quarantined and
    demoted to pending, so a resume heals the store to byte-identical.
    """
    if on_mismatch not in ("replace", "error"):
        raise ConfigurationError(
            f"on_mismatch must be 'replace' or 'error', got {on_mismatch!r}"
        )
    root = pathlib.Path(directory)
    # single-pass expansion through the lazy iterator: the manifest needs
    # the full cell list (it indexes every hash), but not two copies of it
    spec_list: Sequence[ExperimentSpec] = (
        list(specs.expand_iter()) if isinstance(specs, SweepSpec) else list(specs)
    )
    if manifest is None and root.joinpath(MANIFEST_FILENAME).is_file():
        manifest = RunManifest.load(root)
    if manifest is not None:
        if manifest.fingerprint != session.fingerprint():
            if on_mismatch == "error":
                manifest.check_session(session)  # raises, naming the fields
            # a manifest describes one run configuration; re-running the
            # store under another session starts a fresh index (existing
            # envelope files remain untouched until overwritten by hash)
            manifest = RunManifest.create(root, session, spec_list)
        else:
            manifest.merge_specs(spec_list)
    else:
        manifest = RunManifest.create(root, session, spec_list)
    manifest.save()

    from repro.experiments.store import quarantine_file

    by_hash: dict[str, ResultEnvelope] = {}
    pending: list[ExperimentSpec] = []
    for spec in spec_list:
        record = manifest.cells[spec.spec_hash()]
        if record.status == STATUS_DONE and record.path is not None:
            if not load_done:
                continue
            try:
                by_hash[record.spec_hash] = ResultEnvelope.load(
                    root / record.path
                )
            except FileNotFoundError:
                # the file vanished under the manifest — re-execute
                record.status = STATUS_PENDING
                record.path = None
                pending.append(spec)
            except ConfigurationError as exc:
                # a torn envelope write: the manifest says done but the
                # bytes are bad — quarantine the evidence, demote the cell
                # and heal the store by re-executing
                quarantine_file(root, root / record.path, reason=str(exc))
                record.status = STATUS_PENDING
                record.path = None
                pending.append(spec)
        else:
            pending.append(spec)

    total = len(spec_list)
    already_done = total - len(pending)

    def checkpoint(completed: int, _pending_total: int, envelope) -> None:
        path = envelope_path(root, envelope)
        atomic_write_text(path, envelope.to_json() + "\n")
        if session.fault_plan is not None:
            # the write-site injection point: tear the envelope we just
            # committed, the way a disk dying between write and sync would
            session.fault_plan.tear(envelope.spec_hash, path)
        manifest.checkpoint(envelope, path.relative_to(root))
        if progress is not None:
            progress(already_done + completed, total, envelope)

    def record_failure(spec, failure) -> None:
        manifest.checkpoint_failed(spec, failure.to_dict())

    executed = session.run_batch(
        pending,
        backend=backend,
        max_workers=max_workers,
        progress=checkpoint,
        use_cache=use_cache,
        on_error=on_error,
        retry=retry,
        health=health,
        on_failure=record_failure,
    )
    manifest.save()  # fold the journal into the full manifest
    for envelope in executed:
        if envelope is not None:  # failed cells leave holes under "collect"
            by_hash[envelope.spec_hash] = envelope
    ordered = [
        by_hash[spec.spec_hash()]
        for spec in spec_list
        if spec.spec_hash() in by_hash
    ]
    return ordered, manifest
