"""Retry policy, degradation ladder bookkeeping, and the run-health report.

The fault-tolerance contract of batched execution
(:meth:`Session.run_batch`) is built from three plain-data pieces:

* :class:`RetryPolicy` — how many times a cell that fails with a
  :class:`~repro.errors.TransientError` (or subclass) is re-executed, how
  long the exponential backoff between attempts is, and the per-cell
  deadline pool backends enforce (``cell_timeout``);
* :class:`CellFailure` — the structured error payload of one cell that
  exhausted the ladder: error class, message, attempts, spec identity.
  This is what lands in the run manifest (``status=failed``), the job
  record and the CLI output — a failed cell is *reported*, never silently
  dropped;
* :class:`RunHealth` — the per-run accounting callers receive: retries,
  serial fallbacks, worker crashes, timeouts, the failure list, and the
  wall clock lost to backoff and abandoned deadlines.

Retried or degraded cells that eventually succeed are byte-identical to an
undisturbed run — cells are pure functions of (spec, session fingerprint),
and none of the machinery here enters the fingerprint.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Mapping

from repro.errors import (
    CellTimeoutError,
    ConfigurationError,
    TransientError,
    WorkerCrashError,
)

__all__ = ["RetryPolicy", "CellFailure", "RunHealth"]


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff, plus the per-cell deadline.

    ``max_retries`` counts *re*-executions: a cell runs at most
    ``max_retries + 1`` times on the primary backend (plus one in-process
    fallback attempt when the failure class is a worker crash or timeout —
    the degradation ladder).  ``delay(attempt)`` is the sleep before the
    round retrying cells whose ``attempt``-th try failed:
    ``backoff_base * 2**(attempt-1)`` capped at ``backoff_cap`` — fully
    deterministic, no jitter, so chaos runs reproduce exactly.
    ``cell_timeout`` (seconds) arms hung-worker detection in the pool
    backends; ``None`` disables deadlines.
    """

    max_retries: int = 2
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    cell_timeout: float | None = None

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigurationError("max_retries must be >= 0")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ConfigurationError("backoff values must be >= 0")
        if self.cell_timeout is not None and self.cell_timeout <= 0:
            raise ConfigurationError("cell_timeout must be positive")

    def delay(self, attempt: int) -> float:
        """Backoff before re-running cells whose ``attempt``-th try failed."""
        return min(self.backoff_cap, self.backoff_base * 2 ** (attempt - 1))

    def retryable(self, exc: BaseException) -> bool:
        """Whether the retry ladder applies to this failure at all."""
        return isinstance(exc, TransientError)

    def to_dict(self) -> dict[str, Any]:
        """Plain-data form (JSON-ready)."""
        return {
            "max_retries": self.max_retries,
            "backoff_base": self.backoff_base,
            "backoff_cap": self.backoff_cap,
            "cell_timeout": self.cell_timeout,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RetryPolicy":
        """Rebuild a policy from :meth:`to_dict` output."""
        return cls(
            max_retries=int(data.get("max_retries", 2)),
            backoff_base=float(data.get("backoff_base", 0.05)),
            backoff_cap=float(data.get("backoff_cap", 2.0)),
            cell_timeout=data.get("cell_timeout"),
        )


@dataclasses.dataclass
class CellFailure:
    """One cell's terminal failure: identity plus a structured error payload."""

    spec_hash: str
    kind: str
    error: str
    message: str
    attempts: int = 1
    index: int | None = None

    @classmethod
    def from_exception(
        cls,
        exc: BaseException,
        *,
        spec_hash: str,
        kind: str,
        attempts: int,
        index: int | None = None,
    ) -> "CellFailure":
        """Capture one exception as a reportable failure record."""
        return cls(
            spec_hash=spec_hash,
            kind=kind,
            error=type(exc).__name__,
            message=str(exc),
            attempts=attempts,
            index=index,
        )

    def to_dict(self) -> dict[str, Any]:
        """Plain-data form — the manifest's and job record's error payload."""
        return {
            "spec_hash": self.spec_hash,
            "kind": self.kind,
            "error": self.error,
            "message": self.message,
            "attempts": self.attempts,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CellFailure":
        """Rebuild a failure record from :meth:`to_dict` output."""
        return cls(
            spec_hash=data.get("spec_hash", "?"),
            kind=data.get("kind", "?"),
            error=data.get("error", "Error"),
            message=data.get("message", ""),
            attempts=int(data.get("attempts", 1)),
        )

    def __str__(self) -> str:
        return (
            f"{self.kind} cell {self.spec_hash}: {self.error}: "
            f"{self.message} (after {self.attempts} attempts)"
        )


@dataclasses.dataclass
class RunHealth:
    """What one batched run survived: retries, fallbacks, failures, time lost.

    Callers pass a fresh instance into :meth:`Session.run_batch` (or read
    ``session.last_health`` afterwards); the service attaches the report to
    the job record so ``GET /jobs/<id>`` surfaces it, and the CLI prints
    :meth:`summary` when anything non-trivial happened.
    """

    retries: int = 0
    fallbacks: int = 0
    crashes: int = 0
    timeouts: int = 0
    wall_clock_lost_s: float = 0.0
    failures: list[CellFailure] = dataclasses.field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether every cell ultimately produced an envelope."""
        return not self.failures

    @property
    def eventful(self) -> bool:
        """Whether anything worth reporting happened (retry, fallback,
        crash, timeout or failure)."""
        return bool(
            self.retries
            or self.fallbacks
            or self.crashes
            or self.timeouts
            or self.failures
        )

    def count(self, exc: BaseException) -> None:
        """Tally one observed failure by class (crash/timeout breakdown)."""
        if isinstance(exc, WorkerCrashError):
            self.crashes += 1
        elif isinstance(exc, CellTimeoutError):
            self.timeouts += 1

    def record_failure(self, failure: CellFailure) -> None:
        """Record one cell that exhausted the ladder."""
        self.failures.append(failure)

    def merge(self, other: "RunHealth") -> None:
        """Fold another report into this one (service jobs over sub-runs)."""
        self.retries += other.retries
        self.fallbacks += other.fallbacks
        self.crashes += other.crashes
        self.timeouts += other.timeouts
        self.wall_clock_lost_s += other.wall_clock_lost_s
        self.failures.extend(other.failures)

    def summary(self) -> str:
        """One greppable line: ``2 retries, 1 fallback, 0 failed, 0.31s lost``."""
        parts = [
            f"{self.retries} retr{'y' if self.retries == 1 else 'ies'}",
            f"{self.fallbacks} fallback{'s' if self.fallbacks != 1 else ''}",
        ]
        if self.crashes:
            parts.append(f"{self.crashes} worker crash{'es' if self.crashes != 1 else ''}")
        if self.timeouts:
            parts.append(f"{self.timeouts} timeout{'s' if self.timeouts != 1 else ''}")
        parts.append(f"{len(self.failures)} failed")
        parts.append(f"{self.wall_clock_lost_s:.2f}s lost")
        return ", ".join(parts)

    def to_dict(self) -> dict[str, Any]:
        """Plain-data form — what the job record and ``--json`` carry."""
        return {
            "retries": self.retries,
            "fallbacks": self.fallbacks,
            "crashes": self.crashes,
            "timeouts": self.timeouts,
            "wall_clock_lost_s": round(self.wall_clock_lost_s, 6),
            "failures": [failure.to_dict() for failure in self.failures],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunHealth":
        """Rebuild a report from :meth:`to_dict` output."""
        return cls(
            retries=int(data.get("retries", 0)),
            fallbacks=int(data.get("fallbacks", 0)),
            crashes=int(data.get("crashes", 0)),
            timeouts=int(data.get("timeouts", 0)),
            wall_clock_lost_s=float(data.get("wall_clock_lost_s", 0.0)),
            failures=[
                CellFailure.from_dict(f) for f in data.get("failures", ())
            ],
        )
