"""The experiment session: machines, caching, and batched execution.

A :class:`Session` owns everything a spec does *not* name: how machines are
constructed (catalog lookup by default, injectable for custom chips), the
default numerics profile and noise level, and a two-tier result cache
(in-memory dict plus optional on-disk envelope store) keyed by the spec hash
combined with the session fingerprint.

Every spec executes on a **fresh machine** seeded from the spec.  The
simulator's jitter is content-addressed (noise keys name the chip, kernel,
size and repetition, not wall-clock order), so a cell's result is a pure
function of (spec, session fingerprint).  That purity is what makes the
cache sound and lets ``run_batch(backend=...)`` run cells concurrently —
on threads or worker processes (:mod:`repro.experiments.backends`) — with
bit-identical results to sequential execution.
"""

from __future__ import annotations

import hashlib
import inspect
import json
import pathlib
import threading
import time
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro._version import __version__
from repro.errors import (
    CellTimeoutError,
    ConfigurationError,
    SimulationError,
    WorkerCrashError,
)
from repro.experiments.backends import (
    ExecutionBackend,
    SerialBackend,
    resolve_backend,
)
from repro.experiments.envelope import ResultEnvelope
from repro.experiments.executor import execute_spec
from repro.experiments.faults import FaultPlan, resolve_fault_plan
from repro.experiments.resilience import CellFailure, RetryPolicy, RunHealth
from repro.experiments.specs import (
    NUMERICS_PROFILES,
    ExperimentSpec,
    SweepSpec,
)
from repro.sim.machine import Machine
from repro.sim.policy import NumericsConfig

__all__ = ["Session", "ProgressCallback", "FailureCallback"]

#: Signature of the ``run_batch`` progress hook:
#: ``progress(completed, total, envelope)``.
ProgressCallback = Callable[[int, int, ResultEnvelope], None]

#: Signature of the ``run_batch`` terminal-failure hook:
#: ``on_failure(spec, failure)`` — invoked once per cell that exhausted the
#: retry ladder (manifest checkpointing hangs off this).
FailureCallback = Callable[[ExperimentSpec, CellFailure], None]

_PROFILE_TO_CONFIG: dict[str, Callable[[], NumericsConfig]] = {
    "full": NumericsConfig.full,
    "sampled": NumericsConfig.sampled,
    "model-only": NumericsConfig.model_only,
}


def _numerics_config(profile: str | NumericsConfig | None) -> NumericsConfig:
    if profile is None:
        return NumericsConfig.sampled()
    if isinstance(profile, NumericsConfig):
        return profile
    try:
        return _PROFILE_TO_CONFIG[profile]()
    except KeyError:
        raise ConfigurationError(
            f"numerics profile must be one of {NUMERICS_PROFILES} "
            f"or a NumericsConfig, got {profile!r}"
        ) from None


def _retry_policy(
    retry: RetryPolicy | Mapping[str, Any] | None,
) -> RetryPolicy | None:
    if retry is None or isinstance(retry, RetryPolicy):
        return retry
    return RetryPolicy.from_dict(retry)


def _backend_supports_resilience(method: Callable[..., Any]) -> bool:
    """Whether a backend ``run``/``run_sweep`` accepts the fault-tolerance
    kwargs.  Third-party backends predating the contract keep working:
    they are driven with the historical signature and fail-fast semantics.
    """
    try:
        parameters = inspect.signature(method).parameters
    except (TypeError, ValueError):  # pragma: no cover - builtins, mocks
        return False
    return "fail" in parameters or any(
        p.kind is inspect.Parameter.VAR_KEYWORD for p in parameters.values()
    )


def _config_fingerprint(config: NumericsConfig) -> dict[str, Any]:
    return {
        "policy": config.policy.value,
        "full_threshold": config.full_threshold,
        "sample_rows": config.sample_rows,
    }


class Session:
    """Owns machine construction, caching and batched spec execution.

    Parameters
    ----------
    numerics:
        Default numerics profile — ``"full"``, ``"sampled"``,
        ``"model-only"`` or a :class:`NumericsConfig`.  A spec's own
        ``numerics`` field overrides it per cell.
    seed:
        Default seed figure builders stamp into the specs they construct.
        A spec's own ``seed`` always wins at execution time.
    noise_sigma:
        Measurement-jitter level of constructed machines (0 disables noise).
    thermal_enabled:
        Whether constructed machines model the sustained-power cap.
    cache_dir:
        Optional directory for the on-disk envelope cache; populated and
        consulted transparently, surviving across sessions.
    machine_factory:
        Override for machine construction — a callable
        ``(chip, seed, numerics) -> Machine`` — enabling off-catalog chips.
    max_workers:
        Default concurrency of :meth:`run_batch` (1 = sequential).
    backend:
        Default execution backend of :meth:`run_batch` — ``"serial"``,
        ``"threads"``, ``"processes"`` or an
        :class:`~repro.experiments.backends.ExecutionBackend` instance.
        ``None`` defers to the ``REPRO_BACKEND`` environment variable and
        finally to serial/threads depending on ``max_workers``.
    fault_plan:
        Optional :class:`~repro.experiments.faults.FaultPlan` (or its
        plain-data form) injecting deterministic failures for chaos
        testing.  ``None`` consults the ``REPRO_FAULTS`` environment
        variable; absent both, every injection site stays disabled at the
        cost of one ``is None`` check.  The plan never enters the session
        fingerprint — recovered runs are byte-identical to undisturbed
        ones.
    retry:
        Default :class:`~repro.experiments.resilience.RetryPolicy` (or its
        plain-data form) of :meth:`run_batch`; ``None`` means the stock
        policy (two retries, exponential backoff, no deadline).
    """

    def __init__(
        self,
        *,
        numerics: str | NumericsConfig | None = None,
        seed: int = 0,
        noise_sigma: float = 0.015,
        thermal_enabled: bool = True,
        cache_dir: str | pathlib.Path | None = None,
        machine_factory: Callable[..., Machine] | None = None,
        max_workers: int = 1,
        backend: str | ExecutionBackend | None = None,
        fault_plan: FaultPlan | Mapping[str, Any] | None = None,
        retry: RetryPolicy | Mapping[str, Any] | None = None,
    ) -> None:
        if max_workers < 1:
            raise ConfigurationError("max_workers must be >= 1")
        self.numerics = _numerics_config(numerics)
        self.seed = int(seed)
        self.noise_sigma = float(noise_sigma)
        self.thermal_enabled = bool(thermal_enabled)
        self.cache_dir = pathlib.Path(cache_dir) if cache_dir is not None else None
        self.max_workers = int(max_workers)
        self.backend = backend
        self.fault_plan = resolve_fault_plan(fault_plan)
        self.retry = _retry_policy(retry)
        #: The :class:`RunHealth` of the most recent :meth:`run_batch`.
        self.last_health: RunHealth | None = None
        self._machine_factory = machine_factory
        self._memory_cache: dict[str, ResultEnvelope] = {}
        self._cache_lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        # Memoized (state, fingerprint dict, canonical JSON) — see
        # _fingerprint_parts.  Invalidated by keying on the live attribute
        # values, so mutating e.g. ``session.noise_sigma`` still changes
        # cache keys exactly as it did when fingerprints were rebuilt per
        # call.
        self._fingerprint_cache: tuple | None = None

    def _fingerprint_parts(self) -> tuple[dict[str, Any], str]:
        """The fingerprint dict and its canonical JSON, memoized.

        The fingerprint is a pure function of the session attributes;
        caching it (keyed on their current values) keeps the per-cell
        cache_key to a single hash over prebuilt strings instead of a
        fresh nested serialization per layer.
        """
        state = (
            self.numerics,
            self.noise_sigma,
            self.thermal_enabled,
            self._machine_factory is not None,
        )
        cached = self._fingerprint_cache
        if cached is None or cached[0] != state:
            fingerprint = {
                "numerics": _config_fingerprint(self.numerics),
                "noise_sigma": self.noise_sigma,
                "thermal_enabled": self.thermal_enabled,
                "custom_factory": self._machine_factory is not None,
                "repro_version": __version__,
            }
            text = json.dumps(fingerprint, sort_keys=True, separators=(",", ":"))
            cached = (state, fingerprint, text)
            self._fingerprint_cache = cached
        return cached[1], cached[2]

    @property
    def machine_factory(self) -> Callable[..., Machine] | None:
        """The custom machine factory, if any (backends consult this —
        arbitrary callables cannot cross a process boundary)."""
        return self._machine_factory

    # ------------------------------------------------------------------
    # Machines
    # ------------------------------------------------------------------
    def numerics_for(self, spec: ExperimentSpec) -> NumericsConfig:
        """The numerics configuration one spec executes under (spec override
        first, session default otherwise) — shared by machine construction
        and the vectorized backend's lowering contexts."""
        if spec.numerics is not None:
            return _numerics_config(spec.numerics)
        return self.numerics

    def machine_for(self, spec: ExperimentSpec) -> Machine:
        """A fresh machine for one spec execution.

        Machines are deliberately *not* reused across runs: the virtual
        clock, trace and operation counter are per-machine state, and a
        fresh machine pins the result to the spec alone.  The immutable
        chip/device/thermal pieces come from the shared
        :func:`~repro.sim.machine.machine_template` cache.
        """
        numerics = self.numerics_for(spec)
        if self._machine_factory is not None:
            return self._machine_factory(spec.chip, spec.seed, numerics)
        return Machine.for_chip(
            spec.chip,
            seed=spec.seed,
            noise_sigma=self.noise_sigma,
            thermal_enabled=self.thermal_enabled,
            numerics=numerics,
        )

    # ------------------------------------------------------------------
    # Cache plumbing
    # ------------------------------------------------------------------
    def fingerprint(self) -> dict[str, Any]:
        """Session configuration that co-determines results (cache salt).

        Returned dicts are fresh down to the nested ``numerics`` entry, so
        mutating one (e.g. through an envelope's ``meta``) can never reach
        the memoized cache or other envelopes.
        """
        fingerprint = dict(self._fingerprint_parts()[0])
        fingerprint["numerics"] = dict(fingerprint["numerics"])
        return fingerprint

    def cache_key(self, spec: ExperimentSpec) -> str:
        """Cache identity of one spec under this session's configuration.

        Byte-equal to hashing
        ``json.dumps({"spec": ..., "session": ...}, sort_keys=True)`` — the
        historical payload — but assembled from the memoized canonical
        fragments ("session" sorts before "spec"), so a batch pays one hash
        per cell instead of a nested re-serialization.
        """
        payload = (
            '{"session":' + self._fingerprint_parts()[1]
            + ',"spec":' + spec.canonical_json() + "}"
        )
        return hashlib.sha256(payload.encode()).hexdigest()[:24]

    def cache_info(self) -> dict[str, int]:
        """Hit/miss/size counters of the in-session cache."""
        with self._cache_lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "in_memory": len(self._memory_cache),
            }

    def clear_cache(self) -> None:
        """Drop the in-memory cache (the on-disk store is left untouched)."""
        with self._cache_lock:
            self._memory_cache.clear()

    def cached_envelopes(self) -> list[ResultEnvelope]:
        """Every envelope currently held in the in-memory cache."""
        with self._cache_lock:
            return list(self._memory_cache.values())

    def _disk_path(self, key: str) -> pathlib.Path | None:
        if self.cache_dir is None:
            return None
        return self.cache_dir / f"{key}.json"

    def cache_lookup(self, key: str) -> ResultEnvelope | None:
        """The cached envelope under ``key``, counting the hit or miss.

        Execution backends use this to resolve cache hits before
        dispatching cells to workers, keeping counters consistent across
        backends.
        """
        with self._cache_lock:
            cached = self._memory_cache.get(key)
            if cached is not None:
                self._hits += 1
        if cached is not None:
            return cached
        path = self._disk_path(key)
        if path is not None and path.is_file():
            envelope = ResultEnvelope.load(path)  # names the path if corrupt
            with self._cache_lock:
                self._memory_cache[key] = envelope
                self._hits += 1
            return envelope
        with self._cache_lock:
            self._misses += 1
        return None

    def record_miss(self) -> None:
        """Count one cache-bypassing execution (backends use this so
        ``cache_info()`` counters agree across execution backends)."""
        with self._cache_lock:
            self._misses += 1

    def cache_store(self, key: str, envelope: ResultEnvelope) -> None:
        """Record one executed envelope in the memory (and disk) cache."""
        with self._cache_lock:
            self._memory_cache[key] = envelope
        path = self._disk_path(key)
        if path is not None:
            from repro.experiments.store import atomic_write_text

            atomic_write_text(path, envelope.to_json() + "\n")

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(
        self,
        spec: ExperimentSpec,
        *,
        use_cache: bool = True,
        attempt: int = 1,
    ) -> ResultEnvelope:
        """Execute one spec (or return its cached envelope).

        ``attempt`` is the 1-based retry attempt this execution is part of
        — only deterministic fault injection observes it (cache hits do not
        count as attempts; a faulted cell never produced an envelope).
        """
        key = self.cache_key(spec)
        if use_cache:
            cached = self.cache_lookup(key)
            if cached is not None:
                return cached
        else:
            self.record_miss()
        if self.fault_plan is not None:
            self.fault_plan.invoke("execute", spec.spec_hash(), attempt)
        machine = self.machine_for(spec)
        result = execute_spec(machine, spec)
        envelope = ResultEnvelope.create(
            spec, result, meta={"session": self.fingerprint(), "cache_key": key}
        )
        if use_cache:
            self.cache_store(key, envelope)
        return envelope

    def run_batch(
        self,
        specs: Iterable[ExperimentSpec] | SweepSpec,
        *,
        max_workers: int | None = None,
        backend: str | ExecutionBackend | None = None,
        progress: ProgressCallback | None = None,
        use_cache: bool = True,
        on_error: str = "raise",
        retry: RetryPolicy | Mapping[str, Any] | None = None,
        health: RunHealth | None = None,
        on_failure: FailureCallback | None = None,
    ) -> list[ResultEnvelope]:
        """Execute many independent specs, optionally concurrently.

        Results come back in input order regardless of completion order,
        and — because each cell runs on a fresh machine with
        content-addressed jitter — are bit-identical for any
        ``max_workers`` and any ``backend`` (``"serial"``, ``"threads"``,
        ``"processes"``, ``"vectorized"`` — the sweep fast path, which
        batch-evaluates whole grids through
        :mod:`repro.sim.vectorized` — or an
        :class:`~repro.experiments.backends.ExecutionBackend` instance;
        see :func:`~repro.experiments.backends.resolve_backend` for the
        default chain).  ``progress`` is invoked after each cell completes
        as ``progress(completed, total, envelope)``.

        A :class:`SweepSpec` handed to a *streaming* backend (``sharded``)
        is passed down un-expanded: the backend pulls cells through
        :meth:`SweepSpec.expand_iter` (or ships grid slices to its
        workers), so the grid is never fully materialized here — only the
        returned envelopes are.

        Fault tolerance.  Cells that fail with a
        :class:`~repro.errors.TransientError` (injected faults, worker
        crashes, deadline expiries) are retried on the primary backend with
        exponential backoff (``retry`` — a
        :class:`~repro.experiments.resilience.RetryPolicy`, its dict form,
        or the session default), and crash/timeout victims that exhaust
        their retries get one final in-process serial attempt (the
        degradation ladder).  A cell that still fails is *terminal*:
        ``on_error="raise"`` (the default) finishes the surviving siblings,
        then raises :class:`~repro.errors.SimulationError` naming every
        failed cell; ``on_error="collect"`` returns the batch with ``None``
        at failed indices and the failures recorded in the run's
        :class:`~repro.experiments.resilience.RunHealth` (pass ``health``
        to provide the instance, or read ``session.last_health``).
        ``on_failure(spec, failure)`` fires once per terminal failure —
        manifest checkpointing hangs off it.  Recovered cells are
        byte-identical to an undisturbed run: none of this machinery enters
        the session fingerprint.
        """
        if on_error not in ("raise", "collect"):
            raise ConfigurationError(
                f'on_error must be "raise" or "collect", got {on_error!r}'
            )
        workers = self.max_workers if max_workers is None else int(max_workers)
        if workers < 1:
            raise ConfigurationError("max_workers must be >= 1")
        policy = _retry_policy(retry)
        if policy is None:
            policy = self.retry if self.retry is not None else RetryPolicy()
        report = health if health is not None else RunHealth()
        self.last_health = report
        exec_backend = resolve_backend(
            backend if backend is not None else self.backend,
            workers,
            session=self,
        )

        streaming = (
            isinstance(specs, SweepSpec)
            and getattr(exec_backend, "streaming", False)
        )
        spec_list: Sequence[ExperimentSpec] | None = None
        if streaming:
            total: int | None = None  # unknown until the stream ends
            results: list[ResultEnvelope | None] = []
        else:
            spec_list = (
                specs.expand() if isinstance(specs, SweepSpec) else list(specs)
            )
            total = len(spec_list)
            results = [None] * total
        completed = 0
        progress_lock = threading.Lock()

        def finish(index: int, envelope: ResultEnvelope) -> None:
            nonlocal completed
            if total is None:
                while index >= len(results):
                    results.append(None)
            results[index] = envelope
            if progress is not None:
                with progress_lock:
                    completed += 1
                    progress(completed, total if total is not None else -1, envelope)
            else:
                completed += 1

        primary = (
            exec_backend.run_sweep if streaming else exec_backend.run
        )
        resilient = _backend_supports_resilience(primary)

        #: index -> (exception, spec) of the round that just ran
        round_failures: dict[int, tuple[BaseException, ExperimentSpec]] = {}

        def fail(index: int, exc: BaseException, spec: ExperimentSpec) -> None:
            if total is None:
                while index >= len(results):
                    results.append(None)
            report.count(exc)
            round_failures[index] = (exc, spec)

        batch_input = specs if streaming else spec_list
        if resilient:
            primary(
                self,
                batch_input,
                finish,
                use_cache=use_cache,
                fail=fail,
                attempt=1,
                cell_timeout=policy.cell_timeout,
                health=report,
            )
        else:
            # pre-contract custom backend: historical fail-fast semantics
            primary(self, batch_input, finish, use_cache=use_cache)

        # --- retry ladder -------------------------------------------------
        # Rounds re-run only the failed cells, all at the same attempt
        # number; after primary retries are exhausted, crash/timeout
        # victims get one in-process serial attempt (the backend that
        # cannot lose a worker), then whatever is left is terminal.
        open_failures = dict(round_failures)
        attempts = {index: 1 for index in open_failures}

        def rerun(
            entries: Mapping[int, tuple[BaseException, ExperimentSpec]],
            run_backend,
            attempt: int,
        ) -> None:
            round_failures.clear()
            indices = sorted(entries)
            subset = [entries[i][1] for i in indices]

            def finish_sub(j: int, envelope: ResultEnvelope) -> None:
                finish(indices[j], envelope)

            def fail_sub(j: int, exc: BaseException, spec) -> None:
                fail(indices[j], exc, spec)

            run_backend(
                self,
                subset,
                finish_sub,
                use_cache=use_cache,
                fail=fail_sub,
                attempt=attempt,
                cell_timeout=policy.cell_timeout,
                health=report,
            )
            for index in indices:
                attempts[index] += 1
                open_failures.pop(index, None)
            open_failures.update(round_failures)

        attempt = 1
        while resilient and open_failures and attempt <= policy.max_retries:
            retryable = {
                index: entry
                for index, entry in open_failures.items()
                if policy.retryable(entry[0])
            }
            if not retryable:
                break
            attempt += 1
            delay = policy.delay(attempt - 1)
            if delay:
                time.sleep(delay)
                report.wall_clock_lost_s += delay
            report.retries += len(retryable)
            rerun(retryable, exec_backend.run, attempt)

        if resilient and open_failures:
            # the last rung: crash/timeout victims re-execute in-process,
            # where no worker can die and no deadline preempts
            infra = {
                index: entry
                for index, entry in open_failures.items()
                if isinstance(entry[0], (WorkerCrashError, CellTimeoutError))
            }
            if infra:
                report.fallbacks += len(infra)
                rerun(infra, SerialBackend().run, attempt + 1)

        failed_indices = set(open_failures)
        for index in sorted(open_failures):
            exc, spec = open_failures[index]
            failure = CellFailure.from_exception(
                exc,
                spec_hash=spec.spec_hash(),
                kind=spec.kind,
                attempts=attempts.get(index, 1),
                index=index,
            )
            report.record_failure(failure)
            if on_failure is not None:
                on_failure(spec, failure)

        undelivered = [
            i
            for i, env in enumerate(results)
            if env is None and i not in failed_indices
        ]
        if not undelivered and total is not None and completed + len(
            failed_indices
        ) < total:
            undelivered = list(range(len(results), total))
        if undelivered:
            # A backend that drops cells is a bug, not a partial result —
            # name the victims instead of silently returning a short list.
            if spec_list is None:
                spec_list = list(specs.expand_iter())
            hashes = ", ".join(
                spec_list[i].spec_hash() for i in undelivered[:5]
            )
            more = len(undelivered) - min(len(undelivered), 5)
            raise ConfigurationError(
                f"backend {exec_backend.name!r} finished the batch but "
                f"never delivered {len(undelivered)} of "
                f"{len(spec_list)} cells (spec hashes {hashes}"
                + (f" and {more} more" if more else "")
                + ")"
            )
        if failed_indices and on_error == "raise":
            described = "; ".join(
                str(f) for f in report.failures[:5]
            )
            more = len(report.failures) - min(len(report.failures), 5)
            first_exc = open_failures[min(failed_indices)][0]
            raise SimulationError(
                f"{len(failed_indices)} of {len(results)} cells failed "
                f"after retries: {described}"
                + (f" (and {more} more)" if more else "")
            ) from first_exc
        return list(results)

    def runner(self, chip: str, *, seed: int | None = None):
        """A legacy :class:`ExperimentRunner` bound to a fresh session machine.

        Convenience bridge for imperative code that wants the old API with
        this session's machine configuration.
        """
        from repro.core.harness import ExperimentRunner
        from repro.experiments.specs import StreamSpec

        effective_seed = self.seed if seed is None else seed
        machine = self.machine_for(
            StreamSpec(chip=chip, seed=effective_seed, target="cpu")
        )
        return ExperimentRunner(machine, seed=effective_seed)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Session(numerics={self.numerics.policy.value!r}, "
            f"seed={self.seed}, cached={len(self._memory_cache)})"
        )
