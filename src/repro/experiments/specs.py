"""Declarative experiment specifications.

A spec is a frozen, serializable description of one experiment cell — chip,
implementation, size, repetition count, seed, and (optionally) a numerics
profile — with no reference to machines or runtime state.  Because every
knob that influences a result lives on the spec (plus the session
fingerprint), a spec hash is a sound cache key and executing a spec is a
pure function: the same spec always yields the same result, sequentially or
in a parallel batch.

``SweepSpec`` is the grid expander: it names axes (chips x implementations x
sizes, or chips x STREAM targets) and ``expand()`` yields the concrete cell
specs, honouring the paper's section-4 exclusions (CPU loop implementations
skip n > 4096).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any, Iterator, Mapping

from repro.calibration import paper
from repro.errors import ConfigurationError

__all__ = [
    "NUMERICS_PROFILES",
    "ExperimentSpec",
    "GemmSpec",
    "PoweredGemmSpec",
    "StreamSpec",
    "SweepSpec",
    "spec_from_dict",
]

#: Valid values of the optional per-spec numerics override (the session's
#: profile applies when the spec leaves it ``None``).
NUMERICS_PROFILES: tuple[str, ...] = ("full", "sampled", "model-only")


def _canonical_json(data: Mapping[str, Any]) -> str:
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def _check_numerics(profile: str | None) -> None:
    if profile is not None and profile not in NUMERICS_PROFILES:
        raise ConfigurationError(
            f"numerics profile must be one of {NUMERICS_PROFILES}, "
            f"got {profile!r}"
        )


@dataclasses.dataclass(frozen=True)
class ExperimentSpec:
    """Base of all concrete specs: the cell's chip, seed and numerics.

    ``chip`` is a name, not a :class:`~repro.soc.chip.ChipSpec` — off-catalog
    chips work through a session's ``machine_factory``.  ``numerics`` is an
    optional per-spec override of the session profile.
    """

    chip: str
    seed: int = 0
    numerics: str | None = None

    #: Serialization tag; each concrete subclass sets its own.
    kind = "base"

    def __post_init__(self) -> None:
        if not self.chip:
            raise ConfigurationError("a spec needs a chip name")
        _check_numerics(self.numerics)

    def to_dict(self) -> dict[str, Any]:
        """Plain-data form (JSON-ready), tagged with the spec ``kind``."""
        data = dataclasses.asdict(self)
        data["kind"] = self.kind
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentSpec":
        """Rebuild a spec of this exact class from :meth:`to_dict` output."""
        payload = {k: v for k, v in data.items() if k != "kind"}
        tuple_fields = {
            f.name
            for f in dataclasses.fields(cls)
            if "tuple" in str(f.type)
        }
        for name in tuple_fields:
            if name in payload and payload[name] is not None:
                payload[name] = tuple(payload[name])
        return cls(**payload)

    def spec_hash(self) -> str:
        """Stable content hash (hex) — the cache/file identity of this spec."""
        return hashlib.sha256(
            _canonical_json(self.to_dict()).encode()
        ).hexdigest()[:16]


@dataclasses.dataclass(frozen=True)
class GemmSpec(ExperimentSpec):
    """One Figure-2 cell: ``repeats`` timed multiplications of one size.

    ``verify=None`` verifies whenever numerics ran (FULL or SAMPLED policy),
    mirroring the historical ``ExperimentRunner.run_gemm`` default.
    """

    impl_key: str = ""
    n: int = 0
    repeats: int = paper.GEMM_REPEATS
    verify: bool | None = None

    kind = "gemm"

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.impl_key:
            raise ConfigurationError("a GEMM spec needs an implementation key")
        if self.n <= 0:
            raise ConfigurationError("matrix dimension must be positive")
        if self.repeats < 1:
            raise ConfigurationError("repeats must be >= 1")


@dataclasses.dataclass(frozen=True)
class PoweredGemmSpec(ExperimentSpec):
    """One Figure-3/4 cell: GEMM timing with the piggybacked power protocol."""

    impl_key: str = ""
    n: int = 0
    repeats: int = paper.GEMM_REPEATS

    kind = "powered-gemm"

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.impl_key:
            raise ConfigurationError("a GEMM spec needs an implementation key")
        if self.n <= 0:
            raise ConfigurationError("matrix dimension must be positive")
        if self.repeats < 1:
            raise ConfigurationError("repeats must be >= 1")


@dataclasses.dataclass(frozen=True)
class StreamSpec(ExperimentSpec):
    """One Figure-1 bar: the STREAM study on one target processor.

    ``n_elements``/``repeats`` of ``None`` take the paper defaults for the
    target (section 4: 10 CPU repetitions under the thread sweep, 20 GPU).
    """

    target: str = "cpu"
    n_elements: int | None = None
    repeats: int | None = None

    kind = "stream"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.target not in ("cpu", "gpu"):
            raise ConfigurationError(
                f"STREAM target must be 'cpu' or 'gpu', got {self.target!r}"
            )
        if self.n_elements is not None and self.n_elements < 1:
            raise ConfigurationError("n_elements must be positive")
        if self.repeats is not None and self.repeats < 1:
            raise ConfigurationError("repeats must be >= 1")


def _cell_is_supported(chip: str, impl_key: str, n: int) -> bool:
    """Section-4 exclusion check, tolerant of off-catalog chips."""
    from repro.calibration.gemm import gemm_calibration
    from repro.soc.catalog import get_chip

    try:
        spec = get_chip(chip)
    except Exception:
        return True  # off-catalog chips are resolved at execution time
    try:
        return gemm_calibration(spec, impl_key).supports(n)
    except Exception:
        return True


@dataclasses.dataclass(frozen=True)
class SweepSpec:
    """A declarative grid of experiment cells.

    Empty axes take the paper defaults: all four chips, the Figure-2 legend
    implementations, ``paper.GEMM_SIZES`` (or ``paper.POWER_SIZES`` for the
    power study) and both STREAM targets.  ``expand()`` materialises the
    concrete specs in deterministic (row-major) order.
    """

    kind: str = "gemm"
    chips: tuple[str, ...] = ()
    impl_keys: tuple[str, ...] = ()
    sizes: tuple[int, ...] = ()
    targets: tuple[str, ...] = ("cpu", "gpu")
    repeats: int | None = None
    n_elements: int | None = None
    seed: int = 0
    numerics: str | None = None
    skip_unsupported: bool = True

    def __post_init__(self) -> None:
        if self.kind not in ("gemm", "powered-gemm", "stream"):
            raise ConfigurationError(
                f"sweep kind must be 'gemm', 'powered-gemm' or 'stream', "
                f"got {self.kind!r}"
            )
        _check_numerics(self.numerics)

    # -- resolved axes -----------------------------------------------------
    def _chips(self) -> tuple[str, ...]:
        return self.chips or paper.CHIPS

    def _impl_keys(self) -> tuple[str, ...]:
        if self.impl_keys:
            return self.impl_keys
        from repro.core.gemm.registry import paper_implementation_keys

        return paper_implementation_keys()

    def _sizes(self) -> tuple[int, ...]:
        if self.sizes:
            return self.sizes
        return paper.POWER_SIZES if self.kind == "powered-gemm" else paper.GEMM_SIZES

    # -- expansion ---------------------------------------------------------
    def __iter__(self) -> Iterator[ExperimentSpec]:
        return iter(self.expand())

    def expand(self) -> tuple[ExperimentSpec, ...]:
        """The concrete cell specs of this grid, section-4 exclusions applied."""
        out: list[ExperimentSpec] = []
        if self.kind == "stream":
            for chip in self._chips():
                for target in self.targets:
                    out.append(
                        StreamSpec(
                            chip=chip,
                            seed=self.seed,
                            numerics=self.numerics,
                            target=target,
                            n_elements=self.n_elements,
                            repeats=self.repeats,
                        )
                    )
            return tuple(out)
        repeats = self.repeats if self.repeats is not None else paper.GEMM_REPEATS
        cls = GemmSpec if self.kind == "gemm" else PoweredGemmSpec
        for chip in self._chips():
            for impl_key in self._impl_keys():
                for n in self._sizes():
                    if self.skip_unsupported and not _cell_is_supported(
                        chip, impl_key, n
                    ):
                        continue
                    out.append(
                        cls(
                            chip=chip,
                            seed=self.seed,
                            numerics=self.numerics,
                            impl_key=impl_key,
                            n=n,
                            repeats=repeats,
                        )
                    )
        return tuple(out)

    def to_dict(self) -> dict[str, Any]:
        """Plain-data form (JSON-ready), tagged ``kind="sweep"``."""
        data = dataclasses.asdict(self)
        data["sweep_kind"] = data.pop("kind")
        data["kind"] = "sweep"
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SweepSpec":
        """Rebuild a sweep from :meth:`to_dict` output."""
        payload = dict(data)
        payload.pop("kind", None)
        payload["kind"] = payload.pop("sweep_kind")
        for name in ("chips", "impl_keys", "sizes", "targets"):
            if name in payload and payload[name] is not None:
                payload[name] = tuple(payload[name])
        return cls(**payload)


_SPEC_KINDS: dict[str, type] = {
    GemmSpec.kind: GemmSpec,
    PoweredGemmSpec.kind: PoweredGemmSpec,
    StreamSpec.kind: StreamSpec,
    "sweep": SweepSpec,
}


def spec_from_dict(data: Mapping[str, Any]) -> ExperimentSpec | SweepSpec:
    """Rebuild any spec from its ``to_dict`` form, dispatching on ``kind``."""
    try:
        kind = data["kind"]
    except KeyError:
        raise ConfigurationError("spec dictionary lacks a 'kind' tag") from None
    try:
        cls = _SPEC_KINDS[kind]
    except KeyError:
        raise ConfigurationError(
            f"unknown spec kind {kind!r}; known: {', '.join(_SPEC_KINDS)}"
        ) from None
    return cls.from_dict(data)
