"""Declarative experiment specifications.

A spec is a frozen, serializable description of one experiment cell — chip,
implementation, size, repetition count, seed, and (optionally) a numerics
profile — with no reference to machines or runtime state.  Because every
knob that influences a result lives on the spec (plus the session
fingerprint), a spec hash is a sound cache key and executing a spec is a
pure function: the same spec always yields the same result, sequentially or
in a parallel batch.

``SweepSpec`` is the grid expander: it names generic axes (chips,
implementation keys, sizes, targets) and ``expand()`` delegates their
interpretation to the workload registered under the sweep's ``kind`` (see
:mod:`repro.workloads`) — the GEMM workload honours the paper's section-4
exclusions (CPU loop implementations skip n > 4096), STREAM crosses chips
with targets, and every plugged-in workload brings its own semantics.
``spec_from_dict`` likewise resolves concrete spec classes through the
registry, so new workloads deserialize without edits here.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any, Iterator, Mapping

from repro.calibration import paper
from repro.errors import ConfigurationError

__all__ = [
    "NUMERICS_PROFILES",
    "ExperimentSpec",
    "GemmSpec",
    "PoweredGemmSpec",
    "StreamSpec",
    "SweepSpec",
    "spec_from_dict",
]

#: Valid values of the optional per-spec numerics override (the session's
#: profile applies when the spec leaves it ``None``).
NUMERICS_PROFILES: tuple[str, ...] = ("full", "sampled", "model-only")


def _canonical_json(data: Mapping[str, Any]) -> str:
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def _check_numerics(profile: str | None) -> None:
    if profile is not None and profile not in NUMERICS_PROFILES:
        raise ConfigurationError(
            f"numerics profile must be one of {NUMERICS_PROFILES}, "
            f"got {profile!r}"
        )


@dataclasses.dataclass(frozen=True)
class ExperimentSpec:
    """Base of all concrete specs: the cell's chip, seed and numerics.

    ``chip`` is a name, not a :class:`~repro.soc.chip.ChipSpec` — off-catalog
    chips work through a session's ``machine_factory``.  ``numerics`` is an
    optional per-spec override of the session profile.
    """

    chip: str
    seed: int = 0
    numerics: str | None = None

    #: Serialization tag; each concrete subclass sets its own.
    kind = "base"

    def __post_init__(self) -> None:
        if not self.chip:
            raise ConfigurationError("a spec needs a chip name")
        _check_numerics(self.numerics)

    @classmethod
    def _spec_fields(cls) -> tuple[str, ...]:
        """Field names of this spec class, introspected once per class.

        Per-cell serialization is the hot path of million-cell sweeps;
        ``dataclasses.fields`` walks descriptors on every call, so both
        codec directions cache the introspection on the concrete class
        (``cls.__dict__``, not inherited, so subclasses resolve their own).
        """
        names = cls.__dict__.get("_spec_field_names")
        if names is None:
            names = tuple(f.name for f in dataclasses.fields(cls))
            cls._spec_field_names = names
        return names

    @classmethod
    def _tuple_fields(cls) -> frozenset:
        cached = cls.__dict__.get("_spec_tuple_fields")
        if cached is None:
            cached = frozenset(
                f.name
                for f in dataclasses.fields(cls)
                if "tuple" in str(f.type)
            )
            cls._spec_tuple_fields = cached
        return cached

    def to_dict(self) -> dict[str, Any]:
        """Plain-data form (JSON-ready), tagged with the spec ``kind``.

        The serialized dict is computed once per frozen spec and shared by
        every layer that re-reads it (session cache keys, manifest cells,
        envelope payloads, the process backend's wire format); callers get
        a fresh shallow copy, so mutating the returned dict cannot corrupt
        the cache.  Field values are immutable scalars/tuples by the spec
        contract, which is what makes the shallow copy sufficient (and what
        lets this skip ``dataclasses.asdict``'s recursive deep copy).
        """
        cached = self.__dict__.get("_dict_cache")
        if cached is None:
            cached = {name: getattr(self, name) for name in self._spec_fields()}
            cached["kind"] = self.kind
            object.__setattr__(self, "_dict_cache", cached)
        return dict(cached)

    def canonical_json(self) -> str:
        """Memoized canonical JSON (sorted keys, compact separators) — the
        exact string :meth:`spec_hash` and the session cache key hash."""
        cached = self.__dict__.get("_json_cache")
        if cached is None:
            cached = _canonical_json(self.to_dict())
            object.__setattr__(self, "_json_cache", cached)
        return cached

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentSpec":
        """Rebuild a spec of this exact class from :meth:`to_dict` output."""
        payload = {k: v for k, v in data.items() if k != "kind"}
        for name in cls._tuple_fields():
            if name in payload and payload[name] is not None:
                payload[name] = tuple(payload[name])
        return cls(**payload)

    def spec_hash(self) -> str:
        """Stable content hash (hex) — the cache/file identity of this spec.

        Memoized: session caching, manifest checkpoints and the sharded
        store all key on it, and a frozen spec's hash cannot change.
        """
        cached = self.__dict__.get("_hash_cache")
        if cached is None:
            cached = hashlib.sha256(
                self.canonical_json().encode()
            ).hexdigest()[:16]
            object.__setattr__(self, "_hash_cache", cached)
        return cached


@dataclasses.dataclass(frozen=True)
class GemmSpec(ExperimentSpec):
    """One Figure-2 cell: ``repeats`` timed multiplications of one size.

    ``verify=None`` verifies whenever numerics ran (FULL or SAMPLED policy),
    mirroring the historical ``ExperimentRunner.run_gemm`` default.
    """

    impl_key: str = ""
    n: int = 0
    repeats: int = paper.GEMM_REPEATS
    verify: bool | None = None

    kind = "gemm"

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.impl_key:
            raise ConfigurationError("a GEMM spec needs an implementation key")
        if self.n <= 0:
            raise ConfigurationError("matrix dimension must be positive")
        if self.repeats < 1:
            raise ConfigurationError("repeats must be >= 1")


@dataclasses.dataclass(frozen=True)
class PoweredGemmSpec(ExperimentSpec):
    """One Figure-3/4 cell: GEMM timing with the piggybacked power protocol."""

    impl_key: str = ""
    n: int = 0
    repeats: int = paper.GEMM_REPEATS

    kind = "powered-gemm"

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.impl_key:
            raise ConfigurationError("a GEMM spec needs an implementation key")
        if self.n <= 0:
            raise ConfigurationError("matrix dimension must be positive")
        if self.repeats < 1:
            raise ConfigurationError("repeats must be >= 1")


@dataclasses.dataclass(frozen=True)
class StreamSpec(ExperimentSpec):
    """One Figure-1 bar: the STREAM study on one target processor.

    ``n_elements``/``repeats`` of ``None`` take the paper defaults for the
    target (section 4: 10 CPU repetitions under the thread sweep, 20 GPU).
    """

    target: str = "cpu"
    n_elements: int | None = None
    repeats: int | None = None

    kind = "stream"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.target not in ("cpu", "gpu"):
            raise ConfigurationError(
                f"STREAM target must be 'cpu' or 'gpu', got {self.target!r}"
            )
        if self.n_elements is not None and self.n_elements < 1:
            raise ConfigurationError("n_elements must be positive")
        if self.repeats is not None and self.repeats < 1:
            raise ConfigurationError("repeats must be >= 1")


@dataclasses.dataclass(frozen=True)
class SweepSpec:
    """A declarative grid of experiment cells over one workload kind.

    The axes are generic; the workload registered under ``kind`` interprets
    them (empty axes take that workload's defaults — e.g. the GEMM workload
    fills in all four chips, the Figure-2 legend implementations and
    ``paper.GEMM_SIZES``).  ``expand()`` materialises the concrete specs in
    deterministic (row-major) order.  Unregistered kinds are rejected at
    construction, never silently routed to a default workload.
    """

    kind: str = "gemm"
    chips: tuple[str, ...] = ()
    impl_keys: tuple[str, ...] = ()
    sizes: tuple[int, ...] = ()
    targets: tuple[str, ...] = ("cpu", "gpu")
    repeats: int | None = None
    n_elements: int | None = None
    seed: int = 0
    numerics: str | None = None
    skip_unsupported: bool = True

    def __post_init__(self) -> None:
        from repro import workloads

        workloads.get_workload(self.kind)  # unregistered kinds never misroute
        _check_numerics(self.numerics)

    # -- expansion ---------------------------------------------------------
    def __iter__(self) -> Iterator[ExperimentSpec]:
        return self.expand_iter()

    def expand(self) -> tuple[ExperimentSpec, ...]:
        """The concrete cell specs of this grid.

        Expansion is delegated to the registered workload's ``sweep_cells``
        (the GEMM workloads apply the section-4 exclusions here).
        """
        from repro import workloads

        return tuple(workloads.get_workload(self.kind).sweep_cells(self))

    def expand_iter(self) -> Iterator[ExperimentSpec]:
        """The grid's cells as a lazy stream, in :meth:`expand` order.

        Workloads that declare a ``sweep_cells_iter`` hook yield cells one
        at a time, so consumers that stream (``run_batch`` under the
        ``sharded`` backend, the service's job expansion) never materialize
        a million-cell grid; workloads without the hook fall back to
        iterating the materialized :meth:`expand` tuple.  Both paths yield
        the identical specs in identical order.
        """
        from repro import workloads

        workload = workloads.get_workload(self.kind)
        if workload.sweep_cells_iter is not None:
            return iter(workload.sweep_cells_iter(self))
        return iter(self.expand())

    def to_dict(self) -> dict[str, Any]:
        """Plain-data form (JSON-ready), tagged ``kind="sweep"``."""
        data = dataclasses.asdict(self)
        data["sweep_kind"] = data.pop("kind")
        data["kind"] = "sweep"
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SweepSpec":
        """Rebuild a sweep from :meth:`to_dict` output."""
        payload = dict(data)
        payload.pop("kind", None)
        payload["kind"] = payload.pop("sweep_kind")
        for name in ("chips", "impl_keys", "sizes", "targets"):
            if name in payload and payload[name] is not None:
                payload[name] = tuple(payload[name])
        return cls(**payload)


def spec_from_dict(data: Mapping[str, Any]) -> ExperimentSpec | SweepSpec:
    """Rebuild any spec from its ``to_dict`` form, dispatching on ``kind``.

    Concrete spec classes are resolved through the workload registry, so a
    workload registered at runtime deserializes without edits here;
    ``"sweep"`` stays special (grids are kind-agnostic containers).
    """
    from repro import workloads

    try:
        kind = data["kind"]
    except KeyError:
        raise ConfigurationError("spec dictionary lacks a 'kind' tag") from None
    if kind == "sweep":
        return SweepSpec.from_dict(data)
    try:
        cls = workloads.get_workload(kind).spec_cls
    except ConfigurationError:
        known = ", ".join((*workloads.workload_kinds(), "sweep"))
        raise ConfigurationError(
            f"unknown spec kind {kind!r}; known: {known}"
        ) from None
    return cls.from_dict(data)
