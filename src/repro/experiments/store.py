"""On-disk envelope store: one JSON file per experiment cell.

The layout is deliberately boring — ``<kind>-<spec_hash>.json`` files in a
flat directory — so results can be inspected, diffed, rsynced and
re-rendered (``repro figure2 --from results/``) without any database.
"""

from __future__ import annotations

import pathlib
from typing import Iterable

from repro.errors import ConfigurationError
from repro.experiments.envelope import ResultEnvelope

__all__ = ["envelope_filename", "save_envelopes", "load_envelopes"]


def envelope_filename(envelope: ResultEnvelope) -> str:
    """Canonical file name of one envelope (kind + spec hash)."""
    return f"{envelope.kind}-{envelope.spec_hash}.json"


def save_envelopes(
    directory: str | pathlib.Path, envelopes: Iterable[ResultEnvelope]
) -> list[pathlib.Path]:
    """Write each envelope to ``directory`` (created if missing).

    Identical specs overwrite their previous file — the store holds at most
    one result per (spec, content) identity.  Returns the written paths.
    """
    root = pathlib.Path(directory)
    root.mkdir(parents=True, exist_ok=True)
    written: list[pathlib.Path] = []
    for envelope in envelopes:
        path = root / envelope_filename(envelope)
        path.write_text(envelope.to_json() + "\n")
        written.append(path)
    return written


def load_envelopes(directory: str | pathlib.Path) -> list[ResultEnvelope]:
    """Read every ``*.json`` envelope in ``directory``, sorted by file name."""
    root = pathlib.Path(directory)
    if not root.is_dir():
        raise ConfigurationError(f"envelope directory {root} does not exist")
    out: list[ResultEnvelope] = []
    for path in sorted(root.glob("*.json")):
        out.append(ResultEnvelope.from_json(path.read_text()))
    return out
