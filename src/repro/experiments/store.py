"""On-disk envelope store: one JSON file per experiment cell.

The layout is deliberately boring — JSON files under a plain directory — so
results can be inspected, diffed, rsynced and re-rendered
(``repro figure2 --from results/``) without any database.  Two layouts are
understood:

* **sharded** (the default written since the resumable-run work):
  ``<kind>/<hash-prefix>/<kind>-<spec_hash>.json`` — thousands-of-cell
  campaign grids stay listable, and a cell's path is computable from its
  spec alone (what the run manifest indexes);
* **flat** (the historical layout): ``<kind>-<spec_hash>.json`` directly in
  the root.

:func:`load_envelopes` reads both — mixed directories included — so stores
written by older versions keep rendering.  A ``manifest.json`` written by
:mod:`repro.experiments.manifest` is skipped, and a truncated or corrupt
file raises :class:`ConfigurationError` naming the offending path instead
of crashing mid-scan.
"""

from __future__ import annotations

import pathlib
from typing import Iterable

from repro.errors import ConfigurationError
from repro.experiments.envelope import ResultEnvelope

__all__ = [
    "MANIFEST_FILENAME",
    "SHARD_PREFIX_LEN",
    "envelope_filename",
    "envelope_path",
    "save_envelopes",
    "load_envelopes",
]

#: Reserved file name of the run manifest living alongside envelopes —
#: never parsed as an envelope.
MANIFEST_FILENAME = "manifest.json"

#: Spec-hash prefix length of the sharded layout's second directory level.
SHARD_PREFIX_LEN = 2


def envelope_filename(envelope: ResultEnvelope) -> str:
    """Canonical file name of one envelope (kind + spec hash)."""
    return f"{envelope.kind}-{envelope.spec_hash}.json"


def envelope_path(
    root: str | pathlib.Path, envelope: ResultEnvelope, *, sharded: bool = True
) -> pathlib.Path:
    """Canonical path of one envelope under ``root``.

    Sharded: ``<kind>/<hash-prefix>/<kind>-<hash>.json``; flat puts the
    file directly in ``root`` (the pre-manifest layout).
    """
    name = envelope_filename(envelope)
    base = pathlib.Path(root)
    if not sharded:
        return base / name
    return base / envelope.kind / envelope.spec_hash[:SHARD_PREFIX_LEN] / name


def save_envelopes(
    directory: str | pathlib.Path,
    envelopes: Iterable[ResultEnvelope],
    *,
    sharded: bool = True,
) -> list[pathlib.Path]:
    """Write each envelope to ``directory`` (created if missing).

    Identical specs overwrite their previous file — the store holds at most
    one result per (spec, content) identity.  Returns the written paths.
    """
    root = pathlib.Path(directory)
    root.mkdir(parents=True, exist_ok=True)
    written: list[pathlib.Path] = []
    for envelope in envelopes:
        path = envelope_path(root, envelope, sharded=sharded)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(envelope.to_json() + "\n")
        written.append(path)
    return written


def load_envelopes(directory: str | pathlib.Path) -> list[ResultEnvelope]:
    """Read every envelope under ``directory``, sorted by path.

    Both store layouts (and mixtures of the two) load; the run manifest is
    skipped.  A cell present in *both* layouts — e.g. a legacy flat store
    migrated in place — loads once, preferring the sharded copy, because
    the store holds at most one result per file name (kind + spec hash)
    by contract.  An unreadable file raises :class:`ConfigurationError`
    naming the offending path.
    """
    root = pathlib.Path(directory)
    if not root.is_dir():
        raise ConfigurationError(f"envelope directory {root} does not exist")
    by_name: dict[str, pathlib.Path] = {}
    for path in sorted(root.rglob("*.json")):
        if path.name == MANIFEST_FILENAME:
            continue
        current = by_name.get(path.name)
        # deeper path wins: sharded copies shadow flat duplicates
        if current is None or len(path.parts) > len(current.parts):
            by_name[path.name] = path
    return [ResultEnvelope.load(path) for path in sorted(by_name.values())]
