"""On-disk envelope store: one JSON file per experiment cell.

The layout is deliberately boring — JSON files under a plain directory — so
results can be inspected, diffed, rsynced and re-rendered
(``repro figure2 --from results/``) without any database.  Two layouts are
understood:

* **sharded** (the default written since the resumable-run work):
  ``<kind>/<hash-prefix>/<kind>-<spec_hash>.json`` — thousands-of-cell
  campaign grids stay listable, and a cell's path is computable from its
  spec alone (what the run manifest indexes);
* **flat** (the historical layout): ``<kind>-<spec_hash>.json`` directly in
  the root.

:func:`load_envelopes` reads both — mixed directories included — so stores
written by older versions keep rendering.  A ``manifest.json`` written by
:mod:`repro.experiments.manifest` is skipped, as is anything under a
dot-directory (``.service/`` holds the experiment service's job records,
``.quarantine/`` the evidence of torn writes — reserved metadata, never
envelopes).  A truncated or corrupt file is **quarantined** — moved to
``<store>/.quarantine/`` with a reason file, under a warning naming the
path — instead of aborting the scan: one torn write must not take a
thousand good cells hostage, and the quarantined cell re-executes on the
next manifest resume.

Stores are built for **concurrent readers over one writer**: every envelope
lands via :func:`atomic_write_text` (temp file + ``os.replace``), so a
reader never observes a half-written file, and a file that vanishes between
the directory listing and its read (the writer replacing it, a cleanup
racing the scan) is skipped rather than raised — the TOCTOU discipline the
long-running experiment service relies on.
"""

from __future__ import annotations

import os
import pathlib
import tempfile
import warnings
from typing import Iterable

from repro.errors import ConfigurationError
from repro.experiments.envelope import ResultEnvelope

__all__ = [
    "MANIFEST_FILENAME",
    "QUARANTINE_DIRNAME",
    "SHARD_PREFIX_LEN",
    "atomic_write_text",
    "envelope_filename",
    "envelope_path",
    "quarantine_file",
    "save_envelopes",
    "load_envelopes",
]

#: Reserved file name of the run manifest living alongside envelopes —
#: never parsed as an envelope.
MANIFEST_FILENAME = "manifest.json"

#: Reserved dot-directory corrupt envelope files are moved into — evidence
#: preserved for debugging, never re-scanned as results.
QUARANTINE_DIRNAME = ".quarantine"

#: Spec-hash prefix length of the sharded layout's second directory level.
SHARD_PREFIX_LEN = 2


def atomic_write_text(path: str | pathlib.Path, text: str) -> pathlib.Path:
    """Write ``text`` to ``path`` atomically (temp file + ``os.replace``).

    Concurrent readers — a service's query surface scanning the store while
    cells land, ``--from`` renders racing a run — either see the previous
    complete content or the new complete content, never a torn file.  The
    temp file lives in the target directory (``os.replace`` must not cross
    filesystems) with a non-``.json`` suffix so store scans never list it.
    """
    target = pathlib.Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=target.parent, prefix=target.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
        os.replace(tmp_name, target)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:  # pragma: no cover - already replaced or gone
            pass
        raise
    return target


def quarantine_file(
    root: str | pathlib.Path, path: str | pathlib.Path, *, reason: str
) -> pathlib.Path | None:
    """Move a corrupt store file into ``<root>/.quarantine/``, with evidence.

    The file keeps its name; a sibling ``<name>.reason.txt`` records why it
    was pulled.  Emits a :class:`UserWarning` naming both the offending
    path and its quarantine destination — corruption is surfaced, never
    silent — and returns the destination.  A store that cannot be written
    (read-only mount, permissions) degrades to warn-and-skip: the reader's
    scan must survive either way, so ``None`` comes back and the corrupt
    file stays put.
    """
    source = pathlib.Path(path)
    quarantine = pathlib.Path(root) / QUARANTINE_DIRNAME
    destination = quarantine / source.name
    try:
        quarantine.mkdir(parents=True, exist_ok=True)
        os.replace(source, destination)
        destination.with_name(destination.name + ".reason.txt").write_text(
            reason + "\n"
        )
    except OSError as exc:
        warnings.warn(
            f"corrupt envelope file {source} could not be quarantined "
            f"({exc}); skipping it: {reason}",
            stacklevel=2,
        )
        return None
    warnings.warn(
        f"corrupt envelope file {source} quarantined to {destination}: "
        f"{reason}",
        stacklevel=2,
    )
    return destination


def envelope_filename(envelope: ResultEnvelope) -> str:
    """Canonical file name of one envelope (kind + spec hash)."""
    return f"{envelope.kind}-{envelope.spec_hash}.json"


def envelope_path(
    root: str | pathlib.Path, envelope: ResultEnvelope, *, sharded: bool = True
) -> pathlib.Path:
    """Canonical path of one envelope under ``root``.

    Sharded: ``<kind>/<hash-prefix>/<kind>-<hash>.json``; flat puts the
    file directly in ``root`` (the pre-manifest layout).
    """
    name = envelope_filename(envelope)
    base = pathlib.Path(root)
    if not sharded:
        return base / name
    return base / envelope.kind / envelope.spec_hash[:SHARD_PREFIX_LEN] / name


def save_envelopes(
    directory: str | pathlib.Path,
    envelopes: Iterable[ResultEnvelope],
    *,
    sharded: bool = True,
) -> list[pathlib.Path]:
    """Write each envelope to ``directory`` (created if missing).

    Identical specs overwrite their previous file — the store holds at most
    one result per (spec, content) identity.  Returns the written paths.
    """
    root = pathlib.Path(directory)
    root.mkdir(parents=True, exist_ok=True)
    written: list[pathlib.Path] = []
    for envelope in envelopes:
        path = envelope_path(root, envelope, sharded=sharded)
        atomic_write_text(path, envelope.to_json() + "\n")
        written.append(path)
    return written


def load_envelopes(directory: str | pathlib.Path) -> list[ResultEnvelope]:
    """Read every envelope under ``directory``, sorted by path.

    Both store layouts (and mixtures of the two) load; the run manifest and
    anything under a dot-directory (reserved service metadata such as
    ``.service/``) are skipped.  A cell present in *both* layouts — e.g. a
    legacy flat store migrated in place — loads once, preferring the
    sharded copy, because the store holds at most one result per file name
    (kind + spec hash) by contract.  A corrupt file — truncated by a torn
    write, or simply not an envelope — is quarantined under
    ``<store>/.quarantine/`` with a reason file, warning with the offending
    path, and the scan continues: one bad cell must not take the rest of
    the store down.  A file that simply *vanished* between the listing and
    the read (a concurrent writer replacing it, a cleanup racing the scan)
    is skipped silently: listings of a live store are inherently a
    snapshot, and raising on the race would make every reader of a served
    store flaky.
    """
    root = pathlib.Path(directory)
    if not root.is_dir():
        raise ConfigurationError(f"envelope directory {root} does not exist")
    by_name: dict[str, pathlib.Path] = {}
    for path in sorted(root.rglob("*.json")):
        if path.name == MANIFEST_FILENAME:
            continue
        relative = path.relative_to(root)
        if any(part.startswith(".") for part in relative.parts):
            continue
        current = by_name.get(path.name)
        # deeper path wins: sharded copies shadow flat duplicates
        if current is None or len(path.parts) > len(current.parts):
            by_name[path.name] = path
    envelopes: list[ResultEnvelope] = []
    for path in sorted(by_name.values()):
        try:
            envelopes.append(ResultEnvelope.load(path))
        except ConfigurationError as exc:
            if isinstance(exc.__cause__, FileNotFoundError):
                continue  # listed, then gone: a writer won the race
            quarantine_file(root, path, reason=str(exc))
    return envelopes
