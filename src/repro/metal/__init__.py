"""Simulation of the Metal compute API.

Reproduces the surface the paper's host code touches — devices, buffers
(including page-aligned zero-copy wrapping), command queues/buffers/encoders,
compute pipelines, a shader library, and Metal Performance Shaders — backed
by the virtual machine in :mod:`repro.sim`.
"""

from repro.metal.errors import (
    BufferError_,
    CommandBufferError,
    DispatchError,
    EncoderError,
    LibraryError,
    MetalError,
    MPSError,
    NoCopyAlignmentError,
    PipelineError,
    StorageModeError,
)
from repro.metal.resources import MTLResourceStorageMode, MTLSize
from repro.metal.buffer import MTLBuffer
from repro.metal.library import MTLFunction, MTLLibrary
from repro.metal.pipeline import MTLComputePipelineState
from repro.metal.command_buffer import (
    MTLBlitCommandEncoder,
    MTLCommandBuffer,
    MTLCommandBufferStatus,
    MTLCommandQueue,
    MTLComputeCommandEncoder,
)
from repro.metal.device import MTLCreateSystemDefaultDevice, MTLDevice
from repro.metal.mps import (
    MPSDataType,
    MPSMatrix,
    MPSMatrixDescriptor,
    MPSMatrixMultiplication,
)

__all__ = [
    "MetalError",
    "BufferError_",
    "NoCopyAlignmentError",
    "StorageModeError",
    "LibraryError",
    "PipelineError",
    "EncoderError",
    "CommandBufferError",
    "DispatchError",
    "MPSError",
    "MTLResourceStorageMode",
    "MTLSize",
    "MTLBuffer",
    "MTLLibrary",
    "MTLFunction",
    "MTLComputePipelineState",
    "MTLCommandQueue",
    "MTLCommandBuffer",
    "MTLCommandBufferStatus",
    "MTLComputeCommandEncoder",
    "MTLBlitCommandEncoder",
    "MTLDevice",
    "MTLCreateSystemDefaultDevice",
    "MPSDataType",
    "MPSMatrixDescriptor",
    "MPSMatrix",
    "MPSMatrixMultiplication",
]
