"""``MTLBuffer``: unified-memory allocations visible to CPU and/or GPU.

The shared storage mode is the heart of the paper's zero-copy story: a
page-aligned host allocation is wrapped without copying
(``newBufferWithBytesNoCopy``) and both processors address the same bytes.
Private buffers model GPU-optimal memory the CPU cannot touch.
"""

from __future__ import annotations

import numpy as np

from repro.metal.errors import BufferError_, NoCopyAlignmentError, StorageModeError
from repro.metal.resources import MTLResourceStorageMode
from repro.units import PAGE_SIZE

__all__ = ["MTLBuffer"]


class MTLBuffer:
    """A device buffer backed by a NumPy byte array."""

    def __init__(
        self,
        backing: np.ndarray,
        storage_mode: MTLResourceStorageMode,
        *,
        no_copy: bool = False,
        label: str | None = None,
    ) -> None:
        flat = backing.reshape(-1).view(np.uint8)
        if flat.size == 0:
            raise BufferError_("buffer length must be positive")
        self._backing = flat
        self._storage_mode = storage_mode
        self._no_copy = no_copy
        self.label = label

    # -- construction helpers (used by MTLDevice) -----------------------
    @classmethod
    def with_length(
        cls, length: int, options: MTLResourceStorageMode, label: str | None = None
    ) -> "MTLBuffer":
        if length <= 0:
            raise BufferError_(f"buffer length must be positive, got {length}")
        return cls(np.zeros(length, dtype=np.uint8), options, label=label)

    @classmethod
    def with_bytes(
        cls,
        source: np.ndarray,
        options: MTLResourceStorageMode,
        label: str | None = None,
    ) -> "MTLBuffer":
        """Copying constructor (``newBufferWithBytes:``)."""
        data = np.ascontiguousarray(source).view(np.uint8).reshape(-1).copy()
        return cls(data, options, label=label)

    @classmethod
    def with_bytes_no_copy(
        cls,
        source: np.ndarray,
        length: int,
        options: MTLResourceStorageMode,
        label: str | None = None,
    ) -> "MTLBuffer":
        """Zero-copy constructor (``newBufferWithBytesNoCopy:length:options:``).

        Requires the base address and the length to be page-aligned, exactly
        as Metal asserts on real hardware; use
        :func:`repro.core.data.aligned_alloc` to satisfy this.
        """
        arr = np.asarray(source)
        if not arr.flags["C_CONTIGUOUS"]:
            raise NoCopyAlignmentError("no-copy buffers need contiguous memory")
        if options is not MTLResourceStorageMode.SHARED:
            raise StorageModeError(
                "newBufferWithBytesNoCopy requires the shared storage mode"
            )
        if length <= 0 or length > arr.nbytes:
            raise BufferError_(
                f"no-copy length {length} outside (0, {arr.nbytes}]"
            )
        if length % PAGE_SIZE != 0:
            raise NoCopyAlignmentError(
                f"no-copy length {length} is not a multiple of the "
                f"{PAGE_SIZE}-byte page size"
            )
        if arr.ctypes.data % PAGE_SIZE != 0:
            raise NoCopyAlignmentError(
                f"no-copy base address 0x{arr.ctypes.data:x} is not "
                f"{PAGE_SIZE}-byte aligned; allocate with aligned_alloc"
            )
        flat = arr.view(np.uint8).reshape(-1)[:length]
        return cls(flat, options, no_copy=True, label=label)

    # -- properties ------------------------------------------------------
    @property
    def length(self) -> int:
        return int(self._backing.size)

    @property
    def storage_mode(self) -> MTLResourceStorageMode:
        return self._storage_mode

    @property
    def is_no_copy(self) -> bool:
        return self._no_copy

    # -- access ------------------------------------------------------------
    def contents(self) -> np.ndarray:
        """CPU-visible bytes; raises for private buffers (as Metal's nil)."""
        if self._storage_mode is MTLResourceStorageMode.PRIVATE:
            raise StorageModeError(
                "contents() is undefined for MTLResourceStorageModePrivate buffers"
            )
        return self._backing

    def _gpu_view(self) -> np.ndarray:
        """GPU-side bytes (any storage mode); internal to the simulation."""
        return self._backing

    def as_array(
        self,
        dtype: np.dtype | type,
        shape: tuple[int, ...],
        *,
        offset: int = 0,
        gpu: bool = False,
    ) -> np.ndarray:
        """Typed view of (part of) the buffer.

        ``gpu=True`` bypasses the CPU-visibility check — only shader code
        inside :mod:`repro.metal.shaders` should use it.
        """
        data = self._gpu_view() if gpu else self.contents()
        dt = np.dtype(dtype)
        count = int(np.prod(shape))
        end = offset + count * dt.itemsize
        if offset < 0 or end > data.size:
            raise BufferError_(
                f"view [{offset}, {end}) outside buffer of {data.size} bytes"
            )
        return data[offset:end].view(dt).reshape(shape)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"MTLBuffer(length={self.length}, mode={self._storage_mode.value}, "
            f"no_copy={self._no_copy}, label={self.label!r})"
        )
