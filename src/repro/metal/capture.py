"""GPU capture: per-dispatch profiling, in the spirit of Metal's GPU capture.

Wraps a machine's execution trace into per-kernel statistics (dispatch
counts, busy time, achieved FLOPS/bandwidth, occupancy against the
architectural peaks) so benchmark authors can see *where* simulated time
went — the tooling a downstream user of this library reaches for first when
their numbers look off.
"""

from __future__ import annotations

import dataclasses
from typing import Mapping

from repro.sim.machine import Machine
from repro.sim.trace import TraceEvent

__all__ = ["KernelStats", "GPUCaptureScope", "summarize_gpu_trace"]


@dataclasses.dataclass(frozen=True)
class KernelStats:
    """Aggregated statistics for one kernel label prefix."""

    label: str
    dispatches: int
    busy_s: float
    flops: float
    bytes_moved: float
    peak_flops: float
    peak_bytes_per_s: float

    @property
    def achieved_flops(self) -> float:
        return self.flops / self.busy_s if self.busy_s > 0 else 0.0

    @property
    def achieved_bytes_per_s(self) -> float:
        return self.bytes_moved / self.busy_s if self.busy_s > 0 else 0.0

    @property
    def compute_occupancy(self) -> float:
        """Achieved FLOPS as a fraction of the GPU's architectural peak."""
        if self.peak_flops <= 0:
            return 0.0
        return min(1.0, self.achieved_flops / self.peak_flops)

    @property
    def bandwidth_occupancy(self) -> float:
        if self.peak_bytes_per_s <= 0:
            return 0.0
        return min(1.0, self.achieved_bytes_per_s / self.peak_bytes_per_s)


def _kernel_key(event: TraceEvent) -> str:
    # Group by everything before the parameterisation, e.g.
    # "shader/gemm_naive/n=64" -> "shader/gemm_naive".
    parts = event.label.split("/")
    return "/".join(p for p in parts if "=" not in p) or event.label


def summarize_gpu_trace(machine: Machine) -> dict[str, KernelStats]:
    """Per-kernel statistics over every GPU event in the machine's trace."""
    from repro.sim.engine import EngineKind

    peak_flops = machine.peak_flops(EngineKind.GPU)
    peak_bw = machine.memory_bandwidth_bytes_per_s()
    buckets: dict[str, list[TraceEvent]] = {}
    for event in machine.trace.events(engine="gpu"):
        buckets.setdefault(_kernel_key(event), []).append(event)
    return {
        key: KernelStats(
            label=key,
            dispatches=len(events),
            busy_s=sum(e.duration_s for e in events),
            flops=sum(e.flops for e in events),
            bytes_moved=sum(e.bytes_moved for e in events),
            peak_flops=peak_flops,
            peak_bytes_per_s=peak_bw,
        )
        for key, events in buckets.items()
    }


class GPUCaptureScope:
    """Capture GPU activity over a ``with`` block.

    Example::

        with GPUCaptureScope(machine) as capture:
            run_benchmark()
        print(capture.report())
    """

    def __init__(self, machine: Machine) -> None:
        self.machine = machine
        self._start_index = 0
        self._stats: Mapping[str, KernelStats] | None = None

    def __enter__(self) -> "GPUCaptureScope":
        self._start_index = len(self.machine.trace)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        from repro.sim.engine import EngineKind

        events = [
            e
            for e in list(self.machine.trace)[self._start_index :]
            if e.engine == "gpu"
        ]
        peak_flops = self.machine.peak_flops(EngineKind.GPU)
        peak_bw = self.machine.memory_bandwidth_bytes_per_s()
        buckets: dict[str, list[TraceEvent]] = {}
        for event in events:
            buckets.setdefault(_kernel_key(event), []).append(event)
        self._stats = {
            key: KernelStats(
                label=key,
                dispatches=len(evts),
                busy_s=sum(e.duration_s for e in evts),
                flops=sum(e.flops for e in evts),
                bytes_moved=sum(e.bytes_moved for e in evts),
                peak_flops=peak_flops,
                peak_bytes_per_s=peak_bw,
            )
            for key, evts in buckets.items()
        }

    @property
    def stats(self) -> Mapping[str, KernelStats]:
        if self._stats is None:
            raise RuntimeError("capture scope has not exited yet")
        return self._stats

    def report(self) -> str:
        """Human-readable per-kernel summary."""
        lines = [
            f"{'kernel':32s} {'disp':>5s} {'busy':>10s} {'GFLOPS':>9s} "
            f"{'GB/s':>8s} {'occ':>5s}"
        ]
        for key in sorted(self.stats):
            s = self.stats[key]
            lines.append(
                f"{s.label:32s} {s.dispatches:5d} {s.busy_s * 1e3:9.3f}ms "
                f"{s.achieved_flops / 1e9:9.1f} "
                f"{s.achieved_bytes_per_s / 1e9:8.1f} "
                f"{s.compute_occupancy:5.0%}"
            )
        return "\n".join(lines)
