"""``MTLCommandBuffer`` and its encoders.

The host-code lifecycle in the paper's Listing 2 is reproduced exactly:

    encoder = [commandBuffer computeCommandEncoder]        -> compute_command_encoder()
    ... set pipeline / buffers / dispatch ...
    [encoder endEncoding]                                   -> end_encoding()
    [commandBuffer commit]                                  -> commit()
    [commandBuffer waitUntilCompleted]                      -> wait_until_completed()

Encoded work executes on the simulated GPU timeline at ``commit()`` (the
virtual clock advances by the modelled kernel durations and power intervals
are recorded); ``wait_until_completed()`` transitions the status.  Lifecycle
violations raise :class:`CommandBufferError`, mirroring Metal's assertions.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Callable

from repro.metal.errors import CommandBufferError, EncoderError
from repro.metal.buffer import MTLBuffer
from repro.metal.resources import MTLResourceStorageMode, MTLSize
from repro.metal.pipeline import MTLComputePipelineState
from repro.sim.engine import EngineKind, Operation
from repro.sim.roofline import OpCost
from repro.soc.power import PowerComponent

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.metal.device import MTLDevice

__all__ = [
    "MTLCommandBufferStatus",
    "MTLCommandBuffer",
    "MTLComputeCommandEncoder",
    "MTLBlitCommandEncoder",
]


class MTLCommandBufferStatus(enum.Enum):
    NOT_ENQUEUED = "not-enqueued"
    COMMITTED = "committed"
    COMPLETED = "completed"
    ERROR = "error"


class MTLComputeCommandEncoder:
    """Records compute dispatches into its command buffer."""

    def __init__(self, command_buffer: "MTLCommandBuffer") -> None:
        self._cb = command_buffer
        self._pipeline: MTLComputePipelineState | None = None
        self._buffers: dict[int, tuple[MTLBuffer, int]] = {}
        self._bytes: dict[int, object] = {}
        self._ended = False

    def set_compute_pipeline_state(self, pipeline: MTLComputePipelineState) -> None:
        """Select the pipeline (kernel) for subsequent dispatches."""
        self._check_open()
        self._pipeline = pipeline

    def set_buffer(self, buffer: MTLBuffer, offset: int, index: int) -> None:
        """Bind a buffer (with byte offset) to a kernel argument index."""
        self._check_open()
        if index < 0:
            raise EncoderError(f"buffer index must be non-negative, got {index}")
        if offset < 0 or offset >= buffer.length:
            raise EncoderError(
                f"buffer offset {offset} outside [0, {buffer.length})"
            )
        self._buffers[index] = (buffer, offset)

    def set_bytes(self, value: object, index: int) -> None:
        """Small constant data (``setBytes:length:atIndex:``)."""
        self._check_open()
        if index < 0:
            raise EncoderError(f"bytes index must be non-negative, got {index}")
        self._bytes[index] = value

    def dispatch_threadgroups(
        self,
        threadgroups_per_grid: MTLSize,
        threads_per_threadgroup: MTLSize,
    ) -> None:
        """Record one kernel dispatch with the given grid geometry."""
        self._check_open()
        pipeline = self._pipeline
        if pipeline is None:
            raise EncoderError("dispatch without a compute pipeline state")
        if (
            threads_per_threadgroup.total
            > pipeline.max_total_threads_per_threadgroup
        ):
            raise EncoderError(
                f"threadgroup of {threads_per_threadgroup.total} threads exceeds "
                f"the {pipeline.max_total_threads_per_threadgroup}-thread limit"
            )
        # Snapshot encoder state; execution happens at commit time.
        shader = pipeline.function.shader
        buffers = dict(self._buffers)
        constants = dict(self._bytes)
        device = self._cb.device

        def run() -> None:
            from repro.metal.shaders import ShaderContext

            ctx = ShaderContext(
                device=device,
                buffers=buffers,
                constants=constants,
                threadgroups_per_grid=threadgroups_per_grid,
                threads_per_threadgroup=threads_per_threadgroup,
            )
            shader.dispatch(ctx)

        self._cb._enqueue(run)

    def end_encoding(self) -> None:
        """Close the encoder; further encoding is an error."""
        self._check_open()
        self._ended = True

    def _check_open(self) -> None:
        if self._ended:
            raise EncoderError("encoder already ended")
        if self._cb.status is not MTLCommandBufferStatus.NOT_ENQUEUED:
            raise EncoderError("cannot encode into a committed command buffer")


class MTLBlitCommandEncoder:
    """DMA copies between buffers (used for private-storage staging)."""

    def __init__(self, command_buffer: "MTLCommandBuffer") -> None:
        self._cb = command_buffer
        self._ended = False

    def copy_from_buffer(
        self,
        source: MTLBuffer,
        source_offset: int,
        destination: MTLBuffer,
        destination_offset: int,
        size: int,
    ) -> None:
        """Record a DMA copy between (possibly private) buffers."""
        if self._ended:
            raise EncoderError("encoder already ended")
        if size <= 0:
            raise EncoderError("blit size must be positive")
        if source_offset + size > source.length:
            raise EncoderError("blit reads past the end of the source buffer")
        if destination_offset + size > destination.length:
            raise EncoderError("blit writes past the end of the destination buffer")
        device = self._cb.device

        def run() -> None:
            src = source._gpu_view()[source_offset : source_offset + size]
            destination._gpu_view()[
                destination_offset : destination_offset + size
            ] = src
            machine = device.machine
            op = Operation(
                engine=EngineKind.GPU,
                label=f"blit/{size}B",
                cost=OpCost(bytes_read=float(size), bytes_written=float(size)),
                peak_flops=machine.peak_flops(EngineKind.GPU),
                peak_bytes_per_s=machine.memory_bandwidth_bytes_per_s(),
                memory_efficiency=0.85,
                overhead_s=20e-6,
                power_draws_w={
                    PowerComponent.GPU: 1.5,
                    PowerComponent.DRAM: 1.0,
                },
            )
            machine.execute(op)

        self._cb._enqueue(run)

    def end_encoding(self) -> None:
        """Close the encoder; further encoding is an error."""
        if self._ended:
            raise EncoderError("encoder already ended")
        self._ended = True


class MTLCommandBuffer:
    """A unit of work submitted to a command queue."""

    def __init__(self, device: "MTLDevice") -> None:
        self.device = device
        self._status = MTLCommandBufferStatus.NOT_ENQUEUED
        self._work: list[Callable[[], None]] = []
        self._error: Exception | None = None
        self._gpu_start_s: float | None = None
        self._gpu_end_s: float | None = None

    # -- encoder factories ----------------------------------------------
    def compute_command_encoder(self) -> MTLComputeCommandEncoder:
        """Open a compute encoder on this command buffer."""
        if self._status is not MTLCommandBufferStatus.NOT_ENQUEUED:
            raise CommandBufferError("cannot encode into a committed command buffer")
        return MTLComputeCommandEncoder(self)

    def blit_command_encoder(self) -> MTLBlitCommandEncoder:
        """Open a blit (DMA) encoder on this command buffer."""
        if self._status is not MTLCommandBufferStatus.NOT_ENQUEUED:
            raise CommandBufferError("cannot encode into a committed command buffer")
        return MTLBlitCommandEncoder(self)

    def _enqueue(self, work: Callable[[], None]) -> None:
        self._work.append(work)

    # -- lifecycle ---------------------------------------------------------
    @property
    def status(self) -> MTLCommandBufferStatus:
        return self._status

    @property
    def error(self) -> Exception | None:
        return self._error

    @property
    def gpu_start_time(self) -> float | None:
        """Virtual timestamp at which GPU execution began (``GPUStartTime``)."""
        return self._gpu_start_s

    @property
    def gpu_end_time(self) -> float | None:
        return self._gpu_end_s

    def commit(self) -> None:
        """Submit the encoded work; executes on the simulated GPU timeline."""
        if self._status is not MTLCommandBufferStatus.NOT_ENQUEUED:
            raise CommandBufferError("command buffer already committed")
        self._status = MTLCommandBufferStatus.COMMITTED
        self._gpu_start_s = self.device.machine.now_s()
        try:
            for work in self._work:
                work()
        except Exception as exc:
            self._status = MTLCommandBufferStatus.ERROR
            self._error = exc
            raise
        finally:
            self._gpu_end_s = self.device.machine.now_s()

    def wait_until_completed(self) -> None:
        """Block until the committed work completes (state transition)."""
        if self._status is MTLCommandBufferStatus.NOT_ENQUEUED:
            raise CommandBufferError("waitUntilCompleted before commit")
        if self._status is MTLCommandBufferStatus.ERROR:
            return
        self._status = MTLCommandBufferStatus.COMPLETED


class MTLCommandQueue:
    """Creates command buffers against one device."""

    def __init__(self, device: "MTLDevice") -> None:
        self.device = device

    def command_buffer(self) -> MTLCommandBuffer:
        """Create a fresh command buffer on this queue."""
        return MTLCommandBuffer(self.device)
