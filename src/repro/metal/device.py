"""``MTLDevice``: the GPU handle, rooted in a simulated machine.

Mirrors the slice of the Metal device API the paper's host code uses
(Listing 2): buffer construction (including the zero-copy path), command
queues, and shader-library access.
"""

from __future__ import annotations

import numpy as np

from repro.metal.buffer import MTLBuffer
from repro.metal.command_buffer import MTLCommandQueue
from repro.metal.errors import BufferError_
from repro.metal.library import MTLFunction, MTLLibrary
from repro.metal.pipeline import MTLComputePipelineState
from repro.metal.resources import MTLResourceStorageMode, MTLSize
from repro.sim.machine import Machine
from repro.units import GIB

__all__ = ["MTLDevice", "MTLCreateSystemDefaultDevice"]


class MTLDevice:
    """A simulated Metal device bound to one :class:`Machine`."""

    def __init__(self, machine: Machine) -> None:
        self.machine = machine
        self._buffer_counter = 0

    # -- identity ----------------------------------------------------------
    @property
    def name(self) -> str:
        return f"Apple {self.machine.chip.name}"

    @property
    def has_unified_memory(self) -> bool:
        return True

    @property
    def max_threads_per_threadgroup(self) -> MTLSize:
        return MTLSize(1024, 1024, 64)

    @property
    def recommended_max_working_set_size(self) -> int:
        """Bytes of unified memory the GPU may reasonably use."""
        return int(self.machine.device.memory_gb * GIB * 0.75)

    # -- buffers -------------------------------------------------------------
    def new_buffer_with_length(
        self,
        length: int,
        options: MTLResourceStorageMode = MTLResourceStorageMode.SHARED,
        label: str | None = None,
    ) -> MTLBuffer:
        """Allocate a zero-filled buffer of ``length`` bytes."""
        if length > self.recommended_max_working_set_size:
            raise BufferError_(
                f"allocation of {length} bytes exceeds the working-set limit of "
                f"{self.recommended_max_working_set_size} bytes"
            )
        self._buffer_counter += 1
        return MTLBuffer.with_length(
            length, options, label=label or f"buffer-{self._buffer_counter}"
        )

    def new_buffer_with_bytes(
        self,
        source: np.ndarray,
        options: MTLResourceStorageMode = MTLResourceStorageMode.SHARED,
        label: str | None = None,
    ) -> MTLBuffer:
        """Allocate a buffer initialised with a copy of ``source``."""
        self._buffer_counter += 1
        return MTLBuffer.with_bytes(
            source, options, label=label or f"buffer-{self._buffer_counter}"
        )

    def new_buffer_with_bytes_no_copy(
        self,
        source: np.ndarray,
        length: int,
        options: MTLResourceStorageMode = MTLResourceStorageMode.SHARED,
        deallocator: object | None = None,
        label: str | None = None,
    ) -> MTLBuffer:
        """Zero-copy wrap of a page-aligned host allocation (Listing 2)."""
        del deallocator  # the simulation has no ownership transfer to model
        self._buffer_counter += 1
        return MTLBuffer.with_bytes_no_copy(
            source, length, options, label=label or f"buffer-{self._buffer_counter}"
        )

    # -- queues, pipelines & libraries ---------------------------------------
    def new_command_queue(self) -> MTLCommandQueue:
        """Create a command queue on this device."""
        return MTLCommandQueue(self)

    def new_compute_pipeline_state_with_function(
        self, function: "MTLFunction"
    ) -> "MTLComputePipelineState":
        """Compile a kernel function into a compute pipeline."""
        from repro.metal.pipeline import MTLComputePipelineState

        return MTLComputePipelineState(function=function)

    def new_default_library(self) -> MTLLibrary:
        """All built-in kernels (our ``default.metallib``)."""
        return MTLLibrary()

    def new_library_with_functions(self, names: tuple[str, ...]) -> MTLLibrary:
        """A restricted library (our compiled-from-source ``.metallib``)."""
        return MTLLibrary(names)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"MTLDevice(name={self.name!r})"


def MTLCreateSystemDefaultDevice(machine: Machine) -> MTLDevice:
    """Factory mirroring the C function of the same name.

    Real Metal discovers the system GPU; the simulation must be told which
    machine is "the system", so the machine is an explicit argument.
    """
    return MTLDevice(machine)
