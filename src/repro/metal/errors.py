"""Metal-simulation error types.

These mirror the failure modes of the real Metal API (assertion failures,
nil returns, validation-layer errors) as Python exceptions rooted in the
library-wide hierarchy.
"""

from __future__ import annotations

from repro.errors import AlignmentError, ReproError

__all__ = [
    "MetalError",
    "BufferError_",
    "NoCopyAlignmentError",
    "StorageModeError",
    "LibraryError",
    "PipelineError",
    "EncoderError",
    "CommandBufferError",
    "DispatchError",
    "MPSError",
]


class MetalError(ReproError):
    """Base class for Metal-simulation errors."""


class BufferError_(MetalError):
    """Invalid buffer construction or access."""


class NoCopyAlignmentError(BufferError_, AlignmentError):
    """``newBufferWithBytesNoCopy`` requires page-aligned base and length.

    The paper allocates matrices with ``aligned_alloc`` on 16,384-byte pages
    and extends lengths to page multiples precisely to satisfy this
    constraint (section 3.2).
    """


class StorageModeError(BufferError_):
    """CPU access to a ``MTLResourceStorageModePrivate`` buffer, etc."""


class LibraryError(MetalError):
    """Unknown shader function or bad library construction."""


class PipelineError(MetalError):
    """Compute pipeline construction/validation failure."""


class EncoderError(MetalError):
    """Encoder misuse (ended twice, missing pipeline, bad argument index)."""


class CommandBufferError(MetalError):
    """Command-buffer lifecycle violation (double commit, wait-before-commit)."""


class DispatchError(MetalError):
    """Threadgroup geometry does not cover the problem domain."""


class MPSError(MetalError):
    """Metal Performance Shaders misuse (descriptor/shape mismatch)."""
