"""``MTLLibrary`` / ``MTLFunction``: the compiled shader collection.

The paper compiles its naive and CUTLASS-style MSL shaders into a
``.metallib`` loaded at startup (section 3.2).  Our equivalent is a registry
of Python shader implementations (:mod:`repro.metal.shaders`); a library is a
named view over that registry, and a function is a handle suitable for
building a compute pipeline.
"""

from __future__ import annotations

import dataclasses

from repro.metal.errors import LibraryError
from repro.metal.shaders import ShaderFunction, registered_shaders, shader_by_name

__all__ = ["MTLFunction", "MTLLibrary"]


@dataclasses.dataclass(frozen=True)
class MTLFunction:
    """A handle to one kernel entry point."""

    name: str
    shader: ShaderFunction

    @property
    def impl_key(self) -> str:
        return self.shader.impl_key


class MTLLibrary:
    """A set of named kernel functions."""

    def __init__(self, function_names: tuple[str, ...] | None = None) -> None:
        available = registered_shaders()
        if function_names is None:
            self._names = tuple(sorted(available))
        else:
            unknown = [n for n in function_names if n not in available]
            if unknown:
                raise LibraryError(
                    f"library references unknown shader(s): {', '.join(unknown)}"
                )
            self._names = tuple(function_names)

    @property
    def function_names(self) -> tuple[str, ...]:
        return self._names

    def new_function_with_name(self, name: str) -> MTLFunction:
        """Look up a kernel; raises :class:`LibraryError` if absent (nil)."""
        if name not in self._names:
            raise LibraryError(
                f"no function named {name!r} in library; "
                f"available: {', '.join(self._names)}"
            )
        return MTLFunction(name=name, shader=shader_by_name(name))
