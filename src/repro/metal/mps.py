"""Metal Performance Shaders: matrix multiplication.

Reproduces the API surface of the paper's Listing 2: descriptors, matrices
wrapping ``MTLBuffer`` storage, and ``MPSMatrixMultiplication`` encoding into
a command buffer.  MPS computes ``C = alpha * op(A) op(B) + beta * C``; the
paper uses the plain ``C = A B`` configuration.
"""

from __future__ import annotations

import dataclasses
import enum

import numpy as np

from repro.calibration.gemm import build_gemm_operation
from repro.metal.buffer import MTLBuffer
from repro.metal.command_buffer import MTLCommandBuffer
from repro.metal.errors import MPSError
from repro.sim.policy import NumericsPolicy

if True:  # keep import order tidy for the TYPE_CHECKING-free module
    from repro.metal.device import MTLDevice

__all__ = [
    "MPSDataType",
    "MPSMatrixDescriptor",
    "MPSMatrix",
    "MPSMatrixMultiplication",
]


class MPSDataType(enum.Enum):
    FLOAT32 = ("float32", 4)
    FLOAT16 = ("float16", 2)

    def __init__(self, key: str, nbytes: int) -> None:
        self.key = key
        self.nbytes = nbytes

    @property
    def dtype(self) -> np.dtype:
        return np.dtype(np.float32 if self is MPSDataType.FLOAT32 else np.float16)


@dataclasses.dataclass(frozen=True)
class MPSMatrixDescriptor:
    """Shape and layout of an MPS matrix (``matrixDescriptorWithRows:...``)."""

    rows: int
    columns: int
    row_bytes: int
    data_type: MPSDataType = MPSDataType.FLOAT32

    def __post_init__(self) -> None:
        if self.rows < 1 or self.columns < 1:
            raise MPSError("matrix dimensions must be positive")
        if self.row_bytes < self.columns * self.data_type.nbytes:
            raise MPSError(
                f"rowBytes {self.row_bytes} < columns * element size "
                f"({self.columns * self.data_type.nbytes})"
            )
        if self.row_bytes % self.data_type.nbytes != 0:
            raise MPSError("rowBytes must be a multiple of the element size")

    @property
    def required_length(self) -> int:
        return self.rows * self.row_bytes


class MPSMatrix:
    """A matrix view over an ``MTLBuffer``."""

    def __init__(self, buffer: MTLBuffer, descriptor: MPSMatrixDescriptor) -> None:
        if buffer.length < descriptor.required_length:
            raise MPSError(
                f"buffer of {buffer.length} bytes too small for descriptor "
                f"needing {descriptor.required_length}"
            )
        self.buffer = buffer
        self.descriptor = descriptor

    def _array(self) -> np.ndarray:
        """Row-strided device-side view honouring ``rowBytes``."""
        desc = self.descriptor
        elem = desc.data_type.nbytes
        stride_elems = desc.row_bytes // elem
        full = self.buffer.as_array(
            desc.data_type.dtype, (desc.rows, stride_elems), gpu=True
        )
        return full[:, : desc.columns]


class MPSMatrixMultiplication:
    """``C = alpha * op(A) op(B) + beta * C`` on the GPU."""

    def __init__(
        self,
        device: MTLDevice,
        *,
        result_rows: int,
        result_columns: int,
        interior_columns: int,
        transpose_left: bool = False,
        transpose_right: bool = False,
        alpha: float = 1.0,
        beta: float = 0.0,
    ) -> None:
        if min(result_rows, result_columns, interior_columns) < 1:
            raise MPSError("matrix multiplication dimensions must be positive")
        self.device = device
        self.result_rows = result_rows
        self.result_columns = result_columns
        self.interior_columns = interior_columns
        self.transpose_left = transpose_left
        self.transpose_right = transpose_right
        self.alpha = float(alpha)
        self.beta = float(beta)

    def _check_shapes(
        self, left: MPSMatrix, right: MPSMatrix, result: MPSMatrix
    ) -> None:
        lrows, lcols = left.descriptor.rows, left.descriptor.columns
        if self.transpose_left:
            lrows, lcols = lcols, lrows
        rrows, rcols = right.descriptor.rows, right.descriptor.columns
        if self.transpose_right:
            rrows, rcols = rcols, rrows
        if (lrows, lcols) != (self.result_rows, self.interior_columns):
            raise MPSError(
                f"left matrix is {lrows}x{lcols}, expected "
                f"{self.result_rows}x{self.interior_columns}"
            )
        if (rrows, rcols) != (self.interior_columns, self.result_columns):
            raise MPSError(
                f"right matrix is {rrows}x{rcols}, expected "
                f"{self.interior_columns}x{self.result_columns}"
            )
        if (result.descriptor.rows, result.descriptor.columns) != (
            self.result_rows,
            self.result_columns,
        ):
            raise MPSError(
                f"result matrix is {result.descriptor.rows}x"
                f"{result.descriptor.columns}, expected "
                f"{self.result_rows}x{self.result_columns}"
            )

    def encode_to_command_buffer(
        self,
        command_buffer: MTLCommandBuffer,
        left_matrix: MPSMatrix,
        right_matrix: MPSMatrix,
        result_matrix: MPSMatrix,
    ) -> None:
        """Encode ``C = alpha op(A) op(B) + beta C`` into the command buffer."""
        self._check_shapes(left_matrix, right_matrix, result_matrix)
        kernel = self

        def run() -> None:
            machine = kernel.device.machine
            m, n, k = (
                kernel.result_rows,
                kernel.result_columns,
                kernel.interior_columns,
            )
            policy = machine.numerics.effective_policy(max(m, n, k))
            if policy is not NumericsPolicy.MODEL_ONLY:
                a = left_matrix._array()
                if kernel.transpose_left:
                    a = a.T
                b = right_matrix._array()
                if kernel.transpose_right:
                    b = b.T
                c = result_matrix._array()
                alpha = np.float32(kernel.alpha)
                beta = np.float32(kernel.beta)
                if policy is NumericsPolicy.SAMPLED:
                    rows = machine.numerics.sampled_row_indices(m)
                    product = (a[rows, :] @ b).astype(np.float32, copy=False)
                    if kernel.beta == 0.0:
                        c[rows, :] = alpha * product
                    else:
                        c[rows, :] = alpha * product + beta * c[rows, :]
                else:
                    product = (a @ b).astype(np.float32, copy=False)
                    if kernel.beta == 0.0:
                        c[...] = alpha * product
                    else:
                        c[...] = alpha * product + beta * c

            # Timing calibration is parameterised on square sizes; use the
            # geometric scale of the problem for non-square products.
            n_equiv = int(round((m * n * k) ** (1.0 / 3.0)))
            machine.execute(
                build_gemm_operation(
                    machine.chip,
                    "gpu-mps",
                    max(1, n_equiv),
                    label=f"mps/sgemm/{m}x{n}x{k}",
                )
            )

        command_buffer._enqueue(run)
