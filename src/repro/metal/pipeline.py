"""``MTLComputePipelineState``: a function prepared for dispatch."""

from __future__ import annotations

import dataclasses

from repro.metal.errors import PipelineError
from repro.metal.library import MTLFunction

__all__ = ["MTLComputePipelineState"]

#: Hardware limits of Apple-family GPUs.
MAX_TOTAL_THREADS_PER_THREADGROUP = 1024
THREAD_EXECUTION_WIDTH = 32


@dataclasses.dataclass(frozen=True)
class MTLComputePipelineState:
    """Compiled pipeline for one kernel function."""

    function: MTLFunction
    max_total_threads_per_threadgroup: int = MAX_TOTAL_THREADS_PER_THREADGROUP
    thread_execution_width: int = THREAD_EXECUTION_WIDTH

    def __post_init__(self) -> None:
        if self.max_total_threads_per_threadgroup < 1:
            raise PipelineError("threadgroup capacity must be positive")
        if self.thread_execution_width < 1:
            raise PipelineError("thread execution width must be positive")

    @property
    def label(self) -> str:
        return self.function.name
