"""Metal resource options and geometry types."""

from __future__ import annotations

import dataclasses
import enum

from repro.metal.errors import DispatchError

__all__ = ["MTLResourceStorageMode", "MTLSize"]


class MTLResourceStorageMode(enum.Enum):
    """Buffer storage modes (section 2.4 of the paper).

    * ``SHARED`` — one physical allocation visible to CPU and GPU (the
      zero-copy unified-memory mode the paper's benchmarks rely on);
    * ``PRIVATE`` — GPU-only; the CPU must blit data in and out;
    * ``MANAGED`` — mirrored copies with explicit synchronisation (exists on
      Intel Macs; kept for the storage-mode ablation).
    """

    SHARED = "shared"
    PRIVATE = "private"
    MANAGED = "managed"


@dataclasses.dataclass(frozen=True)
class MTLSize:
    """A 3-D extent, as used for grids and threadgroups."""

    width: int
    height: int = 1
    depth: int = 1

    def __post_init__(self) -> None:
        if min(self.width, self.height, self.depth) < 1:
            raise DispatchError(
                f"MTLSize extents must be >= 1, got "
                f"({self.width}, {self.height}, {self.depth})"
            )

    @property
    def total(self) -> int:
        return self.width * self.height * self.depth

    def as_tuple(self) -> tuple[int, int, int]:
        """The extent as a ``(width, height, depth)`` tuple."""
        return (self.width, self.height, self.depth)
