"""The shader registry — this simulation's ``.metallib``.

The paper compiles Metal Shading Language kernels into a library loaded at
startup; here each kernel is a Python object implementing
:class:`ShaderFunction`.  Kernels execute their numerics at threadgroup
granularity (vectorised with NumPy) and account their simulated duration and
power through the device's machine, so host code sees the same behaviour as
on real hardware: correct results in the buffers, and time/energy on the
(virtual) clock.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Mapping, Protocol

import numpy as np

from repro.metal.errors import EncoderError, LibraryError
from repro.metal.buffer import MTLBuffer
from repro.metal.resources import MTLSize

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.metal.device import MTLDevice

__all__ = [
    "ShaderContext",
    "ShaderFunction",
    "register_shader",
    "registered_shaders",
    "shader_by_name",
]


@dataclasses.dataclass(frozen=True)
class ShaderContext:
    """Everything a kernel sees at dispatch time."""

    device: "MTLDevice"
    buffers: Mapping[int, tuple[MTLBuffer, int]]
    constants: Mapping[int, object]
    threadgroups_per_grid: MTLSize
    threads_per_threadgroup: MTLSize

    # -- argument access helpers ----------------------------------------
    def buffer(self, index: int) -> tuple[MTLBuffer, int]:
        """The (buffer, offset) bound at a kernel argument index."""
        try:
            return self.buffers[index]
        except KeyError:
            raise EncoderError(f"kernel argument buffer {index} was not bound") from None

    def array(
        self, index: int, dtype: np.dtype | type, shape: tuple[int, ...]
    ) -> np.ndarray:
        """Typed view of a bound buffer (GPU-side: works for private storage)."""
        buf, offset = self.buffer(index)
        return buf.as_array(dtype, shape, offset=offset, gpu=True)

    def constant(self, index: int) -> object:
        """The raw constant set via ``setBytes`` at an index."""
        try:
            return self.constants[index]
        except KeyError:
            raise EncoderError(f"kernel constant {index} was not set") from None

    def uint_constant(self, index: int) -> int:
        """A ``setBytes`` constant interpreted as a non-negative integer."""
        value = self.constant(index)
        out = int(np.asarray(value).reshape(-1)[0])
        if out < 0:
            raise EncoderError(f"constant {index} must be non-negative, got {out}")
        return out

    def float_constant(self, index: int) -> float:
        """A ``setBytes`` constant interpreted as a float scalar."""
        value = self.constant(index)
        return float(np.asarray(value).reshape(-1)[0])

    @property
    def grid_threads_x(self) -> int:
        return self.threadgroups_per_grid.width * self.threads_per_threadgroup.width

    @property
    def grid_threads_y(self) -> int:
        return self.threadgroups_per_grid.height * self.threads_per_threadgroup.height


class ShaderFunction(Protocol):
    """A registered kernel: a name, a calibration key, and a dispatch entry."""

    name: str
    impl_key: str

    def dispatch(self, ctx: ShaderContext) -> None:  # pragma: no cover - protocol
        """Execute the kernel: numerics plus simulated timing/power."""
        ...


_REGISTRY: dict[str, ShaderFunction] = {}


def register_shader(shader: ShaderFunction) -> ShaderFunction:
    """Add a kernel to the global library (startup-time, like metallib load)."""
    if not shader.name:
        raise LibraryError("shader needs a non-empty name")
    if shader.name in _REGISTRY:
        raise LibraryError(f"shader {shader.name!r} registered twice")
    _REGISTRY[shader.name] = shader
    return shader


def registered_shaders() -> tuple[str, ...]:
    """Sorted names of every kernel in the global library."""
    return tuple(sorted(_REGISTRY))


def shader_by_name(name: str) -> ShaderFunction:
    """Look up a registered kernel; raises :class:`LibraryError` if absent."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise LibraryError(f"unknown shader {name!r}") from None


# Register the built-in kernels (import side effects, like loading .metallib).
from repro.metal.shaders import stream as _stream  # noqa: E402,F401
from repro.metal.shaders import gemm_naive as _gemm_naive  # noqa: E402,F401
from repro.metal.shaders import gemm_tiled as _gemm_tiled  # noqa: E402,F401
from repro.metal.shaders import gemm_fp64_emulated as _gemm_fp64  # noqa: E402,F401
