"""Shared machinery for the GEMM shaders.

Each GEMM kernel supports three numerics paths:

* an *exact threadgroup emulation* that walks the dispatch grid one
  threadgroup at a time (used for small problems and by the semantics tests);
* a *vectorised* path computing the same values with large NumPy operations
  (used for FULL numerics on larger problems after the grid coverage has
  been validated);
* a *sampled* path computing a deterministic subset of output rows
  (policy ``SAMPLED`` above the full threshold).

All paths leave identical values in the covered entries (property-tested).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.metal.errors import DispatchError
from repro.metal.shaders import ShaderContext
from repro.sim.policy import NumericsPolicy

__all__ = [
    "validate_gemm_grid",
    "threadgroup_tiles",
    "run_gemm_numerics",
    "PER_THREADGROUP_LIMIT",
]

#: Below this dimension FULL numerics use the exact per-threadgroup walk.
PER_THREADGROUP_LIMIT = 128


def validate_gemm_grid(ctx: ShaderContext, n: int) -> None:
    """The dispatch must cover every element of the n x n output."""
    if n <= 0:
        raise DispatchError("GEMM dimension must be positive")
    if ctx.grid_threads_x < n or ctx.grid_threads_y < n:
        raise DispatchError(
            f"grid of {ctx.grid_threads_x}x{ctx.grid_threads_y} threads cannot "
            f"cover an {n}x{n} output"
        )


def threadgroup_tiles(ctx: ShaderContext, n: int) -> list[tuple[slice, slice]]:
    """(row-slice, col-slice) of C owned by each threadgroup, in dispatch order.

    Threads map to output elements as ``C[y, x]`` with ``x`` horizontal;
    threadgroups tile the output in row-major group order.  Slices are
    clipped to the matrix, and threadgroups entirely outside it own nothing.
    """
    tw = ctx.threads_per_threadgroup.width
    th = ctx.threads_per_threadgroup.height
    tiles: list[tuple[slice, slice]] = []
    for gy in range(ctx.threadgroups_per_grid.height):
        r0 = gy * th
        if r0 >= n:
            continue
        r1 = min(r0 + th, n)
        for gx in range(ctx.threadgroups_per_grid.width):
            c0 = gx * tw
            if c0 >= n:
                continue
            c1 = min(c0 + tw, n)
            tiles.append((slice(r0, r1), slice(c0, c1)))
    return tiles


def run_gemm_numerics(
    ctx: ShaderContext,
    n: int,
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray,
    *,
    tile_fn: Callable[[np.ndarray, np.ndarray], np.ndarray],
    vector_fn: Callable[[np.ndarray, np.ndarray], np.ndarray],
) -> None:
    """Execute the policy-selected numerics path.

    ``tile_fn(a_rows, b_cols) -> c_tile`` computes one output tile the way
    the kernel's inner loop would; ``vector_fn(a, b) -> c`` computes the full
    product with the same accumulation order at matrix scale.
    """
    machine = ctx.device.machine
    policy = machine.numerics.effective_policy(n)
    if policy is NumericsPolicy.MODEL_ONLY:
        return
    if policy is NumericsPolicy.SAMPLED:
        rows = machine.numerics.sampled_row_indices(n)
        c[rows, :] = vector_fn(a[rows, :], b)
        return
    # FULL
    if n <= PER_THREADGROUP_LIMIT:
        for row_slice, col_slice in threadgroup_tiles(ctx, n):
            c[row_slice, col_slice] = tile_fn(a[row_slice, :], b[:, col_slice])
        return
    c[...] = vector_fn(a, b)
