"""FP64 GEMM via double-float (two-FP32) emulation.

The M-series GPUs "lack native FP64 support (which can be emulated)"
(section 1).  This kernel implements the classic double-float representation:
each FP64 value is carried as an unevaluated sum ``hi + lo`` of two FP32
numbers, and products/sums use error-free transformations (TwoProd via FMA,
TwoSum).  Throughput is modelled at a calibrated ~20x penalty against the
FP32 MPS path, which is why the paper treats FP64 workloads as a poor fit
for the M-series GPU.

Buffer layout: A_hi, A_lo, B_hi, B_lo, C_hi, C_lo at indices 0-5; the
dimension is the uint constant at index 6.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.calibration.gemm import build_gemm_operation
from repro.metal.shaders import ShaderContext, register_shader
from repro.metal.shaders._gemm_common import validate_gemm_grid
from repro.sim.policy import NumericsPolicy

__all__ = [
    "EmulatedFp64GemmShader",
    "split_to_float_pair",
    "merge_float_pair",
    "double_float_matmul",
]


def split_to_float_pair(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Decompose FP64 values into (hi, lo) FP32 pairs.

    ``hi`` is the correctly rounded FP32 value and ``lo`` the rounded
    residual; ``hi + lo`` carries ~49 mantissa bits (relative error bounded
    by 2^-45), the precision double-float arithmetic can guarantee.
    """
    v = np.asarray(values, dtype=np.float64)
    hi = v.astype(np.float32)
    lo = (v - hi.astype(np.float64)).astype(np.float32)
    return hi, lo


def merge_float_pair(hi: np.ndarray, lo: np.ndarray) -> np.ndarray:
    """Recombine a double-float pair into FP64."""
    return hi.astype(np.float64) + lo.astype(np.float64)


def double_float_matmul(
    a_hi: np.ndarray, a_lo: np.ndarray, b_hi: np.ndarray, b_lo: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Double-float product of two pair-represented matrices.

    The compensated accumulation is modelled in FP64 (each double-float
    number is exactly representable there) and re-split on output: this is
    numerically equivalent to the TwoProd/TwoSum chain of the device kernel
    up to the final rounding, and property tests check the ~2^-45 relative
    error bound that double-float arithmetic guarantees.
    """
    a = merge_float_pair(a_hi, a_lo)
    b = merge_float_pair(b_hi, b_lo)
    return split_to_float_pair(a @ b)


@dataclasses.dataclass(frozen=True)
class EmulatedFp64GemmShader:
    name: str = "gemm_fp64_emulated"
    impl_key: str = "gpu-fp64-emulated"

    def dispatch(self, ctx: ShaderContext) -> None:
        """Run the double-float GEMM over the bound pair-plane buffers."""
        n = ctx.uint_constant(6)
        validate_gemm_grid(ctx, n)
        a_hi = ctx.array(0, np.float32, (n, n))
        a_lo = ctx.array(1, np.float32, (n, n))
        b_hi = ctx.array(2, np.float32, (n, n))
        b_lo = ctx.array(3, np.float32, (n, n))
        c_hi = ctx.array(4, np.float32, (n, n))
        c_lo = ctx.array(5, np.float32, (n, n))

        machine = ctx.device.machine
        policy = machine.numerics.effective_policy(n)
        if policy is not NumericsPolicy.MODEL_ONLY:
            if policy is NumericsPolicy.SAMPLED:
                rows = machine.numerics.sampled_row_indices(n)
                hi, lo = double_float_matmul(
                    a_hi[rows, :], a_lo[rows, :], b_hi, b_lo
                )
                c_hi[rows, :] = hi
                c_lo[rows, :] = lo
            else:
                hi, lo = double_float_matmul(a_hi, a_lo, b_hi, b_lo)
                c_hi[...] = hi
                c_lo[...] = lo

        machine.execute(
            build_gemm_operation(
                machine.chip,
                self.impl_key,
                n,
                label=f"shader/{self.name}/n={n}",
                element_bytes=8,
            )
        )


register_shader(EmulatedFp64GemmShader())
