"""The naive GEMM shader ("Naive algorithm as shader", Table 2).

One thread per output element, each walking the full row of A and column of
B from device memory — no threadgroup-memory staging.  Arguments follow the
open-source shaders the paper uses: A, B, C at buffer indices 0-2 and the
matrix dimension as a uint constant at index 3.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.calibration.gemm import build_gemm_operation
from repro.metal.shaders import ShaderContext, register_shader
from repro.metal.shaders._gemm_common import (
    run_gemm_numerics,
    validate_gemm_grid,
)

__all__ = ["NaiveGemmShader"]


@dataclasses.dataclass(frozen=True)
class NaiveGemmShader:
    name: str = "gemm_naive"
    impl_key: str = "gpu-naive"

    def dispatch(self, ctx: ShaderContext) -> None:
        """Run the one-thread-per-element GEMM over the bound buffers."""
        n = ctx.uint_constant(3)
        validate_gemm_grid(ctx, n)
        a = ctx.array(0, np.float32, (n, n))
        b = ctx.array(1, np.float32, (n, n))
        c = ctx.array(2, np.float32, (n, n))

        run_gemm_numerics(
            ctx,
            n,
            a,
            b,
            c,
            # Each thread accumulates a_row . b_col in FP32 registers.
            tile_fn=lambda a_rows, b_cols: (a_rows @ b_cols).astype(
                np.float32, copy=False
            ),
            vector_fn=lambda fa, fb: (fa @ fb).astype(np.float32, copy=False),
        )

        machine = ctx.device.machine
        machine.execute(
            build_gemm_operation(
                machine.chip, self.impl_key, n, label=f"shader/{self.name}/n={n}"
            )
        )


register_shader(NaiveGemmShader())
