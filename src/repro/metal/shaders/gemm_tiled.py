"""The CUTLASS-style tiled GEMM shader (Table 2).

Each threadgroup stages K-tiles of A and B through threadgroup memory and
accumulates its output tile over ``ceil(n / TK)`` iterations — the structure
of the open-source "Cutlass-style" shader the paper benchmarks.  On the
M-series this shader *trails* the naive one (Figure 2: 0.15-0.34 TFLOPS vs
0.20-0.54), which the calibration reproduces; the numerics here reproduce its
accumulation order (K-tile partial sums).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.calibration.gemm import build_gemm_operation
from repro.metal.shaders import ShaderContext, register_shader
from repro.metal.shaders._gemm_common import (
    run_gemm_numerics,
    validate_gemm_grid,
)

__all__ = ["TiledGemmShader", "K_TILE"]

#: Threadgroup-memory K-tile depth (floats per staged slab row).
K_TILE = 32


def _k_tiled_product(fa: np.ndarray, fb: np.ndarray) -> np.ndarray:
    """Partial-sum accumulation over K tiles, as the shader's inner loop."""
    k = fa.shape[1]
    acc = np.zeros((fa.shape[0], fb.shape[1]), dtype=np.float32)
    for k0 in range(0, k, K_TILE):
        k1 = min(k0 + K_TILE, k)
        acc += fa[:, k0:k1] @ fb[k0:k1, :]
    return acc


@dataclasses.dataclass(frozen=True)
class TiledGemmShader:
    name: str = "gemm_tiled"
    impl_key: str = "gpu-cutlass"

    def dispatch(self, ctx: ShaderContext) -> None:
        """Run the K-tiled (threadgroup-memory) GEMM over the bound buffers."""
        n = ctx.uint_constant(3)
        validate_gemm_grid(ctx, n)
        a = ctx.array(0, np.float32, (n, n))
        b = ctx.array(1, np.float32, (n, n))
        c = ctx.array(2, np.float32, (n, n))

        run_gemm_numerics(
            ctx,
            n,
            a,
            b,
            c,
            tile_fn=_k_tiled_product,
            vector_fn=_k_tiled_product,
        )

        machine = ctx.device.machine
        machine.execute(
            build_gemm_operation(
                machine.chip, self.impl_key, n, label=f"shader/{self.name}/n={n}"
            )
        )


register_shader(TiledGemmShader())
