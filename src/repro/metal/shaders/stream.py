"""GPU STREAM kernels (Copy, Scale, Add, Triad) in MSL spirit.

Ports of the CUDA/HIP GPU STREAM kernels the paper adapted (section 3.1):
one thread per element, float32 arrays ``a``, ``b``, ``c`` bound at indices
0-2, the element count at constant index 0 and the Triad/Scale scalar at
constant index 1.  Timing is memory-bound through the calibrated GPU link
efficiency for the kernel and array footprint.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.calibration.stream import (
    STREAM_NOISE_SIGMA,
    gpu_stream_bandwidth_gbs,
    stream_power_draws,
)
from repro.metal.errors import DispatchError
from repro.metal.shaders import ShaderContext, register_shader
from repro.sim.engine import EngineKind, Operation
from repro.sim.policy import NumericsPolicy
from repro.sim.roofline import OpCost

__all__ = [
    "StreamShader",
    "STREAM_SHADER_NAMES",
    "stream_moved_bytes",
]

#: (reads, writes) array counts per kernel — the STREAM accounting rule.
_KERNEL_ARRAYS: dict[str, tuple[int, int]] = {
    "copy": (1, 1),
    "scale": (1, 1),
    "add": (2, 1),
    "triad": (2, 1),
}


def stream_moved_bytes(kernel: str, n_elements: int, element_bytes: int = 4) -> int:
    """Bytes counted by STREAM for one kernel execution."""
    reads, writes = _KERNEL_ARRAYS[kernel]
    return (reads + writes) * n_elements * element_bytes


@dataclasses.dataclass(frozen=True)
class StreamShader:
    """One STREAM kernel as a Metal compute function."""

    kernel: str

    @property
    def name(self) -> str:
        return f"stream_{self.kernel}"

    @property
    def impl_key(self) -> str:
        return f"gpu-stream-{self.kernel}"

    def dispatch(self, ctx: ShaderContext) -> None:
        """Run one STREAM kernel pass over the bound arrays."""
        n = ctx.uint_constant(0)
        if n == 0:
            raise DispatchError("STREAM kernel needs a positive element count")
        if ctx.grid_threads_x < n:
            raise DispatchError(
                f"grid of {ctx.grid_threads_x} threads cannot cover {n} elements"
            )
        machine = ctx.device.machine

        # -- numerics (policy-gated; STREAM arrays are cheap, default FULL) --
        if machine.numerics.policy is not NumericsPolicy.MODEL_ONLY:
            a = ctx.array(0, np.float32, (n,))
            b = ctx.array(1, np.float32, (n,))
            c = ctx.array(2, np.float32, (n,))
            if self.kernel == "copy":
                c[:] = a
            elif self.kernel == "scale":
                scalar = np.float32(ctx.float_constant(1))
                b[:] = scalar * c
            elif self.kernel == "add":
                c[:] = a + b
            elif self.kernel == "triad":
                scalar = np.float32(ctx.float_constant(1))
                a[:] = b + scalar * c
            else:  # pragma: no cover - registry controls kernels
                raise DispatchError(f"unknown STREAM kernel {self.kernel}")

        # -- timing/power ---------------------------------------------------
        chip = machine.chip
        array_bytes = 4 * n
        eff_gbs = gpu_stream_bandwidth_gbs(chip, self.kernel, array_bytes)
        theoretical = chip.memory.bandwidth_gbs
        moved = float(stream_moved_bytes(self.kernel, n))
        reads, writes = _KERNEL_ARRAYS[self.kernel]
        op = Operation(
            engine=EngineKind.GPU,
            label=f"stream/gpu/{self.kernel}/n={n}",
            cost=OpCost(
                flops=float(n) if self.kernel in ("scale", "add") else 2.0 * n
                if self.kernel == "triad"
                else 0.0,
                bytes_read=moved * reads / (reads + writes),
                bytes_written=moved * writes / (reads + writes),
            ),
            peak_flops=machine.peak_flops(EngineKind.GPU),
            peak_bytes_per_s=machine.memory_bandwidth_bytes_per_s(),
            memory_efficiency=min(1.0, eff_gbs / theoretical),
            overhead_s=10e-6,
            power_draws_w=stream_power_draws(chip, "gpu"),
            noise_sigma=STREAM_NOISE_SIGMA,
        )
        machine.execute(op)


STREAM_SHADER_NAMES: tuple[str, ...] = tuple(
    register_shader(StreamShader(kernel)).name
    for kernel in ("copy", "scale", "add", "triad")
)
