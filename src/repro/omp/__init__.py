"""A small OpenMP-style runtime model.

The paper's CPU benchmarks are OpenMP programs: the original ``stream.c``
sweeps ``OMP_NUM_THREADS`` from one to the number of physical cores, and the
CPU-OMP GEMM uses a blocked parallel-for.  This package reproduces that
programming model: an environment-driven thread count, static/dynamic
scheduling of a parallel loop, and a fork/join structure whose chunks really
execute (on the caller's NumPy arrays) while the *timing* of the region is
modelled by the simulator.
"""

from repro.omp.env import OpenMPEnvironment
from repro.omp.runtime import (
    Schedule,
    ScheduleKind,
    ChunkAssignment,
    OpenMPRuntime,
    parallel_chunks,
)

__all__ = [
    "OpenMPEnvironment",
    "ScheduleKind",
    "Schedule",
    "ChunkAssignment",
    "OpenMPRuntime",
    "parallel_chunks",
]
