"""OpenMP environment handling (``OMP_NUM_THREADS`` et al.).

The environment is injected as a mapping rather than read from ``os.environ``
directly so tests and the STREAM sweep can drive it explicitly — the sweep
re-runs the benchmark "with OMP_NUM_THREADS threads set from one to the
number of physical cores" (section 3.1).
"""

from __future__ import annotations

import os
from typing import Mapping

from repro.errors import ConfigurationError

__all__ = ["OpenMPEnvironment"]


class OpenMPEnvironment:
    """Parsed OpenMP environment controlling the runtime."""

    def __init__(
        self,
        env: Mapping[str, str] | None = None,
        *,
        default_threads: int = 1,
    ) -> None:
        if default_threads < 1:
            raise ConfigurationError("default thread count must be >= 1")
        self._env = dict(env) if env is not None else dict(os.environ)
        self._default_threads = default_threads

    @classmethod
    def with_threads(cls, num_threads: int) -> "OpenMPEnvironment":
        """Environment equivalent to ``OMP_NUM_THREADS=<num_threads>``."""
        return cls({"OMP_NUM_THREADS": str(num_threads)})

    def num_threads(self) -> int:
        """Value of ``OMP_NUM_THREADS`` (first item of a nested list)."""
        raw = self._env.get("OMP_NUM_THREADS")
        if raw is None:
            return self._default_threads
        first = raw.split(",")[0].strip()
        try:
            value = int(first)
        except ValueError:
            raise ConfigurationError(
                f"OMP_NUM_THREADS must be an integer, got {raw!r}"
            ) from None
        if value < 1:
            raise ConfigurationError(f"OMP_NUM_THREADS must be >= 1, got {value}")
        return value

    def schedule(self) -> tuple[str, int | None]:
        """Parsed ``OMP_SCHEDULE`` as (kind, chunk) with static default."""
        raw = self._env.get("OMP_SCHEDULE", "static")
        parts = [p.strip() for p in raw.split(",")]
        kind = parts[0].lower() or "static"
        if kind not in ("static", "dynamic", "guided"):
            raise ConfigurationError(f"unsupported OMP_SCHEDULE kind {kind!r}")
        chunk: int | None = None
        if len(parts) > 1 and parts[1]:
            try:
                chunk = int(parts[1])
            except ValueError:
                raise ConfigurationError(
                    f"OMP_SCHEDULE chunk must be an integer, got {parts[1]!r}"
                ) from None
            if chunk < 1:
                raise ConfigurationError("OMP_SCHEDULE chunk must be >= 1")
        return kind, chunk

    def dynamic_enabled(self) -> bool:
        """``OMP_DYNAMIC`` flag (defaults to off)."""
        return self._env.get("OMP_DYNAMIC", "false").strip().lower() in (
            "1",
            "true",
            "yes",
            "on",
        )
