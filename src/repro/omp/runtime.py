"""Fork/join parallel-for with OpenMP-style scheduling.

Chunks execute sequentially in Python (the GIL makes real threading pointless
for the simulation) but the *assignment* of iterations to virtual threads
follows OpenMP semantics exactly: static scheduling deals contiguous blocks
(or round-robin chunks), dynamic scheduling hands out chunks first-come
first-served.  Callers obtain the assignment for introspection (e.g. to model
per-thread time as the max over threads) and the runtime guarantees each
iteration runs exactly once.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Callable, Sequence

from repro.errors import ConfigurationError
from repro.omp.env import OpenMPEnvironment

__all__ = [
    "ScheduleKind",
    "Schedule",
    "ChunkAssignment",
    "parallel_chunks",
    "OpenMPRuntime",
]


class ScheduleKind(enum.Enum):
    STATIC = "static"
    DYNAMIC = "dynamic"
    GUIDED = "guided"


@dataclasses.dataclass(frozen=True)
class Schedule:
    """An OpenMP loop schedule clause."""

    kind: ScheduleKind = ScheduleKind.STATIC
    chunk: int | None = None

    def __post_init__(self) -> None:
        if self.chunk is not None and self.chunk < 1:
            raise ConfigurationError("schedule chunk must be >= 1")

    @classmethod
    def parse(cls, kind: str, chunk: int | None = None) -> "Schedule":
        return cls(ScheduleKind(kind.lower()), chunk)


@dataclasses.dataclass(frozen=True)
class ChunkAssignment:
    """A contiguous iteration chunk assigned to one virtual thread."""

    thread: int
    start: int
    stop: int  # exclusive

    def __post_init__(self) -> None:
        if self.stop < self.start:
            raise ConfigurationError("chunk stop must be >= start")
        if self.thread < 0:
            raise ConfigurationError("thread id must be non-negative")

    @property
    def size(self) -> int:
        return self.stop - self.start


def parallel_chunks(
    n_iterations: int, num_threads: int, schedule: Schedule | None = None
) -> list[ChunkAssignment]:
    """Assign ``range(n_iterations)`` to threads per the schedule.

    Returns chunks in execution order; every iteration appears in exactly one
    chunk (property-tested).
    """
    if n_iterations < 0:
        raise ConfigurationError("iteration count must be non-negative")
    if num_threads < 1:
        raise ConfigurationError("thread count must be >= 1")
    sched = schedule or Schedule()
    if n_iterations == 0:
        return []

    out: list[ChunkAssignment] = []
    if sched.kind is ScheduleKind.STATIC and sched.chunk is None:
        # Contiguous near-equal blocks, one per thread (OpenMP default).
        base, extra = divmod(n_iterations, num_threads)
        start = 0
        for t in range(num_threads):
            size = base + (1 if t < extra else 0)
            if size == 0:
                continue
            out.append(ChunkAssignment(t, start, start + size))
            start += size
        return out

    if sched.kind is ScheduleKind.STATIC:
        # Round-robin chunks of the given size.
        chunk = sched.chunk
        assert chunk is not None
        idx = 0
        start = 0
        while start < n_iterations:
            stop = min(start + chunk, n_iterations)
            out.append(ChunkAssignment(idx % num_threads, start, stop))
            idx += 1
            start = stop
        return out

    if sched.kind is ScheduleKind.DYNAMIC:
        chunk = sched.chunk or 1
        # Deterministic first-come model: threads take chunks round-robin.
        idx = 0
        start = 0
        while start < n_iterations:
            stop = min(start + chunk, n_iterations)
            out.append(ChunkAssignment(idx % num_threads, start, stop))
            idx += 1
            start = stop
        return out

    # GUIDED: exponentially decreasing chunks bounded below by `chunk or 1`.
    min_chunk = sched.chunk or 1
    remaining = n_iterations
    start = 0
    idx = 0
    while remaining > 0:
        size = max(min_chunk, remaining // (2 * num_threads))
        size = min(size, remaining)
        out.append(ChunkAssignment(idx % num_threads, start, start + size))
        start += size
        remaining -= size
        idx += 1
    return out


class OpenMPRuntime:
    """Executes parallel-for regions under an :class:`OpenMPEnvironment`."""

    def __init__(self, env: OpenMPEnvironment | None = None) -> None:
        self._env = env or OpenMPEnvironment.with_threads(1)
        self._num_threads_override: int | None = None

    # -- thread-count API mirroring omp.h ------------------------------
    def get_max_threads(self) -> int:
        """``omp_get_max_threads``: the effective thread count."""
        if self._num_threads_override is not None:
            return self._num_threads_override
        return self._env.num_threads()

    def set_num_threads(self, num_threads: int) -> None:
        """``omp_set_num_threads``: override the environment's count."""
        if num_threads < 1:
            raise ConfigurationError("omp_set_num_threads requires >= 1")
        self._num_threads_override = num_threads

    # -- parallel loop --------------------------------------------------
    def parallel_for(
        self,
        n_iterations: int,
        body: Callable[[int, int, int], None],
        *,
        schedule: Schedule | None = None,
        num_threads: int | None = None,
    ) -> list[ChunkAssignment]:
        """Run ``body(start, stop, thread)`` for every assigned chunk.

        Returns the chunk assignment so callers can model per-thread time.
        """
        threads = num_threads if num_threads is not None else self.get_max_threads()
        chunks = parallel_chunks(n_iterations, threads, schedule)
        for chunk in chunks:
            body(chunk.start, chunk.stop, chunk.thread)
        return chunks

    def parallel_reduce(
        self,
        n_iterations: int,
        body: Callable[[int, int], float],
        *,
        schedule: Schedule | None = None,
        num_threads: int | None = None,
    ) -> float:
        """Sum-reduction over chunk partial results (order-deterministic)."""
        threads = num_threads if num_threads is not None else self.get_max_threads()
        chunks = parallel_chunks(n_iterations, threads, schedule)
        partials: dict[int, float] = {}
        for chunk in chunks:
            partials[chunk.thread] = partials.get(chunk.thread, 0.0) + body(
                chunk.start, chunk.stop
            )
        # Reduce in thread order, as an OpenMP reduction tree would.
        return float(sum(partials[t] for t in sorted(partials)))

    @staticmethod
    def max_thread_share(chunks: Sequence[ChunkAssignment]) -> int:
        """Largest per-thread iteration count (the critical path of the region)."""
        totals: dict[int, int] = {}
        for chunk in chunks:
            totals[chunk.thread] = totals.get(chunk.thread, 0) + chunk.size
        return max(totals.values(), default=0)
