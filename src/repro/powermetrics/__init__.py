"""Simulation of Apple's ``powermetrics`` utility.

The paper's power framework (section 3.3) launches::

    powermetrics -i 0 -a 0 -s cpu_power,gpu_power -o FILENAME

then drives sampling with SIGINFO: the tool reports the energy dissipated
*since the previous signal* (empirically confirmed by the authors).  This
package reproduces the tool (sampling the machine's power trace), the text
output format, and a parser for it, so the harness measures power exactly the
way the paper does — including the two-second warm-up and the reset signal.
"""

from repro.powermetrics.tool import PowerMetrics, PowerMetricsOptions
from repro.powermetrics.format import render_sample
from repro.powermetrics.parse import PowerSample, parse_samples

__all__ = [
    "PowerMetrics",
    "PowerMetricsOptions",
    "render_sample",
    "PowerSample",
    "parse_samples",
]
