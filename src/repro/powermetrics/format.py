"""Text output format of the simulated ``powermetrics``.

Follows the structure of the real tool's ``cpu_power,gpu_power`` samplers
closely enough that parsers written against genuine output (regexes over
``"CPU Power: <n> mW"`` lines) work unchanged.
"""

from __future__ import annotations

__all__ = ["render_header", "render_sample"]


def render_header(machine_model: str, os_version: str) -> str:
    """The banner the tool prints once at startup."""
    return (
        f"Machine model: {machine_model}\n"
        f"OS version: {os_version}\n"
        f"*** Simulated powermetrics (repro) ***\n"
    )


def render_sample(
    *,
    sample_index: int,
    elapsed_ms: float,
    cpu_mw: float,
    gpu_mw: float,
    ane_mw: float | None = None,
) -> str:
    """One sample block, reporting averages over the elapsed window."""
    combined = cpu_mw + gpu_mw + (ane_mw or 0.0)
    lines = [
        f"*** Sampled system activity (sample {sample_index}) "
        f"({elapsed_ms:.2f}ms elapsed) ***",
        "",
        "**** Processor usage ****",
        "",
        f"CPU Power: {cpu_mw:.0f} mW",
        f"GPU Power: {gpu_mw:.0f} mW",
    ]
    if ane_mw is not None:
        lines.append(f"ANE Power: {ane_mw:.0f} mW")
    lines.append(f"Combined Power (CPU + GPU + ANE): {combined:.0f} mW")
    lines.append("")
    return "\n".join(lines) + "\n"
