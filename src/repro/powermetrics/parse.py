"""Parser for ``powermetrics`` text output.

The paper's harness writes the tool's output to a text file "which is then
parsed into a numeric format" (section 4).  This parser handles the sample
blocks produced by :mod:`repro.powermetrics.format` and by the real tool's
``cpu_power,gpu_power`` samplers.
"""

from __future__ import annotations

import dataclasses
import re

from repro.errors import ParseError

__all__ = ["PowerSample", "parse_samples"]

_SAMPLE_RE = re.compile(
    r"\*\*\* Sampled system activity .*?\(([\d.]+)ms elapsed\) \*\*\*"
)
_CPU_RE = re.compile(r"^CPU Power:\s*([\d.]+)\s*mW\s*$", re.MULTILINE)
_GPU_RE = re.compile(r"^GPU Power:\s*([\d.]+)\s*mW\s*$", re.MULTILINE)
_ANE_RE = re.compile(r"^ANE Power:\s*([\d.]+)\s*mW\s*$", re.MULTILINE)


@dataclasses.dataclass(frozen=True)
class PowerSample:
    """Parsed measurements of one sample block."""

    elapsed_ms: float
    cpu_mw: float
    gpu_mw: float
    ane_mw: float | None = None

    @property
    def combined_mw(self) -> float:
        """CPU + GPU, the quantity Figures 3-4 plot."""
        return self.cpu_mw + self.gpu_mw

    @property
    def energy_j(self) -> float:
        """Energy dissipated over the window (CPU + GPU)."""
        return self.combined_mw / 1e3 * self.elapsed_ms / 1e3


def _offending_line(block: str, missing: str) -> str:
    """The line a malformed sample block offers where ``missing`` should be.

    A truncated or corrupted capture usually *has* a line mentioning the
    rail (e.g. ``"CPU Power: 123"`` with the unit torn off); naming it in
    the error beats making the user diff the whole block.  Falls back to
    the block's first non-blank line.
    """
    for line in block.splitlines():
        if missing in line:
            return line.strip()
    for line in block.splitlines():
        if line.strip():
            return line.strip()
    return "<empty block>"


def parse_samples(text: str) -> list[PowerSample]:
    """All sample blocks in file order.

    Raises
    ------
    ParseError
        If a sample block lacks the CPU or GPU power lines; the message
        names the offending line of the block.
    """
    headers = list(_SAMPLE_RE.finditer(text))
    samples: list[PowerSample] = []
    for i, header in enumerate(headers):
        start = header.end()
        end = headers[i + 1].start() if i + 1 < len(headers) else len(text)
        block = text[start:end]
        cpu = _CPU_RE.search(block)
        gpu = _GPU_RE.search(block)
        if cpu is None or gpu is None:
            missing = "CPU Power" if cpu is None else "GPU Power"
            raise ParseError(
                f"sample {i}: no well-formed {missing!r} line in powermetrics "
                f"output; offending line: {_offending_line(block, missing)!r}"
            )
        ane = _ANE_RE.search(block)
        samples.append(
            PowerSample(
                elapsed_ms=float(header.group(1)),
                cpu_mw=float(cpu.group(1)),
                gpu_mw=float(gpu.group(1)),
                ane_mw=float(ane.group(1)) if ane else None,
            )
        )
    return samples
