"""The ``powermetrics`` process model.

Reproduces the signal-driven mode of the paper's measurement protocol
(section 3.3): started with ``-i 0 -a 0`` the tool takes *no* periodic
samples; each SIGINFO emits a sample covering the window since the previous
signal (or since startup) and resets the accumulator.  Energy comes from the
machine's :class:`~repro.sim.recorder.PowerRecorder`, i.e. the same trace the
workloads write while executing.
"""

from __future__ import annotations

import dataclasses
import io
import pathlib

from repro.errors import ProtocolError
from repro.powermetrics.format import render_header, render_sample
from repro.sim.machine import Machine
from repro.soc.power import PowerComponent

__all__ = ["PowerMetricsOptions", "PowerMetrics"]

_KNOWN_SAMPLERS = ("cpu_power", "gpu_power", "ane_power")


@dataclasses.dataclass(frozen=True)
class PowerMetricsOptions:
    """Command-line options of the tool (`-i`, `-a`, `-s`, `-o`)."""

    interval_ms: int = 0
    accumulate: int = 0
    samplers: tuple[str, ...] = ("cpu_power", "gpu_power")
    output_path: str | pathlib.Path | None = None

    def __post_init__(self) -> None:
        if self.interval_ms < 0 or self.accumulate < 0:
            raise ProtocolError("interval and accumulate must be non-negative")
        unknown = [s for s in self.samplers if s not in _KNOWN_SAMPLERS]
        if unknown:
            raise ProtocolError(
                f"unknown sampler(s) {', '.join(unknown)}; "
                f"known: {', '.join(_KNOWN_SAMPLERS)}"
            )
        if not self.samplers:
            raise ProtocolError("at least one sampler is required")


class PowerMetrics:
    """A running (simulated) powermetrics process."""

    def __init__(self, machine: Machine, options: PowerMetricsOptions | None = None):
        self.machine = machine
        self.options = options or PowerMetricsOptions()
        self._running = False
        self._mark_s: float | None = None
        self._sample_index = 0
        self._sink = io.StringIO()

    # -- process lifecycle -------------------------------------------------
    @property
    def is_running(self) -> bool:
        return self._running

    def start(self) -> None:
        """Launch the tool; the accumulation window opens now."""
        if self._running:
            raise ProtocolError("powermetrics already running")
        self._running = True
        self._mark_s = self.machine.now_s()
        self._sample_index = 0
        self._sink = io.StringIO()
        self._sink.write(
            render_header(
                machine_model=f"{self.machine.device.model} ({self.machine.chip.name})",
                os_version=f"macOS {self.machine.device.macos_version}",
            )
        )

    def siginfo(self) -> None:
        """Deliver SIGINFO: emit a sample for the window and reset the mark."""
        if not self._running:
            raise ProtocolError("SIGINFO delivered to a stopped powermetrics")
        assert self._mark_s is not None
        now = self.machine.now_s()
        window = (self._mark_s, now)
        averages = self.machine.recorder.component_average_mw(*window)
        self._sample_index += 1
        self._sink.write(
            render_sample(
                sample_index=self._sample_index,
                elapsed_ms=(now - self._mark_s) * 1e3,
                cpu_mw=averages.get(PowerComponent.CPU, 0.0)
                if "cpu_power" in self.options.samplers
                else 0.0,
                gpu_mw=averages.get(PowerComponent.GPU, 0.0)
                if "gpu_power" in self.options.samplers
                else 0.0,
                ane_mw=averages.get(PowerComponent.ANE, 0.0)
                if "ane_power" in self.options.samplers
                else None,
            )
        )
        self._mark_s = now

    def stop(self) -> str:
        """Terminate the tool, flush the output file, return the text."""
        if not self._running:
            raise ProtocolError("powermetrics is not running")
        self._running = False
        text = self._sink.getvalue()
        if self.options.output_path is not None:
            pathlib.Path(self.options.output_path).write_text(text)
        return text

    # -- context-manager sugar ----------------------------------------------
    def __enter__(self) -> "PowerMetrics":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._running:
            self.stop()
