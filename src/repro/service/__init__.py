"""The experiment service: one warm store, many cheap readers.

Every cell of every grid is a pure function of (spec, session fingerprint),
so a cell's spec hash is its result's identity — and a long-running service
over one sharded, manifest-indexed store can answer any repeat submission
from cache instead of re-executing it.  This package is that service:

* :class:`~repro.service.server.ExperimentService` — stdlib HTTP server
  (``repro serve``): accepts StudySpec/SweepSpec submissions, deduplicates
  by grid hash against in-flight jobs and by spec hash against the shared
  store, executes misses through the normal session/backend seam with
  manifest journaling (killed servers resume on restart), streams NDJSON
  progress, and serves ResultFrame queries and registered figures from the
  warm store;
* :class:`~repro.service.client.ServiceClient` — a urllib client
  (``repro submit`` / ``repro query``): ``submit``/``wait``/``frame`` plus
  event streaming and server-side queries;
* :mod:`~repro.service.jobs` / :mod:`~repro.service.store` — the persisted
  job registry and the lock-disciplined shared store underneath.

Quickstart::

    repro serve --store results/ --backend vectorized   # terminal 1

    from repro.service import ServiceClient             # terminal 2
    from repro.study import paper_study

    client = ServiceClient("http://127.0.0.1:8765")
    job = client.wait(client.submit(paper_study(fast=True))["id"])
    print(job["cache_status"], job["executed"])         # resubmit: 'hit', 0
    frame = client.frame(job["id"])
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.jobs import (
    JOB_STATUSES,
    SERVICE_DIRNAME,
    Job,
    JobRegistry,
    grid_hash,
    grid_specs,
)
from repro.service.server import ExperimentService, serve
from repro.service.store import SharedStore

__all__ = [
    "ExperimentService",
    "serve",
    "ServiceClient",
    "ServiceError",
    "SharedStore",
    "Job",
    "JobRegistry",
    "JOB_STATUSES",
    "SERVICE_DIRNAME",
    "grid_hash",
    "grid_specs",
]
