"""A small stdlib client for the experiment service.

:class:`ServiceClient` speaks the service's JSON API over
:mod:`urllib.request` — no dependencies — and converts wire payloads back
into the library's own types where that helps: ``results()`` returns real
:class:`~repro.experiments.envelope.ResultEnvelope` records and ``frame()``
a :class:`~repro.study.frame.ResultFrame`, so remote results query exactly
like local ones::

    client = ServiceClient("http://127.0.0.1:8765")
    job = client.submit(paper_study(fast=True))
    job = client.wait(job["id"])
    frame = client.frame(job["id"])
    frame.pivot(("chip", "impl_key", "n"), values="gflops")

Submissions accept a :class:`~repro.study.spec.StudySpec`, any sweep/cell
spec, or an already-serialized payload dict.  A failed job surfaces as a
:class:`ServiceError` carrying the server's recorded error message.
"""

from __future__ import annotations

import json
import time
from typing import Any, Iterator, Mapping, Sequence
from urllib.error import HTTPError, URLError
from urllib.request import Request, urlopen

from repro.errors import ReproError

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(ReproError):
    """A service request failed (transport error, HTTP error, failed job)."""


class ServiceClient:
    """Talk to one running experiment service."""

    def __init__(self, base_url: str, *, timeout: float = 60.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = float(timeout)

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _request(
        self, method: str, path: str, body: Mapping[str, Any] | None = None
    ) -> Any:
        data = (
            json.dumps(body).encode() if body is not None else None
        )
        request = Request(
            self.base_url + path,
            data=data,
            method=method,
            headers={"Content-Type": "application/json"} if data else {},
        )
        try:
            with urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read().decode())
        except HTTPError as exc:
            try:
                message = json.loads(exc.read().decode()).get("error", str(exc))
            except (json.JSONDecodeError, ValueError):
                message = str(exc)
            raise ServiceError(
                f"{method} {path} failed ({exc.code}): {message}"
            ) from exc
        except URLError as exc:
            raise ServiceError(
                f"cannot reach experiment service at {self.base_url}: "
                f"{exc.reason}"
            ) from exc

    def _get_text(self, path: str) -> str:
        try:
            with urlopen(self.base_url + path, timeout=self.timeout) as response:
                return response.read().decode()
        except HTTPError as exc:
            raise ServiceError(f"GET {path} failed ({exc.code})") from exc
        except URLError as exc:
            raise ServiceError(
                f"cannot reach experiment service at {self.base_url}: "
                f"{exc.reason}"
            ) from exc

    # ------------------------------------------------------------------
    # Submission / progress
    # ------------------------------------------------------------------
    def health(self) -> dict[str, Any]:
        """The server's ``/healthz`` summary."""
        return self._request("GET", "/healthz")

    def submit(self, spec: Any) -> dict[str, Any]:
        """Submit a study/sweep/cell spec; return its job record.

        The returned dict carries ``"deduplicated": True`` when the
        submission coalesced onto an already in-flight job for the same
        grid.  ``spec`` may be a spec object (anything with ``to_dict``)
        or its payload dict.
        """
        payload = spec.to_dict() if hasattr(spec, "to_dict") else dict(spec)
        endpoint = "/studies" if payload.get("kind") == "study" else "/sweeps"
        response = self._request("POST", endpoint, payload)
        job = response["job"]
        job["deduplicated"] = response["deduplicated"]
        return job

    def job(self, job_id: str) -> dict[str, Any]:
        """One job's current record (status, done/total, cache_status)."""
        return self._request("GET", f"/jobs/{job_id}")

    def jobs(self) -> list[dict[str, Any]]:
        """Every job the server knows, oldest first."""
        return self._request("GET", "/jobs")["jobs"]

    def wait(
        self, job_id: str, *, timeout: float = 300.0, poll: float = 0.1
    ) -> dict[str, Any]:
        """Poll until the job is terminal; return its final record.

        Raises :class:`ServiceError` when the job failed or the timeout
        elapses first.
        """
        deadline = time.monotonic() + timeout
        while True:
            job = self.job(job_id)
            if job["status"] == "done":
                return job
            if job["status"] == "failed":
                raise ServiceError(
                    f"job {job_id} failed: {job.get('error') or 'unknown error'}"
                )
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"job {job_id} still {job['status']} after {timeout:.0f}s "
                    f"({job['done']}/{job['total']} cells)"
                )
            time.sleep(poll)

    def events(self, job_id: str) -> Iterator[dict[str, Any]]:
        """Stream the job's NDJSON progress events (replay, then follow)."""
        request = Request(self.base_url + f"/jobs/{job_id}/events")
        try:
            with urlopen(request, timeout=self.timeout) as response:
                for line in response:
                    text = line.decode().strip()
                    if text:
                        yield json.loads(text)
        except HTTPError as exc:
            raise ServiceError(
                f"GET /jobs/{job_id}/events failed ({exc.code})"
            ) from exc
        except URLError as exc:
            raise ServiceError(
                f"cannot reach experiment service at {self.base_url}: "
                f"{exc.reason}"
            ) from exc

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def results(self, ref: str | None = None) -> list:
        """Envelopes — of one job/grid (``ref``) or the whole store."""
        from repro.experiments.envelope import ResultEnvelope

        path = "/results" if ref is None else f"/results/{ref}"
        payload = self._request("GET", path)
        return [
            ResultEnvelope.from_dict(data) for data in payload["envelopes"]
        ]

    def frame(self, ref: str | None = None):
        """A :class:`ResultFrame` over remote envelopes (job slice or store)."""
        from repro.study.frame import ResultFrame

        return ResultFrame.from_envelopes(self.results(ref))

    def query(self, **body: Any) -> dict[str, Any]:
        """Run a frame query server-side (``where``/``fields``/``pivot``...).

        Mirrors ``POST /query`` — e.g.
        ``client.query(where={"kind": "gemm"}, fields=["chip", "gflops"])``.
        """
        return self._request("POST", "/query", body)

    def figure(
        self,
        name: str,
        *,
        chips: Sequence[str] | None = None,
        format: str = "text",
    ) -> str | dict[str, Any]:
        """Render a registered figure/table/report from the warm store."""
        params = []
        if chips:
            params.append("chips=" + ",".join(chips))
        if format != "text":
            params.append(f"format={format}")
        path = f"/figures/{name}" + ("?" + "&".join(params) if params else "")
        if format == "json":
            return self._request("GET", path)
        return self._get_text(path)
