"""A small stdlib client for the experiment service.

:class:`ServiceClient` speaks the service's JSON API over
:mod:`urllib.request` — no dependencies — and converts wire payloads back
into the library's own types where that helps: ``results()`` returns real
:class:`~repro.experiments.envelope.ResultEnvelope` records and ``frame()``
a :class:`~repro.study.frame.ResultFrame`, so remote results query exactly
like local ones::

    client = ServiceClient("http://127.0.0.1:8765")
    job = client.submit(paper_study(fast=True))
    job = client.wait(job["id"])
    frame = client.frame(job["id"])
    frame.pivot(("chip", "impl_key", "n"), values="gflops")

Submissions accept a :class:`~repro.study.spec.StudySpec`, any sweep/cell
spec, or an already-serialized payload dict.  A failed job surfaces as a
:class:`ServiceError` carrying the server's recorded error message.
"""

from __future__ import annotations

import json
import random
import time
from typing import Any, Iterator, Mapping, Sequence
from urllib.error import HTTPError, URLError
from urllib.request import Request, urlopen

from repro.errors import ReproError

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(ReproError):
    """A service request failed (transport error, HTTP error, failed job)."""


class ServiceClient:
    """Talk to one running experiment service.

    Idempotent requests (every GET) transparently retry on transport
    errors and 5xx responses — up to ``retries`` times with capped
    exponential backoff plus jitter — so a momentarily-overloaded or
    restarting server does not fail a poll loop.  POSTs are *not*
    retried: a submission that timed out may have been accepted, and
    retrying it is the caller's decision (resubmitting the same grid
    deduplicates server-side, so it is in fact safe — but explicit).
    """

    def __init__(
        self,
        base_url: str,
        *,
        timeout: float = 60.0,
        retries: int = 3,
        retry_backoff: float = 0.1,
        retry_cap: float = 2.0,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = float(timeout)
        self.retries = int(retries)
        self.retry_backoff = float(retry_backoff)
        self.retry_cap = float(retry_cap)

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _retry_delays(self) -> Iterator[float]:
        """Backoff schedule for idempotent retries: capped exponential
        with full jitter (decorrelates a thundering herd of pollers)."""
        for attempt in range(self.retries):
            base = min(self.retry_cap, self.retry_backoff * (2 ** attempt))
            yield base * (0.5 + random.random() / 2)

    def _request(
        self, method: str, path: str, body: Mapping[str, Any] | None = None
    ) -> Any:
        data = (
            json.dumps(body).encode() if body is not None else None
        )
        request = Request(
            self.base_url + path,
            data=data,
            method=method,
            headers={"Content-Type": "application/json"} if data else {},
        )
        delays = self._retry_delays() if method == "GET" else iter(())
        while True:
            try:
                with urlopen(request, timeout=self.timeout) as response:
                    return json.loads(response.read().decode())
            except HTTPError as exc:
                try:
                    message = json.loads(exc.read().decode()).get(
                        "error", str(exc)
                    )
                except (json.JSONDecodeError, ValueError):
                    message = str(exc)
                if exc.code >= 500:
                    delay = next(delays, None)
                    if delay is not None:
                        time.sleep(delay)
                        continue
                raise ServiceError(
                    f"{method} {path} failed ({exc.code}): {message}"
                ) from exc
            except URLError as exc:
                delay = next(delays, None)
                if delay is not None:
                    time.sleep(delay)
                    continue
                raise ServiceError(
                    f"cannot reach experiment service at {self.base_url}: "
                    f"{exc.reason}"
                ) from exc

    def _get_text(self, path: str) -> str:
        delays = self._retry_delays()
        while True:
            try:
                with urlopen(
                    self.base_url + path, timeout=self.timeout
                ) as response:
                    return response.read().decode()
            except HTTPError as exc:
                if exc.code >= 500:
                    delay = next(delays, None)
                    if delay is not None:
                        time.sleep(delay)
                        continue
                raise ServiceError(f"GET {path} failed ({exc.code})") from exc
            except URLError as exc:
                delay = next(delays, None)
                if delay is not None:
                    time.sleep(delay)
                    continue
                raise ServiceError(
                    f"cannot reach experiment service at {self.base_url}: "
                    f"{exc.reason}"
                ) from exc

    # ------------------------------------------------------------------
    # Submission / progress
    # ------------------------------------------------------------------
    def health(self) -> dict[str, Any]:
        """The server's ``/healthz`` summary."""
        return self._request("GET", "/healthz")

    def submit(self, spec: Any) -> dict[str, Any]:
        """Submit a study/sweep/cell spec; return its job record.

        The returned dict carries ``"deduplicated": True`` when the
        submission coalesced onto an already in-flight job for the same
        grid.  ``spec`` may be a spec object (anything with ``to_dict``)
        or its payload dict.
        """
        payload = spec.to_dict() if hasattr(spec, "to_dict") else dict(spec)
        endpoint = "/studies" if payload.get("kind") == "study" else "/sweeps"
        response = self._request("POST", endpoint, payload)
        job = response["job"]
        job["deduplicated"] = response["deduplicated"]
        return job

    def job(self, job_id: str) -> dict[str, Any]:
        """One job's current record (status, done/total, cache_status)."""
        return self._request("GET", f"/jobs/{job_id}")

    def jobs(self) -> list[dict[str, Any]]:
        """Every job the server knows, oldest first."""
        return self._request("GET", "/jobs")["jobs"]

    def wait(
        self,
        job_id: str,
        *,
        timeout: float = 300.0,
        poll: float = 0.1,
        poll_cap: float = 2.0,
    ) -> dict[str, Any]:
        """Poll until the job is terminal; return its final record.

        The poll interval starts at ``poll`` and doubles per round up to
        ``poll_cap`` — short jobs still return promptly, long campaigns
        are not busy-polled ten times a second — and the final sleep is
        clipped to the deadline so the timeout is honored exactly.
        Raises :class:`ServiceError` when the job failed or the timeout
        elapses first.
        """
        deadline = time.monotonic() + timeout
        interval = poll
        while True:
            job = self.job(job_id)
            if job["status"] == "done":
                return job
            if job["status"] == "failed":
                raise ServiceError(
                    f"job {job_id} failed: {job.get('error') or 'unknown error'}"
                )
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ServiceError(
                    f"job {job_id} still {job['status']} after {timeout:.0f}s "
                    f"({job['done']}/{job['total']} cells)"
                )
            time.sleep(min(interval, remaining))
            interval = min(interval * 2, poll_cap)

    def events(self, job_id: str) -> Iterator[dict[str, Any]]:
        """Stream the job's NDJSON progress events (replay, then follow)."""
        request = Request(self.base_url + f"/jobs/{job_id}/events")
        try:
            with urlopen(request, timeout=self.timeout) as response:
                for line in response:
                    text = line.decode().strip()
                    if text:
                        yield json.loads(text)
        except HTTPError as exc:
            raise ServiceError(
                f"GET /jobs/{job_id}/events failed ({exc.code})"
            ) from exc
        except URLError as exc:
            raise ServiceError(
                f"cannot reach experiment service at {self.base_url}: "
                f"{exc.reason}"
            ) from exc

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def results(self, ref: str | None = None) -> list:
        """Envelopes — of one job/grid (``ref``) or the whole store."""
        from repro.experiments.envelope import ResultEnvelope

        path = "/results" if ref is None else f"/results/{ref}"
        payload = self._request("GET", path)
        return [
            ResultEnvelope.from_dict(data) for data in payload["envelopes"]
        ]

    def frame(self, ref: str | None = None):
        """A :class:`ResultFrame` over remote envelopes (job slice or store)."""
        from repro.study.frame import ResultFrame

        return ResultFrame.from_envelopes(self.results(ref))

    def query(self, **body: Any) -> dict[str, Any]:
        """Run a frame query server-side (``where``/``fields``/``pivot``...).

        Mirrors ``POST /query`` — e.g.
        ``client.query(where={"kind": "gemm"}, fields=["chip", "gflops"])``.
        """
        return self._request("POST", "/query", body)

    def figure(
        self,
        name: str,
        *,
        chips: Sequence[str] | None = None,
        format: str = "text",
    ) -> str | dict[str, Any]:
        """Render a registered figure/table/report from the warm store."""
        params = []
        if chips:
            params.append("chips=" + ",".join(chips))
        if format != "text":
            params.append(f"format={format}")
        path = f"/figures/{name}" + ("?" + "&".join(params) if params else "")
        if format == "json":
            return self._request("GET", path)
        return self._get_text(path)
