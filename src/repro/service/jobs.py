"""Job records and the persisted job registry of the experiment service.

A :class:`Job` is one submission — a study or sweep grid — moving through
``queued -> running -> done|failed``.  Its identity for *deduplication* is
the ``grid_hash`` (``StudySpec.study_hash()``, or the sweep's canonical-JSON
hash): while a job for a grid is in flight, resubmitting the same grid
coalesces onto it instead of queueing a second execution.  A grid submitted
*after* its job completed gets a fresh job — which the worker then resolves
entirely from the shared store (0 cells executed, ``cache_status="hit"``).

Every job persists as ``<store>/.service/jobs/<id>.json`` (atomic writes,
like envelopes), so a killed server finds its queued and running jobs on
restart and re-enqueues them; the run manifest's journal guarantees the
re-run executes only the cells that had not completed.  The ``.service``
dot-directory is reserved store metadata —
:func:`~repro.experiments.store.load_envelopes` never scans it.

Progress is observable two ways: the job record's ``done``/``total`` counts
(polled via ``GET /jobs/<id>``), and an in-memory per-job event buffer that
``GET /jobs/<id>/events`` replays and follows as NDJSON.  Events are
ephemeral by design — they narrate a run; the durable truth is the manifest
and the store.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
import pathlib
import threading
import time
from typing import Any, Iterator, Mapping

from repro.errors import ConfigurationError
from repro.experiments.store import atomic_write_text

__all__ = [
    "SERVICE_DIRNAME",
    "JOB_STATUSES",
    "Job",
    "JobRegistry",
    "grid_hash",
    "grid_specs",
]

#: Reserved dot-directory under the store root holding service metadata
#: (job records); envelope scans skip it by contract.
SERVICE_DIRNAME = ".service"

STATUS_QUEUED = "queued"
STATUS_RUNNING = "running"
STATUS_DONE = "done"
STATUS_FAILED = "failed"

#: Every status a job can report, in lifecycle order.
JOB_STATUSES = (STATUS_QUEUED, STATUS_RUNNING, STATUS_DONE, STATUS_FAILED)

#: Statuses under which a grid's job absorbs duplicate submissions.
ACTIVE_STATUSES = (STATUS_QUEUED, STATUS_RUNNING)


def grid_hash(payload: Mapping[str, Any]) -> str:
    """Content identity of one submission payload (study or sweep dict).

    Studies already define ``study_hash()``; for sweeps (and any other
    spec-shaped payload) the same construction applies — a sha256 over the
    canonical JSON — so two submissions describe the same grid exactly when
    their hashes match.
    """
    canonical = json.dumps(dict(payload), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


def grid_specs(payload: Mapping[str, Any]) -> tuple:
    """Compile a submission payload to its concrete cell specs.

    ``kind="study"`` payloads lower through
    :meth:`~repro.study.spec.StudySpec.compile`; everything else resolves
    through the spec registry — a ``"sweep"`` expands, a single cell spec
    is a one-cell grid.  Raises :class:`ConfigurationError` for payloads
    that name no registered kind.
    """
    from repro.experiments.specs import SweepSpec, spec_from_dict
    from repro.study.spec import StudySpec

    kind = payload.get("kind")
    if kind is None:
        raise ConfigurationError("submission payload lacks a 'kind' tag")
    if kind == "study":
        return StudySpec.from_dict(payload).compile()
    spec = spec_from_dict(payload)
    if isinstance(spec, SweepSpec):
        # stream the expansion (one pass, one tuple) rather than delegating
        # to expand(), which builds the tuple inside the workload and again
        # here for kinds whose sweep_cells materializes eagerly
        return tuple(spec.expand_iter())
    return (spec,)


@dataclasses.dataclass
class Job:
    """One submission's lifecycle record (JSON-round-trippable)."""

    id: str
    payload: dict[str, Any]
    grid_hash: str
    status: str = STATUS_QUEUED
    total: int = 0
    done: int = 0
    executed: int = 0
    cache_status: str | None = None
    error: str | None = None
    health: dict[str, Any] | None = None
    created: float = 0.0
    finished: float | None = None

    def to_dict(self) -> dict[str, Any]:
        """Plain-data form (JSON-ready, also the API response shape)."""
        return {
            "id": self.id,
            "payload": self.payload,
            "grid_hash": self.grid_hash,
            "status": self.status,
            "total": self.total,
            "done": self.done,
            "executed": self.executed,
            "cache_status": self.cache_status,
            "error": self.error,
            "health": self.health,
            "created": self.created,
            "finished": self.finished,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Job":
        """Rebuild a job from :meth:`to_dict` output."""
        return cls(
            id=data["id"],
            payload=dict(data["payload"]),
            grid_hash=data["grid_hash"],
            status=data.get("status", STATUS_QUEUED),
            total=int(data.get("total", 0)),
            done=int(data.get("done", 0)),
            executed=int(data.get("executed", 0)),
            cache_status=data.get("cache_status"),
            error=data.get("error"),
            health=data.get("health"),
            created=float(data.get("created", 0.0)),
            finished=data.get("finished"),
        )

    @property
    def terminal(self) -> bool:
        """Whether the job reached a final status."""
        return self.status in (STATUS_DONE, STATUS_FAILED)


class JobRegistry:
    """Thread-safe job table persisted under ``<store>/.service/jobs``.

    The registry owns job creation (including in-flight deduplication by
    grid hash), durable updates (every mutation rewrites the job's JSON
    file atomically) and the per-job event buffers the NDJSON stream
    reads.  It holds *state*, not behavior: the service's worker pool
    drives jobs through it.
    """

    def __init__(self, store_dir: str | pathlib.Path) -> None:
        self.jobs_dir = pathlib.Path(store_dir) / SERVICE_DIRNAME / "jobs"
        self._lock = threading.Lock()
        self._jobs: dict[str, Job] = {}
        self._active_by_grid: dict[str, str] = {}
        self._events: dict[str, list[dict[str, Any]]] = {}
        self._event_conditions: dict[str, threading.Condition] = {}
        self._counter = itertools.count(1)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def _job_path(self, job_id: str) -> pathlib.Path:
        return self.jobs_dir / f"{job_id}.json"

    def _persist(self, job: Job) -> None:
        atomic_write_text(
            self._job_path(job.id),
            json.dumps(job.to_dict(), indent=2, sort_keys=True) + "\n",
        )

    def load(self) -> list[Job]:
        """Read every persisted job; return the interrupted ones.

        Jobs found ``queued`` or ``running`` were in flight when the
        previous server died — the caller re-enqueues them (the manifest
        makes the re-run execute only the missing cells).  Their records
        are reset to ``queued`` so a poll during the gap reads truthfully.
        """
        interrupted: list[Job] = []
        if not self.jobs_dir.is_dir():
            return interrupted
        with self._lock:
            for path in sorted(self.jobs_dir.glob("*.json")):
                try:
                    job = Job.from_dict(json.loads(path.read_text()))
                except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
                    raise ConfigurationError(
                        f"job record {path} is corrupt: {exc}"
                    ) from exc
                self._jobs[job.id] = job
                self._events.setdefault(job.id, [])
                self._event_conditions.setdefault(job.id, threading.Condition())
                if job.status in ACTIVE_STATUSES:
                    job.status = STATUS_QUEUED
                    self._active_by_grid[job.grid_hash] = job.id
                    self._persist(job)
                    interrupted.append(job)
            # Fresh ids must never collide with persisted ones.
            numeric = [
                int(job_id.split("-")[-1])
                for job_id in self._jobs
                if job_id.rsplit("-", 1)[-1].isdigit()
            ]
            self._counter = itertools.count(max(numeric, default=0) + 1)
        return interrupted

    # ------------------------------------------------------------------
    # Creation / lookup
    # ------------------------------------------------------------------
    def submit(self, payload: Mapping[str, Any]) -> tuple[Job, bool]:
        """The job for one submission: ``(job, deduplicated)``.

        While a job for the same grid hash is queued or running, the
        submission coalesces onto it (``deduplicated=True``) — N identical
        in-flight submissions cost one execution.  Otherwise a fresh
        ``queued`` job is created and persisted.
        """
        payload = dict(payload)
        digest = grid_hash(payload)
        with self._lock:
            active_id = self._active_by_grid.get(digest)
            if active_id is not None:
                active = self._jobs[active_id]
                if active.status in ACTIVE_STATUSES:
                    return active, True
            job = Job(
                id=f"job-{next(self._counter):06d}",
                payload=payload,
                grid_hash=digest,
                created=time.time(),
            )
            self._jobs[job.id] = job
            self._active_by_grid[digest] = job.id
            self._events[job.id] = []
            self._event_conditions[job.id] = threading.Condition()
            self._persist(job)
        self.emit(job.id, {"event": "queued", "job": job.id})
        return job, False

    def get(self, job_id: str) -> Job:
        """The job registered under ``job_id`` (or raises, naming it)."""
        with self._lock:
            try:
                return self._jobs[job_id]
            except KeyError:
                raise ConfigurationError(f"unknown job {job_id!r}") from None

    def find(self, ref: str) -> Job | None:
        """Resolve a job by id, or — failing that — the *newest* job of a
        grid hash (the ``GET /results/<ref>`` convenience)."""
        with self._lock:
            job = self._jobs.get(ref)
            if job is not None:
                return job
            matches = [j for j in self._jobs.values() if j.grid_hash == ref]
            return max(matches, key=lambda j: j.created) if matches else None

    def list(self) -> list[Job]:
        """Every known job, oldest first."""
        with self._lock:
            return sorted(self._jobs.values(), key=lambda j: (j.created, j.id))

    def counts(self) -> dict[str, int]:
        """``{status: job count}`` — the health-endpoint summary."""
        with self._lock:
            counts: dict[str, int] = {}
            for job in self._jobs.values():
                counts[job.status] = counts.get(job.status, 0) + 1
            return counts

    # ------------------------------------------------------------------
    # Mutation (worker-side)
    # ------------------------------------------------------------------
    def update(self, job: Job, **fields: Any) -> None:
        """Apply field updates and persist the record atomically."""
        with self._lock:
            for name, value in fields.items():
                setattr(job, name, value)
            if job.terminal and self._active_by_grid.get(job.grid_hash) == job.id:
                del self._active_by_grid[job.grid_hash]
            self._persist(job)

    # ------------------------------------------------------------------
    # Events
    # ------------------------------------------------------------------
    def emit(self, job_id: str, event: Mapping[str, Any]) -> None:
        """Append one progress event and wake any streaming readers."""
        condition = self._event_conditions[job_id]
        with condition:
            self._events[job_id].append(dict(event))
            condition.notify_all()

    def events(
        self,
        job_id: str,
        *,
        timeout: float = 300.0,
        heartbeat: float | None = None,
    ) -> Iterator[dict]:
        """Replay buffered events, then follow until the job is terminal.

        The generator yields each event dict exactly once, in order, and
        returns once a terminal event (``done``/``failed``) has been
        yielded — or after ``timeout`` seconds pass with no progress, so a
        stream over a wedged run never hangs a reader forever.

        With ``heartbeat`` set, every ``heartbeat`` seconds of silence
        yields a synthetic ``{"event": "heartbeat", ...}`` line instead of
        dead air, carrying how long the stream has been quiet — a follower
        can tell a *slow* run (heartbeats keep arriving) from a *stuck*
        connection (nothing at all).  Heartbeats do not reset the overall
        ``timeout``; only real progress does.
        """
        self.get(job_id)  # raises on unknown ids before streaming starts
        condition = self._event_conditions[job_id]
        cursor = 0
        silent = 0.0
        while True:
            batch: list[dict[str, Any]] = []
            with condition:
                while cursor >= len(self._events[job_id]):
                    job = self._jobs[job_id]
                    if job.terminal:
                        return
                    remaining = timeout - silent
                    if remaining <= 0:
                        return
                    interval = (
                        remaining
                        if heartbeat is None
                        else min(remaining, heartbeat)
                    )
                    if not condition.wait(interval):
                        silent += interval
                        if silent >= timeout:
                            return
                        break  # heartbeat due — yield it outside the lock
                else:
                    batch = self._events[job_id][cursor:]
                    cursor += len(batch)
                    silent = 0.0
            if not batch:
                yield {
                    "event": "heartbeat",
                    "job": job_id,
                    "silent_s": round(silent, 1),
                }
                continue
            for event in batch:
                yield event
                if event.get("event") in (STATUS_DONE, STATUS_FAILED):
                    return
