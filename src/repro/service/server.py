"""The experiment service: HTTP submissions over one shared result cache.

``repro serve --store DIR`` starts a long-running, stdlib-only
(:class:`~http.server.ThreadingHTTPServer` + ``json``) service that turns N
identical grid submissions into one execution plus N cache hits.  The
pieces:

* a :class:`~repro.service.jobs.JobRegistry` deduplicating in-flight
  submissions by grid hash and persisting job records under the store;
* a :class:`~repro.service.store.SharedStore` — the content-addressed cell
  cache (spec hash = identity) every job executes into, with manifest
  journaling for crash resume;
* a small worker pool draining a queue of jobs through the one
  :class:`~repro.experiments.session.Session` and whatever execution
  backend the server was started with (``--backend vectorized`` being the
  fast default for pure-model grids);
* a query surface over the warm store: envelopes by grid, frame queries
  (filter / pivot / rows / CSV) run server-side, registered figures and
  tables rendered on demand.

Endpoints (all JSON unless noted):

========================  ==================================================
``GET  /healthz``         liveness + job/cell counts
``POST /studies``         submit a ``StudySpec.to_dict()`` payload
``POST /sweeps``          submit a ``SweepSpec.to_dict()`` (or cell spec)
``GET  /jobs``            every job record
``GET  /jobs/<id>``       one job record (done/total cell counts)
``GET  /jobs/<id>/events``  NDJSON progress stream (replay + follow)
``GET  /results``         every envelope in the store
``GET  /results/<ref>``   a job's (or grid hash's) envelopes, grid order
``POST /query``           filter/pivot/rows/CSV over the store, server-side
``GET  /figures/<name>``  a registered figure/table/report, text or JSON
========================  ==================================================

Every response the execution path produces is derived from envelopes that
are byte-identical across backends and across runs — the service adds
transport, never new numerics.
"""

from __future__ import annotations

import json
import pathlib
import queue
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Mapping, Sequence
from urllib.parse import parse_qs, urlsplit

from repro.errors import ConfigurationError, ReproError
from repro.experiments.backends import ExecutionBackend
from repro.experiments.resilience import RetryPolicy, RunHealth
from repro.experiments.session import Session
from repro.experiments.store import load_envelopes
from repro.service.jobs import Job, JobRegistry, grid_specs
from repro.service.store import SharedStore
from repro.study.defs import FIGURES, TABLES, get_figure, get_table
from repro.study.frame import ResultFrame
from repro.study.report import render_efficiency_report, render_figure_text

__all__ = ["ExperimentService", "serve"]


class ExperimentService:
    """One server process: registry + shared store + worker pool + HTTP.

    Parameters
    ----------
    store_dir:
        The shared store directory (created if missing).  Everything the
        service knows — cells, manifest, job records — lives here, so
        stopping and restarting the service on the same directory resumes
        interrupted jobs and keeps the cache warm.
    session:
        The one session every job executes under (defaults to the stock
        sampled-numerics configuration).  A pre-existing store written
        under a different session fingerprint is refused at startup.
    backend / max_workers:
        Execution backend and per-job cell concurrency, passed through to
        :meth:`Session.run_batch` for every job.
    job_workers:
        How many jobs execute concurrently (distinct grids only — duplicate
        submissions coalesce before they reach the queue).
    retry:
        The :class:`RetryPolicy` (or its dict form) every job executes
        under — transient cell failures retry with backoff, crashed or
        hung workers degrade to the in-process path, and only cells that
        exhaust the ladder land as failures.  ``None`` uses the session's
        policy (or the stock defaults).
    heartbeat:
        Seconds of event-stream silence between synthetic heartbeat lines
        on ``GET /jobs/<id>/events`` — followers can tell a slow run from
        a dead connection.  ``None`` disables heartbeats.
    """

    def __init__(
        self,
        store_dir: str | pathlib.Path,
        *,
        session: Session | None = None,
        backend: str | ExecutionBackend | None = None,
        max_workers: int = 1,
        job_workers: int = 2,
        retry: "RetryPolicy | Mapping[str, Any] | None" = None,
        heartbeat: float | None = 15.0,
        host: str = "127.0.0.1",
        port: int = 0,
        verbose: bool = False,
    ) -> None:
        if job_workers < 1:
            raise ConfigurationError("job_workers must be >= 1")
        self.session = session if session is not None else Session()
        self.backend = backend
        self.max_workers = int(max_workers)
        self.retry = (
            RetryPolicy.from_dict(retry) if isinstance(retry, Mapping) else retry
        )
        self.heartbeat = heartbeat
        self.store = SharedStore(store_dir, self.session)
        self.registry = JobRegistry(store_dir)
        self.host = host
        self._requested_port = int(port)
        self.verbose = bool(verbose)
        self._queue: "queue.Queue[Job | None]" = queue.Queue()
        self._workers: list[threading.Thread] = []
        self._job_workers = int(job_workers)
        self._httpd: ThreadingHTTPServer | None = None
        self._http_thread: threading.Thread | None = None
        self._started = False
        for job in self.registry.load():  # crash resume: finish what was queued
            self._queue.put(job)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        """The bound port (resolved once started; 0 means "pick free")."""
        if self._httpd is not None:
            return self._httpd.server_address[1]
        return self._requested_port

    @property
    def url(self) -> str:
        """The service base URL clients talk to."""
        return f"http://{self.host}:{self.port}"

    def start(self) -> None:
        """Bind the HTTP server and start the worker pool (non-blocking)."""
        if self._started:
            raise ConfigurationError("service already started")
        self._started = True
        handler = _make_handler(self)
        self._httpd = ThreadingHTTPServer(
            (self.host, self._requested_port), handler
        )
        self._httpd.daemon_threads = True
        self._http_thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-serve-http", daemon=True
        )
        self._http_thread.start()
        for index in range(self._job_workers):
            worker = threading.Thread(
                target=self._worker_loop, name=f"repro-serve-worker-{index}",
                daemon=True,
            )
            worker.start()
            self._workers.append(worker)

    def stop(self) -> None:
        """Stop accepting requests and drain the worker pool.

        In-flight jobs finish their current cell and then stop receiving
        new work; anything still queued stays ``queued`` on disk, and the
        next server over the same store picks it up — the same contract as
        a crash, minus the abruptness.
        """
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
        for _ in self._workers:
            self._queue.put(None)
        for worker in self._workers:
            worker.join(timeout=5)
        self._workers.clear()

    def serve_forever(self) -> None:
        """Blocking convenience wrapper: start, then sleep until interrupted."""
        self.start()
        try:
            while True:
                time.sleep(3600)
        except KeyboardInterrupt:  # pragma: no cover - interactive only
            pass
        finally:
            self.stop()

    # ------------------------------------------------------------------
    # Submission / execution
    # ------------------------------------------------------------------
    def submit(self, payload: Mapping[str, Any]) -> tuple[Job, bool]:
        """Register one submission; queue it unless it coalesced."""
        grid_specs(payload)  # malformed payloads fail now, not in the worker
        job, deduped = self.registry.submit(payload)
        if not deduped:
            self._queue.put(job)
        return job, deduped

    def _worker_loop(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:
                return
            try:
                self._execute(job)
            except Exception as exc:  # noqa: BLE001 - job failure is data
                detail = f"{type(exc).__name__}: {exc}"
                self.registry.update(
                    job, status="failed", error=detail, finished=time.time()
                )
                self.registry.emit(
                    job.id, {"event": "failed", "job": job.id, "error": detail}
                )

    def _execute(self, job: Job) -> None:
        """Run one job: dedup against the store, execute misses, checkpoint.

        Execution runs under ``on_error="collect"`` with the service's
        retry policy: a cell that exhausts the ladder never aborts its
        siblings — it lands in the shared manifest as ``status=failed``
        (with its structured error payload), the job finishes as
        ``failed`` with a detail naming the failed-cell count, and every
        completed sibling stays persisted.  The per-job :class:`RunHealth`
        report rides on the job record, so ``GET /jobs/<id>`` surfaces
        retries, fallbacks and failures.
        """
        specs = grid_specs(job.payload)
        pending, hits = self.store.merge(specs)
        total = len(specs)
        self.registry.update(job, status="running", total=total, done=hits)
        self.registry.emit(
            job.id,
            {
                "event": "started",
                "job": job.id,
                "total": total,
                "cached": hits,
                "pending": len(pending),
            },
        )

        def progress(completed: int, _pending_total: int, envelope) -> None:
            self.store.record(envelope)
            self.registry.update(
                job, done=hits + completed, executed=job.executed + 1
            )
            self.registry.emit(
                job.id,
                {
                    "event": "cell",
                    "job": job.id,
                    "done": hits + completed,
                    "total": total,
                    "kind": envelope.kind,
                    "spec_hash": envelope.spec_hash,
                },
            )

        def on_failure(spec, failure) -> None:
            self.store.record_failure(spec, failure.to_dict())
            self.registry.emit(
                job.id,
                {
                    "event": "cell-failed",
                    "job": job.id,
                    "kind": failure.kind,
                    "spec_hash": failure.spec_hash,
                    "error": failure.error,
                    "message": failure.message,
                    "attempts": failure.attempts,
                },
            )

        health = RunHealth()
        if pending:
            self.session.run_batch(
                pending,
                backend=self.backend,
                max_workers=self.max_workers,
                progress=progress,
                on_error="collect",
                retry=self.retry,
                health=health,
                on_failure=on_failure,
            )
            self.store.fold_journal()
        cache_status = (
            "hit" if not pending else ("partial" if hits else "miss")
        )
        health_payload = health.to_dict() if health.eventful else None
        if health.failures:
            detail = (
                f"{len(health.failures)} of {total} cells failed after "
                f"retries: "
                + "; ".join(str(f) for f in health.failures[:3])
                + ("; ..." if len(health.failures) > 3 else "")
            )
            self.registry.update(
                job,
                status="failed",
                done=total - len(health.failures),
                cache_status=cache_status,
                error=detail,
                health=health_payload,
                finished=time.time(),
            )
            self.registry.emit(
                job.id,
                {
                    "event": "failed",
                    "job": job.id,
                    "total": total,
                    "failed": len(health.failures),
                    "error": detail,
                    "health": health.summary(),
                },
            )
            return
        self.registry.update(
            job,
            status="done",
            done=total,
            cache_status=cache_status,
            health=health_payload,
            finished=time.time(),
        )
        done_event = {
            "event": "done",
            "job": job.id,
            "total": total,
            "executed": len(pending),
            "cache_status": cache_status,
        }
        if health.eventful:
            done_event["health"] = health.summary()
        self.registry.emit(job.id, done_event)

    # ------------------------------------------------------------------
    # Query surface
    # ------------------------------------------------------------------
    def frame(self, ref: str | None = None) -> ResultFrame:
        """A query frame over the warm store (or one grid's slice of it)."""
        if ref is None:
            return ResultFrame.from_envelopes(load_envelopes(self.store.root))
        job = self.registry.find(ref)
        if job is None:
            raise ConfigurationError(f"unknown job or grid {ref!r}")
        return ResultFrame.from_envelopes(
            self.store.envelopes_for(grid_specs(job.payload))
        )

    def results_payload(self, ref: str | None) -> dict[str, Any]:
        """The ``GET /results[/<ref>]`` body: envelopes + coverage counts."""
        if ref is None:
            envelopes = load_envelopes(self.store.root)
            total = len(envelopes)
        else:
            job = self.registry.find(ref)
            if job is None:
                raise ConfigurationError(f"unknown job or grid {ref!r}")
            specs = grid_specs(job.payload)
            envelopes = self.store.envelopes_for(specs)
            total = len(specs)
        return {
            "total": total,
            "available": len(envelopes),
            "envelopes": [envelope.to_dict() for envelope in envelopes],
        }

    def run_query(self, body: Mapping[str, Any]) -> dict[str, Any]:
        """The ``POST /query`` body: a frame query executed server-side.

        ``{"where": {...}, "fields": [...], "format": "rows"|"csv"}`` for
        tidy records, or ``{"pivot": {"index": [...], "values": "...",
        "agg": ...}}`` for nested pivots; ``"grid"`` restricts the frame to
        one job's (or grid hash's) cells first.  List-valued ``where``
        entries test membership, scalars equality — the
        :meth:`ResultFrame.filter` contract over the wire.
        """
        frame = self.frame(body.get("grid"))
        where = dict(body.get("where") or {})
        # JSON has no tuples: lists arriving in `where` mean membership.
        if where:
            frame = frame.filter(**where)
        pivot = body.get("pivot")
        if pivot is not None:
            index = pivot.get("index")
            values = pivot.get("values")
            if not index or not values:
                raise ConfigurationError(
                    "query pivot needs 'index' (list of fields) and 'values'"
                )
            return {
                "rows": len(frame),
                "pivot": frame.pivot(
                    tuple(index), values=values, agg=pivot.get("agg")
                ),
            }
        fields = body.get("fields")
        if not fields:
            raise ConfigurationError(
                "query needs 'fields' (list of columns) or a 'pivot'"
            )
        if body.get("format") == "csv":
            return {"rows": len(frame), "csv": frame.to_csv(tuple(fields))}
        return {"rows": len(frame), "records": frame.to_rows(tuple(fields))}

    def render_figure(
        self,
        name: str,
        *,
        chips: Sequence[str] | None = None,
        format: str = "text",
    ) -> dict[str, Any] | str:
        """The ``GET /figures/<name>`` body: any registered view, warm.

        Tables render from the system inventory (no store needed);
        figures and the efficiency report assemble from the store's frame.
        ``format="json"`` returns the raw series for figures (JSON object
        keys become strings — sizes arrive as ``"4096"``).
        """
        if name in TABLES:
            if name == "table1" and chips:
                return get_table(name).render(tuple(chips))
            return get_table(name).render()
        if name == "efficiency":
            return render_efficiency_report(self.frame(), chips=chips)
        figure = get_figure(name)  # raises, naming the known figures
        series = figure.series(self.frame(), chips=chips)
        if format == "json":
            return {"figure": name, "series": series}
        return render_figure_text(name, series)

    def health(self) -> dict[str, Any]:
        """The ``GET /healthz`` body: liveness plus store/job summaries."""
        return {
            "status": "ok",
            "store": str(self.store.root),
            "jobs": self.registry.counts(),
            "cells": self.store.cell_counts(),
            "backend": getattr(self.backend, "name", self.backend) or "auto",
        }


# ---------------------------------------------------------------------------
# HTTP plumbing
# ---------------------------------------------------------------------------
def _make_handler(service: ExperimentService):
    """A request-handler class closed over one service instance."""

    class Handler(BaseHTTPRequestHandler):
        # HTTP/1.0 keeps responses delimited by connection close, which is
        # exactly what the unbounded NDJSON event stream needs.

        def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
            if service.verbose:  # pragma: no cover - log formatting only
                BaseHTTPRequestHandler.log_message(self, format, *args)

        # -- response helpers -------------------------------------------
        def _send_json(self, code: int, payload: Any) -> None:
            body = (json.dumps(payload, indent=2, sort_keys=True) + "\n").encode()
            self.send_response(code)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _send_text(self, code: int, text: str) -> None:
            body = (text.rstrip("\n") + "\n").encode()
            self.send_response(code)
            self.send_header("Content-Type", "text/plain; charset=utf-8")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _send_error_json(self, code: int, message: str) -> None:
            self._send_json(code, {"error": message})

        def _read_body(self) -> dict[str, Any]:
            length = int(self.headers.get("Content-Length") or 0)
            raw = self.rfile.read(length) if length else b""
            if not raw:
                raise ConfigurationError("request body must be a JSON object")
            try:
                body = json.loads(raw)
            except json.JSONDecodeError as exc:
                raise ConfigurationError(f"request body is not JSON: {exc}") from exc
            if not isinstance(body, dict):
                raise ConfigurationError("request body must be a JSON object")
            return body

        # -- dispatch ----------------------------------------------------
        def do_GET(self) -> None:  # noqa: N802 - http.server contract
            try:
                self._route_get()
            except (ConfigurationError, ReproError) as exc:
                self._send_error_json(404 if "unknown" in str(exc) else 400, str(exc))
            except BrokenPipeError:  # pragma: no cover - client went away
                pass
            except Exception as exc:  # noqa: BLE001 - boundary
                self._send_error_json(500, f"internal error: {exc}")

        def do_POST(self) -> None:  # noqa: N802 - http.server contract
            try:
                self._route_post()
            except (ConfigurationError, ReproError) as exc:
                self._send_error_json(400, str(exc))
            except Exception as exc:  # noqa: BLE001 - boundary
                self._send_error_json(500, f"internal error: {exc}")

        def _route_get(self) -> None:
            split = urlsplit(self.path)
            parts = [part for part in split.path.split("/") if part]
            params = parse_qs(split.query)
            if parts == ["healthz"]:
                self._send_json(200, service.health())
            elif parts == ["jobs"]:
                self._send_json(
                    200, {"jobs": [job.to_dict() for job in service.registry.list()]}
                )
            elif len(parts) == 2 and parts[0] == "jobs":
                self._send_json(200, service.registry.get(parts[1]).to_dict())
            elif len(parts) == 3 and parts[0] == "jobs" and parts[2] == "events":
                self._stream_events(parts[1])
            elif parts == ["results"]:
                self._send_json(200, service.results_payload(None))
            elif len(parts) == 2 and parts[0] == "results":
                self._send_json(200, service.results_payload(parts[1]))
            elif len(parts) == 2 and parts[0] == "figures":
                chips_param = params.get("chips", [])
                chips = (
                    tuple(
                        chip
                        for value in chips_param
                        for chip in value.split(",")
                        if chip
                    )
                    or None
                )
                rendered = service.render_figure(
                    parts[1],
                    chips=chips,
                    format=params.get("format", ["text"])[0],
                )
                if isinstance(rendered, str):
                    self._send_text(200, rendered)
                else:
                    self._send_json(200, rendered)
            else:
                self._send_error_json(404, f"unknown path {split.path!r}")

        def _route_post(self) -> None:
            parts = [part for part in urlsplit(self.path).path.split("/") if part]
            if parts in (["studies"], ["sweeps"]):
                body = self._read_body()
                expected = "study" if parts == ["studies"] else None
                if expected and body.get("kind") != expected:
                    raise ConfigurationError(
                        "POST /studies expects a StudySpec payload "
                        f"(kind='study'), got kind={body.get('kind')!r}"
                    )
                job, deduped = service.submit(body)
                self._send_json(
                    202, {"job": job.to_dict(), "deduplicated": deduped}
                )
            elif parts == ["query"]:
                self._send_json(200, service.run_query(self._read_body()))
            else:
                self._send_error_json(404, f"unknown path {self.path!r}")

        def _stream_events(self, job_id: str) -> None:
            service.registry.get(job_id)  # raises on unknown ids, pre-headers
            events = service.registry.events(
                job_id, heartbeat=service.heartbeat
            )
            self.send_response(200)
            self.send_header("Content-Type", "application/x-ndjson")
            self.end_headers()
            try:
                for event in events:
                    line = json.dumps(event, sort_keys=True) + "\n"
                    self.wfile.write(line.encode())
                    self.wfile.flush()
            except BrokenPipeError:  # pragma: no cover - client went away
                pass

    return Handler


def serve(
    store_dir: str | pathlib.Path,
    *,
    host: str = "127.0.0.1",
    port: int = 8765,
    **kwargs: Any,
) -> ExperimentService:
    """Construct and start a service (the ``repro serve`` entry point)."""
    service = ExperimentService(store_dir, host=host, port=port, **kwargs)
    service.start()
    return service
