"""The shared, lock-guarded store every service job reads and writes.

One server owns one store directory — the same sharded, manifest-indexed
layout ``repro run --out`` writes — and executes every submission into it.
That sharing is the whole point: a cell's file name is its content identity
(kind + spec hash), so the store *is* the result cache, and a cell any past
job completed is a hit for every future job that compiles to it.

Concurrency discipline:

* envelope files land via atomic replace (readers never see torn JSON) and
  are keyed by spec hash, so two jobs racing on the same cell write
  byte-identical content — last writer wins, nothing is lost;
* the manifest and its append-only journal are *not* content-addressed —
  all mutations (merging a new grid's cells, per-cell checkpoints, folding
  the journal) go through one store-level lock, keeping the index coherent
  under a worker pool;
* readers (the query surface, ``--from`` renders in other processes) take
  no lock at all — :func:`~repro.experiments.store.load_envelopes`
  tolerates files appearing and vanishing mid-scan.

Crash safety is inherited from :mod:`repro.experiments.manifest`: the
journal records each completed cell durably, so a killed server resumes by
re-executing only cells with no journal line.
"""

from __future__ import annotations

import pathlib
import threading
from typing import TYPE_CHECKING, Sequence

from repro.errors import ConfigurationError
from repro.experiments.envelope import ResultEnvelope
from repro.experiments.manifest import STATUS_DONE, STATUS_PENDING, RunManifest
from repro.experiments.store import (
    MANIFEST_FILENAME,
    atomic_write_text,
    envelope_path,
    quarantine_file,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.session import Session
    from repro.experiments.specs import ExperimentSpec

__all__ = ["SharedStore"]


class SharedStore:
    """Serialized write access to one manifest-indexed envelope store.

    Wraps the store's :class:`RunManifest` behind a lock so concurrent
    worker threads can merge grids and checkpoint cells without corrupting
    the index.  The session is fixed at construction: one store holds one
    session fingerprint's results (the purity contract), and a pre-existing
    manifest written under a different fingerprint is refused at startup
    rather than silently mixed.
    """

    def __init__(self, directory: str | pathlib.Path, session: "Session") -> None:
        self.root = pathlib.Path(directory)
        self.session = session
        self.lock = threading.Lock()
        if self.root.joinpath(MANIFEST_FILENAME).is_file():
            self.manifest = RunManifest.load(self.root)
            self.manifest.check_session(session)  # raises, naming the fields
        else:
            self.root.mkdir(parents=True, exist_ok=True)
            self.manifest = RunManifest.create(self.root, session, ())
            self.manifest.save()

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    def merge(
        self, specs: Sequence["ExperimentSpec"]
    ) -> tuple[list["ExperimentSpec"], int]:
        """Index a grid; return ``(pending specs, already-done count)``.

        New cells are recorded pending and the manifest is saved (so a
        crash right after submission still knows the full intent); cells
        some earlier job completed are the cache hits.
        """
        with self.lock:
            self.manifest.merge_specs(specs)
            pending = [
                spec for spec in specs if not self.manifest.is_done(spec)
            ]
            self.manifest.save()
        return pending, len(specs) - len(pending)

    def record(self, envelope: ResultEnvelope) -> pathlib.Path:
        """Persist one completed cell: atomic envelope write + journal line."""
        path = envelope_path(self.root, envelope)
        atomic_write_text(path, envelope.to_json() + "\n")
        with self.lock:
            self.manifest.checkpoint(envelope, path.relative_to(self.root))
        return path

    def record_failure(self, spec: "ExperimentSpec", error: dict) -> None:
        """Persist one terminally-failed cell: journaled ``status=failed``.

        The structured error payload (a
        :meth:`CellFailure.to_dict <repro.experiments.resilience.CellFailure>`
        dict) lands in the shared manifest durably, so a killed server
        still knows the cell failed — and, because ``failed`` is not
        ``done``, the next job that compiles to the cell re-executes it.
        """
        with self.lock:
            self.manifest.checkpoint_failed(spec, error)

    def fold_journal(self) -> None:
        """Fold the journal into ``manifest.json`` (end-of-job compaction)."""
        with self.lock:
            self.manifest.save()

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    def envelope_for(self, spec: "ExperimentSpec") -> ResultEnvelope | None:
        """The stored envelope of one cell, or ``None`` when not done yet.

        A journaled cell whose envelope file vanished (an operator pruning
        the store by hand) degrades to a miss rather than an error — the
        cell simply re-executes on the next job that needs it.  A cell
        whose file is *corrupt* (a torn write under a crash) is
        quarantined to ``<store>/.quarantine/`` with a reason file and
        likewise demoted to a miss: the store heals by re-execution
        instead of serving — or raising on — bad bytes.
        """
        with self.lock:
            record = self.manifest.cells.get(spec.spec_hash())
            done = (
                record is not None
                and record.status == STATUS_DONE
                and record.path is not None
            )
            path = self.root / record.path if done else None
        if path is None:
            return None
        try:
            return ResultEnvelope.load(path)
        except ConfigurationError as exc:
            if not isinstance(exc.__cause__, FileNotFoundError):
                quarantine_file(self.root, path, reason=str(exc))
            with self.lock:
                record.status = STATUS_PENDING
                record.path = None
            return None

    def envelopes_for(
        self, specs: Sequence["ExperimentSpec"]
    ) -> list[ResultEnvelope]:
        """The stored envelopes of a grid, in grid order (missing skipped)."""
        out = []
        for spec in specs:
            envelope = self.envelope_for(spec)
            if envelope is not None:
                out.append(envelope)
        return out

    def cell_counts(self) -> dict[str, int]:
        """``{status: cell count}`` over the whole shared manifest."""
        with self.lock:
            return self.manifest.status_counts()
