"""Execution-driven performance/power simulation substrate.

The benchmarks in this repository run their numerics for real (NumPy) while
*time* is advanced on a virtual clock by a calibrated roofline cost model and
*power* is recorded as a trace of per-component draws.  The ``powermetrics``
simulation integrates that trace exactly the way the real tool integrates
energy counters, so the paper's measurement protocol runs unmodified.
"""

from repro.sim.clock import VirtualClock
from repro.sim.trace import ExecutionTrace, TraceEvent
from repro.sim.recorder import PowerInterval, PowerRecorder
from repro.sim.roofline import OpCost, TimeBreakdown, arithmetic_intensity, roofline_time
from repro.sim.efficiency import (
    ConstantCurve,
    EfficiencyCurve,
    LogisticCurve,
    PeakDecayCurve,
    TableCurve,
)
from repro.sim.noise import DeterministicNoise
from repro.sim.policy import NumericsPolicy, NumericsConfig
from repro.sim.engine import CompletedOperation, EngineKind, Operation
from repro.sim.machine import Machine

__all__ = [
    "VirtualClock",
    "TraceEvent",
    "ExecutionTrace",
    "PowerInterval",
    "PowerRecorder",
    "OpCost",
    "TimeBreakdown",
    "roofline_time",
    "arithmetic_intensity",
    "EfficiencyCurve",
    "ConstantCurve",
    "LogisticCurve",
    "PeakDecayCurve",
    "TableCurve",
    "DeterministicNoise",
    "NumericsPolicy",
    "NumericsConfig",
    "EngineKind",
    "Operation",
    "CompletedOperation",
    "Machine",
]
