"""Execution-driven performance/power simulation substrate.

The benchmarks in this repository run their numerics for real (NumPy) while
*time* is advanced on a virtual clock by a calibrated roofline cost model and
*power* is recorded as a trace of per-component draws.  The ``powermetrics``
simulation integrates that trace exactly the way the real tool integrates
energy counters, so the paper's measurement protocol runs unmodified.
"""

from repro.sim.clock import VirtualClock
from repro.sim.trace import ExecutionTrace, TraceEvent
from repro.sim.recorder import PowerInterval, PowerRecorder
from repro.sim.roofline import OpCost, TimeBreakdown, arithmetic_intensity, roofline_time
from repro.sim.efficiency import (
    ConstantCurve,
    EfficiencyCurve,
    LogisticCurve,
    PeakDecayCurve,
    TableCurve,
)
from repro.sim.noise import DeterministicNoise, lognormal_factors, noise_entropy
from repro.sim.policy import NumericsPolicy, NumericsConfig
from repro.sim.engine import CompletedOperation, EngineKind, Operation
from repro.sim.machine import (
    Machine,
    MachineTemplate,
    engine_peak_flops,
    machine_template,
)
from repro.sim.vectorized import (
    LoweredCell,
    VectorContext,
    effective_draw_w,
    evaluate_cells,
    run_lowered_cell,
    vector_context,
)

__all__ = [
    "VirtualClock",
    "TraceEvent",
    "ExecutionTrace",
    "PowerInterval",
    "PowerRecorder",
    "OpCost",
    "TimeBreakdown",
    "roofline_time",
    "arithmetic_intensity",
    "EfficiencyCurve",
    "ConstantCurve",
    "LogisticCurve",
    "PeakDecayCurve",
    "TableCurve",
    "DeterministicNoise",
    "lognormal_factors",
    "noise_entropy",
    "NumericsPolicy",
    "NumericsConfig",
    "EngineKind",
    "Operation",
    "CompletedOperation",
    "Machine",
    "MachineTemplate",
    "engine_peak_flops",
    "machine_template",
    "LoweredCell",
    "VectorContext",
    "vector_context",
    "run_lowered_cell",
    "evaluate_cells",
    "effective_draw_w",
]
