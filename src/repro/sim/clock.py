"""A monotonic virtual clock.

All benchmark timing in this repository is virtual: operations advance the
clock by their modelled duration, and the harness reads timestamps exactly
like the paper reads ``std::chrono::high_resolution_clock::now()`` —
including the nanosecond-granularity truncation (section 4).
"""

from __future__ import annotations

from repro.errors import ClockError
from repro.units import NS_PER_S

__all__ = ["VirtualClock"]


class VirtualClock:
    """Monotonic simulated time in seconds, starting at zero."""

    __slots__ = ("_now",)

    def __init__(self, start_s: float = 0.0) -> None:
        if start_s < 0.0:
            raise ClockError(f"clock cannot start before zero, got {start_s}")
        self._now = float(start_s)

    def now_s(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def now_ns(self) -> int:
        """Current virtual time in integral nanoseconds (chrono-style)."""
        return int(self._now * NS_PER_S)

    def advance(self, dt_s: float) -> float:
        """Advance the clock by ``dt_s`` seconds and return the new time.

        Raises
        ------
        ClockError
            If ``dt_s`` is negative or not finite.
        """
        if not (dt_s >= 0.0) or dt_s != dt_s or dt_s == float("inf"):
            raise ClockError(f"cannot advance clock by {dt_s!r} seconds")
        self._now += dt_s
        return self._now

    def sleep(self, dt_s: float) -> float:
        """Alias of :meth:`advance`; reads like host code (`sleep(2)`)."""
        return self.advance(dt_s)

    def advance_to(self, t_s: float) -> float:
        """Move the clock forward to an absolute time (no-op if in the past)."""
        if t_s > self._now:
            self._now = float(t_s)
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"VirtualClock(now={self._now:.9f}s)"
