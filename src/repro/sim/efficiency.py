"""Size-dependent efficiency curves.

The fraction of an engine's architectural peak that an implementation
achieves depends on the problem size: GPU kernels ramp up as occupancy grows,
cache-unfriendly CPU code decays once the working set spills the last-level
cache.  These parametric curves are the knobs the calibration layer turns to
match the paper's Figure-2 shapes.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Protocol, Sequence, runtime_checkable

from repro.errors import ConfigurationError

__all__ = [
    "EfficiencyCurve",
    "ConstantCurve",
    "LogisticCurve",
    "PeakDecayCurve",
    "TableCurve",
]


@runtime_checkable
class EfficiencyCurve(Protocol):
    """Maps a positive problem size to an efficiency in (0, 1]."""

    def __call__(self, x: float) -> float:  # pragma: no cover - protocol
        ...


def _check_peak(peak: float) -> None:
    if not (0.0 < peak <= 1.0):
        raise ConfigurationError(f"peak efficiency must be in (0, 1], got {peak}")


def _check_x(x: float) -> None:
    if x <= 0.0:
        raise ConfigurationError(f"curve argument must be positive, got {x}")


@dataclasses.dataclass(frozen=True)
class ConstantCurve:
    """Size-independent efficiency."""

    value: float

    def __post_init__(self) -> None:
        _check_peak(self.value)

    def __call__(self, x: float) -> float:
        _check_x(x)
        return self.value


@dataclasses.dataclass(frozen=True)
class LogisticCurve:
    """Monotone ramp ``peak / (1 + (x_half / x) ** steepness)``.

    At ``x == x_half`` the curve reaches half the peak; for ``x >> x_half``
    it saturates at ``peak``.
    """

    peak: float
    x_half: float
    steepness: float = 1.5

    def __post_init__(self) -> None:
        _check_peak(self.peak)
        if self.x_half <= 0.0 or self.steepness <= 0.0:
            raise ConfigurationError("x_half and steepness must be positive")

    def __call__(self, x: float) -> float:
        _check_x(x)
        return self.peak / (1.0 + (self.x_half / x) ** self.steepness)


@dataclasses.dataclass(frozen=True)
class PeakDecayCurve:
    """Ramp to a peak, then decay — cache-spill behaviour of naive CPU code.

    ``eff(x) = peak * ramp(x) * (decay_start / max(x, decay_start)) ** decay_exponent``
    where ``ramp`` is the logistic ramp of :class:`LogisticCurve`.
    """

    peak: float
    rise_half: float
    decay_start: float
    rise_steepness: float = 2.0
    decay_exponent: float = 0.35

    def __post_init__(self) -> None:
        _check_peak(self.peak)
        if min(self.rise_half, self.decay_start, self.rise_steepness) <= 0.0:
            raise ConfigurationError("curve scales must be positive")
        if self.decay_exponent < 0.0:
            raise ConfigurationError("decay exponent must be non-negative")

    def __call__(self, x: float) -> float:
        _check_x(x)
        ramp = 1.0 / (1.0 + (self.rise_half / x) ** self.rise_steepness)
        decay = (self.decay_start / max(x, self.decay_start)) ** self.decay_exponent
        return self.peak * ramp * decay


@dataclasses.dataclass(frozen=True)
class TableCurve:
    """Piecewise log-linear interpolation through explicit anchors.

    Anchors are ``(x, efficiency)`` pairs; queries outside the anchor range
    clamp to the first/last efficiency.  Used where a parametric shape cannot
    match a measured irregularity (e.g. the M2 CPU STREAM anomaly).
    """

    points: tuple[tuple[float, float], ...]

    def __post_init__(self) -> None:
        if len(self.points) < 1:
            raise ConfigurationError("table curve needs at least one anchor")
        xs = [p[0] for p in self.points]
        if any(x <= 0.0 for x in xs):
            raise ConfigurationError("anchor positions must be positive")
        if sorted(xs) != xs or len(set(xs)) != len(xs):
            raise ConfigurationError("anchor positions must be strictly increasing")
        for _, eff in self.points:
            _check_peak(eff)

    @classmethod
    def from_pairs(cls, pairs: Sequence[tuple[float, float]]) -> "TableCurve":
        return cls(tuple((float(x), float(e)) for x, e in pairs))

    def __call__(self, x: float) -> float:
        _check_x(x)
        pts = self.points
        if x <= pts[0][0]:
            return pts[0][1]
        if x >= pts[-1][0]:
            return pts[-1][1]
        for (x0, e0), (x1, e1) in zip(pts, pts[1:]):
            if x0 <= x <= x1:
                t = (math.log(x) - math.log(x0)) / (math.log(x1) - math.log(x0))
                return e0 + t * (e1 - e0)
        raise AssertionError("unreachable")  # pragma: no cover
