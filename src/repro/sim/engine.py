"""Operation descriptors executed by the :class:`repro.sim.machine.Machine`.

An :class:`Operation` bundles everything the machine needs to advance time
and record power for one unit of simulated work: the engine it runs on, its
roofline cost, the resolved efficiencies, dispatch overhead, and the absolute
component power draws while it runs.  Implementations build operations from
the calibration layer; the machine stays generic.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Mapping

from repro.errors import ConfigurationError
from repro.sim.roofline import OpCost, TimeBreakdown
from repro.soc.power import PowerComponent

__all__ = ["EngineKind", "Operation", "CompletedOperation"]


class EngineKind(enum.Enum):
    """The execution engines of an M-series SoC (section 2)."""

    CPU_SCALAR = "cpu-scalar"
    CPU_SIMD = "cpu-simd"
    AMX = "amx"
    GPU = "gpu"
    ANE = "ane"

    @property
    def power_component(self) -> PowerComponent:
        """The powermetrics rail this engine's draw is attributed to.

        AMX sits inside the CPU complex, so powermetrics reports it as CPU
        power — which is why the paper can compare Accelerate efficiency
        against CPU implementations directly.
        """
        if self in (EngineKind.CPU_SCALAR, EngineKind.CPU_SIMD, EngineKind.AMX):
            return PowerComponent.CPU
        if self is EngineKind.GPU:
            return PowerComponent.GPU
        return PowerComponent.ANE


@dataclasses.dataclass(frozen=True)
class Operation:
    """One schedulable unit of simulated work."""

    engine: EngineKind
    label: str
    cost: OpCost
    peak_flops: float
    peak_bytes_per_s: float
    compute_efficiency: float = 1.0
    memory_efficiency: float = 1.0
    overhead_s: float = 0.0
    power_draws_w: Mapping[PowerComponent, float] = dataclasses.field(
        default_factory=dict
    )
    noise_key: str | None = None
    noise_sigma: float | None = None

    def __post_init__(self) -> None:
        if not self.label:
            raise ConfigurationError("operation label must be non-empty")
        for comp, watts in self.power_draws_w.items():
            if watts < 0.0:
                raise ConfigurationError(f"negative power draw for {comp}")


@dataclasses.dataclass(frozen=True)
class CompletedOperation:
    """Outcome of executing an :class:`Operation`."""

    operation: Operation
    breakdown: TimeBreakdown
    start_s: float
    end_s: float
    draws_w: Mapping[PowerComponent, float]
    throttled: bool

    @property
    def elapsed_s(self) -> float:
        return self.end_s - self.start_s

    @property
    def achieved_flops(self) -> float:
        if self.elapsed_s == 0.0:
            return 0.0
        return self.operation.cost.flops / self.elapsed_s

    @property
    def achieved_bytes_per_s(self) -> float:
        if self.elapsed_s == 0.0:
            return 0.0
        return self.operation.cost.total_bytes / self.elapsed_s

    def energy_j(self) -> float:
        """Energy of the *active* draws over this operation (excludes idle rails)."""
        return sum(w for w in self.draws_w.values()) * self.elapsed_s
