"""The simulated machine: one device from Table 3 under test.

A :class:`Machine` owns the virtual clock, the power recorder, the execution
trace, the thermal model and a deterministic noise source.  Executing an
:class:`~repro.sim.engine.Operation` advances the clock by the roofline time
(possibly stretched by thermal throttling and jitter) and records the
component power draws over the active window — everything ``powermetrics``
later integrates.
"""

from __future__ import annotations

import functools
from typing import Mapping

from repro.errors import ConfigurationError
from repro.sim.clock import VirtualClock
from repro.sim.engine import CompletedOperation, EngineKind, Operation
from repro.sim.noise import DeterministicNoise
from repro.sim.policy import NumericsConfig
from repro.sim.recorder import PowerInterval, PowerRecorder
from repro.sim.roofline import roofline_time
from repro.sim.trace import ExecutionTrace, TraceEvent
from repro.soc.catalog import get_chip
from repro.soc.chip import ChipSpec
from repro.soc.device import DeviceSpec, device_for_chip
from repro.soc.power import PowerComponent, PowerEnvelope, default_envelope_for
from repro.soc.thermal import ThermalModel

__all__ = ["Machine", "MachineTemplate", "engine_peak_flops", "machine_template"]


def engine_peak_flops(chip: ChipSpec, engine: EngineKind) -> float:
    """Architectural FP peak of one execution engine (FLOP/s).

    Shared dispatch used by :meth:`Machine.peak_flops` and the vectorized
    sweep engine's :class:`~repro.sim.vectorized.VectorContext`, so both
    paths read the very same numbers.
    """
    if engine is EngineKind.CPU_SCALAR:
        return chip.performance_cluster.scalar_fp32_flops()
    if engine is EngineKind.CPU_SIMD:
        return chip.cpu_simd_fp32_flops()
    if engine is EngineKind.AMX:
        return chip.amx.peak_fp32_flops()
    if engine is EngineKind.GPU:
        return chip.gpu.peak_fp32_flops()
    if engine is EngineKind.ANE:
        return chip.neural_engine.peak_fp16_flops()
    raise ConfigurationError(f"unknown engine {engine}")


class MachineTemplate:
    """The immutable half of a study machine, shared across constructions.

    Chip spec, device spec, thermal model and power envelope are all frozen
    value objects that depend only on ``(chip name, thermal_enabled)`` — yet
    the fresh-machine-per-cell construction used to rebuild them for every
    experiment cell.  :func:`machine_template` caches one template per
    configuration; :meth:`Machine.for_chip` and the vectorized sweep engine
    both draw from it, leaving only the genuinely per-machine state (clock,
    recorder, trace, noise source) to construct per cell.
    """

    __slots__ = ("chip", "device", "thermal", "envelope")

    def __init__(
        self,
        chip: ChipSpec,
        device: DeviceSpec,
        thermal: ThermalModel,
        envelope: PowerEnvelope,
    ) -> None:
        self.chip = chip
        self.device = device
        self.thermal = thermal
        self.envelope = envelope

    def peak_flops(self, engine: EngineKind) -> float:
        """Architectural FP peak of one execution engine (FLOP/s)."""
        return engine_peak_flops(self.chip, engine)

    def memory_bandwidth_bytes_per_s(self) -> float:
        """Theoretical unified-memory bandwidth in bytes/second."""
        return self.chip.memory.bandwidth_bytes_per_s()


@functools.lru_cache(maxsize=None)
def machine_template(name: str, thermal_enabled: bool = True) -> MachineTemplate:
    """The cached immutable template of one study configuration."""
    chip = get_chip(name)
    device = device_for_chip(name)
    return MachineTemplate(
        chip,
        device,
        ThermalModel.for_device(device, enabled=thermal_enabled),
        default_envelope_for(chip.name),
    )


class Machine:
    """A simulated device (chip + enclosure) with its measurement plumbing."""

    def __init__(
        self,
        chip: ChipSpec,
        device: DeviceSpec,
        *,
        envelope: PowerEnvelope | None = None,
        thermal: ThermalModel | None = None,
        seed: int = 0,
        noise_sigma: float = 0.015,
        numerics: NumericsConfig | None = None,
    ) -> None:
        if device.chip_name != chip.name:
            raise ConfigurationError(
                f"device {device.model!r} carries chip {device.chip_name}, "
                f"not {chip.name}"
            )
        self.chip = chip
        self.device = device
        self.envelope = envelope or default_envelope_for(chip.name)
        self.thermal = thermal or ThermalModel.for_device(device)
        self.clock = VirtualClock()
        self.recorder = PowerRecorder(self.envelope)
        self.trace = ExecutionTrace()
        self.noise = DeterministicNoise(seed, noise_sigma)
        self.numerics = numerics or NumericsConfig.sampled()
        self._op_counter = 0

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def for_chip(
        cls,
        name: str,
        *,
        seed: int = 0,
        noise_sigma: float = 0.015,
        thermal_enabled: bool = True,
        numerics: NumericsConfig | None = None,
    ) -> "Machine":
        """Create the study configuration for a chip (device from Table 3).

        The immutable pieces — chip, device, thermal model, power envelope —
        come from the shared :func:`machine_template` cache; only per-machine
        state (clock, recorder, trace, noise) is constructed fresh.
        """
        template = machine_template(name, thermal_enabled)
        return cls(
            template.chip,
            template.device,
            envelope=template.envelope,
            thermal=template.thermal,
            seed=seed,
            noise_sigma=noise_sigma,
            numerics=numerics,
        )

    # ------------------------------------------------------------------
    # Clock facade
    # ------------------------------------------------------------------
    def now_s(self) -> float:
        """Current virtual time in seconds."""
        return self.clock.now_s()

    def now_ns(self) -> int:
        """Current virtual time in integral nanoseconds (chrono-style)."""
        return self.clock.now_ns()

    def sleep(self, dt_s: float) -> None:
        """Idle the machine for ``dt_s`` virtual seconds (power at idle floors)."""
        self.clock.sleep(dt_s)

    # ------------------------------------------------------------------
    # Architectural peaks used by implementations
    # ------------------------------------------------------------------
    def peak_flops(self, engine: EngineKind) -> float:
        """Architectural FP peak of one execution engine (FLOP/s)."""
        return engine_peak_flops(self.chip, engine)

    def memory_bandwidth_bytes_per_s(self) -> float:
        """Theoretical unified-memory bandwidth in bytes/second."""
        return self.chip.memory.bandwidth_bytes_per_s()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(self, op: Operation) -> CompletedOperation:
        """Run one operation: advance time, apply thermals/noise, log power."""
        breakdown = roofline_time(
            op.cost,
            peak_flops=op.peak_flops,
            peak_bytes_per_s=op.peak_bytes_per_s,
            compute_efficiency=op.compute_efficiency,
            memory_efficiency=op.memory_efficiency,
            overhead_s=op.overhead_s,
        )
        duration = breakdown.total_s

        requested_total = sum(op.power_draws_w.values())
        clamp = self.thermal.clamp_factor(requested_total)
        throttled = clamp < 1.0
        draws: Mapping[PowerComponent, float]
        if throttled:
            duration *= self.thermal.throttle_time_factor(requested_total)
            draws = {c: w * clamp for c, w in op.power_draws_w.items()}
        else:
            draws = dict(op.power_draws_w)

        self._op_counter += 1
        noise_key = op.noise_key or f"{op.label}#{self._op_counter}"
        duration *= self.noise.factor(noise_key, op.noise_sigma)

        start = self.clock.now_s()
        end = self.clock.advance(duration)
        if draws:
            self.recorder.record(PowerInterval(start, end, draws))
        self.trace.append(
            TraceEvent(
                start_s=start,
                end_s=end,
                engine=op.engine.value,
                label=op.label,
                flops=op.cost.flops,
                bytes_moved=op.cost.total_bytes,
            )
        )
        return CompletedOperation(
            operation=op,
            breakdown=breakdown,
            start_s=start,
            end_s=end,
            draws_w=draws,
            throttled=throttled,
        )

    def reset_measurements(self) -> None:
        """Clear the trace and power history (the clock keeps advancing)."""
        self.trace.clear()
        self.recorder.clear()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Machine(chip={self.chip.name}, device={self.device.model!r}, "
            f"t={self.clock.now_s():.6f}s)"
        )
