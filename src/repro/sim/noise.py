"""Deterministic measurement noise.

Real benchmark repeats vary run to run; the paper takes the maximum of ten to
twenty STREAM repetitions and five GEMM repetitions precisely because of that
variation (section 4).  We reproduce it with *deterministic* multiplicative
lognormal jitter: the factor depends only on a seed and a string key, so runs
are exactly reproducible while repeats still differ from one another.

Scalar and bulk draws share one implementation.  A draw is defined as::

    entropy = sha256(f"{seed}:{key}")[:8]            # content-addressed
    rng     = np.random.default_rng(entropy)          # PCG64 stream
    factor  = exp(rng.normal(0, sigma) - sigma**2/2)  # mean-corrected

The expensive step is ``default_rng`` construction (SeedSequence mixing plus
PCG64 seeding), so :func:`lognormal_factors` replicates NumPy's SeedSequence
entropy-mixing *and* PCG64's 128-bit seeding fold with vectorized uint64
arithmetic, then injects each pre-seeded state into one reused bit generator
per thread.  Injection itself has two tiers: the default writes the 32-byte
``pcg64_random_t`` struct image straight through the documented
``BitGenerator.ctypes.state_address`` interface (validated once per process
by a bit-exact probe against ``default_rng``), and when the probe fails —
unexpected struct layout, exotic platform — it degrades to the public
``.state`` dict setter.  The replication is exact either way — the normal
variate comes from the very same generator class in the very same state — so
bulk draws equal per-key draws bit for bit (enforced by a hypothesis
property test), and the sweep fast path (:mod:`repro.sim.vectorized`)
amortises the seeding across a whole grid.
"""

from __future__ import annotations

import ctypes
import hashlib
import threading
from typing import Iterable, Sequence

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "DeterministicNoise",
    "lognormal_factors",
    "noise_entropies",
    "noise_entropy",
    "resolve_sigma",
]

# --- NumPy SeedSequence constants (numpy/random/bit_generator.pyx) ---------
_XSHIFT = np.uint32(16)
_INIT_A = np.uint32(0x43B0D7E5)
_MULT_A = np.uint32(0x931E8875)
_INIT_B = np.uint32(0x8B51F9DD)
_MULT_B = np.uint32(0x58F38DED)
_MIX_MULT_L = np.uint32(0xCA01F9DD)
_MIX_MULT_R = np.uint32(0x4973F715)

#: The default PCG64 LCG multiplier (pcg64.h, PCG_DEFAULT_MULTIPLIER_128).
_PCG_MULT_128 = 0x2360ED051FC65DA44385DF649FCCF645
_MASK_128 = (1 << 128) - 1  # kept for documentation of the fold domain

#: Per-thread reusable generator the PCG64 states are injected into — state
#: injection replaces the costly per-key ``default_rng`` construction, and a
#: thread-local instance keeps concurrent scalar draws (the threads backend)
#: from racing on shared bit-generator state.
_LOCAL = threading.local()


def resolve_sigma(default_sigma: float, sigma: "float | None") -> float:
    """The effective sigma of one draw (0.0 means 'exactly 1.0').

    The one place the semantics live: a ``default_sigma`` of zero disables
    the source globally (even against per-op sigmas), ``None`` takes the
    default, and negative values are rejected.  Both the scalar
    :class:`DeterministicNoise` path and the vectorized sweep engine
    resolve through here, so they cannot drift.
    """
    if default_sigma == 0.0:
        return 0.0
    s = default_sigma if sigma is None else float(sigma)
    if s < 0.0:
        raise ConfigurationError("noise sigma must be non-negative")
    return s


def noise_entropy(seed: int, key: str) -> int:
    """The 64-bit content-addressed entropy of one (seed, key) draw."""
    digest = hashlib.sha256(f"{seed}:{key}".encode()).digest()
    return int.from_bytes(digest[:8], "little")


def noise_entropies(seed: int, keys: Iterable[str]) -> list[int]:
    """Bulk :func:`noise_entropy`: the same digest per key, loop hoisted.

    At a million keys per sweep the f-string/attribute overhead of the
    scalar helper is measurable, so the grid engines hash through here.
    """
    prefix = f"{seed}:"
    sha256 = hashlib.sha256
    from_bytes = int.from_bytes
    return [
        from_bytes(sha256((prefix + key).encode()).digest()[:8], "little")
        for key in keys
    ]


def _seed_state_words(entropy: np.ndarray) -> list[np.ndarray]:
    """``SeedSequence(e).generate_state(4, uint64)`` for an array of entropies.

    An exact, vectorized replication of NumPy's entropy-mixing for integer
    entropy below 2**64 with the default pool size of four words: the same
    hash/mix chain (including the running hash constant shared across calls,
    and the one-word entropy case when the high half is zero) evaluated with
    elementwise uint32 arithmetic over all entropies at once.
    """
    n = len(entropy)
    lo = (entropy & np.uint64(0xFFFFFFFF)).astype(np.uint32)
    hi = (entropy >> np.uint64(32)).astype(np.uint32)

    hash_const = np.full(n, _INIT_A, dtype=np.uint32)

    def hashmix(value: np.ndarray, hash_const: np.ndarray):
        value = value ^ hash_const
        hash_const = hash_const * _MULT_A
        value = value * hash_const
        value ^= value >> _XSHIFT
        return value, hash_const

    def mix(x: np.ndarray, y: np.ndarray) -> np.ndarray:
        result = x * _MIX_MULT_L - y * _MIX_MULT_R
        result ^= result >> _XSHIFT
        return result

    with np.errstate(over="ignore"):
        zero = np.zeros(n, dtype=np.uint32)
        pool: list[np.ndarray] = [zero] * 4
        pool[0], hash_const = hashmix(lo, hash_const)
        # entropy ints below 2**32 assemble to a single uint32 word, so the
        # second pool slot mixes literal zero for them, the high word else.
        pool[1], hash_const = hashmix(np.where(hi > 0, hi, zero), hash_const)
        pool[2], hash_const = hashmix(zero, hash_const)
        pool[3], hash_const = hashmix(zero, hash_const)
        for i_src in range(4):
            for i_dst in range(4):
                if i_src != i_dst:
                    hashed, hash_const = hashmix(pool[i_src], hash_const)
                    pool[i_dst] = mix(pool[i_dst], hashed)

        hash_const = np.full(n, _INIT_B, dtype=np.uint32)
        out32: list[np.ndarray] = []
        for i in range(8):
            value = pool[i % 4] ^ hash_const
            hash_const = hash_const * _MULT_B
            value = value * hash_const
            value ^= value >> _XSHIFT
            out32.append(value)
    return [
        out32[2 * w].astype(np.uint64)
        | (out32[2 * w + 1].astype(np.uint64) << np.uint64(32))
        for w in range(4)
    ]


_MULT_LO = np.uint64(_PCG_MULT_128 & 0xFFFFFFFFFFFFFFFF)
_MULT_HI = np.uint64(_PCG_MULT_128 >> 64)
_MULT_LO_LO = np.uint64(int(_MULT_LO) & 0xFFFFFFFF)
_MULT_LO_HI = np.uint64(int(_MULT_LO) >> 32)
_U1 = np.uint64(1)
_U32 = np.uint64(32)
_U63 = np.uint64(63)
_LOW32 = np.uint64(0xFFFFFFFF)


def _pcg_state_rows(words: list[np.ndarray]) -> np.ndarray:
    """``pcg_setseq_128_srandom_r`` for all keys at once.

    Folds each key's four seed words into the seeded PCG64 state with
    vectorized 64-bit limb arithmetic (the two 128-bit LCG steps become a
    schoolbook low-128 multiply), and returns a C-contiguous ``(n, 4)``
    uint64 array holding each generator's ``pcg64_random_t`` struct image:
    ``state`` then ``inc``, each as (low, high) little-endian words.
    """
    w0, w1, w2, w3 = words
    with np.errstate(over="ignore"):
        # increment: the odd-ified 128-bit sequence id
        inc_hi = (w2 << _U1) | (w3 >> _U63)
        inc_lo = (w3 << _U1) | _U1
        # t = inc + initstate (mod 2**128)
        t_lo = inc_lo + w1
        carry = (t_lo < inc_lo).astype(np.uint64)
        t_hi = inc_hi + w0 + carry
        # low 128 bits of t * PCG_DEFAULT_MULTIPLIER_128: the cross terms
        # wrap mod 2**64, the low x low product needs 32-bit limbs
        a_lo = t_lo & _LOW32
        a_hi = t_lo >> _U32
        ll = a_lo * _MULT_LO_LO
        hl = a_hi * _MULT_LO_LO
        cross = (ll >> _U32) + (hl & _LOW32) + a_lo * _MULT_LO_HI
        p_lo = (cross << _U32) | (ll & _LOW32)
        p_hi = a_hi * _MULT_LO_HI + (hl >> _U32) + (cross >> _U32)
        p_hi = p_hi + t_lo * _MULT_HI + t_hi * _MULT_LO
        # pcg = t * mult + inc (mod 2**128)
        pcg_lo = p_lo + inc_lo
        carry = (pcg_lo < p_lo).astype(np.uint64)
        pcg_hi = p_hi + inc_hi + carry
    rows = np.empty((len(w0), 4), dtype=np.uint64)
    rows[:, 0] = pcg_lo
    rows[:, 1] = pcg_hi
    rows[:, 2] = inc_lo
    rows[:, 3] = inc_hi
    return rows


def _state_pointers(bit_generator: np.random.PCG64) -> tuple[int, int]:
    """(struct address, ``pcg64_random_t`` pointer) of one bit generator.

    ``BitGenerator.ctypes.state_address`` is the documented address of the
    ``pcg64_state`` struct — ``{ pcg64_random_t *pcg_state; int has_uint32;
    uint32_t uinteger; }`` — whose first member points at the 32-byte
    (state, inc) image that :func:`_pcg_state_rows` precomputes.
    """
    address = int(bit_generator.ctypes.state_address)
    pcg_ptr = ctypes.c_void_p.from_address(address).value
    if not pcg_ptr:
        raise ConfigurationError("PCG64 state pointer is NULL")
    return address, pcg_ptr


#: Whether direct struct-image injection reproduces ``default_rng`` bit for
#: bit on this platform (probed once per process; None = not yet probed).
_FAST_INJECTION: "bool | None" = None


def _fast_injection_works() -> bool:
    """Probe direct state injection end to end against ``default_rng``.

    Writes one precomputed struct image into a scratch PCG64 and requires
    the next normal variate to equal the ``default_rng(entropy)`` draw
    exactly.  Any layout surprise (non-64-bit pointers, emulated 128-bit
    integers, a reshuffled struct) fails the probe and every draw falls
    back to the public ``.state`` dict setter.
    """
    global _FAST_INJECTION
    if _FAST_INJECTION is None:
        try:
            if ctypes.sizeof(ctypes.c_void_p) != 8:
                raise ConfigurationError("direct injection needs 64-bit pointers")
            entropy = 0x9E3779B97F4A7C15
            bit_generator = np.random.PCG64(0)
            gen = np.random.Generator(bit_generator)
            address, pcg_ptr = _state_pointers(bit_generator)
            rows = _pcg_state_rows(
                _seed_state_words(np.asarray([entropy], dtype=np.uint64))
            )
            ctypes.memmove(pcg_ptr, rows.ctypes.data, 32)
            ctypes.memset(address + 8, 0, 8)  # has_uint32 + uinteger
            got = float(gen.standard_normal())
            want = float(np.random.default_rng(entropy).standard_normal())
            _FAST_INJECTION = got == want
        except Exception:
            _FAST_INJECTION = False
    return _FAST_INJECTION


def _thread_generator() -> tuple[np.random.Generator, dict]:
    """This thread's reusable generator and its mutable state dict."""
    gen = getattr(_LOCAL, "gen", None)
    if gen is None:
        bit_generator = np.random.PCG64(0)
        _LOCAL.gen = gen = np.random.Generator(bit_generator)
        _LOCAL.state = {
            "bit_generator": "PCG64",
            "state": {"state": 0, "inc": 0},
            "has_uint32": 0,
            "uinteger": 0,
        }
        try:
            _LOCAL.fast = (
                _state_pointers(bit_generator) if _fast_injection_works() else None
            )
        except Exception:
            _LOCAL.fast = None
    return gen, _LOCAL.state


def lognormal_factors(
    entropies: "Sequence[int] | np.ndarray", sigmas: Sequence[float]
) -> np.ndarray:
    """Mean-corrected lognormal factors for pre-hashed entropies.

    The shared draw implementation behind :meth:`DeterministicNoise.factor`
    and :meth:`DeterministicNoise.factors`: one PCG64 stream per entropy,
    bit-identical to ``np.random.default_rng(entropy).normal(0, sigma)``.
    ``sigmas`` must be pre-resolved (no ``None``), one per entropy; a sigma
    of exactly zero yields exactly 1.0 without consuming the stream.
    """
    entropy_array = np.asarray(entropies, dtype=np.uint64)
    n = len(entropy_array)
    if n != len(sigmas):
        raise ConfigurationError("need exactly one sigma per noise entropy")
    sigma_arr = np.asarray(sigmas, dtype=np.float64)
    out = np.ones(n, dtype=np.float64)
    if n == 0:
        return out
    active = np.nonzero(sigma_arr)[0]
    m = len(active)
    if m == 0:
        return out
    if m == n:
        act_entropy, act_sigma = entropy_array, sigma_arr
    else:
        act_entropy, act_sigma = entropy_array[active], sigma_arr[active]
    rows = _pcg_state_rows(_seed_state_words(act_entropy))
    gen, state = _thread_generator()
    draw = gen.standard_normal
    normals = np.empty(m, dtype=np.float64)
    fast = getattr(_LOCAL, "fast", None)
    if fast is not None:
        address, pcg_ptr = fast
        memmove = ctypes.memmove
        base = rows.ctypes.data
        # has_uint32/uinteger stay zero across draws (the ziggurat consumes
        # whole uint64 words), so one clear covers the batch
        ctypes.memset(address + 8, 0, 8)
        for j in range(m):
            memmove(pcg_ptr, base + (j << 5), 32)
            normals[j] = draw()
    else:
        bit_generator = gen.bit_generator
        inner = state["state"]
        row_words = rows.tolist()
        for j in range(m):
            lo, hi, inc_lo, inc_hi = row_words[j]
            inner["state"] = (hi << 64) | lo
            inner["inc"] = (inc_hi << 64) | inc_lo
            state["has_uint32"] = 0
            state["uinteger"] = 0
            bit_generator.state = state
            normals[j] = draw()
    # normal(0, s) is loc + scale * standard_normal() in NumPy's C layer;
    # the elementwise form below performs the identical IEEE operations
    # (the +0.0 loc only canonicalizes a -0.0 product, which the mean
    # correction subtraction does anyway).
    factors = np.exp(normals * act_sigma - 0.5 * act_sigma * act_sigma)
    if m == n:
        return factors
    out[active] = factors
    return out


class DeterministicNoise:
    """Seeded multiplicative jitter source."""

    def __init__(self, seed: int = 0, default_sigma: float = 0.015) -> None:
        if default_sigma < 0.0:
            raise ConfigurationError("noise sigma must be non-negative")
        self._seed = int(seed)
        self._default_sigma = float(default_sigma)

    @property
    def seed(self) -> int:
        return self._seed

    @property
    def default_sigma(self) -> float:
        return self._default_sigma

    def _rng_for(self, key: str) -> np.random.Generator:
        return np.random.default_rng(noise_entropy(self._seed, key))

    def _resolve_sigma(self, sigma: float | None) -> float:
        """The effective sigma of one draw (see :func:`resolve_sigma`)."""
        return resolve_sigma(self._default_sigma, sigma)

    def factor(self, key: str, sigma: float | None = None) -> float:
        """Multiplicative factor ~ LogNormal(0, sigma), mean-corrected to 1.

        The mean correction (``exp(-sigma^2 / 2)``) keeps the *expected*
        duration equal to the model's prediction, so calibration targets are
        unbiased by the jitter.

        A source constructed with ``default_sigma == 0`` is *globally
        disabled*: it returns exactly 1.0 even for calls that request their
        own sigma, so ``Machine(..., noise_sigma=0.0)`` is deterministic
        end to end.
        """
        s = self._resolve_sigma(sigma)
        if s == 0.0:
            return 1.0
        return float(
            lognormal_factors([noise_entropy(self._seed, key)], [s])[0]
        )

    def factors(
        self,
        keys: Iterable[str],
        sigmas: "float | None | Sequence[float | None]" = None,
    ) -> np.ndarray:
        """Bulk draw: one factor per key, equal to per-key :meth:`factor` calls.

        ``sigmas`` is either one value applied to every key or a sequence
        with one entry per key; ``None`` entries take the default sigma.
        The scalar path and the vectorized sweep engine both draw through
        this implementation — one sha256 + one PCG64 stream per key — so
        the floats are identical however the batch is shaped.
        """
        key_list = list(keys)
        if isinstance(sigmas, (int, float)) or sigmas is None:
            sigma_list = [sigmas] * len(key_list)
        else:
            sigma_list = list(sigmas)
            if len(sigma_list) != len(key_list):
                raise ConfigurationError("need exactly one sigma per noise key")
        resolved = [self._resolve_sigma(s) for s in sigma_list]
        entropies = [noise_entropy(self._seed, k) for k in key_list]
        return lognormal_factors(entropies, resolved)

    def disabled(self) -> "DeterministicNoise":
        """A copy of this source that always returns exactly 1.0."""
        return DeterministicNoise(self._seed, 0.0)
