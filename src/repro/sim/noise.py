"""Deterministic measurement noise.

Real benchmark repeats vary run to run; the paper takes the maximum of ten to
twenty STREAM repetitions and five GEMM repetitions precisely because of that
variation (section 4).  We reproduce it with *deterministic* multiplicative
lognormal jitter: the factor depends only on a seed and a string key, so runs
are exactly reproducible while repeats still differ from one another.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["DeterministicNoise"]


class DeterministicNoise:
    """Seeded multiplicative jitter source."""

    def __init__(self, seed: int = 0, default_sigma: float = 0.015) -> None:
        if default_sigma < 0.0:
            raise ConfigurationError("noise sigma must be non-negative")
        self._seed = int(seed)
        self._default_sigma = float(default_sigma)

    @property
    def seed(self) -> int:
        return self._seed

    @property
    def default_sigma(self) -> float:
        return self._default_sigma

    def _rng_for(self, key: str) -> np.random.Generator:
        digest = hashlib.sha256(f"{self._seed}:{key}".encode()).digest()
        return np.random.default_rng(int.from_bytes(digest[:8], "little"))

    def factor(self, key: str, sigma: float | None = None) -> float:
        """Multiplicative factor ~ LogNormal(0, sigma), mean-corrected to 1.

        The mean correction (``exp(-sigma^2 / 2)``) keeps the *expected*
        duration equal to the model's prediction, so calibration targets are
        unbiased by the jitter.

        A source constructed with ``default_sigma == 0`` is *globally
        disabled*: it returns exactly 1.0 even for calls that request their
        own sigma, so ``Machine(..., noise_sigma=0.0)`` is deterministic
        end to end.
        """
        if self._default_sigma == 0.0:
            return 1.0
        s = self._default_sigma if sigma is None else float(sigma)
        if s < 0.0:
            raise ConfigurationError("noise sigma must be non-negative")
        if s == 0.0:
            return 1.0
        rng = self._rng_for(key)
        return float(np.exp(rng.normal(0.0, s) - 0.5 * s * s))

    def disabled(self) -> "DeterministicNoise":
        """A copy of this source that always returns exactly 1.0."""
        return DeterministicNoise(self._seed, 0.0)
