"""Numerics execution policy.

The simulated timing never depends on actually crunching the numbers, but the
library runs real NumPy numerics so results can be *verified*.  For very
large problems (the paper sweeps GEMM up to n = 16,384, i.e. 8.8 TFLOP per
multiply) full numerics on the host would dwarf everything else, so the
policy gates how much real arithmetic happens:

* ``FULL`` — compute everything (default below ``full_threshold``);
* ``SAMPLED`` — compute a deterministic subset of output rows for spot
  verification;
* ``MODEL_ONLY`` — skip numerics entirely (used inside pytest-benchmark
  loops where only the simulated timing matters).
"""

from __future__ import annotations

import dataclasses
import enum

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["NumericsPolicy", "NumericsConfig"]


class NumericsPolicy(enum.Enum):
    FULL = "full"
    SAMPLED = "sampled"
    MODEL_ONLY = "model-only"


@dataclasses.dataclass(frozen=True)
class NumericsConfig:
    """Policy plus its parameters.

    Attributes
    ----------
    policy:
        Requested policy; ``FULL`` is silently honoured for any size.
    full_threshold:
        With ``SAMPLED``, problems of dimension <= this still run full
        numerics (sampling tiny problems would be slower than computing them).
    sample_rows:
        Number of output rows computed under ``SAMPLED``.
    """

    policy: NumericsPolicy = NumericsPolicy.SAMPLED
    full_threshold: int = 1024
    sample_rows: int = 4

    def __post_init__(self) -> None:
        if self.full_threshold < 1:
            raise ConfigurationError("full_threshold must be >= 1")
        if self.sample_rows < 1:
            raise ConfigurationError("sample_rows must be >= 1")

    @classmethod
    def full(cls) -> "NumericsConfig":
        return cls(policy=NumericsPolicy.FULL)

    @classmethod
    def sampled(cls, full_threshold: int = 1024, sample_rows: int = 4) -> "NumericsConfig":
        return cls(NumericsPolicy.SAMPLED, full_threshold, sample_rows)

    @classmethod
    def model_only(cls) -> "NumericsConfig":
        return cls(policy=NumericsPolicy.MODEL_ONLY)

    def effective_policy(self, n: int) -> NumericsPolicy:
        """Policy actually applied to a problem of dimension ``n``."""
        if self.policy is NumericsPolicy.SAMPLED and n <= self.full_threshold:
            return NumericsPolicy.FULL
        return self.policy

    def sampled_row_indices(self, n: int) -> np.ndarray:
        """Deterministic, evenly spread output-row sample for dimension ``n``."""
        k = min(self.sample_rows, n)
        return np.unique(np.linspace(0, n - 1, k).astype(np.int64))
