"""Power trace recording and integration.

The recorder stores absolute per-component draws over time intervals; when no
interval covers a point in time the component sits at its idle floor.  Energy
over any window is the exact integral of that piecewise-constant trace —
which is what ``powermetrics`` reports between two SIGINFO marks (section 3.3).
"""

from __future__ import annotations

import bisect
import dataclasses
from typing import Iterable, Mapping

from repro.errors import SimulationError
from repro.soc.power import PowerComponent, PowerEnvelope

__all__ = ["PowerInterval", "PowerRecorder"]


@dataclasses.dataclass(frozen=True)
class PowerInterval:
    """Absolute component draws (watts) over ``[start_s, end_s)``."""

    start_s: float
    end_s: float
    draws_w: Mapping[PowerComponent, float]

    def __post_init__(self) -> None:
        if self.end_s < self.start_s:
            raise SimulationError("power interval must not end before it starts")
        for comp, watts in self.draws_w.items():
            if watts < 0.0:
                raise SimulationError(f"negative draw for {comp}: {watts}")

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


def _overlap(a0: float, a1: float, b0: float, b1: float) -> float:
    return max(0.0, min(a1, b1) - max(a0, b0))


class PowerRecorder:
    """Per-component power trace with idle floors from a :class:`PowerEnvelope`."""

    def __init__(self, envelope: PowerEnvelope) -> None:
        self._envelope = envelope
        # Per component: parallel sorted lists of (start, end, watts).
        self._intervals: dict[PowerComponent, list[tuple[float, float, float]]] = {
            comp: [] for comp in envelope.components
        }

    @property
    def envelope(self) -> PowerEnvelope:
        return self._envelope

    def record(self, interval: PowerInterval) -> None:
        """Add an active interval; per-component overlap is an error.

        The machine executes operations sequentially on the virtual clock, so
        a per-component overlap indicates a simulation bug.
        """
        if interval.duration_s == 0.0:
            return
        for comp, watts in interval.draws_w.items():
            if comp not in self._intervals:
                raise SimulationError(f"component {comp} not in power envelope")
            lst = self._intervals[comp]
            idx = bisect.bisect_left(lst, (interval.start_s, interval.end_s, watts))
            for neighbour in lst[max(0, idx - 1) : idx + 1]:
                if _overlap(neighbour[0], neighbour[1], interval.start_s, interval.end_s) > 0.0:
                    raise SimulationError(
                        f"overlapping power interval for {comp}: "
                        f"[{interval.start_s}, {interval.end_s}) vs "
                        f"[{neighbour[0]}, {neighbour[1]})"
                    )
            lst.insert(idx, (interval.start_s, interval.end_s, watts))

    def intervals(self, component: PowerComponent) -> list[PowerInterval]:
        """The recorded active intervals of one component, in time order."""
        return [
            PowerInterval(s, e, {component: w})
            for (s, e, w) in self._intervals.get(component, [])
        ]

    # ------------------------------------------------------------------
    # Integration
    # ------------------------------------------------------------------
    def energy_j(
        self,
        start_s: float,
        end_s: float,
        components: Iterable[PowerComponent] | None = None,
    ) -> float:
        """Energy in joules dissipated over ``[start_s, end_s)``."""
        if end_s < start_s:
            raise SimulationError("energy window must not end before it starts")
        comps = tuple(components) if components is not None else tuple(self._intervals)
        total = 0.0
        window = end_s - start_s
        for comp in comps:
            idle = self._envelope.idle_watts(comp)
            active_time = 0.0
            active_energy = 0.0
            for (s, e, w) in self._intervals.get(comp, []):
                if e <= start_s:
                    continue
                if s >= end_s:
                    break
                dt = _overlap(s, e, start_s, end_s)
                active_time += dt
                active_energy += dt * w
            total += active_energy + (window - active_time) * idle
        return total

    def average_power_w(
        self,
        start_s: float,
        end_s: float,
        components: Iterable[PowerComponent] | None = None,
    ) -> float:
        """Mean power over the window in watts (idle power if window empty)."""
        if end_s <= start_s:
            comps = tuple(components) if components is not None else tuple(self._intervals)
            return sum(self._envelope.idle_watts(c) for c in comps)
        return self.energy_j(start_s, end_s, components) / (end_s - start_s)

    def component_average_mw(
        self, start_s: float, end_s: float
    ) -> dict[PowerComponent, float]:
        """Per-component average draw in milliwatts (powermetrics units)."""
        return {
            comp: self.average_power_w(start_s, end_s, (comp,)) * 1e3
            for comp in self._intervals
        }

    def clear(self) -> None:
        """Drop all recorded intervals (measurement reset)."""
        for lst in self._intervals.values():
            lst.clear()
