"""Roofline cost model.

An operation's duration is the maximum of its compute time (FLOPs over an
effective FLOP rate) and its memory time (bytes over an effective bandwidth)
plus a fixed dispatch overhead.  This single model produces both regimes the
paper measures: STREAM kernels are purely memory-bound, large GEMMs are
compute-bound, and small GPU GEMMs are overhead-bound (the "less optimal at
smaller sizes for their large overhead" behaviour in Figure 2).
"""

from __future__ import annotations

import dataclasses

from repro.errors import ConfigurationError

__all__ = ["OpCost", "TimeBreakdown", "roofline_time", "arithmetic_intensity"]


@dataclasses.dataclass(frozen=True)
class OpCost:
    """Work content of an operation."""

    flops: float = 0.0
    bytes_read: float = 0.0
    bytes_written: float = 0.0

    def __post_init__(self) -> None:
        for field in ("flops", "bytes_read", "bytes_written"):
            if getattr(self, field) < 0.0:
                raise ConfigurationError(f"{field} must be non-negative")

    @property
    def total_bytes(self) -> float:
        return self.bytes_read + self.bytes_written

    def scaled(self, factor: float) -> "OpCost":
        """A cost scaled by ``factor`` (e.g. per-thread share)."""
        if factor < 0.0:
            raise ConfigurationError("scale factor must be non-negative")
        return OpCost(
            flops=self.flops * factor,
            bytes_read=self.bytes_read * factor,
            bytes_written=self.bytes_written * factor,
        )

    def __add__(self, other: "OpCost") -> "OpCost":
        return OpCost(
            flops=self.flops + other.flops,
            bytes_read=self.bytes_read + other.bytes_read,
            bytes_written=self.bytes_written + other.bytes_written,
        )


@dataclasses.dataclass(frozen=True)
class TimeBreakdown:
    """Where an operation's time went."""

    compute_s: float
    memory_s: float
    overhead_s: float
    total_s: float
    bound: str  # "compute" | "memory" | "overhead"


def arithmetic_intensity(cost: OpCost) -> float:
    """FLOPs per byte moved; infinite for pure compute."""
    if cost.total_bytes == 0.0:
        return float("inf") if cost.flops > 0.0 else 0.0
    return cost.flops / cost.total_bytes


def roofline_time(
    cost: OpCost,
    peak_flops: float,
    peak_bytes_per_s: float,
    compute_efficiency: float = 1.0,
    memory_efficiency: float = 1.0,
    overhead_s: float = 0.0,
) -> TimeBreakdown:
    """Duration of an operation under the roofline model.

    Parameters
    ----------
    peak_flops, peak_bytes_per_s:
        Architectural peaks of the executing engine and the memory system.
    compute_efficiency, memory_efficiency:
        Fractions in (0, 1] of those peaks the implementation achieves.
    overhead_s:
        Fixed dispatch/launch latency added on top.
    """
    if peak_flops <= 0.0 and cost.flops > 0.0:
        raise ConfigurationError("compute work requires a positive peak FLOP rate")
    if peak_bytes_per_s <= 0.0 and cost.total_bytes > 0.0:
        raise ConfigurationError("memory work requires a positive peak bandwidth")
    for name, eff in (("compute", compute_efficiency), ("memory", memory_efficiency)):
        if not (0.0 < eff <= 1.0):
            raise ConfigurationError(f"{name} efficiency must be in (0, 1], got {eff}")
    if overhead_s < 0.0:
        raise ConfigurationError("overhead must be non-negative")

    compute_s = (
        cost.flops / (peak_flops * compute_efficiency) if cost.flops > 0.0 else 0.0
    )
    memory_s = (
        cost.total_bytes / (peak_bytes_per_s * memory_efficiency)
        if cost.total_bytes > 0.0
        else 0.0
    )
    busy = max(compute_s, memory_s)
    total = busy + overhead_s
    if overhead_s > busy:
        bound = "overhead"
    elif compute_s >= memory_s:
        bound = "compute"
    else:
        bound = "memory"
    return TimeBreakdown(
        compute_s=compute_s,
        memory_s=memory_s,
        overhead_s=overhead_s,
        total_s=total,
        bound=bound,
    )
