"""Execution trace of simulated operations.

Every operation the machine executes leaves a :class:`TraceEvent`; the trace
is the simulator's equivalent of a profiler timeline and is used by tests to
assert that benchmarks drive the hardware they claim to drive (e.g. the
Accelerate GEMM touches the AMX engine, not the GPU).
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Iterator

__all__ = ["TraceEvent", "ExecutionTrace"]


@dataclasses.dataclass(frozen=True)
class TraceEvent:
    """One completed operation on the virtual timeline."""

    start_s: float
    end_s: float
    engine: str
    label: str
    flops: float
    bytes_moved: float

    def __post_init__(self) -> None:
        if self.end_s < self.start_s:
            raise ValueError("trace event must not end before it starts")

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    def achieved_flops(self) -> float:
        """FLOP/s achieved by this event (0 for pure data movement)."""
        if self.duration_s == 0.0:
            return 0.0
        return self.flops / self.duration_s

    def achieved_bandwidth(self) -> float:
        """Bytes/s achieved by this event."""
        if self.duration_s == 0.0:
            return 0.0
        return self.bytes_moved / self.duration_s


class ExecutionTrace:
    """Append-only collection of :class:`TraceEvent`."""

    def __init__(self) -> None:
        self._events: list[TraceEvent] = []

    def append(self, event: TraceEvent) -> None:
        """Add an event; events must arrive in start-time order."""
        if self._events and event.start_s < self._events[-1].start_s:
            raise ValueError("trace events must be appended in start-time order")
        self._events.append(event)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def __getitem__(self, idx: int) -> TraceEvent:
        return self._events[idx]

    def events(
        self,
        engine: str | None = None,
        label_prefix: str | None = None,
    ) -> list[TraceEvent]:
        """Filtered view of the trace."""
        out: Iterable[TraceEvent] = self._events
        if engine is not None:
            out = (e for e in out if e.engine == engine)
        if label_prefix is not None:
            out = (e for e in out if e.label.startswith(label_prefix))
        return list(out)

    def total_flops(self) -> float:
        """Sum of FLOPs over all events."""
        return sum(e.flops for e in self._events)

    def total_bytes(self) -> float:
        """Sum of bytes moved over all events."""
        return sum(e.bytes_moved for e in self._events)

    def busy_time_s(self, engine: str | None = None) -> float:
        """Total event duration, optionally restricted to one engine."""
        return sum(e.duration_s for e in self.events(engine=engine))

    def clear(self) -> None:
        """Drop all recorded events."""
        self._events.clear()
