"""Vectorized sweep evaluation: whole grids through the roofline model.

The scalar engine advances one :class:`~repro.sim.engine.Operation` at a
time — a 1k-cell sweep with five repetitions pays ~5k interpreter round
trips through :class:`~repro.sim.machine.Machine`, plus machine
construction, dataclass churn and per-key noise seeding for every one of
them.  Because every experiment cell is a pure function of its spec (the
jitter is content-addressed, machines are fresh per cell), the whole grid
can instead be *lowered* into flat arrays and evaluated in a handful of
NumPy operations.

The contract has three parts:

* **Lowering** — a workload's ``vectorized_body`` hook (see
  :class:`~repro.workloads.base.Workload`) maps ``(machine-like, spec)`` to
  a :class:`LoweredCell`: the roofline parameters of one repetition, the
  per-repetition noise keys, and an ``assemble`` closure that turns the
  resulting nanosecond timings back into the workload's result record.  The
  scalar executor runs the *same* lowering through
  :func:`run_lowered_cell` — one :class:`Operation` per repetition on a
  real machine — so the two paths cannot drift.
* **Evaluation** — :func:`evaluate_cells` stacks the lowered cells into
  arrays and replicates the scalar engine's arithmetic elementwise:
  roofline time, thermal clamp/stretch, bulk noise factors
  (:func:`repro.sim.noise.lognormal_factors` — one sha256 + PCG64 stream
  per key, identical floats), the virtual clock's cumulative float adds,
  and the chrono-style nanosecond truncation.  Every step is the same
  IEEE-754 double operation the scalar path performs, so results are
  byte-identical, not merely close.
* **Fallback** — a workload may declare no ``vectorized_body`` at all, or
  its body may return ``None`` for cells it cannot lower (full-numerics
  GEMM cells that must verify on real arrays, for example); either way the
  cell simply executes on the scalar engine, and the batch-level entry
  point in :class:`~repro.experiments.backends.VectorizedBackend` mixes
  the paths per cell.

Cells come in two shapes.  A :class:`LoweredCell` is the homogeneous case —
one roofline operation repeated R times, assembled from per-repetition
elapsed nanoseconds.  A :class:`LoweredSequence` is the general case — an
ordered tuple of *distinct* :class:`LoweredOp` operations (optionally
separated by fixed clock advances, as in the powermetrics warm-up sleep),
assembled from each operation's ``(start_s, end_s)`` clock window, which is
what protocol-shaped workloads (the STREAM thread sweep, the GEMM
implementation studies, the powered-GEMM measurement protocol) need to
replay their scalar executors exactly.  :func:`evaluate_sequences` is the
bulk evaluator; :func:`run_lowered_sequence` is its scalar reference.
"""

from __future__ import annotations

import dataclasses
import functools
from typing import Any, Callable, Mapping, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.sim.engine import EngineKind, Operation
from repro.sim.machine import Machine, MachineTemplate, machine_template
from repro.sim.noise import (
    lognormal_factors,
    noise_entropies,
    resolve_sigma,
)
from repro.sim.policy import NumericsConfig
from repro.soc.power import PowerComponent
from repro.soc.thermal import ThermalModel
from repro.sim.roofline import OpCost

__all__ = [
    "LoweredCell",
    "LoweredOp",
    "LoweredSequence",
    "VectorContext",
    "vector_context",
    "run_lowered_cell",
    "run_lowered_sequence",
    "evaluate_cells",
    "evaluate_sequences",
    "effective_draw_w",
]


def effective_draw_w(
    thermal: ThermalModel, draws: Mapping[PowerComponent, float]
) -> float:
    """Total draw (W) while an operation runs, after the thermal clamp.

    This is the wattage the scalar engine records into the power recorder
    for the operation's interval — ``sum(draws) * clamp_factor`` — exposed
    so workload lowerings can surface the modelled draw into their result
    records (the study layer's ``power_w``/``joules``/``gflops_per_w``
    metrics derive from it for workloads without a measurement protocol).
    """
    requested = sum(draws.values())
    return requested * thermal.clamp_factor(requested)


@dataclasses.dataclass(frozen=True)
class LoweredCell:
    """One experiment cell lowered to its repetition-grid parameters.

    Every repetition of a cell shares the same roofline operation — cost,
    peaks, efficiencies, overhead, power draws — and differs only in its
    content-addressed noise key, which is exactly what makes the grid
    vectorizable.  ``assemble`` closes over the spec-derived metadata
    (chip name, verification outcome, work content) and rebuilds the
    workload's result record from the per-repetition elapsed nanoseconds.
    """

    engine: EngineKind
    label: str
    cost: OpCost
    peak_flops: float
    peak_bytes_per_s: float
    compute_efficiency: float
    memory_efficiency: float
    overhead_s: float
    power_draws_w: Mapping[PowerComponent, float]
    noise_keys: tuple[str, ...]
    noise_sigma: float | None
    seed: int
    thermal: ThermalModel
    assemble: Callable[[tuple[int, ...]], Any]

    def __post_init__(self) -> None:
        if not self.label:
            raise ConfigurationError("operation label must be non-empty")
        if not self.noise_keys:
            raise ConfigurationError("a lowered cell needs at least one repetition")
        if not all(self.noise_keys):
            # an empty key is falsy, so the scalar engine would silently
            # substitute its op-counter fallback while the vectorized
            # engine hashed "" — reject it rather than diverge
            raise ConfigurationError(
                "lowered-cell noise keys must be non-empty "
                "(content-addressed, never op-counter fallbacks)"
            )
        for comp, watts in self.power_draws_w.items():
            if watts < 0.0:
                raise ConfigurationError(f"negative power draw for {comp}")

    @property
    def repeats(self) -> int:
        return len(self.noise_keys)

    def operation(self, repetition: int) -> Operation:
        """The scalar-engine operation of one repetition."""
        return Operation(
            engine=self.engine,
            label=self.label,
            cost=self.cost,
            peak_flops=self.peak_flops,
            peak_bytes_per_s=self.peak_bytes_per_s,
            compute_efficiency=self.compute_efficiency,
            memory_efficiency=self.memory_efficiency,
            overhead_s=self.overhead_s,
            power_draws_w=self.power_draws_w,
            noise_key=self.noise_keys[repetition],
            noise_sigma=self.noise_sigma,
        )


@dataclasses.dataclass(frozen=True)
class LoweredOp:
    """One scalar-engine operation lowered to its roofline parameters.

    The sequence-shaped sibling of :class:`LoweredCell`'s repetition grid:
    each op carries its own cost, efficiencies, draws and a *precomputed*
    content-addressed noise key (including any ``label#ordinal`` op-counter
    fallbacks the scalar engine would have synthesized — a lowering must
    spell those out statically so the hash inputs match).  ``pre_advance_s``
    models a ``machine.sleep`` the scalar executor performs before issuing
    the op (the powermetrics warm-up), which shifts the clock without
    consuming noise or recording power.
    """

    engine: EngineKind
    label: str
    cost: OpCost
    peak_flops: float
    peak_bytes_per_s: float
    compute_efficiency: float
    memory_efficiency: float
    overhead_s: float
    power_draws_w: Mapping[PowerComponent, float]
    noise_key: str
    noise_sigma: float | None
    pre_advance_s: float = 0.0

    def __post_init__(self) -> None:
        if not self.label:
            raise ConfigurationError("operation label must be non-empty")
        if not self.noise_key:
            raise ConfigurationError(
                "lowered-op noise keys must be non-empty (content-addressed, "
                "with op-counter fallbacks precomputed by the lowering)"
            )
        if self.pre_advance_s < 0.0:
            raise ConfigurationError("pre-advance must be non-negative")
        for comp, watts in self.power_draws_w.items():
            if watts < 0.0:
                raise ConfigurationError(f"negative power draw for {comp}")

    def operation(self) -> Operation:
        """The scalar-engine operation this op lowers."""
        return Operation(
            engine=self.engine,
            label=self.label,
            cost=self.cost,
            peak_flops=self.peak_flops,
            peak_bytes_per_s=self.peak_bytes_per_s,
            compute_efficiency=self.compute_efficiency,
            memory_efficiency=self.memory_efficiency,
            overhead_s=self.overhead_s,
            power_draws_w=self.power_draws_w,
            noise_key=self.noise_key,
            noise_sigma=self.noise_sigma,
        )

    @classmethod
    def from_operation(
        cls, op: Operation, *, pre_advance_s: float = 0.0
    ) -> "LoweredOp":
        """Lower one already-built scalar :class:`Operation`.

        The inverse of :meth:`operation` — used by lowerings that reuse an
        executor's own operation builders (e.g. the calibrated
        :func:`~repro.calibration.gemm.build_gemm_operation`) so both paths
        share one construction site.  The operation must carry an explicit
        noise key; ops the scalar engine would have keyed by its op counter
        need that fallback spelled out by the lowering instead.
        """
        if not op.noise_key:
            raise ConfigurationError(
                "cannot lower an operation without an explicit noise key"
            )
        return cls(
            engine=op.engine,
            label=op.label,
            cost=op.cost,
            peak_flops=op.peak_flops,
            peak_bytes_per_s=op.peak_bytes_per_s,
            compute_efficiency=op.compute_efficiency,
            memory_efficiency=op.memory_efficiency,
            overhead_s=op.overhead_s,
            power_draws_w=op.power_draws_w,
            noise_key=op.noise_key,
            noise_sigma=op.noise_sigma,
            pre_advance_s=pre_advance_s,
        )


@dataclasses.dataclass(frozen=True)
class LoweredSequence:
    """One experiment cell lowered to an ordered operation sequence.

    Protocol-shaped cells (a STREAM thread sweep, a GEMM repetition study,
    the powered-GEMM measurement loop) execute *heterogeneous* operations
    on one cumulative machine clock.  ``assemble`` receives each op's
    ``(start_s, end_s)`` window — the exact floats the scalar clock would
    produce — and rebuilds the workload's result record, replaying any
    executor-side arithmetic (nanosecond truncation, bandwidth division,
    powermetrics formatting) on top of them.

    ``ops`` may be shared between sequences that differ only in ``seed``:
    lowering a seed-ensemble grid can build the tuple once per distinct
    cell shape and reuse it, which is what makes million-cell grids cheap
    to lower.
    """

    seed: int
    thermal: ThermalModel
    ops: tuple[LoweredOp, ...]
    assemble: Callable[[tuple[tuple[float, float], ...]], Any]

    def __post_init__(self) -> None:
        if not self.ops:
            raise ConfigurationError(
                "a lowered sequence needs at least one operation"
            )


class VectorContext:
    """A machine-shaped facade over the shared immutable chip template.

    Offers the subset of :class:`~repro.sim.machine.Machine` a lowering
    body reads — ``chip``, ``device``, ``thermal``, ``numerics``,
    :meth:`peak_flops`, :meth:`memory_bandwidth_bytes_per_s` — without any
    per-machine mutable state, so one context serves every cell of a sweep
    that shares a (chip, thermal, numerics) configuration.
    """

    __slots__ = ("_template", "numerics")

    def __init__(self, template: MachineTemplate, numerics: NumericsConfig) -> None:
        self._template = template
        self.numerics = numerics

    @property
    def chip(self):
        return self._template.chip

    @property
    def device(self):
        return self._template.device

    @property
    def thermal(self) -> ThermalModel:
        return self._template.thermal

    @property
    def envelope(self):
        """The chip's power envelope (component idle floors and caps)."""
        return self._template.envelope

    def peak_flops(self, engine: EngineKind) -> float:
        """Architectural FP peak of one execution engine (FLOP/s)."""
        return self._template.peak_flops(engine)

    def memory_bandwidth_bytes_per_s(self) -> float:
        """Theoretical unified-memory bandwidth in bytes/second."""
        return self._template.memory_bandwidth_bytes_per_s()


@functools.lru_cache(maxsize=None)
def vector_context(
    chip: str, thermal_enabled: bool, numerics: NumericsConfig
) -> VectorContext:
    """The cached lowering context of one (chip, thermal, numerics) config."""
    return VectorContext(machine_template(chip, thermal_enabled), numerics)


def run_lowered_cell(machine: Machine, cell: LoweredCell) -> Any:
    """Execute one lowered cell on the scalar engine (the reference path).

    The workload executors run through here, so the scalar and vectorized
    paths consume the very same lowering — the only difference is *how* the
    repetition grid is evaluated.
    """
    elapsed_ns = []
    for rep in range(cell.repeats):
        completed = machine.execute(cell.operation(rep))
        elapsed_ns.append(max(1, round(completed.elapsed_s * 1e9)))
    return cell.assemble(tuple(elapsed_ns))


def run_lowered_sequence(machine: Machine, sequence: LoweredSequence) -> Any:
    """Execute one lowered sequence on the scalar engine (the reference path).

    The mirror of :func:`run_lowered_cell` for sequence-shaped cells: each
    op's pre-advance becomes a real ``machine.sleep``, each op a real
    ``machine.execute``, and ``assemble`` sees the genuine clock windows.
    """
    windows = []
    for op in sequence.ops:
        if op.pre_advance_s:
            machine.sleep(op.pre_advance_s)
        completed = machine.execute(op.operation())
        windows.append((completed.start_s, completed.end_s))
    return sequence.assemble(tuple(windows))


def _validated_arrays(cells: Sequence[LoweredCell]) -> dict[str, np.ndarray]:
    """Stack the per-cell roofline parameters, with scalar-parity validation.

    A misbehaving third-party lowering fails with the same
    :class:`ConfigurationError` *messages*
    :func:`~repro.sim.roofline.roofline_time` raises.  Note the checks run
    check-major over the whole batch (not cell-major), so when several
    cells are invalid in different ways, *which* message surfaces first may
    differ from serial execution — but an invalid batch never evaluates
    under either engine.
    """
    n = len(cells)
    arr = {
        "flops": np.fromiter((c.cost.flops for c in cells), np.float64, n),
        "total_bytes": np.fromiter(
            (c.cost.total_bytes for c in cells), np.float64, n
        ),
        "peak_flops": np.fromiter((c.peak_flops for c in cells), np.float64, n),
        "peak_bytes": np.fromiter(
            (c.peak_bytes_per_s for c in cells), np.float64, n
        ),
        "ceff": np.fromiter(
            (c.compute_efficiency for c in cells), np.float64, n
        ),
        "meff": np.fromiter((c.memory_efficiency for c in cells), np.float64, n),
        "overhead": np.fromiter((c.overhead_s for c in cells), np.float64, n),
    }
    if np.any((arr["peak_flops"] <= 0.0) & (arr["flops"] > 0.0)):
        raise ConfigurationError("compute work requires a positive peak FLOP rate")
    if np.any((arr["peak_bytes"] <= 0.0) & (arr["total_bytes"] > 0.0)):
        raise ConfigurationError("memory work requires a positive peak bandwidth")
    for name, key in (("compute", "ceff"), ("memory", "meff")):
        bad = ~((arr[key] > 0.0) & (arr[key] <= 1.0))
        if np.any(bad):
            eff = arr[key][np.argmax(bad)]
            raise ConfigurationError(
                f"{name} efficiency must be in (0, 1], got {eff}"
            )
    if np.any(arr["overhead"] < 0.0):
        raise ConfigurationError("overhead must be non-negative")
    return arr


def evaluate_cells(
    cells: Sequence[LoweredCell], *, default_sigma: float = 0.015
) -> list[Any]:
    """Evaluate a grid of lowered cells in bulk, byte-identical to scalar.

    ``default_sigma`` is the session noise level a fresh machine would have
    been constructed with; ``0.0`` disables jitter globally, exactly like
    ``Machine(..., noise_sigma=0.0)``.  Returns one assembled result record
    per cell, in input order.
    """
    if not cells:
        return []
    n = len(cells)
    arr = _validated_arrays(cells)

    # Roofline: the same elementwise double arithmetic as roofline_time().
    compute_s = np.zeros(n)
    has_flops = arr["flops"] > 0.0
    np.divide(
        arr["flops"],
        arr["peak_flops"] * arr["ceff"],
        out=compute_s,
        where=has_flops,
    )
    memory_s = np.zeros(n)
    has_bytes = arr["total_bytes"] > 0.0
    np.divide(
        arr["total_bytes"],
        arr["peak_bytes"] * arr["meff"],
        out=memory_s,
        where=has_bytes,
    )
    base = np.maximum(compute_s, memory_s) + arr["overhead"]

    # Thermal clamp: the very same ThermalModel methods (``**`` stays
    # CPython's pow, as in the scalar engine), memoized per (model,
    # requested draw) — the methods are pure, and grids reuse a handful of
    # draw patterns.  Multiplying by exactly 1.0 is an IEEE identity, so
    # applying the stretch unconditionally matches the scalar branch.
    stretch = np.ones(n)
    thermal_memo: dict[tuple[int, float], float] = {}
    for i, cell in enumerate(cells):
        requested = sum(cell.power_draws_w.values())
        memo_key = (id(cell.thermal), requested)
        factor = thermal_memo.get(memo_key)
        if factor is None:
            factor = (
                cell.thermal.throttle_time_factor(requested)
                if cell.thermal.clamp_factor(requested) < 1.0
                else 1.0
            )
            thermal_memo[memo_key] = factor
        stretch[i] = factor
    base = base * stretch

    # Bulk noise: flat (cell, repetition) grid through the shared draw
    # implementation — one sha256 + one PCG64 stream per key.
    repeats = np.fromiter((c.repeats for c in cells), np.int64, n)
    max_reps = int(repeats.max())
    entropies: list[int] = []
    sigmas: list[float] = []
    for cell in cells:
        sigma = resolve_sigma(default_sigma, cell.noise_sigma)
        entropies.extend(noise_entropies(cell.seed, cell.noise_keys))
        sigmas.extend([sigma] * len(cell.noise_keys))
    flat_factors = lognormal_factors(entropies, sigmas)

    factors = np.ones((n, max_reps))
    mask = np.arange(max_reps)[None, :] < repeats[:, None]
    factors[mask] = flat_factors
    durations = base[:, None] * factors

    # Virtual clock: cumulative float adds in repetition order, then the
    # chrono-style truncation max(1, round(elapsed * 1e9)).  Padded columns
    # beyond a cell's repeat count only ever extend the running clock past
    # timings that are already recorded, so they are harmless.
    elapsed = np.empty((n, max_reps))
    start = np.zeros(n)
    for rep in range(max_reps):
        end = start + durations[:, rep]
        elapsed[:, rep] = end - start
        start = end
    elapsed_ns = np.maximum(1, np.rint(elapsed * 1e9)).astype(np.int64)

    # .tolist() yields builtin ints in one C pass — identical values to a
    # per-element int() loop, at a fraction of the per-op cost.
    rows = elapsed_ns.tolist()
    return [
        cell.assemble(tuple(rows[i][: cell.repeats]))
        for i, cell in enumerate(cells)
    ]


def evaluate_sequences(
    sequences: Sequence[LoweredSequence], *, default_sigma: float = 0.015
) -> list[Any]:
    """Evaluate sequence-shaped cells in bulk, byte-identical to scalar.

    The sequence counterpart of :func:`evaluate_cells`: all ops of all
    sequences are validated and roofline-evaluated as one flat batch, each
    sequence's virtual clock is replayed column-wise over the padded
    (sequence, op) grid — honouring per-op pre-advances with the same
    op-ordered float additions the scalar clock performs — and every
    sequence's ``assemble`` receives its ops' exact clock windows.
    Returns one assembled result record per sequence, in input order.
    """
    if not sequences:
        return []
    n = len(sequences)
    flat_ops: list[LoweredOp] = []
    for sequence in sequences:
        flat_ops.extend(sequence.ops)
    total = len(flat_ops)
    arr = _validated_arrays(flat_ops)

    # Roofline: identical to evaluate_cells, over the flat op batch.
    compute_s = np.zeros(total)
    has_flops = arr["flops"] > 0.0
    np.divide(
        arr["flops"],
        arr["peak_flops"] * arr["ceff"],
        out=compute_s,
        where=has_flops,
    )
    memory_s = np.zeros(total)
    has_bytes = arr["total_bytes"] > 0.0
    np.divide(
        arr["total_bytes"],
        arr["peak_bytes"] * arr["meff"],
        out=memory_s,
        where=has_bytes,
    )
    base = np.maximum(compute_s, memory_s) + arr["overhead"]

    # Thermal stretch, memoized per (model, requested draw) as above.
    stretch = np.ones(total)
    thermal_memo: dict[tuple[int, float], float] = {}
    k = 0
    for sequence in sequences:
        thermal = sequence.thermal
        thermal_id = id(thermal)
        for op in sequence.ops:
            requested = sum(op.power_draws_w.values())
            memo_key = (thermal_id, requested)
            factor = thermal_memo.get(memo_key)
            if factor is None:
                factor = (
                    thermal.throttle_time_factor(requested)
                    if thermal.clamp_factor(requested) < 1.0
                    else 1.0
                )
                thermal_memo[memo_key] = factor
            stretch[k] = factor
            k += 1
    base = base * stretch

    # Bulk noise: every op key is content-addressed under its sequence's
    # seed (op-counter fallbacks were precomputed by the lowering).
    entropies: list[int] = []
    sigmas: list[float] = []
    for sequence in sequences:
        ops = sequence.ops
        entropies.extend(
            noise_entropies(sequence.seed, [op.noise_key for op in ops])
        )
        sigmas.extend(
            resolve_sigma(default_sigma, op.noise_sigma) for op in ops
        )
    flat_durations = base * lognormal_factors(entropies, sigmas)

    counts = np.fromiter((len(s.ops) for s in sequences), np.int64, n)
    max_ops = int(counts.max())
    mask = np.arange(max_ops)[None, :] < counts[:, None]
    durations = np.zeros((n, max_ops))
    durations[mask] = flat_durations
    pre = np.zeros((n, max_ops))
    pre[mask] = np.fromiter(
        (op.pre_advance_s for op in flat_ops), np.float64, total
    )

    # Virtual clock: per-op cumulative float adds, column-wise.  A zero
    # pre-advance adds exactly 0.0 — the IEEE identity on the non-negative
    # clock — matching the scalar executor skipping the sleep; padded
    # columns only run the clock past windows already recorded.
    starts = np.empty((n, max_ops))
    ends = np.empty((n, max_ops))
    clock = np.zeros(n)
    for i in range(max_ops):
        begin = clock + pre[:, i]
        finish = begin + durations[:, i]
        starts[:, i] = begin
        ends[:, i] = finish
        clock = finish

    start_rows = starts.tolist()
    end_rows = ends.tolist()
    return [
        sequence.assemble(
            tuple(zip(start_rows[i][: len(sequence.ops)],
                      end_rows[i][: len(sequence.ops)]))
        )
        for i, sequence in enumerate(sequences)
    ]
