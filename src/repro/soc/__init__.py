"""Hardware models of the Apple Silicon M-series SoCs (and their parts).

This package captures the architectural review in section 2 of the paper as
data: chip specifications (Table 1), the devices used in the study (Table 3),
per-component power envelopes and the cooling model behind the paper's
laptop-vs-desktop power observation (section 7).
"""

from repro.soc.precision import Precision
from repro.soc.chip import (
    AMXSpec,
    ChipSpec,
    CoreKind,
    CPUClusterSpec,
    GPUSpec,
    MemorySpec,
    NeuralEngineSpec,
)
from repro.soc.catalog import (
    CHIP_NAMES,
    chip_catalog,
    get_chip,
    M1,
    M2,
    M3,
    M4,
)
from repro.soc.device import (
    Cooling,
    DeviceSpec,
    device_catalog,
    device_for_chip,
    get_device,
)
from repro.soc.power import ComponentPower, PowerEnvelope, PowerComponent
from repro.soc.thermal import ThermalModel
from repro.soc.ane import ane_peak_flops

__all__ = [
    "Precision",
    "CoreKind",
    "CPUClusterSpec",
    "AMXSpec",
    "GPUSpec",
    "NeuralEngineSpec",
    "MemorySpec",
    "ChipSpec",
    "CHIP_NAMES",
    "chip_catalog",
    "get_chip",
    "M1",
    "M2",
    "M3",
    "M4",
    "Cooling",
    "DeviceSpec",
    "device_catalog",
    "device_for_chip",
    "get_device",
    "PowerComponent",
    "ComponentPower",
    "PowerEnvelope",
    "ThermalModel",
    "ane_peak_flops",
]
