"""Neural Engine helpers (section 2.3, and the paper's named future work).

The paper does not benchmark the Neural Engine ("A large gap left behind in
this research is the lack of Neural Engine testing", section 7) because Core
ML offers no granular control.  We model it anyway so the precision-ablation
bench can place an ANE FP16 GEMM next to the Figure-2 FP32 results, the way
the paper situates Nvidia tensor cores.
"""

from __future__ import annotations

from repro.errors import UnsupportedProblemError
from repro.soc.chip import ChipSpec
from repro.soc.precision import Precision

__all__ = ["ane_peak_flops", "ane_supports"]


def ane_supports(chip: ChipSpec, precision: Precision) -> bool:
    """Whether the chip's Neural Engine can run the precision natively."""
    return precision in chip.neural_engine.precisions


def ane_peak_flops(chip: ChipSpec, precision: Precision) -> float:
    """Peak FLOP/s of the Neural Engine at the given precision.

    INT8 runs at twice the FP16 rate (standard for NPU MAC arrays); other
    precisions are unsupported, mirroring Core ML's constraints.
    """
    if not ane_supports(chip, precision):
        raise UnsupportedProblemError(
            f"Neural Engine on {chip.name} supports only "
            f"{sorted(p.key for p in chip.neural_engine.precisions)}, "
            f"not {precision.key}"
        )
    base = chip.neural_engine.peak_fp16_flops()
    if precision is Precision.INT8:
        return 2.0 * base
    return base
