"""The M-series chip catalog: Table 1 of the paper as data.

Each entry transcribes the paper's Table 1 ("Comparison of Baseline Apple
Silicon M Series Architecture").  AMX peaks are calibrated (Apple publishes
none) so that the Accelerate GEMM results of Figure 2 fall out of the
roofline model; everything else is the table verbatim.  All four chips use
the *maximum* base-model core counts, as in the paper's experimental setup
(section 4).
"""

from __future__ import annotations

from types import MappingProxyType
from typing import Mapping

from repro.errors import ConfigurationError, UnknownChipError
from repro.soc.chip import (
    AMXSpec,
    ChipSpec,
    CoreKind,
    CPUClusterSpec,
    GPUSpec,
    MemorySpec,
    NeuralEngineSpec,
)
from repro.soc.precision import Precision

__all__ = [
    "M1",
    "M2",
    "M3",
    "M4",
    "CHIP_NAMES",
    "chip_catalog",
    "get_chip",
    "register_derived_chip",
    "derived_chip_base",
    "base_chip_name",
]

_AMX_V1 = frozenset({Precision.FP16, Precision.FP32, Precision.FP64})
_AMX_V2 = frozenset({Precision.FP16, Precision.FP32, Precision.FP64, Precision.BF16})

M1 = ChipSpec(
    name="M1",
    process_nm="5",
    isa="ARMv8.5-A",
    cpu_clusters=(
        CPUClusterSpec("Firestorm", CoreKind.PERFORMANCE, 4, 3.2, 128, 12),
        CPUClusterSpec("Icestorm", CoreKind.EFFICIENCY, 4, 2.06, 64, 4),
    ),
    amx=AMXSpec(precisions=_AMX_V1, peak_fp32_tflops=1.00),
    gpu=GPUSpec(
        cores_min=7,
        cores_max=8,
        clock_ghz=1.278,
        table_fp32_tflops=(2.29, 2.61),
    ),
    neural_engine=NeuralEngineSpec(cores=16, peak_fp16_tops=11.0),
    memory=MemorySpec(
        technology="LPDDR4X", max_gb_options=(8, 16), bandwidth_gbs=67.0
    ),
)

M2 = ChipSpec(
    name="M2",
    process_nm="5/4",
    isa="ARMv8.6-A",
    cpu_clusters=(
        CPUClusterSpec("Avalanche", CoreKind.PERFORMANCE, 4, 3.5, 128, 16),
        CPUClusterSpec("Blizzard", CoreKind.EFFICIENCY, 4, 2.42, 64, 4),
    ),
    amx=AMXSpec(precisions=_AMX_V2, peak_fp32_tflops=1.25),
    gpu=GPUSpec(
        cores_min=8,
        cores_max=10,
        clock_ghz=1.398,
        table_fp32_tflops=(2.86, 3.57),
    ),
    neural_engine=NeuralEngineSpec(cores=16, peak_fp16_tops=15.8),
    memory=MemorySpec(
        technology="LPDDR5", max_gb_options=(8, 16, 24), bandwidth_gbs=100.0
    ),
)

M3 = ChipSpec(
    name="M3",
    process_nm="3",
    isa="ARMv8.6-A",
    cpu_clusters=(
        CPUClusterSpec("Everest", CoreKind.PERFORMANCE, 4, 4.05, 128, 16),
        CPUClusterSpec("Sawtooth", CoreKind.EFFICIENCY, 4, 2.75, 64, 4),
    ),
    amx=AMXSpec(precisions=_AMX_V2, peak_fp32_tflops=1.55),
    gpu=GPUSpec(
        cores_min=8,
        cores_max=10,
        clock_ghz=1.38,
        table_fp32_tflops=(2.82, 3.53),
    ),
    neural_engine=NeuralEngineSpec(cores=16, peak_fp16_tops=18.0),
    memory=MemorySpec(
        technology="LPDDR5", max_gb_options=(8, 16, 24), bandwidth_gbs=100.0
    ),
)

M4 = ChipSpec(
    name="M4",
    process_nm="3",
    isa="ARMv9.2-A",
    cpu_clusters=(
        CPUClusterSpec("M4-P", CoreKind.PERFORMANCE, 4, 4.4, 128, 16),
        CPUClusterSpec("M4-E", CoreKind.EFFICIENCY, 6, 2.85, 64, 4),
    ),
    amx=AMXSpec(precisions=_AMX_V2, peak_fp32_tflops=1.70, is_sme=True),
    gpu=GPUSpec(
        cores_min=8,
        cores_max=10,
        clock_ghz=1.47,
        table_fp32_tflops=(4.26, 4.26),
    ),
    neural_engine=NeuralEngineSpec(cores=16, peak_fp16_tops=38.0),
    memory=MemorySpec(
        technology="LPDDR5X", max_gb_options=(16, 24, 32), bandwidth_gbs=120.0
    ),
)

_CATALOG: dict[str, ChipSpec] = {c.name: c for c in (M1, M2, M3, M4)}

#: Chip names in generational order, as used throughout the paper's figures.
CHIP_NAMES: tuple[str, ...] = tuple(_CATALOG)


def chip_catalog() -> Mapping[str, ChipSpec]:
    """Read-only view of the full chip catalog."""
    return MappingProxyType(_CATALOG)


#: Derived chips: renamed variants of a catalog entry, registered at runtime
#: (the calibration loop's candidate parameter sets resolve through these).
#: name -> (spec, base catalog name).  Derived chips never appear in
#: :func:`chip_catalog`; they only resolve through :func:`get_chip`, and the
#: device/envelope/calibration layers map them back to their base via
#: :func:`base_chip_name`.
_DERIVED: dict[str, tuple[ChipSpec, str]] = {}


def register_derived_chip(spec: ChipSpec, base: str) -> None:
    """Register a renamed variant of catalog chip ``base``.

    Registration is idempotent for an identical spec; re-registering a name
    with a *different* spec raises (names are content-addressed by their
    creators precisely so this cannot happen by accident).

    Raises
    ------
    ConfigurationError
        If ``base`` is not a catalog chip, the name shadows a catalog
        entry, or the name is already bound to a different spec.
    """
    base_key = base.strip().upper()
    if base_key not in _CATALOG:
        raise ConfigurationError(
            f"derived chips must name a catalog base; {base!r} is not one of "
            f"{', '.join(CHIP_NAMES)}"
        )
    key = spec.name.strip().upper()
    if key in _CATALOG:
        raise ConfigurationError(
            f"derived chip {spec.name!r} would shadow the catalog entry"
        )
    existing = _DERIVED.get(key)
    if existing is not None:
        if existing[0] != spec or existing[1] != base_key:
            raise ConfigurationError(
                f"derived chip {spec.name!r} is already registered with a "
                f"different spec"
            )
        return
    _DERIVED[key] = (spec, base_key)


def derived_chip_base(name: str) -> str | None:
    """The catalog base of a derived chip, or ``None`` for anything else."""
    entry = _DERIVED.get(name.strip().upper())
    return entry[1] if entry is not None else None


def base_chip_name(name: str) -> str:
    """Map a derived chip's name to its catalog base; identity otherwise.

    The calibration tables key on catalog names ("M1".."M4"); everything
    that looks a chip up by name for *table* purposes resolves through here
    so derived variants inherit their base's anchors.
    """
    base = derived_chip_base(name)
    return base if base is not None else name


def get_chip(name: str) -> ChipSpec:
    """Look up a chip by name (case-insensitive).

    Resolves catalog entries first, then runtime-registered derived chips
    (:func:`register_derived_chip`).

    Raises
    ------
    UnknownChipError
        If the name is neither catalogued nor derived.
    """
    key = name.strip().upper()
    try:
        return _CATALOG[key]
    except KeyError:
        derived = _DERIVED.get(key)
        if derived is not None:
            return derived[0]
        raise UnknownChipError(name, CHIP_NAMES) from None
