"""Chip specification dataclasses mirroring Table 1 of the paper.

Every field that appears in Table 1 has a corresponding attribute here;
derived quantities (theoretical FLOP rates, cluster peak bandwidths) are
exposed as properties so the analysis layer can print both the table values
and the first-principles estimates.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable

from repro.errors import ConfigurationError
from repro.soc.precision import Precision
from repro.units import GHZ, TFLOP

__all__ = [
    "CoreKind",
    "CPUClusterSpec",
    "AMXSpec",
    "GPUSpec",
    "NeuralEngineSpec",
    "MemorySpec",
    "ChipSpec",
]


import enum


class CoreKind(enum.Enum):
    """big.LITTLE core role (section 2.1)."""

    PERFORMANCE = "performance"
    EFFICIENCY = "efficiency"

    @property
    def short(self) -> str:
        return "P" if self is CoreKind.PERFORMANCE else "E"


@dataclasses.dataclass(frozen=True)
class CPUClusterSpec:
    """A homogeneous CPU cluster (e.g. the four Firestorm P-cores of the M1).

    Attributes
    ----------
    name:
        Microarchitecture name (Firestorm, Avalanche, ...).
    kind:
        Performance or efficiency cluster.
    cores:
        Number of cores in the cluster.
    clock_ghz:
        Maximum clock frequency in GHz (Table 1).
    l1_kb, l2_mb:
        Per-core L1 (KB) and shared L2 (MB) cache sizes (Table 1).
    simd_width_bits:
        NEON vector width; 128 for every M-series generation (Table 1).
    fma_pipes:
        Number of 128-bit FMA-capable vector pipes per core.  Together with
        the SIMD width this yields the per-core FP32 peak:
        ``lanes * 2 flops * pipes * clock``.
    """

    name: str
    kind: CoreKind
    cores: int
    clock_ghz: float
    l1_kb: int
    l2_mb: int
    simd_width_bits: int = 128
    fma_pipes: int = 4

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ConfigurationError(f"cluster {self.name!r}: cores must be positive")
        if self.clock_ghz <= 0:
            raise ConfigurationError(f"cluster {self.name!r}: clock must be positive")
        if self.simd_width_bits % 32 != 0:
            raise ConfigurationError(
                f"cluster {self.name!r}: SIMD width must be a multiple of 32 bits"
            )

    @property
    def simd_lanes_fp32(self) -> int:
        """FP32 lanes per vector register (4 for NEON-128)."""
        return self.simd_width_bits // 32

    def scalar_fp32_flops(self) -> float:
        """Peak FP32 FLOP/s of *one* core executing scalar FMA code."""
        return 2.0 * self.clock_ghz * GHZ

    def core_simd_fp32_flops(self) -> float:
        """Peak FP32 FLOP/s of one core using all NEON pipes (FMA = 2 flops)."""
        return self.simd_lanes_fp32 * 2.0 * self.fma_pipes * self.clock_ghz * GHZ

    def cluster_simd_fp32_flops(self) -> float:
        """Peak FP32 FLOP/s of the whole cluster using NEON."""
        return self.cores * self.core_simd_fp32_flops()


@dataclasses.dataclass(frozen=True)
class AMXSpec:
    """The (undocumented) Apple Matrix eXtension coprocessor (section 2.1).

    AMX is driven by CPU instructions and processes fixed-dimension tiles;
    from the M4 onwards it is the standardised ARM SME unit.  ``peak_fp32_tflops``
    is our calibrated architectural peak — Apple publishes none.
    """

    precisions: frozenset[Precision]
    peak_fp32_tflops: float
    is_sme: bool = False
    tile_dim: int = 8  # fixed 8x8 FP32 tiles (section 2.1: "4x4 or 8x8")

    def __post_init__(self) -> None:
        if self.peak_fp32_tflops <= 0:
            raise ConfigurationError("AMX peak must be positive")
        if Precision.FP32 not in self.precisions:
            raise ConfigurationError("AMX always supports FP32")

    def peak_fp32_flops(self) -> float:
        """Calibrated FP32 peak of the AMX unit in FLOP/s."""
        return self.peak_fp32_tflops * TFLOP

    def supports(self, precision: Precision) -> bool:
        """Whether AMX handles the precision natively."""
        return precision in self.precisions


@dataclasses.dataclass(frozen=True)
class GPUSpec:
    """Integrated TBDR GPU (section 2.2).

    ``table_fp32_tflops`` stores Table 1's "Theoretical FP32 FLOPS" range
    verbatim (min, max over core configurations); ``derived_fp32_tflops``
    recomputes cores x ALUs x 2 x clock.  For the M4 the two disagree (the
    table lists 4.26 TFLOPS, the derivation at 1.47 GHz yields 3.76); the
    simulator always uses the *table maximum* as the architectural peak, as
    the paper's "percentage of theoretical peak" statements do.
    """

    cores_min: int
    cores_max: int
    clock_ghz: float
    table_fp32_tflops: tuple[float, float]
    alus_per_core: int = 128
    native_precisions: frozenset[Precision] = frozenset(
        {Precision.FP32, Precision.FP16, Precision.INT8}
    )

    def __post_init__(self) -> None:
        if not (0 < self.cores_min <= self.cores_max):
            raise ConfigurationError("GPU core range must satisfy 0 < min <= max")
        lo, hi = self.table_fp32_tflops
        if not (0 < lo <= hi):
            raise ConfigurationError("GPU table TFLOPS range must satisfy 0 < min <= max")
        if Precision.FP64 in self.native_precisions:
            raise ConfigurationError(
                "M-series GPUs lack native FP64 (section 1); use emulation"
            )

    @property
    def derived_fp32_tflops(self) -> float:
        """First-principles estimate at the max core count."""
        return self.cores_max * self.alus_per_core * 2.0 * self.clock_ghz * GHZ / TFLOP

    def peak_fp32_flops(self) -> float:
        """Architectural FP32 peak (FLOP/s) used by the simulator."""
        return self.table_fp32_tflops[1] * TFLOP

    def supports_native(self, precision: Precision) -> bool:
        """Whether the GPU executes the precision natively (no FP64)."""
        return precision in self.native_precisions


@dataclasses.dataclass(frozen=True)
class NeuralEngineSpec:
    """16-core Neural Engine (section 2.3): FP16/INT8 tensor accelerator."""

    cores: int
    peak_fp16_tops: float
    precisions: frozenset[Precision] = frozenset({Precision.FP16, Precision.INT8})

    def __post_init__(self) -> None:
        if self.cores <= 0 or self.peak_fp16_tops <= 0:
            raise ConfigurationError("Neural Engine cores/TOPS must be positive")

    def peak_fp16_flops(self) -> float:
        """FP16 peak of the Neural Engine in FLOP/s."""
        return self.peak_fp16_tops * 1e12


@dataclasses.dataclass(frozen=True)
class MemorySpec:
    """Unified memory subsystem (section 2.4, Table 1)."""

    technology: str
    max_gb_options: tuple[int, ...]
    bandwidth_gbs: float
    page_size: int = 16_384

    def __post_init__(self) -> None:
        if self.bandwidth_gbs <= 0:
            raise ConfigurationError("memory bandwidth must be positive")
        if not self.max_gb_options:
            raise ConfigurationError("memory spec needs at least one capacity option")
        if self.page_size <= 0 or self.page_size & (self.page_size - 1):
            raise ConfigurationError("page size must be a positive power of two")

    @property
    def max_gb(self) -> int:
        return max(self.max_gb_options)

    def bandwidth_bytes_per_s(self) -> float:
        """Theoretical bandwidth converted to bytes/second."""
        return self.bandwidth_gbs * 1e9


@dataclasses.dataclass(frozen=True)
class ChipSpec:
    """A complete SoC specification (one column of Table 1)."""

    name: str
    process_nm: str
    isa: str
    cpu_clusters: tuple[CPUClusterSpec, ...]
    amx: AMXSpec
    gpu: GPUSpec
    neural_engine: NeuralEngineSpec
    memory: MemorySpec

    def __post_init__(self) -> None:
        if not self.cpu_clusters:
            raise ConfigurationError(f"chip {self.name!r} needs at least one CPU cluster")
        kinds = [c.kind for c in self.cpu_clusters]
        if CoreKind.PERFORMANCE not in kinds:
            raise ConfigurationError(f"chip {self.name!r} needs a performance cluster")

    # -- cluster accessors -------------------------------------------------
    def clusters_of(self, kind: CoreKind) -> tuple[CPUClusterSpec, ...]:
        """All CPU clusters of one kind (performance/efficiency)."""
        return tuple(c for c in self.cpu_clusters if c.kind is kind)

    @property
    def performance_cluster(self) -> CPUClusterSpec:
        return self.clusters_of(CoreKind.PERFORMANCE)[0]

    @property
    def efficiency_cluster(self) -> CPUClusterSpec:
        clusters = self.clusters_of(CoreKind.EFFICIENCY)
        if not clusters:
            raise ConfigurationError(f"chip {self.name!r} has no efficiency cluster")
        return clusters[0]

    @property
    def performance_cores(self) -> int:
        return sum(c.cores for c in self.clusters_of(CoreKind.PERFORMANCE))

    @property
    def efficiency_cores(self) -> int:
        return sum(c.cores for c in self.clusters_of(CoreKind.EFFICIENCY))

    @property
    def total_cores(self) -> int:
        return sum(c.cores for c in self.cpu_clusters)

    # -- derived peaks -----------------------------------------------------
    def cpu_simd_fp32_flops(self, cores: Iterable[CPUClusterSpec] | None = None) -> float:
        """Aggregate NEON FP32 peak over the selected clusters (default: all)."""
        clusters = tuple(cores) if cores is not None else self.cpu_clusters
        return sum(c.cluster_simd_fp32_flops() for c in clusters)

    def core_config_label(self) -> str:
        """Table-1 style "P/E" core count label, e.g. ``"4/4"``."""
        return f"{self.performance_cores}/{self.efficiency_cores}"

    def clock_label(self) -> str:
        """Table-1 style clock label, e.g. ``"3.2 (P)/2.06 (E)"``."""
        p = self.performance_cluster.clock_ghz
        try:
            e = self.efficiency_cluster.clock_ghz
        except ConfigurationError:
            return f"{p:g} (P)"
        return f"{p:g} (P)/{e:g} (E)"
