"""The devices used in the study: Table 3 of the paper as data.

The paper benchmarks consumer machines, not reference boards, and explicitly
attributes part of the M1/M3 vs M2/M4 power gap to the device class: the
MacBook Airs are passively cooled, the Mac minis have active air cooling
(section 7).  The cooling type feeds the :class:`repro.soc.thermal.ThermalModel`.
"""

from __future__ import annotations

import dataclasses
import enum
from types import MappingProxyType
from typing import Mapping

from repro.errors import UnknownDeviceError
from repro.soc.catalog import derived_chip_base, get_chip
from repro.soc.chip import ChipSpec

__all__ = [
    "Cooling",
    "DeviceSpec",
    "device_catalog",
    "device_for_chip",
    "get_device",
]


class Cooling(enum.Enum):
    """Cooling solution of the device (Table 3: "Passive" / "Air")."""

    PASSIVE = "Passive"
    ACTIVE_AIR = "Air"


@dataclasses.dataclass(frozen=True)
class DeviceSpec:
    """One column of Table 3 ("Basic information of devices used")."""

    model: str
    chip_name: str
    release_year: int
    memory_gb: int
    cooling: Cooling
    macos_version: str

    @property
    def chip(self) -> ChipSpec:
        return get_chip(self.chip_name)

    @property
    def is_laptop(self) -> bool:
        return "MacBook" in self.model

    def identifier(self) -> str:
        """Short unique key, e.g. ``"macbook-air-m1"``."""
        return f"{self.model.lower().replace(' ', '-')}-{self.chip_name.lower()}"


_DEVICES: dict[str, DeviceSpec] = {
    "M1": DeviceSpec(
        model="MacBook Air",
        chip_name="M1",
        release_year=2020,
        memory_gb=8,
        cooling=Cooling.PASSIVE,
        macos_version="14.7.2",
    ),
    "M2": DeviceSpec(
        model="Mac mini",
        chip_name="M2",
        release_year=2023,
        memory_gb=8,
        cooling=Cooling.ACTIVE_AIR,
        macos_version="15.1.1",
    ),
    "M3": DeviceSpec(
        model="MacBook Air",
        chip_name="M3",
        release_year=2024,
        memory_gb=16,
        cooling=Cooling.PASSIVE,
        macos_version="15.2",
    ),
    "M4": DeviceSpec(
        model="Mac mini",
        chip_name="M4",
        release_year=2024,
        memory_gb=16,
        cooling=Cooling.ACTIVE_AIR,
        macos_version="15.1.1",
    ),
}


def device_catalog() -> Mapping[str, DeviceSpec]:
    """Read-only view of the Table-3 device catalog, keyed by chip name."""
    return MappingProxyType(_DEVICES)


def device_for_chip(chip_name: str) -> DeviceSpec:
    """The device the paper used for a given chip (Table 3).

    Derived chips (see :func:`repro.soc.catalog.register_derived_chip`)
    resolve to their base chip's device, re-labelled with the derived name
    so the device/chip pairing stays consistent downstream.
    """
    key = chip_name.strip().upper()
    try:
        return _DEVICES[key]
    except KeyError:
        base = derived_chip_base(key)
        if base is not None:
            return dataclasses.replace(_DEVICES[base], chip_name=key)
        raise UnknownDeviceError(
            f"no study device recorded for chip {chip_name!r}; "
            f"known chips: {', '.join(_DEVICES)}"
        ) from None


def get_device(identifier: str) -> DeviceSpec:
    """Look up a device by its :meth:`DeviceSpec.identifier`."""
    for dev in _DEVICES.values():
        if dev.identifier() == identifier:
            return dev
    raise UnknownDeviceError(f"unknown device identifier {identifier!r}")
