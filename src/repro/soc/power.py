"""Per-component power envelopes for the simulated SoCs.

``powermetrics`` reports separate CPU and GPU power (section 3.3); our power
model mirrors that: each :class:`PowerComponent` has an idle floor and a
maximum draw, and workloads express a *utilisation* in [0, 1] that linearly
interpolates between them.  Utilisation is distinct from compute efficiency:
the CUTLASS-style shader keeps the GPU ALUs busy (high utilisation, ~20 W on
the M4) while achieving a tenth of MPS's useful FLOPS (Figures 3-4).
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Mapping

from repro.errors import ConfigurationError

__all__ = ["PowerComponent", "ComponentPower", "PowerEnvelope"]


class PowerComponent(enum.Enum):
    """The power rails the simulator tracks (superset of the paper's two)."""

    CPU = "cpu"   # includes the AMX units, as powermetrics attributes them
    GPU = "gpu"
    ANE = "ane"
    DRAM = "dram"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclasses.dataclass(frozen=True)
class ComponentPower:
    """Idle floor and maximum draw of one component, in watts."""

    idle_w: float
    max_w: float

    def __post_init__(self) -> None:
        if self.idle_w < 0:
            raise ConfigurationError("idle power cannot be negative")
        if self.max_w < self.idle_w:
            raise ConfigurationError("max power cannot be below idle power")

    def at_utilisation(self, utilisation: float) -> float:
        """Draw in watts at a utilisation clamped into [0, 1]."""
        u = min(1.0, max(0.0, utilisation))
        return self.idle_w + u * (self.max_w - self.idle_w)

    def utilisation_for(self, watts: float) -> float:
        """Inverse of :meth:`at_utilisation` (clamped into [0, 1])."""
        if self.max_w == self.idle_w:
            return 0.0
        return min(1.0, max(0.0, (watts - self.idle_w) / (self.max_w - self.idle_w)))


@dataclasses.dataclass(frozen=True)
class PowerEnvelope:
    """The full set of component envelopes for one chip."""

    components: Mapping[PowerComponent, ComponentPower]

    def __post_init__(self) -> None:
        missing = [c for c in (PowerComponent.CPU, PowerComponent.GPU) if c not in self.components]
        if missing:
            raise ConfigurationError(
                f"power envelope must cover CPU and GPU; missing {missing}"
            )

    def component(self, component: PowerComponent) -> ComponentPower:
        """The envelope of one component; raises if unmodelled."""
        try:
            return self.components[component]
        except KeyError:
            raise ConfigurationError(f"no power data for component {component}") from None

    def idle_watts(self, component: PowerComponent) -> float:
        """Idle floor of one component in watts."""
        return self.component(component).idle_w

    def total_idle_watts(self) -> float:
        """Sum of idle floors over every modelled component."""
        return sum(cp.idle_w for cp in self.components.values())

    def max_watts(self, component: PowerComponent) -> float:
        """Maximum draw of one component in watts."""
        return self.component(component).max_w

    def draw(self, utilisations: Mapping[PowerComponent, float]) -> dict[PowerComponent, float]:
        """Watts per component for a utilisation map (absent components idle)."""
        out: dict[PowerComponent, float] = {}
        for comp, envelope in self.components.items():
            out[comp] = envelope.at_utilisation(utilisations.get(comp, 0.0))
        return out


def default_envelope_for(chip_name: str) -> PowerEnvelope:
    """Built-in power envelopes for the study chips.

    These bound the draws observed in Figure 3 (a few watts to ~20 W, with
    the M4 GPU at the top) and the powermetrics idle floors of consumer Macs.
    """
    tables: dict[str, dict[PowerComponent, ComponentPower]] = {
        "M1": {
            PowerComponent.CPU: ComponentPower(0.04, 13.0),
            PowerComponent.GPU: ComponentPower(0.02, 10.0),
            PowerComponent.ANE: ComponentPower(0.01, 8.0),
            PowerComponent.DRAM: ComponentPower(0.05, 1.5),
        },
        "M2": {
            PowerComponent.CPU: ComponentPower(0.04, 16.0),
            PowerComponent.GPU: ComponentPower(0.02, 12.0),
            PowerComponent.ANE: ComponentPower(0.01, 9.0),
            PowerComponent.DRAM: ComponentPower(0.05, 1.8),
        },
        "M3": {
            PowerComponent.CPU: ComponentPower(0.04, 15.0),
            PowerComponent.GPU: ComponentPower(0.02, 12.0),
            PowerComponent.ANE: ComponentPower(0.01, 9.0),
            PowerComponent.DRAM: ComponentPower(0.05, 1.8),
        },
        "M4": {
            PowerComponent.CPU: ComponentPower(0.05, 18.0),
            PowerComponent.GPU: ComponentPower(0.02, 22.0),
            PowerComponent.ANE: ComponentPower(0.01, 10.0),
            PowerComponent.DRAM: ComponentPower(0.06, 2.2),
        },
    }
    # Derived chips inherit their base's envelope, not the generic one.
    from repro.soc.catalog import base_chip_name

    key = base_chip_name(chip_name.strip().upper())
    if key not in tables:
        # A generic envelope keeps custom/user-defined chips usable.
        return PowerEnvelope(
            {
                PowerComponent.CPU: ComponentPower(0.05, 15.0),
                PowerComponent.GPU: ComponentPower(0.02, 15.0),
                PowerComponent.ANE: ComponentPower(0.01, 8.0),
                PowerComponent.DRAM: ComponentPower(0.05, 2.0),
            }
        )
    return PowerEnvelope(tables[key])


__all__.append("default_envelope_for")
