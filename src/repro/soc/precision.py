"""Numerical precisions discussed by the paper.

The M-series CPUs support FP64/FP32/FP16 (+BF16 from M2 on via AMX); the GPUs
natively support FP32/FP16/INT8 but not FP64 (section 1); the Neural Engine
is FP16/INT8 (section 2.3); the GH200 tensor-core path uses TF32 (section 4).
"""

from __future__ import annotations

import enum

import numpy as np

__all__ = ["Precision"]


class Precision(enum.Enum):
    """A numerical precision with its storage width in bytes."""

    FP64 = ("fp64", 8)
    FP32 = ("fp32", 4)
    TF32 = ("tf32", 4)  # stored as fp32, reduced mantissa in compute
    FP16 = ("fp16", 2)
    BF16 = ("bf16", 2)
    INT8 = ("int8", 1)

    def __init__(self, key: str, nbytes: int) -> None:
        self.key = key
        self.nbytes = nbytes

    @property
    def dtype(self) -> np.dtype:
        """The NumPy dtype used to *store* values of this precision.

        TF32 and BF16 have no native NumPy dtype; they are stored as FP32 and
        the reduced compute precision is modelled by rounding helpers.
        """
        mapping = {
            Precision.FP64: np.float64,
            Precision.FP32: np.float32,
            Precision.TF32: np.float32,
            Precision.FP16: np.float16,
            Precision.BF16: np.float32,
            Precision.INT8: np.int8,
        }
        return np.dtype(mapping[self])

    @property
    def mantissa_bits(self) -> int:
        """Explicit mantissa bits carried in compute."""
        mapping = {
            Precision.FP64: 52,
            Precision.FP32: 23,
            Precision.TF32: 10,
            Precision.FP16: 10,
            Precision.BF16: 7,
            Precision.INT8: 7,  # signed 8-bit integer magnitude bits
        }
        return mapping[self]

    @classmethod
    def from_key(cls, key: str) -> "Precision":
        """Look up a precision by its short key (e.g. ``"fp32"``)."""
        for p in cls:
            if p.key == key.lower():
                return p
        raise KeyError(f"unknown precision key {key!r}")

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.key.upper()
