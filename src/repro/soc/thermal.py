"""Cooling / sustained-power model.

The paper observes that "the Apple laptops with M1 and M3 SoCs have
relatively lower Power Dissipation compared to desktops (M2, M4), which might
show the impact of power strategy and cooling methods" (section 7).  We model
this as a sustained package-power cap per cooling class: passively cooled
devices clamp the aggregate draw, and sustained clamping proportionally
stretches execution time (thermal throttling).

The cap is deliberately a *device* property rather than a chip property so the
ablation bench can swap cooling solutions under the same chip.
"""

from __future__ import annotations

import dataclasses

from repro.errors import ConfigurationError
from repro.soc.device import Cooling, DeviceSpec

__all__ = ["ThermalModel"]

#: Sustained package-power caps in watts by cooling class.
_DEFAULT_CAPS: dict[Cooling, float] = {
    Cooling.PASSIVE: 14.0,
    Cooling.ACTIVE_AIR: 30.0,
}


@dataclasses.dataclass(frozen=True)
class ThermalModel:
    """Sustained power cap and its effect on power and duration.

    Attributes
    ----------
    sustained_cap_w:
        Maximum aggregate package power the cooling solution can dissipate
        indefinitely.
    enabled:
        Ablation switch; with ``False`` the model passes power through
        unchanged (used by ``bench_ablation_thermal``).
    """

    sustained_cap_w: float
    enabled: bool = True

    def __post_init__(self) -> None:
        if self.sustained_cap_w <= 0:
            raise ConfigurationError("thermal cap must be positive")

    @classmethod
    def for_device(cls, device: DeviceSpec, enabled: bool = True) -> "ThermalModel":
        return cls(sustained_cap_w=_DEFAULT_CAPS[device.cooling], enabled=enabled)

    @classmethod
    def unlimited(cls) -> "ThermalModel":
        return cls(sustained_cap_w=float("inf"), enabled=False)

    def clamp_factor(self, requested_total_w: float) -> float:
        """Multiplier in (0, 1] applied to component draws.

        If the uncapped aggregate draw exceeds the sustained cap, every
        component is scaled down proportionally.
        """
        if not self.enabled or requested_total_w <= self.sustained_cap_w:
            return 1.0
        if requested_total_w <= 0:
            return 1.0
        return self.sustained_cap_w / requested_total_w

    def throttle_time_factor(self, requested_total_w: float) -> float:
        """Multiplier >= 1 applied to execution time when power is clamped.

        Dynamic power scales roughly with f*V^2 ~ f^3; we use the cube-root
        relation so a 2x power clamp costs ~1.26x time.  This keeps throttled
        runs slower but not absurdly so, matching the mild M1/M3 deficits in
        Figure 2.
        """
        factor = self.clamp_factor(requested_total_w)
        if factor >= 1.0:
            return 1.0
        return factor ** (-1.0 / 3.0)
