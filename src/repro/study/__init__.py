"""Declarative studies and the envelope query layer.

The paper's whole evaluation is one cross-product study — chips x
workloads x variants x sizes, reported as performance and efficiency.
This package makes that literal:

* :class:`~repro.study.spec.StudySpec` — a frozen, hashable grid
  description that compiles to the existing experiment specs and runs
  through any session backend with manifest resume
  (:func:`~repro.study.spec.run_study`);
* :class:`~repro.study.frame.ResultFrame` — filter / derive / group_by /
  aggregate / pivot over envelope collections, with per-workload metric
  extractors (GFLOP/s, GB/s, fraction-of-peak, joules, GFLOPS/W) resolved
  through the workload registry — identical over in-memory batches and
  on-disk stores;
* :mod:`~repro.study.defs` — Figures 1-4 and Tables 1-3 as data
  (:data:`FIGURES`/:data:`TABLES`): a study factory plus a frame query per
  figure, which the legacy ``figureN_data`` functions facade;
* :mod:`~repro.study.report` — efficiency pivots and paper comparison as
  frame queries (``repro study render efficiency``).

Quickstart::

    from repro.study import ResultFrame, paper_study, run_study

    frame = run_study(paper_study(fast=True), out="results/")
    eff = frame.pivot(("kind", "chip", "variant", "size"),
                      values="gflops_per_w")
"""

from repro.study.defs import (
    FIGURES,
    TABLES,
    FigureDef,
    TableDef,
    get_figure,
    get_table,
    paper_study,
    render_plain_table,
)
from repro.study.frame import AGGREGATORS, ResultFrame, Row
from repro.study.report import (
    EFFICIENCY_FIELDS,
    compare_study,
    efficiency_pivot,
    efficiency_rows,
    figure_series_bundle,
    render_efficiency_report,
    render_figure_text,
)
from repro.study.spec import StudySpec, WorkloadAxis, run_study, study_session

__all__ = [
    "StudySpec",
    "WorkloadAxis",
    "run_study",
    "study_session",
    "ResultFrame",
    "Row",
    "AGGREGATORS",
    "FigureDef",
    "TableDef",
    "FIGURES",
    "TABLES",
    "get_figure",
    "get_table",
    "paper_study",
    "render_plain_table",
    "EFFICIENCY_FIELDS",
    "efficiency_pivot",
    "efficiency_rows",
    "render_efficiency_report",
    "render_figure_text",
    "figure_series_bundle",
    "compare_study",
]
