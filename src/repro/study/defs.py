"""The paper's figures and tables, re-expressed as data.

Each entry of :data:`FIGURES` pairs a declarative grid (a
:class:`~repro.study.spec.StudySpec` factory) with a
:class:`~repro.study.frame.ResultFrame` query producing the plottable
series — adding a figure, a chip or an efficiency view means adding data
here, not writing another assembly loop.  The legacy ``figureN_data`` /
``figureN_from_envelopes`` functions in :mod:`repro.analysis.figures` are
thin facades over these definitions and remain byte-identical to their
hand-assembled ancestors (enforced by ``tests/study/test_equivalence.py``).

:data:`TABLES` does the same for Tables 1-3: each holds a builder from the
system inventory (:mod:`repro.soc`, :mod:`repro.core.gemm.registry`) to
``(headers, rows)``, rendered by :func:`render_plain_table` — the one
generic ASCII renderer.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Mapping, Sequence

from repro.calibration import paper
from repro.core.gemm.registry import paper_implementation_keys, table2_rows
from repro.errors import ConfigurationError
from repro.soc.catalog import CHIP_NAMES, get_chip
from repro.soc.device import device_catalog
from repro.study.frame import ResultFrame
from repro.study.spec import StudySpec, WorkloadAxis

__all__ = [
    "FigureDef",
    "TableDef",
    "FIGURES",
    "TABLES",
    "get_figure",
    "get_table",
    "paper_study",
    "render_plain_table",
]


# ---------------------------------------------------------------------------
# Series queries (shared by live runs and persisted stores)
# ---------------------------------------------------------------------------
def _series_scaffold(
    chips: Sequence[str] | None, impl_keys: Sequence[str] | None
) -> dict[str, dict[str, dict[int, float]]]:
    """Every requested (chip, impl) key present, even when its series is empty."""
    if chips is None:
        return {}
    keys = tuple(impl_keys) if impl_keys is not None else paper_implementation_keys()
    return {chip: {key: {} for key in keys} for chip in chips}


def _filtered(
    frame: ResultFrame, kind: str, chips: Sequence[str] | None
) -> ResultFrame:
    if chips is None:
        return frame.filter(kind=kind)
    return frame.filter(kind=kind, chip=tuple(chips))


def _sweep_series(kind: str, metric: str) -> Callable:
    """The Figure-2/3/4 query: ``{chip: {impl: {n: metric}}}``."""

    def build(
        frame: ResultFrame,
        chips: Sequence[str] | None = None,
        impl_keys: Sequence[str] | None = None,
    ) -> dict[str, dict[str, dict[int, float]]]:
        return _filtered(frame, kind, chips).pivot(
            ("chip", "impl_key", "n"),
            values=metric,
            seed=_series_scaffold(chips, impl_keys),
        )

    return build


def _stream_series(
    frame: ResultFrame,
    chips: Sequence[str] | None = None,
    impl_keys: Sequence[str] | None = None,
) -> dict[str, dict]:
    """The Figure-1 query: theoretical peak plus per-kernel bars per target."""
    sub = _filtered(frame, "stream", chips)
    theoretical = sub.pivot("chip", values="theoretical_gbs", agg="first")
    kernels = sub.pivot(("chip", "target"), values="kernel_gbs")
    out = {
        chip: {"theoretical": theoretical[chip], **kernels[chip]}
        for chip in kernels
    }
    if chips is not None:
        return {chip: out[chip] for chip in chips if chip in out}
    return out


# ---------------------------------------------------------------------------
# Figure definitions
# ---------------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class FigureDef:
    """One paper figure as data: its grid axis plus its series query.

    ``axis_defaults`` hold the paper's full protocol; ``fast_overrides``
    replace them for smoke-grade runs (``repro study run --fast``, CI).
    ``series_builder`` is the frame query — identical whether the frame
    wraps a live batch or a loaded store.
    """

    name: str
    title: str
    kind: str
    metric: str
    unit: str
    value_name: str
    series_builder: Callable
    axis_defaults: Mapping[str, Any] = dataclasses.field(default_factory=dict)
    fast_overrides: Mapping[str, Any] = dataclasses.field(default_factory=dict)

    def axis(self, *, fast: bool = False, **overrides: Any) -> WorkloadAxis:
        """This figure's workload axis; ``None`` overrides take the default."""
        merged = dict(self.axis_defaults)
        if fast:
            merged.update(self.fast_overrides)
        merged.update(
            {name: value for name, value in overrides.items() if value is not None}
        )
        return WorkloadAxis(kind=self.kind, **merged)

    def study(
        self,
        chips: Sequence[str] | None = None,
        *,
        seed: int = 0,
        fast: bool = False,
        **overrides: Any,
    ) -> StudySpec:
        """The declarative study producing exactly this figure's grid."""
        return StudySpec(
            name=self.name,
            chips=tuple(chips) if chips is not None else paper.CHIPS,
            axes=(self.axis(fast=fast, **overrides),),
            seed=seed,
        )

    def series(
        self,
        frame: ResultFrame,
        *,
        chips: Sequence[str] | None = None,
        impl_keys: Sequence[str] | None = None,
    ) -> dict:
        """The figure's plottable series, assembled by the frame query."""
        return self.series_builder(frame, chips, impl_keys)


#: Figures 1-4, keyed by CLI name.  Axis defaults are the paper's protocol
#: (section 4); the metric names resolve through the workload registry's
#: extractors, so the very same definitions read live batches and stores.
FIGURES: dict[str, FigureDef] = {
    fig.name: fig
    for fig in (
        FigureDef(
            name="figure1",
            title="Figure 1 — STREAM bandwidth (GB/s), max over repetitions",
            kind="stream",
            metric="kernel_gbs",
            unit="GB/s",
            value_name="bandwidth_gbs",
            series_builder=_stream_series,
            axis_defaults={"targets": ("cpu", "gpu")},
            fast_overrides={"n_elements": 1 << 14, "repeats": 2},
        ),
        FigureDef(
            name="figure2",
            title="Figure 2 — GEMM",
            kind="gemm",
            metric="gflops",
            unit="GFLOPS",
            value_name="gflops",
            series_builder=_sweep_series("gemm", "gflops"),
            axis_defaults={
                "sizes": paper.GEMM_SIZES,
                "repeats": paper.GEMM_REPEATS,
            },
            fast_overrides={"sizes": (32, 1024, 4096), "repeats": 1},
        ),
        FigureDef(
            name="figure3",
            title="Figure 3 — power",
            kind="powered-gemm",
            metric="power_mw",
            unit="mW",
            value_name="power_mw",
            series_builder=_sweep_series("powered-gemm", "power_mw"),
            axis_defaults={
                "sizes": paper.POWER_SIZES,
                "repeats": paper.GEMM_REPEATS,
            },
            fast_overrides={"sizes": (2048, 16384), "repeats": 1},
        ),
        FigureDef(
            name="figure4",
            title="Figure 4 — efficiency",
            kind="powered-gemm",
            metric="gflops_per_w",
            unit="GFLOPS/W",
            value_name="gflops_per_w",
            series_builder=_sweep_series("powered-gemm", "gflops_per_w"),
            axis_defaults={
                "sizes": paper.POWER_SIZES,
                "repeats": paper.GEMM_REPEATS,
            },
            fast_overrides={"sizes": (2048, 16384), "repeats": 1},
        ),
    )
}


def get_figure(name: str) -> FigureDef:
    """The figure definition registered under ``name``."""
    try:
        return FIGURES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown figure {name!r}; known: {', '.join(FIGURES)}"
        ) from None


def paper_study(
    chips: Sequence[str] | None = None,
    *,
    seed: int = 0,
    fast: bool = False,
    figures: Sequence[str] | None = None,
) -> StudySpec:
    """The whole paper as one study: the union of the figures' axes.

    Figures sharing a grid (3 and 4 both read the powered-GEMM sweep)
    contribute one axis, so the compiled grid holds each cell once.
    """
    names = tuple(figures) if figures is not None else tuple(FIGURES)
    axes = tuple(
        dict.fromkeys(get_figure(name).axis(fast=fast) for name in names)
    )
    return StudySpec(
        name="paper" if figures is None else "+".join(names),
        chips=tuple(chips) if chips is not None else paper.CHIPS,
        axes=axes,
        seed=seed,
    )


# ---------------------------------------------------------------------------
# Table definitions
# ---------------------------------------------------------------------------
def render_plain_table(
    headers: Sequence[str], rows: Sequence[Sequence[str]], title: str = ""
) -> str:
    """Plain-text table with padded columns (the one generic renderer)."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    sep = "-+-".join("-" * w for w in widths)
    out = []
    if title:
        out.append(title)
    out.append(fmt(list(headers)))
    out.append(sep)
    out.extend(fmt(list(row)) for row in rows)
    return "\n".join(out)


def _table1_data(chips: tuple[str, ...] = CHIP_NAMES) -> tuple[list, list]:
    """Table 1 rows from the chip catalog (transcribed architecture data)."""
    specs = [get_chip(name) for name in chips]
    features: list[tuple[str, list[str]]] = [
        ("Process Technology (nm)", [c.process_nm for c in specs]),
        ("CPU Architecture", [c.isa for c in specs]),
        ("Performance/Efficiency Cores", [c.core_config_label() for c in specs]),
        ("Clock Frequency (GHz)", [c.clock_label() for c in specs]),
        (
            "Vector Unit (name/size)",
            [f"NEON/{c.performance_cluster.simd_width_bits}" for c in specs],
        ),
        (
            "L1 Cache (KB)",
            [
                f"{c.performance_cluster.l1_kb} (P)/{c.efficiency_cluster.l1_kb} (E)"
                for c in specs
            ],
        ),
        (
            "L2 Cache (MB)",
            [
                f"{c.performance_cluster.l2_mb} (P)/{c.efficiency_cluster.l2_mb} (E)"
                for c in specs
            ],
        ),
        (
            "AMX Characteristics",
            [
                "FP16,32,64" + ("/BF16" if any(p.key == "bf16" for p in c.amx.precisions) else "")
                for c in specs
            ],
        ),
        (
            "GPU Cores",
            [
                f"{c.gpu.cores_min}-{c.gpu.cores_max}"
                if c.gpu.cores_min != c.gpu.cores_max
                else str(c.gpu.cores_max)
                for c in specs
            ],
        ),
        (
            "Native Precision Support",
            ["FP32, FP16, INT8" for _ in specs],
        ),
        ("GPU Clock Frequency (GHz)", [f"{c.gpu.clock_ghz:g}" for c in specs]),
        (
            "Theoretical FP32 FLOPS (TFLOPS)",
            [
                f"{c.gpu.table_fp32_tflops[0]:g}-{c.gpu.table_fp32_tflops[1]:g}"
                if c.gpu.table_fp32_tflops[0] != c.gpu.table_fp32_tflops[1]
                else f"{c.gpu.table_fp32_tflops[1]:g}"
                for c in specs
            ],
        ),
        ("Neural Engine Units (Core)", [str(c.neural_engine.cores) for c in specs]),
        ("Memory Technology", [c.memory.technology for c in specs]),
        (
            "Max Unified Memory (GB)",
            ["-".join(str(g) for g in c.memory.max_gb_options) for c in specs],
        ),
        ("Memory Bandwidth (GB/s)", [f"{c.memory.bandwidth_gbs:g}" for c in specs]),
    ]
    headers = ["Feature"] + list(chips)
    rows = [[feature] + values for feature, values in features]
    return headers, rows


def _table2_data() -> tuple[list, list]:
    """Table 2 rows from the GEMM implementation registry."""
    return (
        ["Implementation", "Framework", "Hardware"],
        [list(row) for row in table2_rows()],
    )


def _table3_data() -> tuple[list, list]:
    """Table 3 rows from the device catalog."""
    devices = device_catalog()
    chips = list(devices)
    rows = [
        ["Device", *[devices[c].model for c in chips]],
        ["Release", *[str(devices[c].release_year) for c in chips]],
        ["Memory", *[f"{devices[c].memory_gb}GB" for c in chips]],
        ["Cooling", *[devices[c].cooling.value for c in chips]],
        ["MacOS", *[devices[c].macos_version for c in chips]],
    ]
    return ["Feature"] + chips, rows


def _calibration_mape_data(
    result: Any | None = None, chips: Sequence[str] | None = None
) -> tuple[list, list]:
    """Per-chip calibration MAPE rows.

    With no arguments this runs a small self-calibration (paper-derived
    synthetic trace, trimmed grid) so ``repro study render calibration-mape``
    works zero-arg; pass an existing
    :class:`~repro.calibrate.result.CalibrationResult` to render it instead.
    The import is lazy: ``repro.calibrate`` sits above the study layer.
    """
    if result is None:
        from repro.calibrate import default_spec, run_calibration, synthesize_trace

        trace = synthesize_trace(chips=chips)
        spec = default_spec(
            chips=chips if chips is not None else None,
            coarse_points=7,
            refine_rounds=3,
        )
        result = run_calibration(trace, spec)
    headers, rows = result.mape_table()
    return list(headers), [list(r) for r in rows]


@dataclasses.dataclass(frozen=True)
class TableDef:
    """One paper table as data: a builder from the inventory to rows."""

    name: str
    title: str
    build: Callable[..., tuple[list, list]]

    def render(self, *args: Any, **kwargs: Any) -> str:
        """The table's canonical ASCII rendering."""
        headers, rows = self.build(*args, **kwargs)
        return render_plain_table(headers, rows, title=self.title)


#: Tables 1-3, keyed by CLI name.
TABLES: dict[str, TableDef] = {
    table.name: table
    for table in (
        TableDef(
            name="table1",
            title=(
                "Table 1. Comparison of Baseline Apple Silicon M Series "
                "Architecture."
            ),
            build=_table1_data,
        ),
        TableDef(
            name="table2",
            title="Table 2. Overview of matrix multiplication implementations.",
            build=_table2_data,
        ),
        TableDef(
            name="table3",
            title="Table 3. Basic information of devices used.",
            build=_table3_data,
        ),
        TableDef(
            name="calibration-mape",
            title=(
                "Calibration — per-chip MAPE of the fitted simulator "
                "(self-calibration against a paper-derived synthetic trace)."
            ),
            build=_calibration_mape_data,
        ),
    )
}


def get_table(name: str) -> TableDef:
    """The table definition registered under ``name``."""
    try:
        return TABLES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown table {name!r}; known: {', '.join(TABLES)}"
        ) from None
