"""The envelope query layer: figures and tables as data, not loops.

A :class:`ResultFrame` wraps an ordered collection of
:class:`~repro.experiments.envelope.ResultEnvelope` records — an in-memory
batch, a session cache, or an on-disk store, interchangeably — behind a
small relational vocabulary: ``filter``, ``derive``, ``group_by``,
``aggregate`` and ``pivot``.  Every figure and efficiency view in the
analysis layer is a frame query; nothing hand-iterates envelopes anymore.

Field resolution on a row goes, in order:

1. columns added by :meth:`ResultFrame.derive`;
2. the reserved fields ``kind``, ``spec_hash``, ``variant`` (implementation
   key or target, whichever the spec has), ``size`` (``n`` or
   ``n_elements``), ``spec``, ``result`` and ``envelope``;
3. the workload's registered metric extractors
   (:attr:`~repro.workloads.base.Workload.metrics` — ``gflops``, ``gbs``,
   ``power_w``, ``joules``, ``gflops_per_w``, ...);
4. spec attributes (``chip``, ``impl_key``, ``n``, ``seed``, ...);
5. result attributes.

A metric extractor may return ``None`` ("not available for this cell" —
e.g. power on a legacy envelope); queries skip such values rather than
failing, which is what lets one efficiency pivot run over a mixed store.
"""

from __future__ import annotations

import copy
import statistics
from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

from repro.errors import ConfigurationError
from repro.experiments.envelope import ResultEnvelope

__all__ = ["Row", "ResultFrame", "AGGREGATORS"]

_MISSING = object()

#: Named reducers accepted wherever an ``agg=`` argument is taken.
AGGREGATORS: dict[str, Callable[[Sequence[Any]], Any]] = {
    "max": max,
    "min": min,
    "sum": sum,
    "mean": statistics.fmean,
    "first": lambda values: values[0],
    "last": lambda values: values[-1],
    "count": len,
}


def _reducer(agg: str | Callable) -> Callable[[Sequence[Any]], Any]:
    if callable(agg):
        return agg
    try:
        return AGGREGATORS[agg]
    except KeyError:
        raise ConfigurationError(
            f"unknown aggregator {agg!r}; known: {', '.join(AGGREGATORS)}"
        ) from None


class Row:
    """One envelope viewed as a flat record of resolvable fields."""

    __slots__ = ("envelope", "_extra")

    def __init__(
        self, envelope: ResultEnvelope, extra: Mapping[str, Any] | None = None
    ) -> None:
        self.envelope = envelope
        self._extra = dict(extra) if extra else {}

    @property
    def spec(self) -> Any:
        return self.envelope.spec

    @property
    def result(self) -> Any:
        return self.envelope.result

    @property
    def kind(self) -> str:
        return self.envelope.kind

    def with_extra(self, extra: Mapping[str, Any]) -> "Row":
        """A copy carrying additional derived columns."""
        merged = dict(self._extra)
        merged.update(extra)
        return Row(self.envelope, merged)

    def __getitem__(self, field: str) -> Any:
        if field in self._extra:
            return self._extra[field]
        spec = self.envelope.spec
        if field == "kind":
            return self.envelope.kind
        if field == "spec_hash":
            return self.envelope.spec_hash
        if field == "variant":
            from repro.workloads.base import spec_variant

            return spec_variant(spec)
        if field == "size":
            from repro.workloads.base import spec_size

            return spec_size(spec)
        if field == "spec":
            return spec
        if field == "result":
            return self.envelope.result
        if field == "envelope":
            return self.envelope
        metric = self._workload_metric(field)
        if metric is not _MISSING:
            return metric
        value = getattr(spec, field, _MISSING)
        if value is not _MISSING:
            return value
        value = getattr(self.envelope.result, field, _MISSING)
        if value is not _MISSING:
            return value
        raise KeyError(field)

    def _workload_metric(self, field: str) -> Any:
        from repro import workloads

        try:
            workload = workloads.workload_for_spec(self.envelope.spec)
        except ConfigurationError:
            return _MISSING
        extractor = workload.metrics.get(field)
        if extractor is None:
            return _MISSING
        return extractor(self.envelope.spec, self.envelope.result)

    def get(self, field: str, default: Any = None) -> Any:
        """The field's value, or ``default`` when it does not resolve."""
        try:
            return self[field]
        except KeyError:
            return default

    def __contains__(self, field: str) -> bool:
        return self.get(field, _MISSING) is not _MISSING

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Row({self.envelope.kind}/{self.envelope.spec_hash})"


class ResultFrame:
    """An ordered, immutable collection of envelope rows with a query API.

    Every operation returns a new frame (or plain data); row order is
    preserved throughout, which is what makes query output deterministic —
    and byte-identical to the legacy hand-assembled figures, whose dicts
    were built in envelope order.
    """

    __slots__ = ("_rows",)

    def __init__(self, rows: Iterable[Row]) -> None:
        self._rows: tuple[Row, ...] = tuple(rows)

    # -- construction ------------------------------------------------------
    @classmethod
    def from_envelopes(
        cls, envelopes: Iterable[ResultEnvelope]
    ) -> "ResultFrame":
        """A frame over an in-memory envelope collection (batch output)."""
        return cls(Row(env) for env in envelopes)

    @classmethod
    def from_store(cls, directory: Any) -> "ResultFrame":
        """A frame over a persisted store — ``repro run --out``/study output.

        Loads through :func:`~repro.experiments.store.load_envelopes`, so
        both store layouts (and mixtures) work and corrupt files raise a
        :class:`ConfigurationError` naming the path.
        """
        from repro.experiments.store import load_envelopes

        return cls.from_envelopes(load_envelopes(directory))

    @classmethod
    def from_session(cls, session: Any) -> "ResultFrame":
        """A frame over everything a session has in its in-memory cache."""
        return cls.from_envelopes(session.cached_envelopes())

    # -- basics ------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __bool__(self) -> bool:
        return bool(self._rows)

    @property
    def rows(self) -> tuple[Row, ...]:
        return self._rows

    @property
    def envelopes(self) -> tuple[ResultEnvelope, ...]:
        return tuple(row.envelope for row in self._rows)

    def kinds(self) -> tuple[str, ...]:
        """The workload kinds present, in first-seen order."""
        return tuple(dict.fromkeys(row.kind for row in self._rows))

    def unique(self, field: str) -> tuple[Any, ...]:
        """Distinct values of one field, in first-seen order (missing skipped)."""
        seen: dict[Any, None] = {}
        for row in self._rows:
            value = row.get(field, _MISSING)
            if value is not _MISSING:
                seen.setdefault(value, None)
        return tuple(seen)

    def values(self, field: str) -> list[Any]:
        """The field's value per row, in order (missing/None skipped)."""
        out = []
        for row in self._rows:
            value = row.get(field, _MISSING)
            if value is not _MISSING and value is not None:
                out.append(value)
        return out

    # -- relational ops ----------------------------------------------------
    def filter(
        self,
        predicate: Callable[[Row], bool] | None = None,
        **where: Any,
    ) -> "ResultFrame":
        """Rows matching a predicate and/or field constraints.

        Keyword constraints test equality, or membership when the value is
        a non-string collection (``chip=("M1", "M4")``).  Rows lacking a
        constrained field never match.
        """

        def matches(row: Row) -> bool:
            if predicate is not None and not predicate(row):
                return False
            for field, wanted in where.items():
                value = row.get(field, _MISSING)
                if value is _MISSING:
                    return False
                if isinstance(wanted, (list, tuple, set, frozenset)):
                    if value not in wanted:
                        return False
                elif value != wanted:
                    return False
            return True

        return ResultFrame(row for row in self._rows if matches(row))

    def derive(self, **columns: Callable[[Row], Any]) -> "ResultFrame":
        """A frame with extra columns computed per row (``fn(row) -> value``)."""
        return ResultFrame(
            row.with_extra({name: fn(row) for name, fn in columns.items()})
            for row in self._rows
        )

    def sort_by(self, *fields: str, reverse: bool = False) -> "ResultFrame":
        """Rows reordered by the given fields (missing fields sort first)."""
        return ResultFrame(
            sorted(
                self._rows,
                key=lambda row: tuple(
                    (row.get(f, _MISSING) is not _MISSING, row.get(f))
                    for f in fields
                ),
                reverse=reverse,
            )
        )

    def group_by(self, *fields: str) -> dict[Any, "ResultFrame"]:
        """Sub-frames keyed by the field tuple (scalar key for one field),
        in first-seen order."""
        groups: dict[Any, list[Row]] = {}
        for row in self._rows:
            try:
                key = tuple(row[f] for f in fields)
            except KeyError:
                continue
            groups.setdefault(key[0] if len(fields) == 1 else key, []).append(row)
        return {key: ResultFrame(rows) for key, rows in groups.items()}

    def aggregate(
        self,
        field: str,
        agg: str | Callable = "max",
        *,
        by: Sequence[str] | str = (),
    ) -> Any:
        """Reduce one field over the frame, optionally per group.

        Without ``by``: a scalar.  With ``by``: ``{group_key: reduced}`` in
        first-seen order.  Missing/``None`` values are skipped; an empty
        value set raises :class:`ConfigurationError` for the scalar form
        and simply omits the group otherwise.
        """
        reduce_ = _reducer(agg)
        if not by:
            values = self.values(field)
            if not values:
                raise ConfigurationError(
                    f"no values of {field!r} to aggregate"
                )
            return reduce_(values)
        by_fields = (by,) if isinstance(by, str) else tuple(by)
        return {
            key: reduce_(values)
            for key, group in self.group_by(*by_fields).items()
            if (values := group.values(field))
        }

    def pivot(
        self,
        index: str | Sequence[str],
        values: str,
        *,
        agg: str | Callable | None = None,
        seed: Mapping[Any, Any] | None = None,
    ) -> dict:
        """Nested dict keyed by the index fields, holding ``values`` leaves.

        ``index=("chip", "impl_key", "n"), values="gflops"`` yields the
        figure-series shape ``{chip: {impl: {n: gflops}}}``.  Keys appear
        in row order; ``seed`` pre-populates the nesting (the figure
        scaffolds: every requested chip/implementation present even when
        its series is empty) and is deep-copied, never mutated.  With
        ``agg=None`` (default) the last row wins per leaf — the natural
        semantics for one-envelope-per-cell stores; otherwise leaves
        collect all matching rows and reduce through ``agg``.  Rows whose
        index or value fields are missing (or whose value is ``None``) are
        skipped.
        """
        fields = (index,) if isinstance(index, str) else tuple(index)
        if not fields:
            raise ConfigurationError("pivot needs at least one index field")
        out: dict = copy.deepcopy(dict(seed)) if seed is not None else {}
        pending: dict[tuple, list] = {}
        for row in self._rows:
            try:
                keys = tuple(row[f] for f in fields)
            except KeyError:
                continue
            value = row.get(values, _MISSING)
            if value is _MISSING or value is None:
                continue
            node = out
            for key in keys[:-1]:
                node = node.setdefault(key, {})
            if agg is None:
                node[keys[-1]] = value
            else:
                node.setdefault(keys[-1], None)  # reserve key order
                pending.setdefault(keys, []).append(value)
        if agg is not None:
            reduce_ = _reducer(agg)
            for keys, collected in pending.items():
                node = out
                for key in keys[:-1]:
                    node = node[key]
                node[keys[-1]] = reduce_(collected)
        return out

    # -- export ------------------------------------------------------------
    def to_rows(self, fields: Sequence[str]) -> list[dict[str, Any]]:
        """Tidy records ``[{field: value}]``, one per row (missing -> None)."""
        return [
            {field: row.get(field) for field in fields} for row in self._rows
        ]

    def to_csv(self, fields: Sequence[str]) -> str:
        """Tidy CSV text over the given fields (stable column order)."""
        from repro.analysis.export import rows_to_csv

        return rows_to_csv(self.to_rows(fields))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kinds = ", ".join(self.kinds()) or "empty"
        return f"ResultFrame({len(self._rows)} rows: {kinds})"
