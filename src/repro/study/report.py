"""Efficiency views and paper comparison over a result frame.

Everything here is a :class:`~repro.study.frame.ResultFrame` query — no
hand-written envelope iteration.  The flagship view is the efficiency
pivot: GFLOPS-per-watt across every workload that carries (measured or
modelled) power, producible identically from a live batch or a persisted
store::

    frame = ResultFrame.from_store("results/")
    pivot = efficiency_pivot(frame)   # {kind: {chip: {variant: {size: gflops/W}}}}
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.study.defs import FIGURES, render_plain_table
from repro.study.frame import ResultFrame

__all__ = [
    "EFFICIENCY_FIELDS",
    "efficiency_pivot",
    "efficiency_rows",
    "render_efficiency_report",
    "render_figure_text",
    "figure_series_bundle",
    "compare_study",
]

#: Tidy-record columns of the efficiency report.
EFFICIENCY_FIELDS: tuple[str, ...] = (
    "kind",
    "chip",
    "variant",
    "size",
    "gflops",
    "power_w",
    "joules",
    "gflops_per_w",
)


def efficiency_pivot(
    frame: ResultFrame, *, chips: Sequence[str] | None = None
) -> dict:
    """GFLOPS/W across the whole frame: ``{kind: {chip: {variant: {size: v}}}}``.

    Cells without power (plain GEMM, STREAM, legacy envelopes persisted
    before the draw was surfaced) simply do not appear — one query runs
    over mixed stores.
    """
    sub = frame if chips is None else frame.filter(chip=tuple(chips))
    return sub.pivot(
        ("kind", "chip", "variant", "size"), values="gflops_per_w"
    )


def efficiency_rows(
    frame: ResultFrame, *, chips: Sequence[str] | None = None
) -> list[dict[str, Any]]:
    """Tidy efficiency records (:data:`EFFICIENCY_FIELDS`), power-bearing
    cells only, in frame order."""
    sub = frame if chips is None else frame.filter(chip=tuple(chips))
    return sub.filter(
        lambda row: row.get("gflops_per_w") is not None
    ).to_rows(EFFICIENCY_FIELDS)


def render_efficiency_report(
    frame: ResultFrame, *, chips: Sequence[str] | None = None
) -> str:
    """ASCII efficiency table over every power-bearing cell of the frame."""
    rows = [
        [
            str(record["kind"]),
            str(record["chip"]),
            str(record["variant"]),
            str(record["size"]),
            f"{record['gflops']:.1f}" if record["gflops"] is not None else "—",
            f"{record['power_w']:.2f}",
            f"{record['joules']:.3f}" if record["joules"] is not None else "—",
            f"{record['gflops_per_w']:.2f}",
        ]
        for record in efficiency_rows(frame, chips=chips)
    ]
    return render_plain_table(
        ["Kind", "Chip", "Variant", "Size", "GFLOPS", "W", "J", "GFLOPS/W"],
        rows,
        title="Efficiency — GFLOPS per watt (measured or modelled draw)",
    )


def render_figure_text(name: str, data: dict) -> str:
    """The canonical text rendering of one figure's assembled series.

    The exact format the CLI has always printed — Figure 1's per-target
    bandwidth lines, the generic ``{chip: {impl: {n: value}}}`` layout for
    the sweep figures — shared here so ``repro figureN``, ``repro study
    render`` and the experiment service's ``GET /figures/<name>`` emit
    identical bytes.
    """
    figure = FIGURES[name]
    lines: list[str] = []
    if name == "figure1":
        lines.append(figure.title)
        for chip, entry in data.items():
            lines.append("")
            lines.append(f"{chip} (theoretical {entry['theoretical']:.0f} GB/s)")
            for target in ("cpu", "gpu"):
                if target not in entry:
                    continue  # partial stores may hold only one target
                cells = "  ".join(
                    f"{kernel}={gbs:6.1f}"
                    for kernel, gbs in entry[target].items()
                )
                lines.append(f"  {target.upper():3s}: {cells}")
        return "\n".join(lines)
    lines.append(f"{figure.title} ({figure.unit})")
    for chip, impls in data.items():
        lines.append("")
        lines.append(chip)
        for impl, series in impls.items():
            cells = "  ".join(
                f"n={n}:{v:9.1f}" for n, v in sorted(series.items())
            )
            lines.append(f"  {impl:16s} {cells}")
    return "\n".join(lines)


def figure_series_bundle(
    frame: ResultFrame, *, chips: Sequence[str] | None = None
) -> dict[str, dict]:
    """Every figure's series assembled from one frame, keyed by figure name.

    Figures whose workload kind is absent from the frame yield empty
    series — the comparison helpers treat those as "not measured".
    """
    return {
        name: fig.series(frame, chips=chips) for name, fig in FIGURES.items()
    }


def compare_study(
    frame: ResultFrame, *, chips: Sequence[str] | None = None
) -> list:
    """Paper-vs-measured comparison rows straight from a frame.

    The classic :func:`repro.analysis.compare.compare_to_paper` fed by the
    figure queries — ``repro study render compare --from DIR`` without any
    bespoke assembly.
    """
    from repro.analysis.compare import compare_to_paper

    series = figure_series_bundle(frame, chips=chips)
    return compare_to_paper(
        fig1=series["figure1"] or None,
        fig2=series["figure2"] or None,
        fig4=series["figure4"] or None,
    )
