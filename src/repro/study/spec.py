"""Declarative study specifications: the whole cross-product grid as data.

The paper is one study — chips x workloads x variants x sizes, reported as
performance and efficiency — and a :class:`StudySpec` describes such a grid
declaratively: the chip axis plus one :class:`WorkloadAxis` per workload
family (variant keys, sizes, targets, repetition counts).  A study is
frozen, hashable and JSON-round-trippable like every other spec, and
``compile()`` lowers it to the existing concrete experiment specs through
each workload's own :class:`~repro.experiments.specs.SweepSpec` semantics —
so a study runs through any :class:`~repro.experiments.session.Session`
backend (serial / threads / processes / vectorized), hits the same caches,
and resumes from the same run manifests as hand-built spec lists.

:func:`run_study` is the one-call entry point: compile, execute (optionally
into a manifest-indexed store) and wrap the envelopes in a
:class:`~repro.study.frame.ResultFrame` for querying.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import pathlib
from typing import Any, Iterator, Mapping

from repro.calibration import paper
from repro.errors import ConfigurationError
from repro.experiments.backends import ExecutionBackend
from repro.experiments.session import ProgressCallback, Session
from repro.experiments.specs import ExperimentSpec, SweepSpec, _check_numerics
from repro.study.frame import ResultFrame

__all__ = [
    "WorkloadAxis",
    "StudySpec",
    "run_study",
    "study_session",
]


@dataclasses.dataclass(frozen=True)
class WorkloadAxis:
    """One workload family's slice of a study grid.

    The fields mirror the generic :class:`~repro.experiments.specs.SweepSpec`
    axes; empty tuples take the workload's own defaults (the GEMM axis fills
    in the Figure-2 legend and ``paper.GEMM_SIZES``, STREAM crosses targets,
    and so on).  The study supplies chips, seed and numerics.
    """

    kind: str = "gemm"
    impl_keys: tuple[str, ...] = ()
    sizes: tuple[int, ...] = ()
    targets: tuple[str, ...] = ("cpu", "gpu")
    repeats: int | None = None
    n_elements: int | None = None
    skip_unsupported: bool = True

    def __post_init__(self) -> None:
        from repro import workloads

        workloads.get_workload(self.kind)  # unregistered kinds never compile

    def sweep(self, study: "StudySpec") -> SweepSpec:
        """This axis as a concrete sweep under ``study``'s shared axes."""
        return SweepSpec(
            kind=self.kind,
            chips=study.chips,
            impl_keys=self.impl_keys,
            sizes=self.sizes,
            targets=self.targets,
            repeats=self.repeats,
            n_elements=self.n_elements,
            seed=study.seed,
            numerics=study.numerics,
            skip_unsupported=self.skip_unsupported,
        )

    def to_dict(self) -> dict[str, Any]:
        """Plain-data form (JSON-ready)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "WorkloadAxis":
        """Rebuild an axis from :meth:`to_dict` output."""
        payload = dict(data)
        for name in ("impl_keys", "sizes", "targets"):
            if name in payload and payload[name] is not None:
                payload[name] = tuple(payload[name])
        return cls(**payload)


@dataclasses.dataclass(frozen=True)
class StudySpec:
    """A declarative cross-product study: chips x workload axes.

    Frozen and hashable — ``study_hash()`` is a sound identity for stores
    and reports, exactly like a cell spec's ``spec_hash``.  ``compile()``
    materialises the concrete cell specs in deterministic order (axes in
    declaration order, each expanded row-major by its workload), so the same
    study always produces the same grid, the same cache keys and the same
    envelope bytes.
    """

    name: str = "study"
    chips: tuple[str, ...] = paper.CHIPS
    axes: tuple[WorkloadAxis, ...] = ()
    seed: int = 0
    numerics: str | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("a study needs a name")
        if not self.chips:
            raise ConfigurationError("a study needs at least one chip")
        _check_numerics(self.numerics)

    # -- compilation -------------------------------------------------------
    def sweeps(self) -> tuple[SweepSpec, ...]:
        """One concrete sweep per axis, in declaration order."""
        return tuple(axis.sweep(self) for axis in self.axes)

    def compile(self) -> tuple[ExperimentSpec, ...]:
        """The concrete cell specs of the whole grid."""
        return tuple(self.compile_iter())

    def compile_iter(self) -> Iterator[ExperimentSpec]:
        """The grid's cells as a lazy stream, in :meth:`compile` order."""
        return (
            spec for sweep in self.sweeps() for spec in sweep.expand_iter()
        )

    def __iter__(self) -> Iterator[ExperimentSpec]:
        return self.compile_iter()

    def kinds(self) -> tuple[str, ...]:
        """The workload kinds this study covers, in axis order (deduped)."""
        return tuple(dict.fromkeys(axis.kind for axis in self.axes))

    # -- identity ----------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Plain-data form (JSON-ready), tagged ``kind="study"``."""
        return {
            "kind": "study",
            "name": self.name,
            "chips": list(self.chips),
            "axes": [axis.to_dict() for axis in self.axes],
            "seed": self.seed,
            "numerics": self.numerics,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "StudySpec":
        """Rebuild a study from :meth:`to_dict` output."""
        return cls(
            name=data["name"],
            chips=tuple(data["chips"]),
            axes=tuple(WorkloadAxis.from_dict(a) for a in data.get("axes", ())),
            seed=int(data.get("seed", 0)),
            numerics=data.get("numerics"),
        )

    def canonical_json(self) -> str:
        """Canonical JSON (sorted keys, compact separators)."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    def study_hash(self) -> str:
        """Stable content hash (hex) — the report/store identity of the study."""
        return hashlib.sha256(self.canonical_json().encode()).hexdigest()[:16]


def study_session(
    study: StudySpec, *, fast: bool = False, **kwargs: Any
) -> Session:
    """A session matching ``study``'s shared axes (seed; figure numerics).

    ``fast=True`` selects model-only numerics — the figure builders'
    trimmed mode; the default is the paper's sampled profile.  Extra
    keyword arguments pass straight to :class:`Session`.
    """
    kwargs.setdefault("numerics", "model-only" if fast else "sampled")
    return Session(seed=study.seed, **kwargs)


def run_study(
    study: StudySpec,
    session: Session | None = None,
    *,
    backend: str | ExecutionBackend | None = None,
    max_workers: int | None = None,
    out: str | pathlib.Path | None = None,
    progress: ProgressCallback | None = None,
    use_cache: bool = True,
) -> ResultFrame:
    """Compile and execute a study; return its envelopes as a query frame.

    ``session`` defaults to :func:`study_session`'s sampled-numerics
    configuration.  With ``out`` the envelopes land in a sharded,
    manifest-indexed store as cells complete — interrupting and re-running
    the same study against the same directory resumes it (only cells the
    manifest does not mark done execute), exactly like ``repro run --out``/
    ``--resume``.  Execution is byte-identical across backends by the
    session contract, so the returned frame never depends on ``backend`` or
    ``max_workers``.
    """
    if session is None:
        session = study_session(study)
    specs = study.compile()
    if out is not None:
        from repro.experiments.manifest import run_with_manifest

        envelopes, _ = run_with_manifest(
            session,
            specs,
            out,
            backend=backend,
            max_workers=max_workers,
            progress=progress,
            use_cache=use_cache,
        )
    else:
        envelopes = session.run_batch(
            specs,
            backend=backend,
            max_workers=max_workers,
            progress=progress,
            use_cache=use_cache,
        )
    return ResultFrame.from_envelopes(envelopes)
