"""Unit conversions, constants and formatting helpers.

The paper mixes several unit conventions: bandwidths in GB/s (decimal
gigabytes, as STREAM reports), compute rates in GFLOPS/TFLOPS, power in mW
(as ``powermetrics`` prints) and W (as the figures discuss), and a 16,384-byte
page size for aligned allocation.  This module centralises those conversions
so no magic constants leak into the rest of the code base.
"""

from __future__ import annotations

import math

__all__ = [
    "KB",
    "MB",
    "GB",
    "KIB",
    "MIB",
    "GIB",
    "PAGE_SIZE",
    "GHZ",
    "MHZ",
    "GFLOP",
    "TFLOP",
    "NS_PER_S",
    "US_PER_S",
    "MS_PER_S",
    "MW_PER_W",
    "bytes_to_gb",
    "gb_to_bytes",
    "gbs_to_bytes_per_s",
    "bytes_per_s_to_gbs",
    "flops_to_gflops",
    "gflops_to_flops",
    "flops_to_tflops",
    "tflops_to_flops",
    "watts_to_mw",
    "mw_to_watts",
    "seconds_to_ns",
    "ns_to_seconds",
    "gflops_per_watt",
    "round_up",
    "pages_for",
    "is_page_aligned_length",
    "fmt_bandwidth",
    "fmt_gflops",
    "fmt_power",
    "fmt_seconds",
]

# Decimal byte units (GB/s in STREAM and memory-bandwidth specs are decimal).
KB = 1_000
MB = 1_000_000
GB = 1_000_000_000

# Binary byte units (cache sizes in Table 1 are binary).
KIB = 1024
MIB = 1024 * 1024
GIB = 1024 * 1024 * 1024

#: Apple Silicon page size in bytes (section 3.2: "a page size of 16,384 bytes").
PAGE_SIZE = 16_384

GHZ = 1_000_000_000.0
MHZ = 1_000_000.0

GFLOP = 1.0e9
TFLOP = 1.0e12

NS_PER_S = 1_000_000_000
US_PER_S = 1_000_000
MS_PER_S = 1_000

MW_PER_W = 1_000.0


def bytes_to_gb(n_bytes: float) -> float:
    """Convert bytes to decimal gigabytes."""
    return n_bytes / GB


def gb_to_bytes(gb: float) -> float:
    """Convert decimal gigabytes to bytes."""
    return gb * GB


def gbs_to_bytes_per_s(gbs: float) -> float:
    """Convert a GB/s bandwidth to bytes/second."""
    return gbs * GB


def bytes_per_s_to_gbs(bps: float) -> float:
    """Convert bytes/second to GB/s."""
    return bps / GB


def flops_to_gflops(flops: float) -> float:
    """Convert a FLOP/s rate to GFLOPS."""
    return flops / GFLOP


def gflops_to_flops(gflops: float) -> float:
    """Convert GFLOPS to FLOP/s."""
    return gflops * GFLOP


def flops_to_tflops(flops: float) -> float:
    """Convert a FLOP/s rate to TFLOPS."""
    return flops / TFLOP


def tflops_to_flops(tflops: float) -> float:
    """Convert TFLOPS to FLOP/s."""
    return tflops * TFLOP


def watts_to_mw(watts: float) -> float:
    """Convert watts to milliwatts (powermetrics prints mW)."""
    return watts * MW_PER_W


def mw_to_watts(mw: float) -> float:
    """Convert milliwatts to watts."""
    return mw / MW_PER_W


def seconds_to_ns(seconds: float) -> int:
    """Convert seconds to integral nanoseconds.

    The paper reports time deltas "in nanosecond granularity" (section 4);
    the harness truncates exactly like ``std::chrono`` duration_cast does.
    """
    return int(seconds * NS_PER_S)


def ns_to_seconds(ns: float) -> float:
    """Convert nanoseconds to seconds."""
    return ns / NS_PER_S


def gflops_per_watt(gflops: float, watts: float) -> float:
    """Figure-4 efficiency metric; raises on non-positive power."""
    if watts <= 0.0:
        raise ValueError(f"power must be positive, got {watts!r} W")
    return gflops / watts


def round_up(value: int, multiple: int) -> int:
    """Round ``value`` up to the nearest positive ``multiple``."""
    if multiple <= 0:
        raise ValueError(f"multiple must be positive, got {multiple}")
    if value < 0:
        raise ValueError(f"value must be non-negative, got {value}")
    return ((value + multiple - 1) // multiple) * multiple


def pages_for(n_bytes: int, page_size: int = PAGE_SIZE) -> int:
    """Number of whole pages needed to hold ``n_bytes``."""
    return round_up(n_bytes, page_size) // page_size


def is_page_aligned_length(n_bytes: int, page_size: int = PAGE_SIZE) -> bool:
    """Whether a length is an exact multiple of the page size."""
    return n_bytes >= 0 and n_bytes % page_size == 0


def _fmt(value: float, unit: str, precision: int) -> str:
    if not math.isfinite(value):
        return f"{value} {unit}"
    return f"{value:.{precision}f} {unit}"


def fmt_bandwidth(gbs: float, precision: int = 1) -> str:
    """Format a bandwidth as e.g. ``'103.0 GB/s'``."""
    return _fmt(gbs, "GB/s", precision)


def fmt_gflops(gflops: float, precision: int = 1) -> str:
    """Format a compute rate, switching to TFLOPS above 1000 GFLOPS."""
    if math.isfinite(gflops) and abs(gflops) >= 1000.0:
        return _fmt(gflops / 1000.0, "TFLOPS", 2)
    return _fmt(gflops, "GFLOPS", precision)


def fmt_power(watts: float, precision: int = 2) -> str:
    """Format power as watts (figures) with mW in parentheses (powermetrics)."""
    return f"{watts:.{precision}f} W ({watts * MW_PER_W:.0f} mW)"


def fmt_seconds(seconds: float) -> str:
    """Human-readable duration from nanoseconds to seconds."""
    if seconds < 0:
        return f"-{fmt_seconds(-seconds)}"
    if seconds < 1e-6:
        return f"{seconds * NS_PER_S:.0f} ns"
    if seconds < 1e-3:
        return f"{seconds * US_PER_S:.1f} us"
    if seconds < 1.0:
        return f"{seconds * MS_PER_S:.2f} ms"
    return f"{seconds:.3f} s"
