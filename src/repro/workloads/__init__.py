"""Pluggable workload registry: one module + one call per workload family.

Importing this package registers the built-in workloads — ``gemm``,
``powered-gemm`` and ``stream`` (the paper's study) plus the roofline
extension suite ``spmv`` (memory-bound), ``stencil`` (mid-intensity) and
``batched-gemm`` (dispatch-overhead-bound).  Everything downstream — spec
deserialization, sweep expansion, the session/batch executor, envelope
codecs, the store and the CLI — dispatches through
:func:`get_workload`/:func:`workload_for_spec`, so a new workload needs
only its own module ending in a :func:`register_workload` call::

    from repro.workloads import Workload, register_workload

    register_workload(Workload(kind="fft", spec_cls=FftSpec, ...))

See DESIGN.md, "Writing a workload plugin", for the full walkthrough.
"""

from repro.workloads.base import Workload
from repro.workloads.registry import (
    all_workloads,
    deserialize_result,
    get_workload,
    register_result_codec,
    register_workload,
    serialize_result,
    unregister_workload,
    workload_for_spec,
    workload_kinds,
)

# Built-in workload registrations (import order = listing order).
from repro.workloads.gemm import GEMM_WORKLOAD
from repro.workloads.powered_gemm import POWERED_GEMM_WORKLOAD
from repro.workloads.stream import STREAM_WORKLOAD
from repro.workloads.spmv import SPMV_WORKLOAD, SpmvResult, SpmvSpec
from repro.workloads.stencil import STENCIL_WORKLOAD, StencilResult, StencilSpec
from repro.workloads.batched_gemm import (
    BATCHED_GEMM_WORKLOAD,
    BatchedGemmResult,
    BatchedGemmSpec,
)

__all__ = [
    "Workload",
    "register_workload",
    "unregister_workload",
    "register_result_codec",
    "get_workload",
    "workload_for_spec",
    "workload_kinds",
    "all_workloads",
    "serialize_result",
    "deserialize_result",
    "GEMM_WORKLOAD",
    "POWERED_GEMM_WORKLOAD",
    "STREAM_WORKLOAD",
    "SPMV_WORKLOAD",
    "SpmvSpec",
    "SpmvResult",
    "STENCIL_WORKLOAD",
    "StencilSpec",
    "StencilResult",
    "BATCHED_GEMM_WORKLOAD",
    "BatchedGemmSpec",
    "BatchedGemmResult",
]
