"""The workload plugin contract.

A :class:`Workload` bundles everything the experiment stack needs to know
about one workload family behind a single ``kind`` string: the spec class,
the executor body, the result type and its JSON codec, the sweep-axis
semantics, and the CLI rendering hooks.  Every per-kind switch site — spec
deserialization (:func:`repro.experiments.specs.spec_from_dict`), execution
dispatch (:func:`repro.experiments.executor.execute_spec`), the envelope
result codecs, :meth:`SweepSpec.expand` and the ``repro run`` output — goes
through the registry in :mod:`repro.workloads.registry`, so adding a
workload is one module plus one :func:`~repro.workloads.registry.register_workload`
call, with zero edits to the executor, session, envelope, store or CLI.
"""

from __future__ import annotations

import dataclasses
import random
from typing import TYPE_CHECKING, Any, Callable, Mapping

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.experiments.specs import ExperimentSpec, SweepSpec
    from repro.sim.machine import Machine

__all__ = [
    "Workload",
    "best_elapsed_s",
    "expand_axes",
    "iter_axes",
    "modelled_power_metrics",
    "repetitions_to_dicts",
    "repetitions_from_dicts",
    "spec_size",
    "spec_variant",
    "timed_repetition",
    "variant_grid",
]


def best_elapsed_s(result: Any) -> float:
    """Fastest repetition of a timed result record, in seconds."""
    return min(r.elapsed_ns for r in result.repetitions) * 1e-9


def spec_variant(spec: Any) -> str:
    """A spec's middle-axis label: implementation key or target, else ``""``.

    The one shared spec-to-variant mapping — the study frame's reserved
    ``variant`` field and the CLI's envelope ordering both resolve through
    here, so a workload with a different variant field has one place to
    matter.
    """
    return str(getattr(spec, "impl_key", "") or getattr(spec, "target", ""))


def spec_size(spec: Any) -> int:
    """A spec's problem-size axis: ``n`` or ``n_elements``, else ``0``."""
    return int(
        getattr(spec, "n", None) or getattr(spec, "n_elements", None) or 0
    )


def modelled_power_metrics() -> dict[str, Callable]:
    """The shared power/efficiency metric extractors of modelled workloads.

    For workloads whose result record carries the simulator's thermally
    clamped draw in a ``power_w`` field (see
    :func:`repro.sim.vectorized.effective_draw_w`): ``power_w`` is the draw
    while the cell runs, ``joules`` the energy of the fastest repetition,
    ``gflops_per_w`` the Figure-4-style efficiency.  Each returns ``None``
    for legacy envelopes persisted before the draw was surfaced, which the
    query layer treats as "metric not available" rather than an error.
    """

    def power_w(spec: Any, result: Any) -> float | None:
        return result.power_w

    def joules(spec: Any, result: Any) -> float | None:
        if result.power_w is None:
            return None
        return result.power_w * best_elapsed_s(result)

    def gflops_per_w(spec: Any, result: Any) -> float | None:
        if not result.power_w:
            return None
        return result.best_gflops / result.power_w

    return {
        "power_w": power_w,
        "joules": joules,
        "gflops_per_w": gflops_per_w,
    }


def variant_grid(
    make: "Callable[[random.Random], ExperimentSpec]", seed: int, count: int
) -> tuple:
    """``count`` seeded-random valid specs from one workload's parameter space.

    The shared body of the plugins' ``sample_variants`` hooks: a
    :class:`random.Random` seeded with ``seed`` drives ``make``, so the grid
    is randomized but reproducible — the property-based codec tests
    (round-trip, hash stability, pickling for process dispatch) draw seeds
    and cover every registered workload without knowing its fields.
    """
    rng = random.Random(seed)
    return tuple(make(rng) for _ in range(count))


def repetitions_to_dicts(repetitions) -> list[dict[str, int]]:
    """Serialize a tuple of timed repetitions (the shared codec fragment)."""
    return [
        {"repetition": r.repetition, "elapsed_ns": r.elapsed_ns}
        for r in repetitions
    ]


def repetitions_from_dicts(data) -> tuple:
    """Rebuild timed repetitions from :func:`repetitions_to_dicts` output."""
    from repro.core.results import GemmRepetition

    return tuple(
        GemmRepetition(
            repetition=int(r["repetition"]), elapsed_ns=int(r["elapsed_ns"])
        )
        for r in data
    )


def timed_repetition(rep: int, completed) -> Any:
    """One repetition record from a completed simulator operation."""
    from repro.core.results import GemmRepetition

    return GemmRepetition(
        repetition=rep, elapsed_ns=max(1, round(completed.elapsed_s * 1e9))
    )


def iter_axes(
    chips,
    variants,
    sizes,
    make_spec: Callable[[str, str, int], Any],
    *,
    cell_filter: Callable[[str, str, int], bool] | None = None,
):
    """Lazy row-major ``chips x variants x sizes`` expansion.

    The generator behind :func:`expand_axes`, exposed so workloads can
    declare a streaming ``sweep_cells_iter`` hook with the same axis
    arguments — cells come out one at a time, in exactly the order
    :func:`expand_axes` materializes them.
    """
    for chip in chips:
        for variant in variants:
            for n in sizes:
                if cell_filter is None or cell_filter(chip, variant, n):
                    yield make_spec(chip, variant, n)


def expand_axes(
    chips,
    variants,
    sizes,
    make_spec: Callable[[str, str, int], Any],
    *,
    cell_filter: Callable[[str, str, int], bool] | None = None,
) -> tuple:
    """Row-major ``chips x variants x sizes`` expansion shared by plugins.

    The standard ``sweep_cells`` shape: ``variants`` is whatever the
    workload's middle axis means (implementation keys, targets, ...),
    ``make_spec`` builds one concrete cell, and ``cell_filter`` optionally
    drops unsupported combinations (the GEMM section-4 exclusions).
    """
    return tuple(
        iter_axes(chips, variants, sizes, make_spec, cell_filter=cell_filter)
    )


@dataclasses.dataclass(frozen=True)
class Workload:
    """One pluggable workload family, addressed by its ``kind`` string.

    Attributes
    ----------
    kind:
        The serialization/dispatch tag.  It names the spec ``kind``, the
        envelope result ``type`` and the ``repro run --kind`` value.
    display_name, description:
        Human-readable identity for ``repro workloads`` and the generated
        EXPERIMENTS.md registry section.
    spec_cls:
        The frozen :class:`~repro.experiments.specs.ExperimentSpec`
        subclass describing one cell of this workload.
    result_cls:
        The result record type produced by :attr:`execute`; used for
        envelope serialization dispatch.
    execute:
        Executor body ``(machine, spec) -> result`` — the pure function a
        session calls on a fresh machine.
    result_to_dict, result_from_dict:
        JSON codec for :attr:`result_cls` (plain data, tagged with
        ``type=kind``).
    sweep_cells:
        Grid expander ``(sweep) -> tuple[spec, ...]`` interpreting the
        generic :class:`~repro.experiments.specs.SweepSpec` axes for this
        workload.
    sweep_cells_iter:
        Optional streaming grid expander ``(sweep) -> iterator[spec]``
        yielding exactly the cells :attr:`sweep_cells` materializes, in the
        same order, one at a time.  ``SweepSpec.expand_iter`` prefers it, so
        million-cell grids flow through streaming consumers (the ``sharded``
        backend, the service jobs) without ever holding every spec object;
        workloads that leave it ``None`` stream from the materialized tuple.
    sample_spec:
        Factory for a small, cheap, representative spec — the hook that
        lets registry-parametrized tests auto-cover every workload.
    sample_variants:
        Seeded variant generator ``(seed, count) -> tuple[spec, ...]`` over
        this workload's *valid* parameter space (see :func:`variant_grid`).
        Drives the property-based codec tests; specs it returns are
        round-tripped, hashed and pickled but never executed, so sizes may
        span the full sweep range.  Optional — workloads without it are
        covered by ``sample_spec`` alone.
    cell_label:
        One-line cell description for progress output.
    summary_line:
        One-line human summary ``(spec, result) -> str`` for ``repro run``.
    impl_keys:
        The implementation/variant keys this workload understands (listed
        by ``repro workloads``; empty when the workload has no variants).
    metrics:
        Named metric extractors ``{name: (spec, result) -> value}`` — the
        per-kind vocabulary of the study layer's
        :class:`~repro.study.frame.ResultFrame`.  Workloads publish the
        figure-ready statistics of their result record under the shared
        metric names (``gflops``, ``gbs``, ``fraction_of_peak``,
        ``power_w``, ``joules``, ``gflops_per_w``, ``elapsed_s``) plus any
        kind-specific extras; an extractor may return ``None`` to mean
        "not available for this cell" (e.g. power metrics on a legacy
        envelope).  Fields the spec or result expose directly need no
        extractor — the frame falls back to attribute access.
    vectorized_body:
        Optional lowering hook ``(machine_like, spec) ->``
        :class:`~repro.sim.vectorized.LoweredCell` behind the ``vectorized``
        execution backend.  ``machine_like`` is either a real
        :class:`~repro.sim.machine.Machine` or a
        :class:`~repro.sim.vectorized.VectorContext`; a workload that
        declares this hook should implement its scalar ``execute`` as
        ``run_lowered_cell(machine, vectorized_body(machine, spec))`` so
        the two paths share one lowering and stay byte-identical by
        construction.  Workloads that leave it ``None`` (the STREAM thread
        sweep, the real-implementation GEMM studies) execute on the scalar
        engine even inside a vectorized batch — the fallback is per cell.
    """

    kind: str
    display_name: str
    description: str
    spec_cls: type
    result_cls: type
    execute: Callable[["Machine", "ExperimentSpec"], Any]
    result_to_dict: Callable[[Any], dict[str, Any]]
    result_from_dict: Callable[[Mapping[str, Any]], Any]
    sweep_cells: Callable[["SweepSpec"], tuple]
    sample_spec: Callable[[], "ExperimentSpec"]
    cell_label: Callable[["ExperimentSpec"], str]
    summary_line: Callable[["ExperimentSpec", Any], str]
    impl_keys: tuple[str, ...] = ()
    sample_variants: Callable[[int, int], tuple] | None = None
    sweep_cells_iter: "Callable[[SweepSpec], Any] | None" = None
    vectorized_body: "Callable[[Any, ExperimentSpec], Any] | None" = None
    metrics: Mapping[str, Callable[["ExperimentSpec", Any], Any]] = (
        dataclasses.field(default_factory=dict)
    )

    def __post_init__(self) -> None:
        if not self.kind:
            raise ConfigurationError("a workload needs a non-empty kind string")
        if getattr(self.spec_cls, "kind", None) != self.kind:
            raise ConfigurationError(
                f"workload kind {self.kind!r} does not match its spec class "
                f"tag {getattr(self.spec_cls, 'kind', None)!r}"
            )

    @property
    def result_tag(self) -> str:
        """The envelope ``type`` tag of this workload's results (its kind)."""
        return self.kind
