"""Batched-GEMM workload plugin: many small matrices, dispatch-overhead bound.

``batch`` independent ``n x n`` FP32 multiplications per repetition, with
``n`` small (16-128).  At these sizes the roofline busy time is tiny and
the fixed dispatch cost — the ``overhead_s`` term of
:class:`~repro.sim.engine.Operation` — dominates, which is exactly the
regime the paper's Figure 2 hints at ("GPU implementations are less optimal
at smaller sizes for their large overhead").  Three variants span it:

* ``gpu-looped`` — one Metal command buffer per matrix: the full ~150 us
  round trip is paid ``batch`` times;
* ``gpu-batched`` — one encoded batch: a single round trip plus a ~0.2 us
  per-matrix encode cost;
* ``cpu-accelerate-looped`` — an Accelerate call per matrix: a few
  microseconds each, the low-overhead CPU reference.

Self-contained registry plugin: spec, result, cost model, executor, codec,
sweep semantics and CLI rendering, registered in one call.
"""

from __future__ import annotations

import dataclasses
import statistics
from typing import Any, Mapping

import numpy as np

from repro.calibration.gemm import gemm_power_draws
from repro.core.results import GemmRepetition, timed_repetitions
from repro.errors import ConfigurationError
from repro.experiments.specs import ExperimentSpec, SweepSpec
from repro.sim.engine import EngineKind
from repro.sim.machine import Machine
from repro.sim.policy import NumericsPolicy
from repro.sim.roofline import OpCost
from repro.sim.vectorized import LoweredCell, effective_draw_w, run_lowered_cell
from repro.workloads.base import (
    Workload,
    best_elapsed_s,
    expand_axes,
    iter_axes,
    modelled_power_metrics,
    repetitions_from_dicts,
    repetitions_to_dicts,
    variant_grid,
)
from repro.workloads.registry import register_workload

__all__ = [
    "BATCHED_GEMM_IMPL_KEYS",
    "BatchedGemmSpec",
    "BatchedGemmResult",
    "lower_batched_gemm_spec",
    "run_batched_gemm_spec",
    "BATCHED_GEMM_WORKLOAD",
]


@dataclasses.dataclass(frozen=True)
class _BatchedImpl:
    """Dispatch model of one batched-GEMM variant."""

    engine: EngineKind
    setup_overhead_s: float  # paid once per repetition
    per_matrix_overhead_s: float  # paid per matrix in the batch
    power_impl_key: str  # calibration key whose draws this variant shows
    peak_efficiency: float  # compute efficiency at asymptotic n
    n_half: float  # efficiency ramp half-point


_IMPLS: dict[str, _BatchedImpl] = {
    "gpu-batched": _BatchedImpl(
        engine=EngineKind.GPU,
        setup_overhead_s=150e-6,
        per_matrix_overhead_s=0.2e-6,
        power_impl_key="gpu-mps",
        peak_efficiency=0.63,
        n_half=640.0,
    ),
    "gpu-looped": _BatchedImpl(
        engine=EngineKind.GPU,
        setup_overhead_s=0.0,
        per_matrix_overhead_s=150e-6,
        power_impl_key="gpu-mps",
        peak_efficiency=0.63,
        n_half=640.0,
    ),
    "cpu-accelerate-looped": _BatchedImpl(
        engine=EngineKind.AMX,
        setup_overhead_s=0.0,
        per_matrix_overhead_s=4e-6,
        power_impl_key="cpu-accelerate",
        peak_efficiency=0.88,
        n_half=256.0,
    ),
}

#: The batched-GEMM dispatch variants, in listing order.
BATCHED_GEMM_IMPL_KEYS: tuple[str, ...] = tuple(_IMPLS)

DEFAULT_BATCH = 256
DEFAULT_BATCHED_SIZES: tuple[int, ...] = (16, 32, 64, 128)
DEFAULT_BATCHED_REPEATS = 5

_ELEMENT_BYTES = 4  # FP32
_TRAFFIC_READ_FACTOR = 1.2
_MEMORY_EFFICIENCY = {EngineKind.GPU: 0.85, EngineKind.AMX: 0.80}
_NOISE_SIGMA = 0.012

#: Numerics verify a capped sub-batch so FULL sessions stay quick.
_NUMERICS_MAX_N = 128
_NUMERICS_MAX_BATCH = 4


@dataclasses.dataclass(frozen=True)
class BatchedGemmSpec(ExperimentSpec):
    """One batched-GEMM cell: ``repeats`` timed passes over ``batch`` matrices."""

    impl_key: str = "gpu-batched"
    n: int = 0
    batch: int = DEFAULT_BATCH
    repeats: int = DEFAULT_BATCHED_REPEATS

    kind = "batched-gemm"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.impl_key not in _IMPLS:
            raise ConfigurationError(
                f"batched-GEMM implementation must be one of "
                f"{BATCHED_GEMM_IMPL_KEYS}, got {self.impl_key!r}"
            )
        if self.n <= 0:
            raise ConfigurationError("matrix dimension must be positive")
        if self.batch < 1:
            raise ConfigurationError("batch must be >= 1")
        if self.repeats < 1:
            raise ConfigurationError("repeats must be >= 1")


@dataclasses.dataclass(frozen=True)
class BatchedGemmResult:
    """All repetitions of one batched-GEMM cell."""

    chip_name: str
    impl_key: str
    n: int
    batch: int
    flop_count: int  # whole batch, per repetition
    overhead_s: float  # modelled dispatch overhead per repetition
    repetitions: tuple[GemmRepetition, ...]
    verified: bool | None = None
    #: Modelled draw (W) while the batch runs — the simulator's thermally
    #: clamped total (:func:`repro.sim.vectorized.effective_draw_w`).
    #: ``None`` on envelopes persisted before the draw was surfaced.
    power_w: float | None = None

    def __post_init__(self) -> None:
        if not self.repetitions:
            raise ConfigurationError(
                "a batched-GEMM result needs at least one repetition"
            )
        if self.flop_count <= 0:
            raise ConfigurationError("FLOP count must be positive")
        if self.overhead_s < 0.0:
            raise ConfigurationError("overhead must be non-negative")
        if self.power_w is not None and self.power_w < 0.0:
            raise ConfigurationError("power draw cannot be negative")

    @property
    def best_gflops(self) -> float:
        """Peak achieved GFLOPS (whole batch) over the repetitions."""
        return max(self.flop_count / r.elapsed_ns for r in self.repetitions)

    @property
    def mean_gflops(self) -> float:
        """Mean achieved GFLOPS over the repetitions."""
        return statistics.fmean(
            self.flop_count / r.elapsed_ns for r in self.repetitions
        )

    @property
    def best_elapsed_ns(self) -> int:
        """Fastest repetition."""
        return min(r.elapsed_ns for r in self.repetitions)

    @property
    def overhead_fraction(self) -> float:
        """Share of the best repetition spent in modelled dispatch overhead."""
        return min(1.0, self.overhead_s * 1e9 / self.best_elapsed_ns)


def _batch_cost(spec: BatchedGemmSpec) -> OpCost:
    """Roofline cost of one repetition: the whole batch's FLOPs and traffic."""
    n = spec.n
    matrix_bytes = float(_ELEMENT_BYTES * n * n)
    return OpCost(
        flops=float(spec.batch * n * n * (2 * n - 1)),
        bytes_read=spec.batch * 2.0 * matrix_bytes * _TRAFFIC_READ_FACTOR,
        bytes_written=spec.batch * matrix_bytes,
    )


def _numerics_verified(spec: BatchedGemmSpec) -> bool:
    """Multiply a capped seeded sub-batch two ways and compare."""
    n = min(spec.n, _NUMERICS_MAX_N)
    b = min(spec.batch, _NUMERICS_MAX_BATCH)
    rng = np.random.default_rng([spec.seed, n, b])
    a = rng.standard_normal((b, n, n))
    c = rng.standard_normal((b, n, n))
    return bool(
        np.allclose(a @ c, np.einsum("bij,bjk->bik", a, c), rtol=1e-10)
    )


def lower_batched_gemm_spec(machine, spec: BatchedGemmSpec) -> LoweredCell:
    """Lower one batched-GEMM cell to its repetition grid.

    ``machine`` is a :class:`~repro.sim.machine.Machine` or a
    :class:`~repro.sim.vectorized.VectorContext`; both the scalar executor
    and the vectorized backend evaluate this one lowering.
    """
    impl = _IMPLS[spec.impl_key]
    chip = machine.chip
    cost = _batch_cost(spec)
    overhead = (
        impl.setup_overhead_s + impl.per_matrix_overhead_s * spec.batch
    )
    efficiency = impl.peak_efficiency * spec.n / (spec.n + impl.n_half)

    verified: bool | None = None
    if machine.numerics.policy is not NumericsPolicy.MODEL_ONLY:
        verified = _numerics_verified(spec)

    draws = gemm_power_draws(chip, impl.power_impl_key, spec.n)
    power_w = effective_draw_w(machine.thermal, draws)

    def assemble(elapsed_ns: tuple[int, ...]) -> BatchedGemmResult:
        return BatchedGemmResult(
            chip_name=chip.name,
            impl_key=spec.impl_key,
            n=spec.n,
            batch=spec.batch,
            flop_count=int(cost.flops),
            overhead_s=overhead,
            repetitions=timed_repetitions(elapsed_ns),
            verified=verified,
            power_w=power_w,
        )

    return LoweredCell(
        engine=impl.engine,
        label=f"batched-gemm/{spec.impl_key}/n={spec.n}/b={spec.batch}",
        cost=cost,
        peak_flops=machine.peak_flops(impl.engine),
        peak_bytes_per_s=machine.memory_bandwidth_bytes_per_s(),
        compute_efficiency=efficiency,
        memory_efficiency=_MEMORY_EFFICIENCY[impl.engine],
        overhead_s=overhead,
        power_draws_w=draws,
        noise_keys=tuple(
            f"batched-gemm/{chip.name}/{spec.impl_key}"
            f"/n={spec.n}/b={spec.batch}/rep={rep}"
            for rep in range(spec.repeats)
        ),
        noise_sigma=_NOISE_SIGMA,
        seed=spec.seed,
        thermal=machine.thermal,
        assemble=assemble,
    )


def run_batched_gemm_spec(
    machine: Machine, spec: BatchedGemmSpec
) -> BatchedGemmResult:
    """Execute one batched-GEMM cell on ``machine``."""
    return run_lowered_cell(machine, lower_batched_gemm_spec(machine, spec))


def _result_to_dict(result: BatchedGemmResult) -> dict[str, Any]:
    return {
        "type": "batched-gemm",
        "chip_name": result.chip_name,
        "impl_key": result.impl_key,
        "n": result.n,
        "batch": result.batch,
        "flop_count": result.flop_count,
        "overhead_s": result.overhead_s,
        "repetitions": repetitions_to_dicts(result.repetitions),
        "verified": result.verified,
        "power_w": result.power_w,
    }


def _result_from_dict(data: Mapping[str, Any]) -> BatchedGemmResult:
    power_w = data.get("power_w")
    return BatchedGemmResult(
        chip_name=data["chip_name"],
        impl_key=data["impl_key"],
        n=int(data["n"]),
        batch=int(data["batch"]),
        flop_count=int(data["flop_count"]),
        overhead_s=float(data["overhead_s"]),
        repetitions=repetitions_from_dicts(data["repetitions"]),
        verified=data.get("verified"),
        power_w=float(power_w) if power_w is not None else None,
    )


def _sweep_axes(sweep: SweepSpec) -> dict:
    from repro.calibration import paper

    repeats = (
        sweep.repeats if sweep.repeats is not None else DEFAULT_BATCHED_REPEATS
    )
    return dict(
        chips=sweep.chips or paper.CHIPS,
        variants=sweep.impl_keys or BATCHED_GEMM_IMPL_KEYS,
        sizes=sweep.sizes or DEFAULT_BATCHED_SIZES,
        make_spec=lambda chip, impl_key, n: BatchedGemmSpec(
            chip=chip,
            seed=sweep.seed,
            numerics=sweep.numerics,
            impl_key=impl_key,
            n=n,
            repeats=repeats,
        ),
    )


def _sweep_cells(sweep: SweepSpec) -> tuple[BatchedGemmSpec, ...]:
    return expand_axes(**_sweep_axes(sweep))


def _sweep_cells_iter(sweep: SweepSpec):
    return iter_axes(**_sweep_axes(sweep))


def _sample_variants(seed: int, count: int) -> tuple[BatchedGemmSpec, ...]:
    return variant_grid(
        lambda rng: BatchedGemmSpec(
            chip=rng.choice(("M1", "M2", "M3", "M4")),
            seed=rng.randrange(1 << 16),
            numerics=rng.choice((None, "full", "sampled", "model-only")),
            impl_key=rng.choice(BATCHED_GEMM_IMPL_KEYS),
            n=rng.choice(DEFAULT_BATCHED_SIZES),
            batch=rng.choice((1, 64, DEFAULT_BATCH, 1024)),
            repeats=rng.randint(1, DEFAULT_BATCHED_REPEATS),
        ),
        seed,
        count,
    )


#: The registered batched-GEMM workload (overhead-bound roofline point).
BATCHED_GEMM_WORKLOAD: Workload = register_workload(
    Workload(
        kind="batched-gemm",
        display_name="Batched GEMM",
        description="many small multiplications; dispatch overhead dominates",
        spec_cls=BatchedGemmSpec,
        result_cls=BatchedGemmResult,
        execute=run_batched_gemm_spec,
        result_to_dict=_result_to_dict,
        result_from_dict=_result_from_dict,
        sweep_cells=_sweep_cells,
        sweep_cells_iter=_sweep_cells_iter,
        sample_spec=lambda: BatchedGemmSpec(
            chip="M1", impl_key="gpu-batched", n=32, batch=64, repeats=2
        ),
        cell_label=lambda spec: (
            f"{spec.chip} {spec.impl_key} n={spec.n} b={spec.batch}"
        ),
        summary_line=lambda spec, result: (
            f"{spec.chip:4s} {spec.impl_key:21s} n={spec.n:<4d} "
            f"b={spec.batch:<5d} {result.best_gflops:9.1f} GFLOPS  "
            f"(overhead {result.overhead_fraction:.0%})"
        ),
        impl_keys=BATCHED_GEMM_IMPL_KEYS,
        sample_variants=_sample_variants,
        vectorized_body=lower_batched_gemm_spec,
        metrics={
            "gflops": lambda spec, r: r.best_gflops,
            "mean_gflops": lambda spec, r: r.mean_gflops,
            "overhead_fraction": lambda spec, r: r.overhead_fraction,
            "elapsed_s": lambda spec, r: best_elapsed_s(r),
            **modelled_power_metrics(),
        },
    )
)
