"""Built-in GEMM workload (Figure 2), wired as a registry plugin.

The spec class and executor body predate the registry and stay in
:mod:`repro.experiments.specs` / :mod:`repro.experiments.executor` for API
compatibility; this module owns the per-kind pieces that used to be switch
branches — the result JSON codec, the sweep-axis semantics (chips x
implementations x sizes with the section-4 exclusions) and the CLI
rendering — and registers them under ``kind="gemm"``.

GEMM's executor runs the *real* Table-2 implementation objects (Metal
command buffers, Accelerate calls, verification against reference
numerics), so it cannot be lowered in general — but under the
``model-only`` numerics policy every implementation reduces to exactly one
:func:`~repro.calibration.gemm.build_gemm_operation` per repetition on a
fresh machine, and :func:`lower_gemm_spec` replays that protocol as a
:class:`~repro.sim.vectorized.LoweredSequence` (chrono-truncated
nanoseconds per repetition window, identical
:class:`~repro.errors.UnsupportedProblemError` for excluded cells).  Cells
that run numerics or verify (``FULL``/``SAMPLED`` policy, or an explicit
``verify=True``) return ``None`` from the lowering and fall back to the
scalar engine per cell inside a ``vectorized``/``sharded`` batch
(DESIGN.md §7).
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.calibration import paper
from repro.calibration.gemm import build_gemm_operation
from repro.core.gemm.registry import get_implementation, paper_implementation_keys
from repro.core.results import GemmRepetition, GemmResult
from repro.errors import UnsupportedProblemError
from repro.experiments.executor import run_gemm_spec
from repro.experiments.specs import GemmSpec, SweepSpec
from repro.sim.engine import Operation
from repro.sim.policy import NumericsPolicy
from repro.sim.vectorized import LoweredOp, LoweredSequence
from repro.units import NS_PER_S
from repro.workloads.base import (
    Workload,
    best_elapsed_s,
    expand_axes,
    iter_axes,
    repetitions_from_dicts,
    repetitions_to_dicts,
    variant_grid,
)
from repro.workloads.registry import register_workload

__all__ = [
    "GEMM_WORKLOAD",
    "gemm_result_to_dict",
    "gemm_result_from_dict",
    "lower_gemm_spec",
]


def gemm_result_to_dict(result: GemmResult) -> dict[str, Any]:
    """Serialize a :class:`GemmResult` to plain data (raw fields only)."""
    return {
        "type": "gemm",
        "impl_key": result.impl_key,
        "chip_name": result.chip_name,
        "n": result.n,
        "flop_count": result.flop_count,
        "repetitions": repetitions_to_dicts(result.repetitions),
        "verified": result.verified,
    }


def gemm_result_from_dict(data: Mapping[str, Any]) -> GemmResult:
    """Rebuild a :class:`GemmResult` from :func:`gemm_result_to_dict` output."""
    return GemmResult(
        impl_key=data["impl_key"],
        chip_name=data["chip_name"],
        n=int(data["n"]),
        flop_count=int(data["flop_count"]),
        repetitions=repetitions_from_dicts(data["repetitions"]),
        verified=data.get("verified"),
    )


def cell_is_supported(chip: str, impl_key: str, n: int) -> bool:
    """Section-4 exclusion check, tolerant of off-catalog chips."""
    from repro.calibration.gemm import gemm_calibration
    from repro.soc.catalog import get_chip

    try:
        spec = get_chip(chip)
    except Exception:
        return True  # off-catalog chips are resolved at execution time
    try:
        return gemm_calibration(spec, impl_key).supports(n)
    except Exception:
        return True


# -- model-only lowering ----------------------------------------------------
#
# Each Table-2 implementation's ``execute`` issues exactly one calibrated
# operation per repetition (the Metal paths via a command buffer, the CPU
# paths directly); under MODEL_ONLY numerics nothing else touches the
# machine, so the whole cell reduces to ``repeats`` copies of that one
# operation on a fresh clock.  The table below mirrors each implementation's
# ``build_gemm_operation`` call site — label and element size included —
# so the lowered sequence hashes the very same noise keys and advances the
# very same roofline durations the scalar executor would.


def _scalar_gemm_operation(chip, impl_key: str, n: int) -> Operation | None:
    """The single operation one repetition of ``impl_key`` executes.

    Returns ``None`` for implementation keys outside the Table-2 catalog
    (runtime-registered extensions build their operations in code this
    module cannot see), which routes the cell to the scalar fallback.
    """
    if impl_key in ("cpu-single", "cpu-omp", "cpu-accelerate"):
        return build_gemm_operation(chip, impl_key, n)
    if impl_key == "ane-fp16":
        return build_gemm_operation(chip, impl_key, n, element_bytes=2)
    if impl_key == "gpu-naive":
        return build_gemm_operation(
            chip, impl_key, n, label=f"shader/gemm_naive/n={n}"
        )
    if impl_key == "gpu-cutlass":
        return build_gemm_operation(
            chip, impl_key, n, label=f"shader/gemm_tiled/n={n}"
        )
    if impl_key == "gpu-fp64-emulated":
        return build_gemm_operation(
            chip,
            impl_key,
            n,
            label=f"shader/gemm_fp64_emulated/n={n}",
            element_bytes=8,
        )
    if impl_key == "gpu-mps":
        # MPS calibrates on the geometric scale of the (m, n, k) product;
        # spec-driven cells are square, so m = n = k = spec.n.
        n_equiv = int(round((n * n * n) ** (1.0 / 3.0)))
        return build_gemm_operation(
            chip, impl_key, max(1, n_equiv), label=f"mps/sgemm/{n}x{n}x{n}"
        )
    return None


#: Seed-independent repetition ops per cell shape.  Sound because the
#: lowering backends reject custom machine factories, so a chip name always
#: resolves to the one catalog ChipSpec; seed-ensemble grids (many seeds,
#: one shape) lower in O(1) per cell.
_GEMM_OPS_CACHE: "dict[tuple[str, str, int, int], tuple[LoweredOp, ...] | None]" = {}


def _lowered_gemm_ops(
    chip, impl_key: str, n: int, repeats: int
) -> "tuple[LoweredOp, ...] | None":
    key = (chip.name, impl_key, n, repeats)
    try:
        return _GEMM_OPS_CACHE[key]
    except KeyError:
        pass
    operation = _scalar_gemm_operation(chip, impl_key, n)
    ops = (
        None
        if operation is None
        else (LoweredOp.from_operation(operation),) * repeats
    )
    _GEMM_OPS_CACHE[key] = ops
    return ops


def lower_gemm_spec(machine, spec: GemmSpec) -> "LoweredSequence | None":
    """Lower one Figure-2 cell to its model-only operation sequence.

    ``machine`` is a :class:`~repro.sim.machine.Machine` or a
    :class:`~repro.sim.vectorized.VectorContext`.  Returns ``None`` — the
    scalar-fallback signal — whenever the cell's protocol needs real
    machinery: numerics or verification on actual arrays (any policy but
    MODEL_ONLY, or an explicit ``verify=True``) or an extension
    implementation outside the Table-2 catalog.  Unsupported cells raise
    the same :class:`UnsupportedProblemError` the scalar executor raises.
    """
    if machine.numerics.policy is not NumericsPolicy.MODEL_ONLY or spec.verify:
        return None
    impl = get_implementation(spec.impl_key)
    if not impl.supports(machine, spec.n):
        raise UnsupportedProblemError(
            f"{impl.key} does not execute n={spec.n} on {machine.chip.name}"
        )
    ops = _lowered_gemm_ops(machine.chip, impl.key, spec.n, spec.repeats)
    if ops is None:
        return None

    impl_key = impl.key
    chip_name = machine.chip.name
    n = spec.n
    flop_count = paper.gemm_flop_count(spec.n)

    def assemble(windows: "tuple[tuple[float, float], ...]") -> GemmResult:
        # measure_ns brackets each repetition with int(now * NS_PER_S)
        # reads of the cumulative clock — truncation, not rounding.
        return GemmResult(
            impl_key=impl_key,
            chip_name=chip_name,
            n=n,
            flop_count=flop_count,
            repetitions=tuple(
                GemmRepetition(
                    repetition=rep,
                    elapsed_ns=int(end * NS_PER_S) - int(start * NS_PER_S),
                )
                for rep, (start, end) in enumerate(windows)
            ),
            verified=None,
        )

    return LoweredSequence(
        seed=spec.seed, thermal=machine.thermal, ops=ops, assemble=assemble
    )


def _sweep_axes(sweep: SweepSpec) -> dict:
    repeats = sweep.repeats if sweep.repeats is not None else paper.GEMM_REPEATS
    return dict(
        chips=sweep.chips or paper.CHIPS,
        variants=sweep.impl_keys or paper_implementation_keys(),
        sizes=sweep.sizes or paper.GEMM_SIZES,
        make_spec=lambda chip, impl_key, n: GemmSpec(
            chip=chip,
            seed=sweep.seed,
            numerics=sweep.numerics,
            impl_key=impl_key,
            n=n,
            repeats=repeats,
        ),
        cell_filter=cell_is_supported if sweep.skip_unsupported else None,
    )


def _sweep_cells(sweep: SweepSpec) -> tuple[GemmSpec, ...]:
    return expand_axes(**_sweep_axes(sweep))


def _sweep_cells_iter(sweep: SweepSpec):
    return iter_axes(**_sweep_axes(sweep))


def _sample_spec() -> GemmSpec:
    return GemmSpec(chip="M1", impl_key="gpu-mps", n=256, repeats=2)


def _sample_variants(seed: int, count: int) -> tuple[GemmSpec, ...]:
    return variant_grid(
        lambda rng: GemmSpec(
            chip=rng.choice(paper.CHIPS),
            seed=rng.randrange(1 << 16),
            numerics=rng.choice((None, "full", "sampled", "model-only")),
            impl_key=rng.choice(paper_implementation_keys()),
            n=rng.choice(paper.GEMM_SIZES),
            repeats=rng.randint(1, paper.GEMM_REPEATS),
            verify=rng.choice((None, True, False)),
        ),
        seed,
        count,
    )


#: The registered GEMM workload (Figure-2 timing study).
GEMM_WORKLOAD: Workload = register_workload(
    Workload(
        kind="gemm",
        display_name="GEMM (Figure 2)",
        description="dense n x n matrix multiply, best GFLOPS of 5 repetitions",
        spec_cls=GemmSpec,
        result_cls=GemmResult,
        execute=lambda machine, spec: run_gemm_spec(machine, spec),
        result_to_dict=gemm_result_to_dict,
        result_from_dict=gemm_result_from_dict,
        sweep_cells=_sweep_cells,
        sweep_cells_iter=_sweep_cells_iter,
        sample_spec=_sample_spec,
        cell_label=lambda spec: f"{spec.chip} {spec.impl_key} n={spec.n}",
        summary_line=lambda spec, result: (
            f"{spec.chip:4s} {spec.impl_key:16s} n={spec.n:<6d} "
            f"{result.best_gflops:10.1f} GFLOPS"
        ),
        impl_keys=paper_implementation_keys(),
        sample_variants=_sample_variants,
        vectorized_body=lower_gemm_spec,
        metrics={
            "gflops": lambda spec, r: r.best_gflops,
            "mean_gflops": lambda spec, r: r.mean_gflops,
            "elapsed_s": lambda spec, r: best_elapsed_s(r),
        },
    )
)
