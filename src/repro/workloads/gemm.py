"""Built-in GEMM workload (Figure 2), wired as a registry plugin.

The spec class and executor body predate the registry and stay in
:mod:`repro.experiments.specs` / :mod:`repro.experiments.executor` for API
compatibility; this module owns the per-kind pieces that used to be switch
branches — the result JSON codec, the sweep-axis semantics (chips x
implementations x sizes with the section-4 exclusions) and the CLI
rendering — and registers them under ``kind="gemm"``.

GEMM deliberately declares no ``vectorized_body``: its executor runs the
*real* Table-2 implementation objects (Metal command buffers, Accelerate
calls, verification against reference numerics), which are not a
homogeneous repetition grid; inside a ``vectorized`` batch its cells fall
back to the scalar engine per cell (DESIGN.md §7).
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.calibration import paper
from repro.core.gemm.registry import paper_implementation_keys
from repro.core.results import GemmResult
from repro.experiments.executor import run_gemm_spec
from repro.experiments.specs import GemmSpec, SweepSpec
from repro.workloads.base import (
    Workload,
    best_elapsed_s,
    expand_axes,
    repetitions_from_dicts,
    repetitions_to_dicts,
    variant_grid,
)
from repro.workloads.registry import register_workload

__all__ = ["GEMM_WORKLOAD", "gemm_result_to_dict", "gemm_result_from_dict"]


def gemm_result_to_dict(result: GemmResult) -> dict[str, Any]:
    """Serialize a :class:`GemmResult` to plain data (raw fields only)."""
    return {
        "type": "gemm",
        "impl_key": result.impl_key,
        "chip_name": result.chip_name,
        "n": result.n,
        "flop_count": result.flop_count,
        "repetitions": repetitions_to_dicts(result.repetitions),
        "verified": result.verified,
    }


def gemm_result_from_dict(data: Mapping[str, Any]) -> GemmResult:
    """Rebuild a :class:`GemmResult` from :func:`gemm_result_to_dict` output."""
    return GemmResult(
        impl_key=data["impl_key"],
        chip_name=data["chip_name"],
        n=int(data["n"]),
        flop_count=int(data["flop_count"]),
        repetitions=repetitions_from_dicts(data["repetitions"]),
        verified=data.get("verified"),
    )


def cell_is_supported(chip: str, impl_key: str, n: int) -> bool:
    """Section-4 exclusion check, tolerant of off-catalog chips."""
    from repro.calibration.gemm import gemm_calibration
    from repro.soc.catalog import get_chip

    try:
        spec = get_chip(chip)
    except Exception:
        return True  # off-catalog chips are resolved at execution time
    try:
        return gemm_calibration(spec, impl_key).supports(n)
    except Exception:
        return True


def _sweep_cells(sweep: SweepSpec) -> tuple[GemmSpec, ...]:
    repeats = sweep.repeats if sweep.repeats is not None else paper.GEMM_REPEATS
    return expand_axes(
        sweep.chips or paper.CHIPS,
        sweep.impl_keys or paper_implementation_keys(),
        sweep.sizes or paper.GEMM_SIZES,
        lambda chip, impl_key, n: GemmSpec(
            chip=chip,
            seed=sweep.seed,
            numerics=sweep.numerics,
            impl_key=impl_key,
            n=n,
            repeats=repeats,
        ),
        cell_filter=cell_is_supported if sweep.skip_unsupported else None,
    )


def _sample_spec() -> GemmSpec:
    return GemmSpec(chip="M1", impl_key="gpu-mps", n=256, repeats=2)


def _sample_variants(seed: int, count: int) -> tuple[GemmSpec, ...]:
    return variant_grid(
        lambda rng: GemmSpec(
            chip=rng.choice(paper.CHIPS),
            seed=rng.randrange(1 << 16),
            numerics=rng.choice((None, "full", "sampled", "model-only")),
            impl_key=rng.choice(paper_implementation_keys()),
            n=rng.choice(paper.GEMM_SIZES),
            repeats=rng.randint(1, paper.GEMM_REPEATS),
            verify=rng.choice((None, True, False)),
        ),
        seed,
        count,
    )


#: The registered GEMM workload (Figure-2 timing study).
GEMM_WORKLOAD: Workload = register_workload(
    Workload(
        kind="gemm",
        display_name="GEMM (Figure 2)",
        description="dense n x n matrix multiply, best GFLOPS of 5 repetitions",
        spec_cls=GemmSpec,
        result_cls=GemmResult,
        execute=lambda machine, spec: run_gemm_spec(machine, spec),
        result_to_dict=gemm_result_to_dict,
        result_from_dict=gemm_result_from_dict,
        sweep_cells=_sweep_cells,
        sample_spec=_sample_spec,
        cell_label=lambda spec: f"{spec.chip} {spec.impl_key} n={spec.n}",
        summary_line=lambda spec, result: (
            f"{spec.chip:4s} {spec.impl_key:16s} n={spec.n:<6d} "
            f"{result.best_gflops:10.1f} GFLOPS"
        ),
        impl_keys=paper_implementation_keys(),
        sample_variants=_sample_variants,
        metrics={
            "gflops": lambda spec, r: r.best_gflops,
            "mean_gflops": lambda spec, r: r.mean_gflops,
            "elapsed_s": lambda spec, r: best_elapsed_s(r),
        },
    )
)
