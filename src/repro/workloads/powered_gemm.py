"""Built-in powered-GEMM workload (Figures 3-4), wired as a registry plugin.

Same shape as :mod:`repro.workloads.gemm` — spec class and executor body
stay in :mod:`repro.experiments` — plus the standalone codec for the nested
:class:`~repro.core.results.PowerMeasurement` records, which serialize under
their own ``type="power"`` tag.  Like plain GEMM, it declares no
``vectorized_body`` (the piggybacked powermetrics protocol drives real
implementation objects) and falls back to the scalar engine inside a
``vectorized`` batch.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.calibration import paper
from repro.core.gemm.registry import paper_implementation_keys
from repro.core.results import PoweredGemmResult, PowerMeasurement
from repro.experiments.executor import run_powered_gemm_spec
from repro.experiments.specs import PoweredGemmSpec, SweepSpec
from repro.workloads.base import (
    Workload,
    best_elapsed_s,
    expand_axes,
    variant_grid,
)
from repro.workloads.gemm import (
    cell_is_supported,
    gemm_result_from_dict,
    gemm_result_to_dict,
)
from repro.workloads.registry import register_result_codec, register_workload

__all__ = [
    "POWERED_GEMM_WORKLOAD",
    "power_measurement_to_dict",
    "power_measurement_from_dict",
]


def power_measurement_to_dict(m: PowerMeasurement) -> dict[str, Any]:
    """Serialize one powermetrics window to plain data."""
    return {
        "type": "power",
        "cpu_mw": m.cpu_mw,
        "gpu_mw": m.gpu_mw,
        "elapsed_ms": m.elapsed_ms,
    }


def power_measurement_from_dict(data: Mapping[str, Any]) -> PowerMeasurement:
    """Rebuild a :class:`PowerMeasurement` from its plain-data form."""
    return PowerMeasurement(
        cpu_mw=float(data["cpu_mw"]),
        gpu_mw=float(data["gpu_mw"]),
        elapsed_ms=float(data["elapsed_ms"]),
    )


def _powered_to_dict(result: PoweredGemmResult) -> dict[str, Any]:
    return {
        "type": "powered-gemm",
        "gemm": gemm_result_to_dict(result.gemm),
        "measurements": [power_measurement_to_dict(m) for m in result.measurements],
    }


def _powered_from_dict(data: Mapping[str, Any]) -> PoweredGemmResult:
    return PoweredGemmResult(
        gemm=gemm_result_from_dict(data["gemm"]),
        measurements=tuple(
            power_measurement_from_dict(m) for m in data["measurements"]
        ),
    )


def _sweep_cells(sweep: SweepSpec) -> tuple[PoweredGemmSpec, ...]:
    repeats = sweep.repeats if sweep.repeats is not None else paper.GEMM_REPEATS
    return expand_axes(
        sweep.chips or paper.CHIPS,
        sweep.impl_keys or paper_implementation_keys(),
        sweep.sizes or paper.POWER_SIZES,
        lambda chip, impl_key, n: PoweredGemmSpec(
            chip=chip,
            seed=sweep.seed,
            numerics=sweep.numerics,
            impl_key=impl_key,
            n=n,
            repeats=repeats,
        ),
        cell_filter=cell_is_supported if sweep.skip_unsupported else None,
    )


def _sample_spec() -> PoweredGemmSpec:
    return PoweredGemmSpec(chip="M1", impl_key="gpu-mps", n=256, repeats=2)


def _sample_variants(seed: int, count: int) -> tuple[PoweredGemmSpec, ...]:
    return variant_grid(
        lambda rng: PoweredGemmSpec(
            chip=rng.choice(paper.CHIPS),
            seed=rng.randrange(1 << 16),
            numerics=rng.choice((None, "full", "sampled", "model-only")),
            impl_key=rng.choice(paper_implementation_keys()),
            n=rng.choice(paper.GEMM_SIZES),
            repeats=rng.randint(1, paper.GEMM_REPEATS),
        ),
        seed,
        count,
    )


register_result_codec(
    "power", PowerMeasurement, power_measurement_to_dict, power_measurement_from_dict
)

#: The registered power-study workload (Figures 3-4: draw and efficiency).
POWERED_GEMM_WORKLOAD: Workload = register_workload(
    Workload(
        kind="powered-gemm",
        display_name="Powered GEMM (Figures 3-4)",
        description="GEMM timing with the piggybacked powermetrics protocol",
        spec_cls=PoweredGemmSpec,
        result_cls=PoweredGemmResult,
        execute=lambda machine, spec: run_powered_gemm_spec(machine, spec),
        result_to_dict=_powered_to_dict,
        result_from_dict=_powered_from_dict,
        sweep_cells=_sweep_cells,
        sample_spec=_sample_spec,
        cell_label=lambda spec: f"{spec.chip} {spec.impl_key} n={spec.n}",
        summary_line=lambda spec, result: (
            f"{spec.chip:4s} {spec.impl_key:16s} n={spec.n:<6d} "
            f"{result.mean_combined_w:7.2f} W  "
            f"{result.efficiency_gflops_per_w:8.1f} GFLOPS/W"
        ),
        impl_keys=paper_implementation_keys(),
        sample_variants=_sample_variants,
        metrics={
            # The measured draw (section-3.3 protocol) backs the power
            # metrics here; the modelled workloads derive theirs from the
            # simulator's clamped draw instead.
            "gflops": lambda spec, r: r.gemm.best_gflops,
            "mean_gflops": lambda spec, r: r.gemm.mean_gflops,
            "elapsed_s": lambda spec, r: best_elapsed_s(r.gemm),
            "power_w": lambda spec, r: r.mean_combined_w,
            "power_mw": lambda spec, r: r.mean_combined_mw,
            "gflops_per_w": lambda spec, r: r.efficiency_gflops_per_w,
            "joules": lambda spec, r: (
                r.mean_combined_w * best_elapsed_s(r.gemm)
            ),
        },
    )
)
