"""Built-in powered-GEMM workload (Figures 3-4), wired as a registry plugin.

Same shape as :mod:`repro.workloads.gemm` — spec class and executor body
stay in :mod:`repro.experiments` — plus the standalone codec for the nested
:class:`~repro.core.results.PowerMeasurement` records, which serialize under
their own ``type="power"`` tag.  Under the ``model-only`` numerics policy
the piggybacked powermetrics protocol reduces to a closed form — one
warm-up sleep plus one calibrated operation per repetition, with both
power rails averaged over exactly the operation's own window — so
:func:`lower_powered_gemm_spec` replays it as a
:class:`~repro.sim.vectorized.LoweredSequence`, including the tool's
``%.0f``/``%.2f`` render-then-parse rounding.  Cells under ``full`` or
``sampled`` numerics fall back to the scalar engine per cell.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.calibration import paper
from repro.core.gemm.registry import get_implementation, paper_implementation_keys
from repro.core.results import (
    GemmRepetition,
    GemmResult,
    PoweredGemmResult,
    PowerMeasurement,
)
from repro.errors import ProtocolError, UnsupportedProblemError
from repro.experiments.executor import run_powered_gemm_spec
from repro.experiments.specs import PoweredGemmSpec, SweepSpec
from repro.sim.policy import NumericsPolicy
from repro.sim.vectorized import LoweredOp, LoweredSequence
from repro.soc.power import PowerComponent
from repro.workloads.base import (
    Workload,
    best_elapsed_s,
    expand_axes,
    iter_axes,
    variant_grid,
)
from repro.workloads.gemm import (
    _scalar_gemm_operation,
    cell_is_supported,
    gemm_result_from_dict,
    gemm_result_to_dict,
)
from repro.workloads.registry import register_result_codec, register_workload

__all__ = [
    "POWERED_GEMM_WORKLOAD",
    "power_measurement_to_dict",
    "power_measurement_from_dict",
    "lower_powered_gemm_spec",
]


def power_measurement_to_dict(m: PowerMeasurement) -> dict[str, Any]:
    """Serialize one powermetrics window to plain data."""
    return {
        "type": "power",
        "cpu_mw": m.cpu_mw,
        "gpu_mw": m.gpu_mw,
        "elapsed_ms": m.elapsed_ms,
    }


def power_measurement_from_dict(data: Mapping[str, Any]) -> PowerMeasurement:
    """Rebuild a :class:`PowerMeasurement` from its plain-data form."""
    return PowerMeasurement(
        cpu_mw=float(data["cpu_mw"]),
        gpu_mw=float(data["gpu_mw"]),
        elapsed_ms=float(data["elapsed_ms"]),
    )


def _powered_to_dict(result: PoweredGemmResult) -> dict[str, Any]:
    return {
        "type": "powered-gemm",
        "gemm": gemm_result_to_dict(result.gemm),
        "measurements": [power_measurement_to_dict(m) for m in result.measurements],
    }


def _powered_from_dict(data: Mapping[str, Any]) -> PoweredGemmResult:
    return PoweredGemmResult(
        gemm=gemm_result_from_dict(data["gemm"]),
        measurements=tuple(
            power_measurement_from_dict(m) for m in data["measurements"]
        ),
    )


# -- model-only lowering ----------------------------------------------------
#
# One protocol pass per repetition on the cumulative machine: the tool's
# start() and siginfo() never advance the clock, so each repetition is a
# 2.0 s warm-up sleep followed by exactly the same calibrated operation
# plain GEMM issues.  Both SIGINFO samples bracket the operation's own
# window, so ``component_average_mw`` reduces to a closed form: an active
# rail's one interval spans the window exactly (average == clamped draw)
# and an inactive rail integrates its idle floor — both written below as
# the recorder's literal ``window * w / window`` expression so the lowered
# floats round through the tool's ``%.0f``/``%.2f`` text identically.


#: Seed-independent repetition ops per cell shape (see gemm's cache notes).
_POWERED_OPS_CACHE: "dict[tuple[str, str, int, int], tuple[LoweredOp, ...] | None]" = {}


def _lowered_powered_ops(
    chip, impl_key: str, n: int, repeats: int
) -> "tuple[LoweredOp, ...] | None":
    key = (chip.name, impl_key, n, repeats)
    try:
        return _POWERED_OPS_CACHE[key]
    except KeyError:
        pass
    operation = _scalar_gemm_operation(chip, impl_key, n)
    ops = (
        None
        if operation is None
        else (
            LoweredOp.from_operation(
                operation, pre_advance_s=paper.POWERMETRICS_WARMUP_S
            ),
        )
        * repeats
    )
    _POWERED_OPS_CACHE[key] = ops
    return ops


def lower_powered_gemm_spec(
    machine, spec: PoweredGemmSpec
) -> "LoweredSequence | None":
    """Lower one Figure-3/4 cell to its model-only protocol sequence.

    Returns ``None`` — the scalar-fallback signal — when the cell runs
    real numerics (any policy but MODEL_ONLY) or uses an extension
    implementation outside the Table-2 catalog.  Unsupported cells raise
    the same :class:`UnsupportedProblemError` the scalar executor raises.
    """
    if machine.numerics.policy is not NumericsPolicy.MODEL_ONLY:
        return None
    impl = get_implementation(spec.impl_key)
    if not impl.supports(machine, spec.n):
        raise UnsupportedProblemError(
            f"{impl.key} does not execute n={spec.n} on {machine.chip.name}"
        )
    ops = _lowered_powered_ops(machine.chip, impl.key, spec.n, spec.repeats)
    if ops is None:
        return None

    impl_key = impl.key
    chip_name = machine.chip.name
    n = spec.n
    flop_count = paper.gemm_flop_count(spec.n)
    envelope = machine.envelope

    # The recorder stores the *clamped* draw; replicate machine.execute's
    # clamping (same summation order — the draws mapping is shared).
    draws = ops[0].power_draws_w
    requested = sum(draws.values())
    clamp = machine.thermal.clamp_factor(requested)
    if clamp < 1.0:
        recorded = {comp: watts * clamp for comp, watts in draws.items()}
    else:
        recorded = dict(draws)
    cpu_rail = recorded.get(
        PowerComponent.CPU, envelope.idle_watts(PowerComponent.CPU)
    )
    gpu_rail = recorded.get(
        PowerComponent.GPU, envelope.idle_watts(PowerComponent.GPU)
    )

    def assemble(
        windows: "tuple[tuple[float, float], ...]",
    ) -> PoweredGemmResult:
        repetitions = []
        measurements = []
        for rep, (start, end) in enumerate(windows):
            window = end - start
            elapsed_ms = float(f"{window * 1e3:.2f}")
            if elapsed_ms <= 0.0:
                raise ProtocolError(
                    "measurement window is empty — the workload consumed no "
                    "simulated time"
                )
            cpu_mw = float(f"{window * cpu_rail / window * 1e3:.0f}")
            gpu_mw = float(f"{window * gpu_rail / window * 1e3:.0f}")
            measurement = PowerMeasurement(
                cpu_mw=cpu_mw, gpu_mw=gpu_mw, elapsed_ms=elapsed_ms
            )
            measurements.append(measurement)
            repetitions.append(
                GemmRepetition(
                    repetition=rep,
                    elapsed_ns=max(1, int(measurement.elapsed_ms * 1e6)),
                )
            )
        gemm = GemmResult(
            impl_key=impl_key,
            chip_name=chip_name,
            n=n,
            flop_count=flop_count,
            repetitions=tuple(repetitions),
        )
        return PoweredGemmResult(gemm=gemm, measurements=tuple(measurements))

    return LoweredSequence(
        seed=spec.seed, thermal=machine.thermal, ops=ops, assemble=assemble
    )


def _sweep_axes(sweep: SweepSpec) -> dict:
    repeats = sweep.repeats if sweep.repeats is not None else paper.GEMM_REPEATS
    return dict(
        chips=sweep.chips or paper.CHIPS,
        variants=sweep.impl_keys or paper_implementation_keys(),
        sizes=sweep.sizes or paper.POWER_SIZES,
        make_spec=lambda chip, impl_key, n: PoweredGemmSpec(
            chip=chip,
            seed=sweep.seed,
            numerics=sweep.numerics,
            impl_key=impl_key,
            n=n,
            repeats=repeats,
        ),
        cell_filter=cell_is_supported if sweep.skip_unsupported else None,
    )


def _sweep_cells(sweep: SweepSpec) -> tuple[PoweredGemmSpec, ...]:
    return expand_axes(**_sweep_axes(sweep))


def _sweep_cells_iter(sweep: SweepSpec):
    return iter_axes(**_sweep_axes(sweep))


def _sample_spec() -> PoweredGemmSpec:
    return PoweredGemmSpec(chip="M1", impl_key="gpu-mps", n=256, repeats=2)


def _sample_variants(seed: int, count: int) -> tuple[PoweredGemmSpec, ...]:
    return variant_grid(
        lambda rng: PoweredGemmSpec(
            chip=rng.choice(paper.CHIPS),
            seed=rng.randrange(1 << 16),
            numerics=rng.choice((None, "full", "sampled", "model-only")),
            impl_key=rng.choice(paper_implementation_keys()),
            n=rng.choice(paper.GEMM_SIZES),
            repeats=rng.randint(1, paper.GEMM_REPEATS),
        ),
        seed,
        count,
    )


register_result_codec(
    "power", PowerMeasurement, power_measurement_to_dict, power_measurement_from_dict
)

#: The registered power-study workload (Figures 3-4: draw and efficiency).
POWERED_GEMM_WORKLOAD: Workload = register_workload(
    Workload(
        kind="powered-gemm",
        display_name="Powered GEMM (Figures 3-4)",
        description="GEMM timing with the piggybacked powermetrics protocol",
        spec_cls=PoweredGemmSpec,
        result_cls=PoweredGemmResult,
        execute=lambda machine, spec: run_powered_gemm_spec(machine, spec),
        result_to_dict=_powered_to_dict,
        result_from_dict=_powered_from_dict,
        sweep_cells=_sweep_cells,
        sweep_cells_iter=_sweep_cells_iter,
        sample_spec=_sample_spec,
        cell_label=lambda spec: f"{spec.chip} {spec.impl_key} n={spec.n}",
        summary_line=lambda spec, result: (
            f"{spec.chip:4s} {spec.impl_key:16s} n={spec.n:<6d} "
            f"{result.mean_combined_w:7.2f} W  "
            f"{result.efficiency_gflops_per_w:8.1f} GFLOPS/W"
        ),
        impl_keys=paper_implementation_keys(),
        sample_variants=_sample_variants,
        vectorized_body=lower_powered_gemm_spec,
        metrics={
            # The measured draw (section-3.3 protocol) backs the power
            # metrics here; the modelled workloads derive theirs from the
            # simulator's clamped draw instead.
            "gflops": lambda spec, r: r.gemm.best_gflops,
            "mean_gflops": lambda spec, r: r.gemm.mean_gflops,
            "elapsed_s": lambda spec, r: best_elapsed_s(r.gemm),
            "power_w": lambda spec, r: r.mean_combined_w,
            "power_mw": lambda spec, r: r.mean_combined_mw,
            "gflops_per_w": lambda spec, r: r.efficiency_gflops_per_w,
            "joules": lambda spec, r: (
                r.mean_combined_w * best_elapsed_s(r.gemm)
            ),
        },
    )
)
