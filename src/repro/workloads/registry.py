"""The workload registry: ``kind`` string -> :class:`~repro.workloads.base.Workload`.

This module is the single source of truth the experiment stack dispatches
through.  It holds two tables:

* the **workload table**, keyed by ``kind`` and by spec class — consulted by
  spec deserialization, sweep expansion, the executor, the vectorized
  backend (which reads each workload's optional ``vectorized_body`` lowering
  hook and falls back to scalar execution when it is ``None``) and the CLI;
* the **result-codec table**, keyed by result ``type`` tag and by result
  class — consulted by the envelope layer.  Workload registration populates
  it automatically; :func:`register_result_codec` additionally registers
  standalone codecs for nested record types (e.g. the powermetrics
  measurement inside a powered-GEMM result).

The registry deliberately imports nothing from :mod:`repro.experiments`, so
plugins can import spec base classes and executor helpers without cycles.
Builtin workloads are registered when :mod:`repro.workloads` is imported.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

from repro.errors import ConfigurationError
from repro.workloads.base import Workload

__all__ = [
    "register_workload",
    "unregister_workload",
    "register_result_codec",
    "get_workload",
    "workload_for_spec",
    "workload_kinds",
    "all_workloads",
    "serialize_result",
    "deserialize_result",
]

_WORKLOADS: dict[str, Workload] = {}
_BY_SPEC_CLS: dict[type, Workload] = {}
_RESULT_TO_DICT: dict[type, Callable[[Any], dict[str, Any]]] = {}
_RESULT_FROM_DICT: dict[str, Callable[[Mapping[str, Any]], Any]] = {}


def register_result_codec(
    tag: str,
    result_cls: type,
    to_dict: Callable[[Any], dict[str, Any]],
    from_dict: Callable[[Mapping[str, Any]], Any],
) -> None:
    """Register a standalone result codec under a ``type`` tag.

    Workload registration calls this for the workload's own result type;
    use it directly only for auxiliary record types that appear inside
    envelopes on their own (e.g. ``PowerMeasurement``).
    """
    if tag in _RESULT_FROM_DICT:
        raise ConfigurationError(f"result type tag {tag!r} is already registered")
    if result_cls in _RESULT_TO_DICT:
        raise ConfigurationError(
            f"result class {result_cls.__name__} is already registered"
        )
    _RESULT_TO_DICT[result_cls] = to_dict
    _RESULT_FROM_DICT[tag] = from_dict


def _drop_result_codec(tag: str, result_cls: type) -> None:
    _RESULT_FROM_DICT.pop(tag, None)
    _RESULT_TO_DICT.pop(result_cls, None)


def register_workload(workload: Workload) -> Workload:
    """Register a workload plugin; returns it so modules can re-export.

    Raises :class:`ConfigurationError` if the kind, spec class or result
    type is already taken — plugins must not silently shadow each other.
    """
    if workload.kind in _WORKLOADS:
        raise ConfigurationError(
            f"workload kind {workload.kind!r} is already registered"
        )
    if workload.spec_cls in _BY_SPEC_CLS:
        raise ConfigurationError(
            f"spec class {workload.spec_cls.__name__} is already registered"
        )
    register_result_codec(
        workload.result_tag,
        workload.result_cls,
        workload.result_to_dict,
        workload.result_from_dict,
    )
    _WORKLOADS[workload.kind] = workload
    _BY_SPEC_CLS[workload.spec_cls] = workload
    return workload


def unregister_workload(kind: str) -> None:
    """Remove a registered workload (primarily for tests and plugin teardown)."""
    workload = _WORKLOADS.pop(kind, None)
    if workload is None:
        return
    _BY_SPEC_CLS.pop(workload.spec_cls, None)
    _drop_result_codec(workload.result_tag, workload.result_cls)


def get_workload(kind: str) -> Workload:
    """The workload registered under ``kind``.

    Raises :class:`ConfigurationError` for unregistered kinds, naming the
    known ones — nothing ever silently falls through to a default workload.
    """
    try:
        return _WORKLOADS[kind]
    except KeyError:
        raise ConfigurationError(
            f"unknown workload kind {kind!r}; known: {', '.join(_WORKLOADS)}"
        ) from None


def workload_for_spec(spec: Any) -> Workload:
    """The workload owning ``spec``'s class (exact class match)."""
    try:
        return _BY_SPEC_CLS[type(spec)]
    except KeyError:
        raise ConfigurationError(
            f"cannot execute spec of type {type(spec).__name__}; "
            f"no workload registers it"
        ) from None


def workload_kinds() -> tuple[str, ...]:
    """Registered kind strings, in registration order (builtins first)."""
    return tuple(_WORKLOADS)


def all_workloads() -> tuple[Workload, ...]:
    """Every registered workload, in registration order."""
    return tuple(_WORKLOADS.values())


def serialize_result(result: Any) -> dict[str, Any]:
    """Serialize any registered result record to plain data, tagged ``type``."""
    try:
        to_dict = _RESULT_TO_DICT[type(result)]
    except KeyError:
        raise ConfigurationError(
            f"cannot serialize result of type {type(result).__name__}"
        ) from None
    return to_dict(result)


def deserialize_result(data: Mapping[str, Any]) -> Any:
    """Rebuild a result record from :func:`serialize_result` output."""
    try:
        tag = data["type"]
    except KeyError:
        raise ConfigurationError("result dictionary lacks a 'type' tag") from None
    try:
        from_dict = _RESULT_FROM_DICT[tag]
    except KeyError:
        raise ConfigurationError(
            f"unknown result type {tag!r}; known: {', '.join(_RESULT_FROM_DICT)}"
        ) from None
    return from_dict(data)
